use crate::node::{Node, NodeId, Octree, NONE};
use geom::{morton_encode, Aabb, Vec3, MAX_MORTON_LEVEL};
use rayon::prelude::*;

/// Construction parameters for [`build_adaptive`] / [`build_uniform`].
#[derive(Clone, Copy, Debug)]
pub struct BuildParams {
    /// Leaf capacity S: a node holding more than S bodies is subdivided.
    pub s: usize,
    /// Deepest allowed level (root = 0). Clamped to the Morton limit (21).
    pub max_level: u16,
    /// Relative padding of the root cube so surface bodies stay interior.
    pub pad: f64,
}

impl BuildParams {
    pub fn with_s(s: usize) -> Self {
        BuildParams {
            s,
            ..Default::default()
        }
    }
}

impl Default for BuildParams {
    fn default() -> Self {
        BuildParams {
            s: 64,
            max_level: MAX_MORTON_LEVEL as u16,
            pad: 1e-6,
        }
    }
}

/// Morton digit (octant) of `code` at tree `level` (level 1 = coarsest
/// split, matching children of the root).
#[inline]
fn digit(code: u64, level: u16) -> u64 {
    (code >> (3 * (MAX_MORTON_LEVEL as u16 - level))) & 7
}

/// Compute clamped Morton `(code, body)` pairs for all positions relative
/// to a root cube into `pairs` (cleared first), sorted by (code, id) —
/// deterministic under duplicate codes. Allocation-free once `pairs` has
/// capacity for `pos.len()` entries, which is what lets [`Octree::rebin`]
/// run with zero heap traffic in steady state.
pub(crate) fn sorted_pairs_into(
    pos: &[Vec3],
    center: Vec3,
    half_width: f64,
    pairs: &mut Vec<(u64, u32)>,
) {
    let n_cells = (1u64 << MAX_MORTON_LEVEL) as f64;
    let origin = center - Vec3::splat(half_width);
    let scale = n_cells / (2.0 * half_width);
    let max_cell = (1u64 << MAX_MORTON_LEVEL) - 1;
    let cell = |v: f64| -> u64 {
        // Bodies that drifted outside the fixed root cube clamp to the
        // boundary cells; rebuilds recenter the cube.
        (v.max(0.0) as u64).min(max_cell)
    };
    pairs.clear();
    pairs.extend(pos.iter().enumerate().map(|(i, &p)| {
        let u = (p - origin) * scale;
        (morton_encode(cell(u.x), cell(u.y), cell(u.z)), i as u32)
    }));
    pairs.par_sort_unstable();
}

/// Find the eight child-range boundaries of `range` by binary search on the
/// sorted Morton codes. Returns `[b0..b8]` with `b0 = range.start`,
/// `b8 = range.end`.
fn octant_bounds(codes: &[u64], range: std::ops::Range<usize>, child_level: u16) -> [usize; 9] {
    let slice = &codes[range.clone()];
    let mut b = [range.start; 9];
    b[8] = range.end;
    for o in 1..8u64 {
        b[o as usize] = range.start + slice.partition_point(|&c| digit(c, child_level) < o);
    }
    b
}

/// Allocate the eight children of `id` (consecutive arena slots) with the
/// given range boundaries; returns the first child id.
fn alloc_children(nodes: &mut Vec<Node>, id: NodeId, bounds: &[usize; 9]) -> NodeId {
    let first = nodes.len() as NodeId;
    let parent = nodes[id as usize];
    for o in 0..8 {
        let q = parent.half_width * 0.5;
        let center = Vec3::new(
            parent.center.x + if o & 1 != 0 { q } else { -q },
            parent.center.y + if o & 2 != 0 { q } else { -q },
            parent.center.z + if o & 4 != 0 { q } else { -q },
        );
        nodes.push(Node {
            center,
            half_width: q,
            level: parent.level + 1,
            parent: id,
            first_child: NONE,
            begin: bounds[o] as u32,
            end: bounds[o + 1] as u32,
            collapsed: false,
        });
    }
    nodes[id as usize].first_child = first;
    first
}

/// Build an adaptive octree over `pos` with leaf capacity `params.s`.
/// The root cube is the smallest padded cube containing all bodies.
pub fn build_adaptive(pos: &[Vec3], params: BuildParams) -> Octree {
    let (center, hw) = Aabb::cube_containing(pos, params.pad);
    build_in_cube(pos, params, center, hw, SplitRule::Adaptive)
}

/// Build an adaptive octree inside a **fixed** root cube — the paper's
/// time-dependent experiments pin the simulation space so the decomposition
/// stays comparable across rebuilds while bodies expand and contract.
/// Bodies outside the cube clamp to its boundary cells.
pub fn build_adaptive_in_cube(
    pos: &[Vec3],
    params: BuildParams,
    center: Vec3,
    half_width: f64,
) -> Octree {
    assert!(half_width > 0.0);
    build_in_cube(pos, params, center, half_width, SplitRule::Adaptive)
}

/// Build a *uniform* fixed-depth octree (the classic FMM decomposition the
/// paper contrasts against): every branch subdivides to exactly `depth`,
/// regardless of body counts.
pub fn build_uniform(pos: &[Vec3], depth: u16, pad: f64) -> Octree {
    let (center, hw) = Aabb::cube_containing(pos, pad);
    let params = BuildParams {
        s: 1,
        max_level: depth,
        pad,
    };
    build_in_cube(pos, params, center, hw, SplitRule::Uniform)
}

#[derive(Clone, Copy, PartialEq)]
enum SplitRule {
    /// Split while count > S (leaves at any level).
    Adaptive,
    /// Split every node until `max_level` (complete tree).
    Uniform,
}

fn build_in_cube(
    pos: &[Vec3],
    params: BuildParams,
    center: Vec3,
    half_width: f64,
    rule: SplitRule,
) -> Octree {
    assert!(params.s >= 1, "leaf capacity S must be at least 1");
    let max_level = params.max_level.min(MAX_MORTON_LEVEL as u16);
    let mut pairs: Vec<(u64, u32)> = Vec::with_capacity(pos.len());
    sorted_pairs_into(pos, center, half_width, &mut pairs);
    let order: Vec<u32> = pairs.iter().map(|&(_, i)| i).collect();
    let codes: Vec<u64> = pairs.iter().map(|&(c, _)| c).collect();

    let mut nodes = Vec::new();
    // Reserve the paper's "node buffer" up front: a comfortable multiple of
    // the expected leaf count to make PushDown allocation-free in steady
    // state.
    let expected = pos.len().checked_div(params.s).map_or(64, |l| (l + 1) * 4);
    nodes.reserve(expected.min(1 << 22));
    nodes.push(Node {
        center,
        half_width,
        level: 0,
        parent: NONE,
        first_child: NONE,
        begin: 0,
        end: pos.len() as u32,
        collapsed: false,
    });

    // Iterative DFS subdivision.
    let mut stack: Vec<NodeId> = vec![0];
    while let Some(id) = stack.pop() {
        let n = nodes[id as usize];
        let split = match rule {
            SplitRule::Adaptive => n.count() > params.s && n.level < max_level,
            SplitRule::Uniform => n.level < max_level,
        };
        if !split {
            continue;
        }
        let bounds = octant_bounds(&codes, n.range(), n.level + 1);
        let first = alloc_children(&mut nodes, id, &bounds);
        for o in 0..8 {
            stack.push(first + o);
        }
    }

    // The DFS stack becomes rebin scratch: it is already warm to the width
    // this structure needs, and keeping the pair buffer too makes even the
    // *first* rebin allocation-free.
    stack.clear();
    stack.reserve(nodes.len());
    Octree {
        nodes,
        order,
        codes,
        s_value: params.s,
        root_center: center,
        root_half_width: half_width,
        max_level,
        scratch: crate::node::RebinScratch { pairs, stack },
    }
}

impl Octree {
    /// Re-sort moved bodies into the **unchanged** tree structure: Morton
    /// codes are recomputed against the fixed root cube (clamping bodies
    /// that drifted outside), the tree ordering is re-sorted, and every
    /// reachable non-collapsed node's range is re-derived. Collapsed
    /// subtrees keep stale ranges; [`Octree::push_down`] re-partitions on
    /// reclaim.
    ///
    /// This is the maintenance step the paper's strategies 1–3 all perform
    /// after each position update; only strategies 2–3 additionally modify
    /// the structure.
    /// Runs with **zero heap allocations** once warm: the Morton pair
    /// buffer and the DFS stack are reusable scratch carried by the tree
    /// (seeded at build time), and `order`/`codes` are rewritten in place —
    /// their length never changes. The `memory_profile` perf-lab scenario
    /// gates this invariant through the `"rebin"` allocation scope.
    pub fn rebin(&mut self, pos: &[Vec3]) {
        assert_eq!(pos.len(), self.num_bodies());
        let _mem = telemetry::AllocScope::enter("rebin");
        let mut pairs = std::mem::take(&mut self.scratch.pairs);
        sorted_pairs_into(pos, self.root_center, self.root_half_width, &mut pairs);
        for (i, &(c, b)) in pairs.iter().enumerate() {
            self.order[i] = b;
            self.codes[i] = c;
        }
        self.scratch.pairs = pairs;

        let mut stack = std::mem::take(&mut self.scratch.stack);
        stack.clear();
        stack.push(Self::ROOT);
        while let Some(id) = stack.pop() {
            let n = self.nodes[id as usize];
            if n.first_child == NONE || n.collapsed {
                continue;
            }
            let bounds = octant_bounds(&self.codes, n.range(), n.level + 1);
            for o in 0..8 {
                let c = n.first_child + o as NodeId;
                self.nodes[c as usize].begin = bounds[o] as u32;
                self.nodes[c as usize].end = bounds[o + 1] as u32;
                stack.push(c);
            }
        }
        self.scratch.stack = stack;
    }

    /// Partition the body range of `id` among its eight children by Morton
    /// code. Children must already be allocated.
    pub(crate) fn repartition_children(&mut self, id: NodeId) {
        let n = self.nodes[id as usize];
        debug_assert_ne!(n.first_child, NONE);
        let bounds = octant_bounds(&self.codes, n.range(), n.level + 1);
        for o in 0..8 {
            let c = (n.first_child + o as NodeId) as usize;
            self.nodes[c].begin = bounds[o] as u32;
            self.nodes[c].end = bounds[o + 1] as u32;
        }
    }

    /// Allocate eight children for leaf `id` (no prior children).
    pub(crate) fn alloc_children_of(&mut self, id: NodeId) -> NodeId {
        let n = self.nodes[id as usize];
        debug_assert_eq!(n.first_child, NONE);
        let bounds = octant_bounds(&self.codes, n.range(), n.level + 1);
        alloc_children(&mut self.nodes, id, &bounds)
    }

    pub(crate) fn max_level(&self) -> u16 {
        self.max_level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_points(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Vec3::new(
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                )
            })
            .collect()
    }

    #[test]
    fn build_respects_leaf_capacity() {
        let pos = random_points(2000, 1);
        let t = build_adaptive(&pos, BuildParams::with_s(32));
        t.check_invariants().unwrap();
        for id in t.visible_leaves() {
            assert!(t.node(id).count() <= 32, "leaf over capacity");
        }
    }

    #[test]
    fn every_body_in_exactly_one_leaf() {
        let pos = random_points(500, 2);
        let t = build_adaptive(&pos, BuildParams::with_s(10));
        let mut covered = vec![0u32; pos.len()];
        for id in t.visible_leaves() {
            for i in t.node(id).range() {
                covered[t.order()[i] as usize] += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1));
    }

    #[test]
    fn bodies_inside_their_leaf_cell() {
        let pos = random_points(800, 3);
        let t = build_adaptive(&pos, BuildParams::with_s(16));
        for id in t.visible_leaves() {
            let n = t.node(id);
            for i in n.range() {
                let p = pos[t.order()[i] as usize];
                let d = p - n.center;
                let tol = n.half_width * (1.0 + 1e-9);
                assert!(
                    d.x.abs() <= tol && d.y.abs() <= tol && d.z.abs() <= tol,
                    "body outside its leaf cell"
                );
            }
        }
    }

    #[test]
    fn clustered_points_make_deep_tree() {
        // A tight cluster plus spread points forces varying leaf depth —
        // the defining feature of the adaptive decomposition (paper Fig 2).
        let mut pos = random_points(100, 4);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..400 {
            pos.push(Vec3::new(
                0.5 + rng.random_range(-1e-4..1e-4),
                0.5 + rng.random_range(-1e-4..1e-4),
                0.5 + rng.random_range(-1e-4..1e-4),
            ));
        }
        let t = build_adaptive(&pos, BuildParams::with_s(8));
        t.check_invariants().unwrap();
        let levels: Vec<usize> = t
            .visible_leaves()
            .iter()
            .map(|&l| t.node(l).level as usize)
            .collect();
        let min = *levels.iter().min().unwrap();
        let max = *levels.iter().max().unwrap();
        assert!(
            max >= min + 3,
            "expected varying leaf depth, got {min}..{max}"
        );
    }

    #[test]
    fn uniform_build_is_complete() {
        let pos = random_points(300, 6);
        let t = build_uniform(&pos, 3, 1e-6);
        t.check_invariants().unwrap();
        let leaves = t.visible_leaves();
        assert_eq!(leaves.len(), 8usize.pow(3));
        assert!(leaves.iter().all(|&l| t.node(l).level == 3));
        let total: usize = leaves.iter().map(|&l| t.node(l).count()).sum();
        assert_eq!(total, pos.len());
    }

    #[test]
    fn rebin_tracks_motion() {
        let mut pos = random_points(1000, 7);
        let mut t = build_adaptive(&pos, BuildParams::with_s(20));
        // Move everything and rebin: structure identical, ranges updated.
        let nodes_before = t.num_nodes();
        for p in &mut pos {
            *p = *p * 0.5 + Vec3::splat(0.1);
        }
        t.rebin(&pos);
        assert_eq!(t.num_nodes(), nodes_before);
        t.check_invariants().unwrap();
        // All bodies still inside their (new) leaf cells.
        for id in t.visible_leaves() {
            let n = t.node(id);
            for i in n.range() {
                let p = pos[t.order()[i] as usize];
                let d = p - n.center;
                let tol = n.half_width * (1.0 + 1e-9);
                assert!(d.x.abs() <= tol && d.y.abs() <= tol && d.z.abs() <= tol);
            }
        }
    }

    #[test]
    fn rebin_clamps_escaped_bodies() {
        let mut pos = random_points(200, 8);
        let mut t = build_adaptive(&pos, BuildParams::with_s(10));
        pos[0] = Vec3::splat(100.0); // way outside the root cube
        t.rebin(&pos);
        t.check_invariants().unwrap(); // still a permutation, ranges tile
    }

    #[test]
    fn empty_input_builds_single_leaf() {
        let t = build_adaptive(&[], BuildParams::with_s(8));
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.visible_leaves(), vec![0]);
        t.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_positions_terminate_at_max_level() {
        let pos = vec![Vec3::splat(0.25); 100];
        let t = build_adaptive(
            &pos,
            BuildParams {
                s: 4,
                max_level: 6,
                pad: 1e-6,
            },
        );
        t.check_invariants().unwrap();
        // Cannot split coincident points: one deep overfull leaf is allowed.
        let max_leaf = t
            .visible_leaves()
            .iter()
            .map(|&l| t.node(l).count())
            .max()
            .unwrap();
        assert_eq!(max_leaf, 100);
        assert!(t.depth() <= 6);
    }
}
