use crate::node::{NodeId, Octree};
use crate::traversal::InteractionLists;

/// Application counts `M(op)` of the six FMM operations for a tree plus its
/// interaction lists — the quantities the paper's time-prediction model
/// multiplies by the observed per-op coefficients.
///
/// Body-proportional operations (P2M, L2P) are counted in *bodies*, and P2P
/// in *body-body interactions*, so that predictions scale correctly when a
/// tree modification changes leaf populations (this matches the paper's
/// `Interactions(t) = p_t · Σ_u p_u` accounting for the GPU share).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OpCounts {
    /// Bodies expanded into leaf multipoles.
    pub p2m_bodies: u64,
    /// Child-to-parent multipole translations.
    pub m2m_ops: u64,
    /// Multipole-to-local cell pair translations.
    pub m2l_ops: u64,
    /// Parent-to-child local translations.
    pub l2l_ops: u64,
    /// Bodies evaluated from leaf locals.
    pub l2p_bodies: u64,
    /// Direct body-body interactions (the GPU's work).
    pub p2p_interactions: u64,
    /// Non-empty visible nodes — each spawns one upsweep and one downsweep
    /// task, so this drives the task-overhead share of the CPU cost.
    pub active_nodes: u64,
}

impl OpCounts {
    /// Sum of the five far-field (CPU) op counts, weighted 1:1 — only for
    /// quick sanity checks; real costing applies per-op coefficients.
    pub fn far_field_total(&self) -> u64 {
        self.p2m_bodies + self.m2m_ops + self.m2l_ops + self.l2l_ops + self.l2p_bodies
    }
}

impl std::ops::AddAssign for OpCounts {
    fn add_assign(&mut self, o: OpCounts) {
        self.p2m_bodies += o.p2m_bodies;
        self.m2m_ops += o.m2m_ops;
        self.m2l_ops += o.m2l_ops;
        self.l2l_ops += o.l2l_ops;
        self.l2p_bodies += o.l2p_bodies;
        self.p2p_interactions += o.p2p_interactions;
        self.active_nodes += o.active_nodes;
    }
}

impl std::ops::SubAssign for OpCounts {
    fn sub_assign(&mut self, o: OpCounts) {
        self.p2m_bodies -= o.p2m_bodies;
        self.m2m_ops -= o.m2m_ops;
        self.m2l_ops -= o.m2l_ops;
        self.l2l_ops -= o.l2l_ops;
        self.l2p_bodies -= o.l2p_bodies;
        self.p2p_interactions -= o.p2p_interactions;
        self.active_nodes -= o.active_nodes;
    }
}

/// Aggregate structural statistics of the visible tree.
#[derive(Clone, Copy, Debug, Default)]
pub struct TreeStats {
    pub visible_nodes: usize,
    pub visible_leaves: usize,
    pub nonempty_leaves: usize,
    pub depth: usize,
    pub min_leaf_level: usize,
    pub max_leaf: usize,
    pub mean_leaf: f64,
}

impl TreeStats {
    pub fn gather(tree: &Octree) -> Self {
        let nodes = tree.visible_nodes();
        let leaves: Vec<_> = nodes
            .iter()
            .copied()
            .filter(|&id| tree.node(id).is_leaf())
            .collect();
        let nonempty: Vec<_> = leaves
            .iter()
            .copied()
            .filter(|&id| tree.node(id).count() > 0)
            .collect();
        let depth = nodes
            .iter()
            .map(|&id| tree.node(id).level as usize)
            .max()
            .unwrap_or(0);
        let min_leaf_level = nonempty
            .iter()
            .map(|&id| tree.node(id).level as usize)
            .min()
            .unwrap_or(0);
        let max_leaf = nonempty
            .iter()
            .map(|&id| tree.node(id).count())
            .max()
            .unwrap_or(0);
        let total: usize = nonempty.iter().map(|&id| tree.node(id).count()).sum();
        TreeStats {
            visible_nodes: nodes.len(),
            visible_leaves: leaves.len(),
            nonempty_leaves: nonempty.len(),
            depth,
            min_leaf_level,
            max_leaf,
            mean_leaf: if nonempty.is_empty() {
                0.0
            } else {
                total as f64 / nonempty.len() as f64
            },
        }
    }
}

/// Contribution of one *visible* node to [`count_ops`]' totals (zero for an
/// empty node). Exposed on its own so an incrementally-patched plan can
/// recompute exactly the contributions its dirty set invalidated.
pub fn node_op_counts(tree: &Octree, lists: &InteractionLists, id: NodeId) -> OpCounts {
    let mut c = OpCounts::default();
    let n = tree.node(id);
    if n.count() == 0 {
        return c;
    }
    c.active_nodes = 1;
    if n.is_leaf() {
        c.p2m_bodies = n.count() as u64;
        c.l2p_bodies = n.count() as u64;
        c.p2p_interactions = lists.leaf_pairs(tree, id);
    } else {
        // One M2M per non-empty child, one L2L per non-empty child.
        for ch in tree.visible_children(id) {
            if tree.node(ch).count() > 0 {
                c.m2m_ops += 1;
                c.l2l_ops += 1;
            }
        }
    }
    c.m2l_ops = lists.m2l[id as usize].len() as u64;
    c
}

/// Count every FMM operation the given tree + lists will perform.
pub fn count_ops(tree: &Octree, lists: &InteractionLists) -> OpCounts {
    let mut c = OpCounts::default();
    for id in tree.visible_nodes() {
        c += node_op_counts(tree, lists, id);
    }
    c
}

/// The paper's `Interactions(t)` per target leaf: `p_t · Σ_{u ∈ U(t)} p_u`,
/// the quantity the multi-GPU partitioner balances. Returned as
/// `(leaf_id, interactions)` in traversal order.
pub fn leaf_interactions(tree: &Octree, lists: &InteractionLists) -> Vec<(NodeId, u64)> {
    tree.active_leaves()
        .into_iter()
        .map(|id| {
            let nt = tree.node(id).count() as u64;
            let srcs: u64 = lists.p2p[id as usize]
                .iter()
                .map(|&b| tree.node(b).count() as u64)
                .sum();
            (id, nt * srcs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_adaptive, BuildParams};
    use crate::traversal::{dual_traversal, Mac};
    use geom::Vec3;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_points(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Vec3::new(
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                )
            })
            .collect()
    }

    #[test]
    fn body_counts_conserved() {
        let pos = random_points(1200, 31);
        let tree = build_adaptive(&pos, BuildParams::with_s(24));
        let lists = dual_traversal(&tree, Mac::default());
        let c = count_ops(&tree, &lists);
        assert_eq!(c.p2m_bodies, 1200);
        assert_eq!(c.l2p_bodies, 1200);
        assert_eq!(c.m2m_ops, c.l2l_ops);
    }

    #[test]
    fn p2p_interactions_match_brute_count() {
        let pos = random_points(100, 32);
        let tree = build_adaptive(&pos, BuildParams::with_s(8));
        let lists = dual_traversal(&tree, Mac::default());
        let c = count_ops(&tree, &lists);
        // Re-count directly from the lists.
        let mut brute = 0u64;
        for a in tree.active_leaves() {
            let na = tree.node(a).count() as u64;
            for &b in &lists.p2p[a as usize] {
                let nb = tree.node(b).count() as u64;
                brute += if a == b { na * (na - 1) } else { na * nb };
            }
        }
        assert_eq!(c.p2p_interactions, brute);
        assert!(c.p2p_interactions > 0);
    }

    #[test]
    fn bigger_s_means_more_p2p_less_m2l() {
        let pos = random_points(4000, 33);
        let coarse = build_adaptive(&pos, BuildParams::with_s(256));
        let fine = build_adaptive(&pos, BuildParams::with_s(16));
        let lc = dual_traversal(&coarse, Mac::default());
        let lf = dual_traversal(&fine, Mac::default());
        let cc = count_ops(&coarse, &lc);
        let cf = count_ops(&fine, &lf);
        // This monotone tradeoff is the paper's central load-balance lever
        // (its Fig 3).
        assert!(cc.p2p_interactions > cf.p2p_interactions);
        assert!(cc.m2l_ops < cf.m2l_ops);
    }

    #[test]
    fn leaf_interactions_sum_to_total() {
        let pos = random_points(600, 34);
        let tree = build_adaptive(&pos, BuildParams::with_s(16));
        let lists = dual_traversal(&tree, Mac::default());
        let per_leaf = leaf_interactions(&tree, &lists);
        let c = count_ops(&tree, &lists);
        let sum: u64 = per_leaf.iter().map(|&(_, v)| v).sum();
        // per-leaf counts include self pairs as p_t * p_t (paper's formula
        // counts p_u for u = t too); count_ops excludes the diagonal.
        let diag: u64 = tree
            .active_leaves()
            .iter()
            .map(|&id| tree.node(id).count() as u64)
            .sum();
        assert_eq!(sum, c.p2p_interactions + diag);
    }

    #[test]
    fn tree_stats_reasonable() {
        let pos = random_points(3000, 35);
        let tree = build_adaptive(&pos, BuildParams::with_s(32));
        let st = TreeStats::gather(&tree);
        assert!(st.visible_leaves > 8);
        assert!(st.nonempty_leaves <= st.visible_leaves);
        assert!(st.max_leaf <= 32);
        assert!(st.mean_leaf > 0.0);
        assert!(st.depth >= 2);
        assert!(st.min_leaf_level <= st.depth);
    }
}
