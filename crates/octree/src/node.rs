use geom::Vec3;

/// Index of a node in the tree arena.
pub type NodeId = u32;

/// Sentinel for "no node".
pub const NONE: NodeId = u32::MAX;

/// One octree cell.
///
/// Children are always allocated as **eight consecutive arena slots**
/// starting at `first_child`, in Morton octant order, so child `o` of node
/// `n` is `n.first_child + o`. A node with allocated children can still act
/// as a leaf when `collapsed` is set — the paper's Collapse operation hides
/// the subtree from the FMM without freeing it, so a later PushDown can
/// reclaim it.
#[derive(Clone, Copy, Debug)]
pub struct Node {
    pub center: Vec3,
    pub half_width: f64,
    pub level: u16,
    pub parent: NodeId,
    pub first_child: NodeId,
    /// Start of this subtree's body range in [`Octree::order`].
    pub begin: u32,
    /// One-past-end of the body range.
    pub end: u32,
    /// True when allocated children are hidden from the FMM (Collapse).
    pub collapsed: bool,
}

impl Node {
    /// Number of bodies in this subtree.
    #[inline]
    pub fn count(&self) -> usize {
        (self.end - self.begin) as usize
    }

    /// Body range in tree order.
    #[inline]
    pub fn range(&self) -> std::ops::Range<usize> {
        self.begin as usize..self.end as usize
    }

    /// Does the FMM treat this node as a leaf?
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.first_child == NONE || self.collapsed
    }

    /// Radius of the circumscribed sphere (used by the MAC).
    #[inline]
    pub fn radius(&self) -> f64 {
        self.half_width * 3.0_f64.sqrt()
    }
}

/// Plain-data image of an [`Octree`] for checkpointing: every field needed
/// to reconstruct the tree bit-for-bit, with public fields so a serializer
/// outside this crate can encode it without reflection.
#[derive(Clone, Debug)]
pub struct TreeSnapshot {
    pub nodes: Vec<Node>,
    pub order: Vec<u32>,
    pub codes: Vec<u64>,
    pub s_value: usize,
    pub root_center: Vec3,
    pub root_half_width: f64,
    pub max_level: u16,
}

/// Reusable buffers for [`Octree::rebin`], carried by the tree so the
/// steady-state maintenance step performs zero heap allocations once warm.
/// Pure scratch: contents are meaningless between calls, snapshots exclude
/// it, and [`Octree::check_invariants`] never looks at it.
#[derive(Clone, Debug, Default)]
pub(crate) struct RebinScratch {
    /// `(morton code, body id)` sort buffer.
    pub(crate) pairs: Vec<(u64, u32)>,
    /// DFS stack for the range-rederivation walk.
    pub(crate) stack: Vec<NodeId>,
}

impl RebinScratch {
    pub(crate) fn heap_bytes(&self) -> usize {
        self.pairs.capacity() * std::mem::size_of::<(u64, u32)>()
            + self.stack.capacity() * std::mem::size_of::<NodeId>()
    }
}

/// The adaptive octree: a node arena plus the body permutation that gives
/// every subtree a contiguous range.
#[derive(Clone, Debug)]
pub struct Octree {
    pub(crate) nodes: Vec<Node>,
    /// `order[i]` = original body id at tree-order position `i`.
    pub(crate) order: Vec<u32>,
    /// Morton code of the body at tree-order position `i` (kept for
    /// re-binning and partitioning).
    pub(crate) codes: Vec<u64>,
    /// Leaf-capacity parameter S the tree was last built/enforced with.
    pub(crate) s_value: usize,
    /// Root cube fixed at build time; re-binning clamps to it.
    pub(crate) root_center: Vec3,
    pub(crate) root_half_width: f64,
    /// Deepest level subdivision may reach (≤ 21, the Morton limit).
    pub(crate) max_level: u16,
    /// Warm rebin buffers; excluded from snapshots.
    pub(crate) scratch: RebinScratch,
}

impl Octree {
    pub const ROOT: NodeId = 0;

    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id as usize]
    }

    /// Total allocated nodes, including hidden ones.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    pub fn num_bodies(&self) -> usize {
        self.order.len()
    }

    /// The S the tree currently enforces.
    #[inline]
    pub fn s_value(&self) -> usize {
        self.s_value
    }

    pub fn set_s_value(&mut self, s: usize) {
        assert!(s >= 1);
        self.s_value = s;
    }

    #[inline]
    pub fn root_center(&self) -> Vec3 {
        self.root_center
    }

    #[inline]
    pub fn root_half_width(&self) -> f64 {
        self.root_half_width
    }

    /// Tree-order body permutation: position `i` holds original body id.
    #[inline]
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Child `octant` of `id`, or `None` when the node has no allocated
    /// children. Hidden (collapsed-away) children are still returned; use
    /// [`Octree::visible_children`] for FMM traversals.
    #[inline]
    pub fn child(&self, id: NodeId, octant: usize) -> Option<NodeId> {
        let fc = self.nodes[id as usize].first_child;
        if fc == NONE {
            None
        } else {
            Some(fc + octant as NodeId)
        }
    }

    /// The eight children of `id` as seen by the FMM (empty iterator for
    /// leaves and collapsed nodes).
    pub fn visible_children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let n = &self.nodes[id as usize];
        let fc = if n.is_leaf() { NONE } else { n.first_child };
        (0..8u32).filter_map(move |o| if fc == NONE { None } else { Some(fc + o) })
    }

    /// All node ids visible to the FMM (reachable without entering collapsed
    /// subtrees), in DFS pre-order.
    pub fn visible_nodes(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![Self::ROOT];
        while let Some(id) = stack.pop() {
            out.push(id);
            let n = self.node(id);
            if !n.is_leaf() {
                for o in (0..8).rev() {
                    stack.push(n.first_child + o);
                }
            }
        }
        out
    }

    /// Visible leaves (FMM leaves), DFS pre-order.
    pub fn visible_leaves(&self) -> Vec<NodeId> {
        self.visible_nodes()
            .into_iter()
            .filter(|&id| self.node(id).is_leaf())
            .collect()
    }

    /// Visible non-empty leaves.
    pub fn active_leaves(&self) -> Vec<NodeId> {
        self.visible_leaves()
            .into_iter()
            .filter(|&id| self.node(id).count() > 0)
            .collect()
    }

    /// Maximum level among visible nodes (root = 0).
    pub fn depth(&self) -> usize {
        self.visible_nodes()
            .into_iter()
            .map(|id| self.node(id).level as usize)
            .max()
            .unwrap_or(0)
    }

    /// Group visible node ids by level, index = level. Used by
    /// level-synchronous executors.
    pub fn levels(&self) -> Vec<Vec<NodeId>> {
        let mut lv: Vec<Vec<NodeId>> = Vec::new();
        for id in self.visible_nodes() {
            let l = self.node(id).level as usize;
            if lv.len() <= l {
                lv.resize_with(l + 1, Vec::new);
            }
            lv[l].push(id);
        }
        lv
    }

    /// Center of the child cell `octant` of node `id`.
    pub(crate) fn child_center(&self, id: NodeId, octant: usize) -> Vec3 {
        let n = &self.nodes[id as usize];
        let q = n.half_width * 0.5;
        Vec3::new(
            n.center.x + if octant & 1 != 0 { q } else { -q },
            n.center.y + if octant & 2 != 0 { q } else { -q },
            n.center.z + if octant & 4 != 0 { q } else { -q },
        )
    }

    /// Structural heap footprint of the tree: the node arena, the body
    /// permutation and Morton codes (at *capacity*, not length — reserved
    /// headroom is real memory), plus the warm rebin scratch. Available
    /// with or without the `memprof` feature; the allocator-measured and
    /// structural figures are cross-checked by the agreement test in the
    /// root test suite.
    pub fn heap_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.order.capacity() * std::mem::size_of::<u32>()
            + self.codes.capacity() * std::mem::size_of::<u64>()
            + self.scratch.heap_bytes()
    }

    /// Capture the complete tree state for checkpointing. The snapshot is an
    /// exact image: [`Octree::from_snapshot`] reconstructs a tree whose every
    /// field — including the Morton codes that drive re-binning — is
    /// bit-identical to the original.
    pub fn snapshot(&self) -> TreeSnapshot {
        TreeSnapshot {
            nodes: self.nodes.clone(),
            order: self.order.clone(),
            codes: self.codes.clone(),
            s_value: self.s_value,
            root_center: self.root_center,
            root_half_width: self.root_half_width,
            max_level: self.max_level,
        }
    }

    /// Reconstruct a tree from a snapshot, validating structural invariants
    /// so a corrupted or tampered checkpoint is rejected instead of producing
    /// an inconsistent tree.
    pub fn from_snapshot(snap: TreeSnapshot) -> Result<Octree, String> {
        if snap.codes.len() != snap.order.len() {
            return Err(format!(
                "snapshot codes/order length mismatch: {} vs {}",
                snap.codes.len(),
                snap.order.len()
            ));
        }
        if snap.s_value == 0 {
            return Err("snapshot S value must be >= 1".into());
        }
        let tree = Octree {
            nodes: snap.nodes,
            order: snap.order,
            codes: snap.codes,
            s_value: snap.s_value,
            root_center: snap.root_center,
            root_half_width: snap.root_half_width,
            max_level: snap.max_level,
            // Scratch is not state: a restored tree re-warms on first rebin.
            scratch: RebinScratch::default(),
        };
        tree.check_invariants()?;
        Ok(tree)
    }

    /// Debug-check structural invariants; used by tests and property tests.
    /// Returns an error description instead of panicking so proptest can
    /// shrink on it.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("no root".into());
        }
        let root = self.node(Self::ROOT);
        if root.count() != self.order.len() {
            return Err(format!(
                "root covers {} of {} bodies",
                root.count(),
                self.order.len()
            ));
        }
        // order must be a permutation.
        let mut seen = vec![false; self.order.len()];
        for &b in &self.order {
            let b = b as usize;
            if b >= seen.len() || seen[b] {
                return Err(format!("order is not a permutation (body {b})"));
            }
            seen[b] = true;
        }
        // Visible children of each visible parent tile its range exactly,
        // and levels/geometry nest.
        for id in self.visible_nodes() {
            let n = self.node(id);
            if n.is_leaf() {
                continue;
            }
            let mut pos = n.begin;
            for o in 0..8 {
                let c = self.node(n.first_child + o);
                if c.parent != id {
                    return Err(format!("child {} has wrong parent", n.first_child + o));
                }
                if c.level != n.level + 1 {
                    return Err(format!("child level mismatch at {}", n.first_child + o));
                }
                if c.begin != pos {
                    return Err(format!(
                        "child ranges do not tile parent at node {id} octant {o}: {} != {}",
                        c.begin, pos
                    ));
                }
                pos = c.end;
                let expect = self.child_center(id, o as usize);
                if (c.center - expect).norm() > 1e-9 * n.half_width {
                    return Err(format!("child center mismatch at {}", n.first_child + o));
                }
            }
            if pos != n.end {
                return Err(format!("children do not cover parent range at node {id}"));
            }
        }
        Ok(())
    }
}
