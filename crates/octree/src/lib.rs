//! Adaptive variable-depth octree for the AFMM (Cheng–Greengard–Rokhlin
//! style spatial decomposition).
//!
//! Key design points, mirroring the paper:
//!
//! * A node is subdivided while it holds more than `S` bodies; leaves may
//!   occur at any level, so the tree has varying depth.
//! * Construction permutes a body-index array so that **every subtree owns a
//!   contiguous range** of the tree ordering (Morton order). This makes the
//!   paper's [`Octree::collapse`] literally "just set a flag" — the eight
//!   children are hidden from the FMM and the parent's range already covers
//!   their bodies — and makes [`Octree::push_down`] a single in-range
//!   partition that can reclaim previously hidden children from the node
//!   buffer before allocating.
//! * [`Octree::enforce_s`] restores the S invariant after bodies move
//!   (collapse under-full parents, push down over-full leaves).
//! * [`Octree::rebin`] re-sorts moved bodies into the *unchanged* tree
//!   structure — exactly what the paper's strategy 1/2 need between rebuilds.
//! * [`dual_traversal`] produces the M2L and P2P interaction lists with a
//!   multipole acceptance criterion, using only the paper's six operations.

mod build;
mod modify;
mod node;
mod plan;
mod stats;
mod traversal;

pub use build::{build_adaptive, build_adaptive_in_cube, build_uniform, BuildParams};
pub use modify::EnforceOutcome;
pub use node::{Node, NodeId, Octree, TreeSnapshot, NONE};
pub use plan::{IncrementalLists, ListsSnapshot, PlanRefresh};
pub use stats::{count_ops, leaf_interactions, node_op_counts, OpCounts, TreeStats};
pub use traversal::{dual_traversal, InteractionLists, Mac};
