use crate::node::{NodeId, Octree, NONE};

/// Outcome counters of an [`Octree::enforce_s`] pass, used by the load
/// balancer to account tree-maintenance cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EnforceOutcome {
    pub collapses: usize,
    pub pushdowns: usize,
}

impl Octree {
    /// The paper's **Collapse** operation: hide the children of `id` so the
    /// FMM treats it as a leaf. The subtree is retained ("the children are
    /// just hidden... a flag is simply set") so a later [`Octree::push_down`]
    /// can reclaim it without allocation.
    ///
    /// Returns false (no-op) when `id` is already a leaf.
    pub fn collapse(&mut self, id: NodeId) -> bool {
        let n = &mut self.nodes[id as usize];
        if n.first_child == NONE || n.collapsed {
            return false;
        }
        n.collapsed = true;
        true
    }

    /// The paper's **PushDown** operation: subdivide leaf `id` into eight
    /// children. Hidden children are reclaimed (and re-partitioned, since
    /// their ranges may be stale after body motion); otherwise eight nodes
    /// are drawn from the arena buffer.
    ///
    /// Returns false when `id` is not a leaf or sits at the maximum level.
    pub fn push_down(&mut self, id: NodeId) -> bool {
        let n = self.nodes[id as usize];
        if !n.is_leaf() || n.level >= self.max_level() {
            return false;
        }
        if n.first_child != NONE {
            // Reclaim hidden children.
            self.nodes[id as usize].collapsed = false;
            self.repartition_children(id);
            // The reclaimed children must present as leaves: any deeper
            // structure they carry stays hidden until pushed down again.
            for o in 0..8 {
                let c = (n.first_child + o) as usize;
                if self.nodes[c].first_child != NONE {
                    self.nodes[c].collapsed = true;
                }
            }
        } else {
            self.alloc_children_of(id);
        }
        true
    }

    /// The paper's **Enforce_S**: walk the visible tree enforcing the
    /// current S — collapse parents holding fewer than S bodies, push down
    /// leaves holding more than S (recursively, since a pushed-down child
    /// can still be over-full).
    pub fn enforce_s(&mut self) -> EnforceOutcome {
        let s = self.s_value;
        let mut out = EnforceOutcome::default();
        let mut stack = vec![Self::ROOT];
        while let Some(id) = stack.pop() {
            let n = self.nodes[id as usize];
            if !n.is_leaf() {
                if n.count() < s {
                    self.collapse(id);
                    out.collapses += 1;
                } else {
                    for o in 0..8 {
                        stack.push(n.first_child + o);
                    }
                }
            } else if n.count() > s && self.push_down(id) {
                out.pushdowns += 1;
                let first = self.nodes[id as usize].first_child;
                for o in 0..8 {
                    stack.push(first + o);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::build::{build_adaptive, BuildParams};
    use crate::node::Octree;
    use geom::Vec3;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_points(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Vec3::new(
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                )
            })
            .collect()
    }

    fn leaf_count_total(t: &Octree) -> usize {
        t.visible_leaves().iter().map(|&l| t.node(l).count()).sum()
    }

    #[test]
    fn collapse_is_a_flag_and_preserves_coverage() {
        let pos = random_points(1000, 11);
        let mut t = build_adaptive(&pos, BuildParams::with_s(16));
        let internal = t
            .visible_nodes()
            .into_iter()
            .find(|&id| !t.node(id).is_leaf() && id != Octree::ROOT)
            .unwrap();
        let nodes_before = t.num_nodes();
        assert!(t.collapse(internal));
        assert_eq!(t.num_nodes(), nodes_before, "collapse must not free nodes");
        assert!(t.node(internal).is_leaf());
        assert_eq!(leaf_count_total(&t), pos.len());
        t.check_invariants().unwrap();
        // Collapsing a leaf is a no-op.
        assert!(!t.collapse(internal));
    }

    #[test]
    fn pushdown_inverts_collapse_without_allocation() {
        let pos = random_points(1000, 12);
        let mut t = build_adaptive(&pos, BuildParams::with_s(16));
        let internal = t
            .visible_nodes()
            .into_iter()
            .find(|&id| !t.node(id).is_leaf() && id != Octree::ROOT)
            .unwrap();
        let visible_before: Vec<_> = t.visible_nodes();
        t.collapse(internal);
        let nodes_before = t.num_nodes();
        assert!(t.push_down(internal));
        assert_eq!(t.num_nodes(), nodes_before, "reclaim must not allocate");
        t.check_invariants().unwrap();
        // Structure is restored if the hidden children were themselves
        // leaves; at minimum the previously visible set is a superset.
        let visible_after: Vec<_> = t.visible_nodes();
        for id in &visible_before {
            assert!(
                visible_after.contains(id) || {
                    // deeper nodes may have been re-hidden
                    t.node(*id).level > t.node(internal).level + 1
                }
            );
        }
    }

    #[test]
    fn pushdown_fresh_leaf_allocates_eight() {
        let pos = random_points(64, 13);
        let mut t = build_adaptive(&pos, BuildParams::with_s(64));
        // Root is the only leaf.
        assert_eq!(t.visible_leaves(), vec![Octree::ROOT]);
        let before = t.num_nodes();
        assert!(t.push_down(Octree::ROOT));
        assert_eq!(t.num_nodes(), before + 8);
        t.check_invariants().unwrap();
        assert_eq!(leaf_count_total(&t), 64);
    }

    #[test]
    fn enforce_s_restores_invariant_after_motion() {
        let mut pos = random_points(3000, 14);
        let mut t = build_adaptive(&pos, BuildParams::with_s(32));
        // Crush everything into one corner: leaves there overflow.
        for p in &mut pos {
            *p = Vec3::new(
                -0.9 + (p.x + 1.0) * 0.02,
                -0.9 + (p.y + 1.0) * 0.02,
                -0.9 + (p.z + 1.0) * 0.02,
            );
        }
        t.rebin(&pos);
        let over_before = t
            .visible_leaves()
            .iter()
            .filter(|&&l| t.node(l).count() > 32)
            .count();
        assert!(over_before > 0, "motion should overflow some leaves");
        let out = t.enforce_s();
        assert!(out.pushdowns > 0);
        assert!(out.collapses > 0, "emptied regions should collapse");
        t.check_invariants().unwrap();
        for id in t.visible_leaves() {
            assert!(
                t.node(id).count() <= 32,
                "leaf still over capacity after enforce_s"
            );
        }
        assert_eq!(leaf_count_total(&t), pos.len());
    }

    #[test]
    fn enforce_s_after_s_change() {
        let pos = random_points(2000, 15);
        let mut t = build_adaptive(&pos, BuildParams::with_s(16));
        // Raise S: many parents now hold < S bodies and should collapse.
        t.set_s_value(128);
        let out = t.enforce_s();
        assert!(out.collapses > 0);
        for id in t.visible_leaves() {
            assert!(t.node(id).count() <= 128);
        }
        // Lower S: leaves overflow and should push down.
        t.set_s_value(8);
        let out2 = t.enforce_s();
        assert!(out2.pushdowns > 0);
        for id in t.visible_leaves() {
            assert!(t.node(id).count() <= 8);
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn enforce_s_idempotent() {
        let pos = random_points(1500, 16);
        let mut t = build_adaptive(&pos, BuildParams::with_s(24));
        t.enforce_s();
        let second = t.enforce_s();
        assert_eq!(
            second.collapses + second.pushdowns,
            0,
            "second pass must be a no-op"
        );
    }

    #[test]
    fn pushdown_refuses_at_max_level() {
        let pos = vec![Vec3::splat(0.1); 50];
        let mut t = build_adaptive(
            &pos,
            BuildParams {
                s: 4,
                max_level: 2,
                pad: 1e-6,
            },
        );
        let deep = t
            .visible_leaves()
            .into_iter()
            .find(|&l| t.node(l).level == 2 && t.node(l).count() > 0)
            .unwrap();
        assert!(!t.push_down(deep));
    }
}
