use crate::node::{NodeId, Octree};

/// Multipole acceptance criterion: cells `A`, `B` are *well separated* when
/// `r_A + r_B < theta * d(c_A, c_B)` with `r` the circumscribed-sphere
/// radius. Smaller `theta` is stricter (more P2P, higher accuracy).
#[derive(Clone, Copy, Debug)]
pub struct Mac {
    pub theta: f64,
}

impl Mac {
    pub fn new(theta: f64) -> Self {
        assert!(theta > 0.0 && theta <= 1.0, "theta must be in (0, 1]");
        Mac { theta }
    }

    #[inline]
    pub fn accepts(&self, tree: &Octree, a: NodeId, b: NodeId) -> bool {
        let na = tree.node(a);
        let nb = tree.node(b);
        let d2 = na.center.dist_sq(nb.center);
        let r = na.radius() + nb.radius();
        r * r < self.theta * self.theta * d2
    }
}

impl Default for Mac {
    fn default() -> Self {
        Mac { theta: 0.6 }
    }
}

/// Interaction lists produced by [`dual_traversal`].
///
/// `m2l[a]` holds source node ids whose multipole expansion translates into
/// `a`'s local expansion; `p2p[a]` (leaves only) holds source *leaf* ids for
/// direct interaction — including `a` itself for the intra-leaf pairs.
#[derive(Clone, Debug, Default)]
pub struct InteractionLists {
    pub m2l: Vec<Vec<NodeId>>,
    pub p2p: Vec<Vec<NodeId>>,
}

impl InteractionLists {
    pub fn num_m2l(&self) -> usize {
        self.m2l.iter().map(Vec::len).sum()
    }

    /// Structural heap footprint: outer spines plus every per-node list's
    /// capacity (not length — swap_remove churn leaves real headroom).
    pub fn heap_bytes(&self) -> usize {
        nested_vec_bytes(&self.m2l) + nested_vec_bytes(&self.p2p)
    }

    pub fn num_p2p_pairs(&self) -> usize {
        self.p2p.iter().map(Vec::len).sum()
    }

    /// Direct body-body interactions of leaf `id` per its P2P list, diagonal
    /// excluded (matching `OpCounts::p2p_interactions`). This is the one
    /// canonical P2P pair count — op counting, task-graph costing and plan
    /// maintenance all read it from here.
    pub fn leaf_pairs(&self, tree: &Octree, id: NodeId) -> u64 {
        let nt = tree.node(id).count() as u64;
        self.p2p[id as usize]
            .iter()
            .map(|&b| {
                if b == id {
                    nt * nt.saturating_sub(1)
                } else {
                    nt * tree.node(b).count() as u64
                }
            })
            .sum()
    }
}

/// Heap bytes of a vec-of-vecs: each inner vector's reserved capacity plus
/// the outer spine at length granularity (the spines here are built once
/// at exactly the node count, so length ≈ capacity).
pub(crate) fn nested_vec_bytes(v: &[Vec<NodeId>]) -> usize {
    v.iter()
        .map(|l| l.capacity() * std::mem::size_of::<NodeId>())
        .sum::<usize>()
        + std::mem::size_of_val(v)
}

/// Dual-tree traversal (exaFMM style) over the *visible* tree: starting from
/// `(root, root)`, a well-separated pair becomes an M2L entry, a pair of
/// non-separated leaves becomes a P2P entry, and otherwise the larger cell
/// splits. This handles leaves at arbitrary levels — the defining difficulty
/// of the adaptive FMM — while emitting only the paper's six operations.
///
/// Empty cells are skipped entirely.
pub fn dual_traversal(tree: &Octree, mac: Mac) -> InteractionLists {
    let n = tree.num_nodes();
    let mut lists = InteractionLists {
        m2l: vec![Vec::new(); n],
        p2p: vec![Vec::new(); n],
    };
    if tree.node(Octree::ROOT).count() == 0 {
        return lists;
    }
    let mut stack: Vec<(NodeId, NodeId)> = vec![(Octree::ROOT, Octree::ROOT)];
    while let Some((a, b)) = stack.pop() {
        let na = tree.node(a);
        let nb = tree.node(b);
        if na.count() == 0 || nb.count() == 0 {
            continue;
        }
        if a != b && mac.accepts(tree, a, b) {
            lists.m2l[a as usize].push(b);
            continue;
        }
        let a_leaf = na.is_leaf();
        let b_leaf = nb.is_leaf();
        if a_leaf && b_leaf {
            lists.p2p[a as usize].push(b);
            continue;
        }
        // Split the larger cell (tie: split the target side first so local
        // work sinks toward the leaves).
        let split_a = !a_leaf && (b_leaf || na.half_width >= nb.half_width);
        if split_a {
            for c in tree.visible_children(a) {
                stack.push((c, b));
            }
        } else {
            for c in tree.visible_children(b) {
                stack.push((a, c));
            }
        }
    }
    lists
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_adaptive, BuildParams};
    use geom::Vec3;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_points(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Vec3::new(
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                )
            })
            .collect()
    }

    /// Every ordered body pair (i, j), i != j, must be covered exactly once:
    /// either by a P2P leaf pair or by an M2L pair over ancestors. This is
    /// the fundamental correctness property of the FMM interaction
    /// decomposition.
    fn assert_exact_coverage(tree: &Octree, lists: &InteractionLists, n_bodies: usize) {
        let mut cover = vec![0u8; n_bodies * n_bodies];
        let ranges: Vec<_> = (0..tree.num_nodes() as NodeId)
            .map(|id| tree.node(id).range())
            .collect();
        let mark = |cover: &mut Vec<u8>,
                    ta: std::ops::Range<usize>,
                    tb: std::ops::Range<usize>,
                    selfi: bool| {
            for i in ta {
                let bi = tree.order()[i] as usize;
                for j in tb.clone() {
                    let bj = tree.order()[j] as usize;
                    if selfi && bi == bj {
                        continue;
                    }
                    cover[bi * n_bodies + bj] += 1;
                }
            }
        };
        for a in 0..tree.num_nodes() {
            for &b in &lists.m2l[a] {
                mark(
                    &mut cover,
                    ranges[a].clone(),
                    ranges[b as usize].clone(),
                    false,
                );
            }
            for &b in &lists.p2p[a] {
                mark(
                    &mut cover,
                    ranges[a].clone(),
                    ranges[b as usize].clone(),
                    a as NodeId == b,
                );
            }
        }
        for i in 0..n_bodies {
            for j in 0..n_bodies {
                let expect = u8::from(i != j);
                assert_eq!(
                    cover[i * n_bodies + j],
                    expect,
                    "pair ({i},{j}) covered {} times",
                    cover[i * n_bodies + j]
                );
            }
        }
    }

    #[test]
    fn traversal_covers_every_pair_exactly_once() {
        let pos = random_points(120, 21);
        let tree = build_adaptive(&pos, BuildParams::with_s(8));
        let lists = dual_traversal(&tree, Mac::default());
        assert_exact_coverage(&tree, &lists, pos.len());
    }

    #[test]
    fn traversal_covers_pairs_after_collapse() {
        let pos = random_points(150, 22);
        let mut tree = build_adaptive(&pos, BuildParams::with_s(6));
        // Collapse a couple of internal nodes, then lists must still cover.
        let internals: Vec<_> = tree
            .visible_nodes()
            .into_iter()
            .filter(|&id| !tree.node(id).is_leaf() && id != Octree::ROOT)
            .take(3)
            .collect();
        for id in internals {
            tree.collapse(id);
        }
        let lists = dual_traversal(&tree, Mac::default());
        assert_exact_coverage(&tree, &lists, pos.len());
    }

    #[test]
    fn stricter_mac_shifts_work_to_p2p() {
        let pos = random_points(2000, 23);
        let tree = build_adaptive(&pos, BuildParams::with_s(16));
        let loose = dual_traversal(&tree, Mac::new(0.9));
        let strict = dual_traversal(&tree, Mac::new(0.3));
        assert!(strict.num_p2p_pairs() > loose.num_p2p_pairs());
    }

    #[test]
    fn m2l_pairs_are_well_separated() {
        let pos = random_points(1000, 24);
        let tree = build_adaptive(&pos, BuildParams::with_s(16));
        let mac = Mac::default();
        let lists = dual_traversal(&tree, mac);
        for a in 0..tree.num_nodes() as NodeId {
            for &b in &lists.m2l[a as usize] {
                assert!(mac.accepts(&tree, a, b), "M2L pair not separated");
            }
        }
    }

    #[test]
    fn p2p_lists_only_on_leaves_and_include_self() {
        let pos = random_points(500, 25);
        let tree = build_adaptive(&pos, BuildParams::with_s(32));
        let lists = dual_traversal(&tree, Mac::default());
        for a in 0..tree.num_nodes() as NodeId {
            if !lists.p2p[a as usize].is_empty() {
                assert!(tree.node(a).is_leaf());
                assert!(tree.node(a).count() > 0);
                assert!(
                    lists.p2p[a as usize].contains(&a),
                    "leaf must interact with itself"
                );
                for &b in &lists.p2p[a as usize] {
                    assert!(tree.node(b).is_leaf());
                }
            }
        }
    }

    #[test]
    fn empty_tree_produces_empty_lists() {
        let tree = build_adaptive(&[], BuildParams::with_s(8));
        let lists = dual_traversal(&tree, Mac::default());
        assert_eq!(lists.num_m2l(), 0);
        assert_eq!(lists.num_p2p_pairs(), 0);
    }

    #[test]
    fn single_leaf_tree_has_only_self_p2p() {
        let pos = random_points(10, 26);
        let tree = build_adaptive(&pos, BuildParams::with_s(64));
        let lists = dual_traversal(&tree, Mac::default());
        assert_eq!(lists.num_m2l(), 0);
        assert_eq!(lists.p2p[0], vec![0]);
    }
}
