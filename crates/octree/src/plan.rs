//! Incrementally-patchable interaction lists: the octree half of the
//! persistent execution plan.
//!
//! [`crate::dual_traversal`] recomputes every M2L/P2P list from scratch, but
//! the paper's Collapse/PushDown are *local* edits: for an edit at node `e`,
//! the only emitted pairs that change are those with at least one endpoint in
//! the visible subtree of `e` (before or after the edit). Every other state
//! the traversal visits makes the same split/accept decision, because those
//! decisions depend only on geometry, populations and leafness of nodes
//! outside the edited subtree — all unchanged.
//!
//! [`IncrementalLists`] exploits this: it keeps the lists of a full traversal
//! together with *inverse* lists (`rev_m2l[b]` = every target whose M2L list
//! contains `b`), so all list entries referencing an edited node are found in
//! O(degree). A patch then
//!
//! 1. removes every entry with an endpoint in the pre-edit visible subtree,
//! 2. applies the tree edit,
//! 3. re-runs the dual traversal *restricted* to states related to the edit
//!    (ancestor-or-subtree on either side; unrelated×unrelated states are
//!    pruned), emitting only pairs with an endpoint in the post-edit subtree,
//! 4. recomputes the per-node [`OpCounts`] contributions of the dirty set —
//!    the edited subtree plus every target whose list was touched.
//!
//! Per-node contributions are cached so totals update by subtraction and
//! re-addition of only the dirty nodes.

use crate::node::{NodeId, Octree, NONE};
use crate::stats::{node_op_counts, OpCounts};
use crate::traversal::{dual_traversal, InteractionLists, Mac};

/// How [`IncrementalLists::refresh_counts`] serviced a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanRefresh {
    /// No population changed; nothing to do.
    Clean,
    /// Only the dirty per-node contributions were recomputed in place.
    Patched { dirty: usize },
    /// A visible cell flipped between empty and non-empty (or the arena
    /// grew), which changes the traversal itself — the plan re-traversed.
    Rebuilt,
}

/// Plain-data image of an [`IncrementalLists`] for checkpointing. The list
/// *order* is part of the state: downstream float summation follows list
/// iteration order, so a restored plan must replay entries verbatim — never
/// re-derive them from a fresh traversal — for bit-identical continuation.
#[derive(Clone, Debug)]
pub struct ListsSnapshot {
    pub theta: f64,
    pub m2l: Vec<Vec<NodeId>>,
    pub p2p: Vec<Vec<NodeId>>,
    pub rev_m2l: Vec<Vec<NodeId>>,
    pub rev_p2p: Vec<Vec<NodeId>>,
    pub node_counts: Vec<OpCounts>,
    pub totals: OpCounts,
    pub body_count: Vec<u32>,
    pub stamp: Vec<u32>,
    pub epoch: u32,
}

/// Relatedness of a traversal-state endpoint to the edited node: outside its
/// story entirely, a (strict or non-strict) ancestor, or inside the post-edit
/// visible subtree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Rel {
    Out,
    Anc,
    Sub,
}

/// Interaction lists + per-node op counts that are patched through
/// [`Octree::collapse`] / [`Octree::push_down`] edits instead of recomputed.
#[derive(Clone, Debug)]
pub struct IncrementalLists {
    mac: Mac,
    lists: InteractionLists,
    /// `rev_m2l[b]` = every target `a` with `b ∈ lists.m2l[a]` (multiset,
    /// unordered). The O(degree) handle on "who references this node?".
    rev_m2l: Vec<Vec<NodeId>>,
    /// Likewise for P2P source lists.
    rev_p2p: Vec<Vec<NodeId>>,
    /// Cached contribution of each node to `totals` (zero when invisible).
    node_counts: Vec<OpCounts>,
    totals: OpCounts,
    /// Population snapshot at the last build/patch/refresh — the
    /// emptiness-flip detector for [`IncrementalLists::refresh_counts`].
    body_count: Vec<u32>,
    /// Epoch-stamped scratch marks (ancestor path, dirty dedup, visibility)
    /// so per-patch set membership needs no O(n) clear.
    stamp: Vec<u32>,
    epoch: u32,
    /// Warm DFS stack for [`IncrementalLists::refresh_counts`]'s visibility
    /// walk; pure scratch, excluded from snapshots and audits.
    walk: Vec<NodeId>,
    /// Warm dirty-node buffer for the same path; pure scratch.
    dirty_scratch: Vec<NodeId>,
    /// Telemetry handle; `Recorder::disabled()` (the default) is free.
    rec: telemetry::Recorder,
}

fn remove_one(v: &mut Vec<NodeId>, x: NodeId) {
    if let Some(pos) = v.iter().position(|&e| e == x) {
        v.swap_remove(pos);
    }
}

/// The post-/pre-edit visible subtree rooted at `id`, including `id`.
fn visible_subtree(tree: &Octree, id: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut stack = vec![id];
    while let Some(n) = stack.pop() {
        out.push(n);
        for c in tree.visible_children(n) {
            stack.push(c);
        }
    }
    out
}

/// Is `id` reachable without entering a collapsed subtree?
fn is_visible(tree: &Octree, id: NodeId) -> bool {
    let mut p = tree.node(id).parent;
    while p != NONE {
        let n = tree.node(p);
        if n.collapsed {
            return false;
        }
        p = n.parent;
    }
    true
}

impl IncrementalLists {
    /// Full build: one dual traversal plus inverse lists and per-node counts.
    pub fn build(tree: &Octree, mac: Mac) -> Self {
        let mut plan = IncrementalLists {
            mac,
            lists: InteractionLists::default(),
            rev_m2l: Vec::new(),
            rev_p2p: Vec::new(),
            node_counts: Vec::new(),
            totals: OpCounts::default(),
            body_count: Vec::new(),
            stamp: Vec::new(),
            epoch: 0,
            walk: Vec::new(),
            dirty_scratch: Vec::new(),
            rec: telemetry::Recorder::disabled(),
        };
        plan.rebuild(tree);
        plan
    }

    /// Attach a telemetry recorder; plan rebuild/patch/refresh activity is
    /// reported through its `plan.*` counters and histograms.
    pub fn set_recorder(&mut self, rec: telemetry::Recorder) {
        self.rec = rec;
    }

    /// Throw the incremental state away and re-derive everything from a
    /// fresh traversal of `tree`.
    pub fn rebuild(&mut self, tree: &Octree) {
        self.rec.counter_add("plan.rebuild", 1);
        let n = tree.num_nodes();
        self.lists = dual_traversal(tree, self.mac);
        self.rev_m2l = vec![Vec::new(); n];
        self.rev_p2p = vec![Vec::new(); n];
        for a in 0..n {
            for &b in &self.lists.m2l[a] {
                self.rev_m2l[b as usize].push(a as NodeId);
            }
            for &b in &self.lists.p2p[a] {
                self.rev_p2p[b as usize].push(a as NodeId);
            }
        }
        self.node_counts = vec![OpCounts::default(); n];
        self.totals = OpCounts::default();
        for id in tree.visible_nodes() {
            let c = node_op_counts(tree, &self.lists, id);
            self.node_counts[id as usize] = c;
            self.totals += c;
        }
        self.body_count = (0..n)
            .map(|i| tree.node(i as NodeId).count() as u32)
            .collect();
        self.stamp = vec![0; n];
        self.epoch = 0;
    }

    pub fn mac(&self) -> Mac {
        self.mac
    }

    /// Structural heap footprint of the plan: forward and inverse lists at
    /// capacity granularity, the per-node caches, and the warm refresh
    /// scratch. Counterpart of [`Octree::heap_bytes`] for the list half of
    /// the execution plan.
    pub fn heap_bytes(&self) -> usize {
        self.lists.heap_bytes()
            + crate::traversal::nested_vec_bytes(&self.rev_m2l)
            + crate::traversal::nested_vec_bytes(&self.rev_p2p)
            + self.node_counts.capacity() * std::mem::size_of::<OpCounts>()
            + self.body_count.capacity() * std::mem::size_of::<u32>()
            + self.stamp.capacity() * std::mem::size_of::<u32>()
            + self.walk.capacity() * std::mem::size_of::<NodeId>()
            + self.dirty_scratch.capacity() * std::mem::size_of::<NodeId>()
    }

    pub fn lists(&self) -> &InteractionLists {
        &self.lists
    }

    /// Totals over all cached per-node contributions — element-wise equal to
    /// [`crate::count_ops`] on the current tree and lists.
    pub fn counts(&self) -> OpCounts {
        self.totals
    }

    /// Monotone patch/refresh epoch; the supervisor reads it to verify the
    /// plan's clock never runs backwards across steps.
    #[inline]
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Capture the complete plan state — lists in their exact stored order,
    /// inverse lists, cached per-node counts, stamps and epoch — for
    /// checkpointing.
    pub fn snapshot(&self) -> ListsSnapshot {
        ListsSnapshot {
            theta: self.mac.theta,
            m2l: self.lists.m2l.clone(),
            p2p: self.lists.p2p.clone(),
            rev_m2l: self.rev_m2l.clone(),
            rev_p2p: self.rev_p2p.clone(),
            node_counts: self.node_counts.clone(),
            totals: self.totals,
            body_count: self.body_count.clone(),
            stamp: self.stamp.clone(),
            epoch: self.epoch,
        }
    }

    /// Reconstruct a plan from a snapshot verbatim. Validation is the
    /// caller's job (run [`IncrementalLists::audit`] against the restored
    /// tree); this constructor only checks array-shape agreement.
    pub fn from_snapshot(snap: ListsSnapshot) -> Result<IncrementalLists, String> {
        let n = snap.m2l.len();
        if snap.p2p.len() != n
            || snap.rev_m2l.len() != n
            || snap.rev_p2p.len() != n
            || snap.node_counts.len() != n
            || snap.body_count.len() != n
            || snap.stamp.len() != n
        {
            return Err("plan snapshot arrays disagree on node count".into());
        }
        Ok(IncrementalLists {
            mac: Mac::new(snap.theta),
            lists: InteractionLists {
                m2l: snap.m2l,
                p2p: snap.p2p,
            },
            rev_m2l: snap.rev_m2l,
            rev_p2p: snap.rev_p2p,
            node_counts: snap.node_counts,
            totals: snap.totals,
            body_count: snap.body_count,
            stamp: snap.stamp,
            epoch: snap.epoch,
            // Scratch is not state: a restored plan re-warms on first refresh.
            walk: Vec::new(),
            dirty_scratch: Vec::new(),
            rec: telemetry::Recorder::disabled(),
        })
    }

    /// Verify the plan's internal invariants against `tree`. Valid on a
    /// *quiescent* plan — one whose last operation was a build, patch or
    /// [`IncrementalLists::refresh_counts`] — which is how the supervisor
    /// calls it (after a completed step, before trusting cached state).
    ///
    /// Checks, in order: array shapes; stamp/epoch monotonicity (no scratch
    /// mark may postdate the epoch clock); inverse-list symmetry as exact
    /// multiset equality in both directions; per-node [`OpCounts`] agreement
    /// with a recount of every visible node (and zero contributions from
    /// hidden ones); totals equal to the sum of cached contributions; and the
    /// population snapshot matching the tree.
    pub fn audit(&self, tree: &Octree) -> Result<(), String> {
        let n = tree.num_nodes();
        if self.lists.m2l.len() != n
            || self.lists.p2p.len() != n
            || self.rev_m2l.len() != n
            || self.rev_p2p.len() != n
            || self.node_counts.len() != n
            || self.body_count.len() != n
            || self.stamp.len() != n
        {
            return Err(format!(
                "plan arrays sized for {} nodes but tree has {n}",
                self.lists.m2l.len()
            ));
        }
        for (i, &s) in self.stamp.iter().enumerate() {
            if s > self.epoch {
                return Err(format!(
                    "stamp[{i}] = {s} postdates plan epoch {}",
                    self.epoch
                ));
            }
        }
        // Inverse-list symmetry: rebuild the reverse mapping from the forward
        // lists and require multiset equality per node.
        let mut want_rev_m2l: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut want_rev_p2p: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for a in 0..n {
            for &b in &self.lists.m2l[a] {
                if b as usize >= n {
                    return Err(format!("m2l[{a}] references node {b} out of range"));
                }
                want_rev_m2l[b as usize].push(a as NodeId);
            }
            for &b in &self.lists.p2p[a] {
                if b as usize >= n {
                    return Err(format!("p2p[{a}] references node {b} out of range"));
                }
                want_rev_p2p[b as usize].push(a as NodeId);
            }
        }
        for b in 0..n {
            let mut want = want_rev_m2l[b].clone();
            let mut got = self.rev_m2l[b].clone();
            want.sort_unstable();
            got.sort_unstable();
            if want != got {
                return Err(format!("rev_m2l[{b}] is not the mirror of the M2L lists"));
            }
            let mut want = want_rev_p2p[b].clone();
            let mut got = self.rev_p2p[b].clone();
            want.sort_unstable();
            got.sort_unstable();
            if want != got {
                return Err(format!("rev_p2p[{b}] is not the mirror of the P2P lists"));
            }
        }
        // OpCounts consistency: cached contributions must recount, and the
        // totals must be their sum.
        let mut sum = OpCounts::default();
        let mut visible = vec![false; n];
        for id in tree.visible_nodes() {
            visible[id as usize] = true;
            let want = node_op_counts(tree, &self.lists, id);
            if self.node_counts[id as usize] != want {
                return Err(format!(
                    "node_counts[{id}] = {:?} but recount gives {want:?}",
                    self.node_counts[id as usize]
                ));
            }
        }
        for (i, c) in self.node_counts.iter().enumerate() {
            if !visible[i] && *c != OpCounts::default() {
                return Err(format!("hidden node {i} carries nonzero counts"));
            }
            sum += *c;
        }
        if sum != self.totals {
            return Err(format!(
                "totals {:?} differ from per-node sum {sum:?}",
                self.totals
            ));
        }
        for i in 0..n {
            let now = tree.node(i as NodeId).count() as u32;
            if self.body_count[i] != now {
                return Err(format!(
                    "body_count[{i}] = {} but tree holds {now}",
                    self.body_count[i]
                ));
            }
        }
        Ok(())
    }

    /// Chaos-harness corruption hook: silently drop the tail entry of the
    /// first non-empty M2L (or, failing that, P2P) list *without* updating
    /// the inverse lists or counts — exactly the kind of rot
    /// [`IncrementalLists::audit`] must catch. Returns false when there was
    /// nothing to truncate.
    pub fn corrupt_truncate_list(&mut self) -> bool {
        if let Some(l) = self.lists.m2l.iter_mut().find(|l| !l.is_empty()) {
            l.pop();
            return true;
        }
        if let Some(l) = self.lists.p2p.iter_mut().find(|l| !l.is_empty()) {
            l.pop();
            return true;
        }
        false
    }

    /// Chaos-harness corruption hook: wind the epoch clock backwards while
    /// leaving newer scratch stamps in place — a stale-epoch cache whose
    /// dedup marks no longer mean what they claim. Returns false when the
    /// plan has never been stamped (nothing to go stale).
    pub fn corrupt_stale_epoch(&mut self) -> bool {
        if self.stamp.iter().all(|&s| s == 0) {
            return false;
        }
        self.epoch = 0;
        true
    }

    /// Patch the plan through `tree.collapse(id)`. Returns false (tree and
    /// plan untouched) when the collapse is a no-op.
    pub fn apply_collapse(&mut self, tree: &mut Octree, id: NodeId) -> bool {
        let _mem = telemetry::AllocScope::enter("plan.patch");
        if tree.node(id).is_leaf() {
            return false;
        }
        let affected_old = visible_subtree(tree, id);
        let done = tree.collapse(id);
        debug_assert!(done);
        self.patch(tree, id, &affected_old);
        true
    }

    /// Patch the plan through `tree.push_down(id)`. Returns false (tree and
    /// plan untouched) when the push-down is refused.
    pub fn apply_push_down(&mut self, tree: &mut Octree, id: NodeId) -> bool {
        let _mem = telemetry::AllocScope::enter("plan.patch");
        if !tree.push_down(id) {
            return false;
        }
        self.patch(tree, id, &[id]);
        true
    }

    /// Reconcile per-node counts after body motion ([`Octree::rebin`]): the
    /// structure is unchanged, but leaf populations — and with them P2P pair
    /// counts and P2M/L2P body counts — moved. If any *visible* node flipped
    /// between empty and non-empty the traversal shape itself changed (empty
    /// cells are skipped), so the plan falls back to one full re-traversal.
    /// The Clean/Patched paths perform **zero heap allocations** once the
    /// plan's scratch buffers are warm — the steady-state invariant gated by
    /// the `memory_profile` scenario via the `plan.refresh` allocation scope.
    /// Only the Rebuilt fallback (an emptiness flip or arena growth) and the
    /// first, buffer-warming call may touch the allocator.
    pub fn refresh_counts(&mut self, tree: &Octree) -> PlanRefresh {
        let _mem = telemetry::AllocScope::enter("plan.refresh");
        let n = tree.num_nodes();
        if self.body_count.len() != n {
            self.rebuild(tree);
            return PlanRefresh::Rebuilt;
        }
        // Mark the visible set: flips on hidden nodes (stale ranges under a
        // collapsed subtree) are invisible to the traversal and harmless.
        // The DFS runs on the warm `walk` stack instead of materialising
        // `tree.visible_nodes()`; stamping order is irrelevant.
        self.epoch += 1;
        let visible = self.epoch;
        let mut walk = std::mem::take(&mut self.walk);
        walk.clear();
        // Each node enters the stack exactly once, so `n` bounds its depth.
        if walk.capacity() < n {
            walk.reserve(n - walk.len());
        }
        walk.push(Octree::ROOT);
        while let Some(id) = walk.pop() {
            self.stamp[id as usize] = visible;
            let node = tree.node(id);
            if !node.is_leaf() {
                for o in 0..8 {
                    walk.push(node.first_child + o);
                }
            }
        }
        self.walk = walk;
        let mut dirty = std::mem::take(&mut self.dirty_scratch);
        dirty.clear();
        // Which nodes go dirty varies step to step, so growing on demand
        // would allocate mid-steady-state whenever a step out-dirties every
        // step before it. Reserve the hard bound once instead: every node
        // plus every reverse-P2P target it could enqueue.
        let bound = n + self.rev_p2p.iter().map(Vec::len).sum::<usize>();
        if dirty.capacity() < bound {
            dirty.reserve(bound - dirty.len());
        }
        for i in 0..n {
            let now = tree.node(i as NodeId).count() as u32;
            let before = self.body_count[i];
            if now == before {
                continue;
            }
            if self.stamp[i] == visible && (now == 0) != (before == 0) {
                self.dirty_scratch = dirty;
                self.rebuild(tree);
                return PlanRefresh::Rebuilt;
            }
            self.body_count[i] = now;
            if self.stamp[i] == visible {
                dirty.push(i as NodeId);
                // Targets whose P2P pair counts read this node's population.
                dirty.extend_from_slice(&self.rev_p2p[i]);
            }
        }
        if dirty.is_empty() {
            self.dirty_scratch = dirty;
            self.rec.counter_add("plan.refresh.clean", 1);
            return PlanRefresh::Clean;
        }
        let recomputed = self.recount(tree, &dirty);
        self.dirty_scratch = dirty;
        self.rec.counter_add("plan.refresh.patched", 1);
        self.rec
            .hist_record("plan.refresh.dirty", recomputed as f64);
        PlanRefresh::Patched { dirty: recomputed }
    }

    /// Recompute the cached contributions of `dirty` (dedup via stamps) and
    /// fold them into the totals. Returns how many nodes were recomputed.
    fn recount(&mut self, tree: &Octree, dirty: &[NodeId]) -> usize {
        self.epoch += 1;
        let epoch = self.epoch;
        let mut recomputed = 0usize;
        for &d in dirty {
            let di = d as usize;
            if self.stamp[di] == epoch {
                continue;
            }
            self.stamp[di] = epoch;
            recomputed += 1;
            self.totals -= self.node_counts[di];
            let c = if is_visible(tree, d) {
                node_op_counts(tree, &self.lists, d)
            } else {
                OpCounts::default()
            };
            self.node_counts[di] = c;
            self.totals += c;
            self.body_count[di] = tree.node(d).count() as u32;
        }
        recomputed
    }

    /// The shared patch path: `edit` has just been collapsed or pushed down;
    /// `affected_old` is its pre-edit visible subtree.
    fn patch(&mut self, tree: &Octree, edit: NodeId, affected_old: &[NodeId]) {
        let n = tree.num_nodes();
        if self.lists.m2l.len() < n {
            // A push-down drew eight fresh nodes from the arena.
            self.lists.m2l.resize_with(n, Vec::new);
            self.lists.p2p.resize_with(n, Vec::new);
            self.rev_m2l.resize_with(n, Vec::new);
            self.rev_p2p.resize_with(n, Vec::new);
            self.node_counts.resize(n, OpCounts::default());
            self.body_count.resize(n, 0);
            self.stamp.resize(n, 0);
        }
        let mut dirty: Vec<NodeId> = Vec::new();

        // 1. Drop every list entry with an endpoint in the old subtree. The
        //    inverse lists make the source side O(degree); removals tolerate
        //    already-cleared targets (both endpoints in the subtree).
        for &a in affected_old {
            let ai = a as usize;
            let m2l_a = std::mem::take(&mut self.lists.m2l[ai]);
            for &b in &m2l_a {
                remove_one(&mut self.rev_m2l[b as usize], a);
            }
            let p2p_a = std::mem::take(&mut self.lists.p2p[ai]);
            for &b in &p2p_a {
                remove_one(&mut self.rev_p2p[b as usize], a);
            }
            let rm = std::mem::take(&mut self.rev_m2l[ai]);
            for &t in &rm {
                remove_one(&mut self.lists.m2l[t as usize], a);
                dirty.push(t);
            }
            let rp = std::mem::take(&mut self.rev_p2p[ai]);
            for &t in &rp {
                remove_one(&mut self.lists.p2p[t as usize], a);
                dirty.push(t);
            }
            dirty.push(a);
        }

        // 2. Restricted dual traversal: same decisions as a fresh traversal
        //    of the post-edit tree, but states unrelated to the edit on both
        //    sides are pruned, and only pairs with an endpoint in the new
        //    subtree are emitted (everything else is already in the lists).
        self.epoch += 1;
        let anc = self.epoch;
        {
            let mut u = edit;
            loop {
                self.stamp[u as usize] = anc;
                if u == Octree::ROOT {
                    break;
                }
                u = tree.node(u).parent;
            }
        }
        if tree.node(Octree::ROOT).count() > 0 {
            let root_rel = if edit == Octree::ROOT {
                Rel::Sub
            } else {
                Rel::Anc
            };
            let mut stack: Vec<(NodeId, NodeId, Rel, Rel)> =
                vec![(Octree::ROOT, Octree::ROOT, root_rel, root_rel)];
            while let Some((a, b, ra, rb)) = stack.pop() {
                let na = tree.node(a);
                let nb = tree.node(b);
                if na.count() == 0 || nb.count() == 0 {
                    continue;
                }
                if a != b && self.mac.accepts(tree, a, b) {
                    if ra == Rel::Sub || rb == Rel::Sub {
                        self.lists.m2l[a as usize].push(b);
                        self.rev_m2l[b as usize].push(a);
                        dirty.push(a);
                    }
                    continue;
                }
                let a_leaf = na.is_leaf();
                let b_leaf = nb.is_leaf();
                if a_leaf && b_leaf {
                    if ra == Rel::Sub || rb == Rel::Sub {
                        self.lists.p2p[a as usize].push(b);
                        self.rev_p2p[b as usize].push(a);
                        dirty.push(a);
                    }
                    continue;
                }
                let stamp = &self.stamp;
                let child_rel = |parent: Rel, child: NodeId| match parent {
                    Rel::Sub => Rel::Sub,
                    Rel::Out => Rel::Out,
                    Rel::Anc => {
                        if child == edit {
                            Rel::Sub
                        } else if stamp[child as usize] == anc {
                            Rel::Anc
                        } else {
                            Rel::Out
                        }
                    }
                };
                let split_a = !a_leaf && (b_leaf || na.half_width >= nb.half_width);
                if split_a {
                    for c in tree.visible_children(a) {
                        let rc = child_rel(ra, c);
                        if rc == Rel::Out && rb == Rel::Out {
                            continue;
                        }
                        stack.push((c, b, rc, rb));
                    }
                } else {
                    for c in tree.visible_children(b) {
                        let rc = child_rel(rb, c);
                        if ra == Rel::Out && rc == Rel::Out {
                            continue;
                        }
                        stack.push((a, c, ra, rc));
                    }
                }
            }
        }

        // 3. Everything in the new subtree gets a fresh contribution (newly
        //    visible nodes need one, the edited node changed role); hidden
        //    old-subtree nodes drop to zero via the visibility check.
        dirty.extend(visible_subtree(tree, edit));
        self.recount(tree, &dirty);
        self.rec.counter_add("plan.patch.edit", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_adaptive, BuildParams};
    use crate::stats::count_ops;
    use geom::Vec3;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_points(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Vec3::new(
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                    rng.random_range(-1.0..1.0),
                )
            })
            .collect()
    }

    fn normalized(lists: &InteractionLists) -> (Vec<Vec<NodeId>>, Vec<Vec<NodeId>>) {
        let sort = |v: &[Vec<NodeId>]| {
            v.iter()
                .map(|l| {
                    let mut l = l.clone();
                    l.sort_unstable();
                    l
                })
                .collect::<Vec<_>>()
        };
        (sort(&lists.m2l), sort(&lists.p2p))
    }

    /// Patched plan ≡ fresh traversal + fresh counts, order-insensitively.
    fn assert_matches_fresh(tree: &Octree, plan: &IncrementalLists) {
        let fresh = dual_traversal(tree, plan.mac());
        assert_eq!(
            normalized(plan.lists()),
            normalized(&fresh),
            "lists diverged"
        );
        assert_eq!(plan.counts(), count_ops(tree, &fresh), "counts diverged");
        // Inverse lists must mirror the forward lists exactly.
        let mut rev_m2l = vec![Vec::new(); tree.num_nodes()];
        let mut rev_p2p = vec![Vec::new(); tree.num_nodes()];
        for a in 0..tree.num_nodes() {
            for &b in &plan.lists().m2l[a] {
                rev_m2l[b as usize].push(a as NodeId);
            }
            for &b in &plan.lists().p2p[a] {
                rev_p2p[b as usize].push(a as NodeId);
            }
        }
        for b in 0..tree.num_nodes() {
            let mut want = rev_m2l[b].clone();
            let mut got = plan.rev_m2l[b].clone();
            want.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, want, "rev_m2l[{b}] diverged");
            let mut want = rev_p2p[b].clone();
            let mut got = plan.rev_p2p[b].clone();
            want.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, want, "rev_p2p[{b}] diverged");
        }
    }

    #[test]
    fn build_matches_dual_traversal() {
        let pos = random_points(900, 71);
        let tree = build_adaptive(&pos, BuildParams::with_s(16));
        let plan = IncrementalLists::build(&tree, Mac::default());
        assert_matches_fresh(&tree, &plan);
    }

    #[test]
    fn collapse_patch_matches_fresh() {
        let pos = random_points(1200, 72);
        let mut tree = build_adaptive(&pos, BuildParams::with_s(12));
        let mut plan = IncrementalLists::build(&tree, Mac::default());
        let internals: Vec<NodeId> = tree
            .visible_nodes()
            .into_iter()
            .filter(|&id| !tree.node(id).is_leaf() && id != Octree::ROOT)
            .take(6)
            .collect();
        for id in internals {
            assert!(plan.apply_collapse(&mut tree, id));
            assert_matches_fresh(&tree, &plan);
        }
    }

    #[test]
    fn pushdown_patch_matches_fresh() {
        let pos = random_points(1200, 73);
        let mut tree = build_adaptive(&pos, BuildParams::with_s(48));
        let mut plan = IncrementalLists::build(&tree, Mac::default());
        let leaves: Vec<NodeId> = tree
            .active_leaves()
            .into_iter()
            .filter(|&id| tree.node(id).count() > 8)
            .take(6)
            .collect();
        assert!(!leaves.is_empty());
        for id in leaves {
            assert!(plan.apply_push_down(&mut tree, id));
            assert_matches_fresh(&tree, &plan);
        }
    }

    #[test]
    fn collapse_then_reclaiming_pushdown_roundtrips() {
        let pos = random_points(800, 74);
        let mut tree = build_adaptive(&pos, BuildParams::with_s(16));
        let mut plan = IncrementalLists::build(&tree, Mac::default());
        let id = tree
            .visible_nodes()
            .into_iter()
            .find(|&id| !tree.node(id).is_leaf() && id != Octree::ROOT)
            .unwrap();
        assert!(plan.apply_collapse(&mut tree, id));
        assert_matches_fresh(&tree, &plan);
        assert!(plan.apply_push_down(&mut tree, id));
        assert_matches_fresh(&tree, &plan);
    }

    #[test]
    fn collapse_of_root_patches_whole_tree() {
        let pos = random_points(400, 75);
        let mut tree = build_adaptive(&pos, BuildParams::with_s(8));
        let mut plan = IncrementalLists::build(&tree, Mac::default());
        assert!(plan.apply_collapse(&mut tree, Octree::ROOT));
        assert_matches_fresh(&tree, &plan);
        assert_eq!(plan.lists().num_m2l(), 0);
    }

    #[test]
    fn noop_edits_leave_plan_untouched() {
        let pos = random_points(300, 76);
        let mut tree = build_adaptive(&pos, BuildParams::with_s(8));
        let mut plan = IncrementalLists::build(&tree, Mac::default());
        let leaf = tree.active_leaves()[0];
        assert!(
            !plan.apply_collapse(&mut tree, leaf),
            "collapse of a leaf is a no-op"
        );
        let internal = tree
            .visible_nodes()
            .into_iter()
            .find(|&id| !tree.node(id).is_leaf())
            .unwrap();
        assert!(
            !plan.apply_push_down(&mut tree, internal),
            "push_down of an internal no-ops"
        );
        assert_matches_fresh(&tree, &plan);
    }

    #[test]
    fn random_edit_sequence_stays_consistent() {
        let pos = random_points(1500, 77);
        let tree = build_adaptive(&pos, BuildParams::with_s(20));
        for theta in [0.35, 0.8] {
            let mut t = tree.clone();
            let mut plan = IncrementalLists::build(&t, Mac::new(theta));
            let mut rng = StdRng::seed_from_u64(7700 + (theta * 100.0) as u64);
            for _ in 0..25 {
                if rng.random_range(0..2) == 0 {
                    let cands: Vec<NodeId> = t
                        .visible_nodes()
                        .into_iter()
                        .filter(|&id| !t.node(id).is_leaf())
                        .collect();
                    if cands.is_empty() {
                        continue;
                    }
                    let id = cands[rng.random_range(0..cands.len())];
                    plan.apply_collapse(&mut t, id);
                } else {
                    let cands = t.active_leaves();
                    if cands.is_empty() {
                        continue;
                    }
                    let id = cands[rng.random_range(0..cands.len())];
                    plan.apply_push_down(&mut t, id);
                }
            }
            assert_matches_fresh(&t, &plan);
        }
    }

    #[test]
    fn refresh_counts_tracks_motion_without_flips() {
        let pos = random_points(1000, 78);
        let mut tree = build_adaptive(&pos, BuildParams::with_s(24));
        let mut plan = IncrementalLists::build(&tree, Mac::default());
        // Jitter small enough that no cell empties or fills.
        let moved: Vec<Vec3> = pos.iter().map(|p| *p * 0.999).collect();
        tree.rebin(&moved);
        let outcome = plan.refresh_counts(&tree);
        assert_ne!(outcome, PlanRefresh::Rebuilt);
        assert_matches_fresh(&tree, &plan);
    }

    #[test]
    fn refresh_counts_rebuilds_on_emptiness_flip() {
        let pos = random_points(600, 79);
        let mut tree = build_adaptive(&pos, BuildParams::with_s(8));
        let mut plan = IncrementalLists::build(&tree, Mac::default());
        // Crush everything into one corner: many cells empty out.
        let moved: Vec<Vec3> = pos
            .iter()
            .map(|p| Vec3::new(-0.9, -0.9, -0.9) + *p * 0.01)
            .collect();
        tree.rebin(&moved);
        let outcome = plan.refresh_counts(&tree);
        assert_eq!(outcome, PlanRefresh::Rebuilt);
        assert_matches_fresh(&tree, &plan);
    }

    #[test]
    fn refresh_counts_is_clean_without_motion() {
        let pos = random_points(500, 80);
        let tree = build_adaptive(&pos, BuildParams::with_s(16));
        let mut plan = IncrementalLists::build(&tree, Mac::default());
        assert_eq!(plan.refresh_counts(&tree), PlanRefresh::Clean);
    }
}
