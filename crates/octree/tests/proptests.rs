//! Octree-specific property tests: construction invariants, spatial
//! consistency, Morton ordering of leaf ranges, and statistics coherence.

use geom::Vec3;
use octree::{
    build_adaptive, build_uniform, count_ops, dual_traversal, BuildParams, Mac, TreeStats,
};
use proptest::prelude::*;

fn arb_points() -> impl Strategy<Value = Vec<Vec3>> {
    prop::collection::vec(
        (-10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0).prop_map(|(x, y, z)| Vec3::new(x, y, z)),
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Structural invariants and leaf-capacity bound hold for any input.
    #[test]
    fn build_invariants(pts in arb_points(), s in 1usize..64) {
        let t = build_adaptive(&pts, BuildParams::with_s(s));
        prop_assert!(t.check_invariants().is_ok());
        for id in t.visible_leaves() {
            let n = t.node(id);
            // Leaves can only exceed S when the Morton resolution bottomed
            // out (coincident/ultra-close points).
            if n.count() > s {
                prop_assert_eq!(n.level as u32, geom::MAX_MORTON_LEVEL);
            }
        }
    }

    /// Every body sits geometrically inside its leaf's cube.
    #[test]
    fn bodies_inside_their_cells(pts in arb_points(), s in 2usize..48) {
        let t = build_adaptive(&pts, BuildParams::with_s(s));
        for id in t.visible_leaves() {
            let n = t.node(id);
            for i in n.range() {
                let p = pts[t.order()[i] as usize];
                let d = p - n.center;
                let tol = n.half_width * (1.0 + 1e-9);
                prop_assert!(d.x.abs() <= tol && d.y.abs() <= tol && d.z.abs() <= tol);
            }
        }
    }

    /// Visible leaves appear in ascending body-range order (Morton order),
    /// and their ranges tile [0, n) exactly.
    #[test]
    fn leaf_ranges_tile_in_order(pts in arb_points(), s in 2usize..48) {
        let t = build_adaptive(&pts, BuildParams::with_s(s));
        let mut pos = 0usize;
        for id in t.visible_leaves() {
            let n = t.node(id);
            prop_assert_eq!(n.range().start, pos, "leaf ranges must be contiguous in DFS order");
            pos = n.range().end;
        }
        prop_assert_eq!(pos, pts.len());
    }

    /// The levels() grouping partitions visible_nodes() exactly.
    #[test]
    fn levels_partition_nodes(pts in arb_points(), s in 2usize..48) {
        let t = build_adaptive(&pts, BuildParams::with_s(s));
        let by_level: usize = t.levels().iter().map(Vec::len).sum();
        prop_assert_eq!(by_level, t.visible_nodes().len());
        for (lvl, ids) in t.levels().iter().enumerate() {
            for &id in ids {
                prop_assert_eq!(t.node(id).level as usize, lvl);
            }
        }
    }

    /// Uniform trees are complete and have 8^depth leaves at the target
    /// level.
    #[test]
    fn uniform_is_complete(pts in arb_points(), depth in 0u16..4) {
        let t = build_uniform(&pts, depth, 1e-6);
        prop_assert!(t.check_invariants().is_ok());
        let leaves = t.visible_leaves();
        prop_assert_eq!(leaves.len(), 8usize.pow(depth as u32));
        for id in leaves {
            prop_assert_eq!(t.node(id).level, depth);
        }
    }

    /// Tree statistics agree with first-principles recomputation.
    #[test]
    fn stats_consistent(pts in arb_points(), s in 2usize..48) {
        let t = build_adaptive(&pts, BuildParams::with_s(s));
        let st = TreeStats::gather(&t);
        prop_assert_eq!(st.visible_nodes, t.visible_nodes().len());
        prop_assert_eq!(st.visible_leaves, t.visible_leaves().len());
        prop_assert_eq!(st.nonempty_leaves, t.active_leaves().len());
        prop_assert_eq!(st.depth, t.depth());
        prop_assert!(st.max_leaf <= pts.len());
        let c = count_ops(&t, &dual_traversal(&t, Mac::default()));
        prop_assert_eq!(c.active_nodes as usize,
            t.visible_nodes().iter().filter(|&&id| t.node(id).count() > 0).count());
    }

    /// Total P2P interactions are bounded by all-pairs and reach all-pairs
    /// when the tree is a single leaf.
    #[test]
    fn p2p_bounded_by_all_pairs(pts in arb_points(), s in 2usize..48, theta in 0.35f64..0.95) {
        let n = pts.len() as u64;
        let t = build_adaptive(&pts, BuildParams::with_s(s));
        let c = count_ops(&t, &dual_traversal(&t, Mac::new(theta)));
        prop_assert!(c.p2p_interactions <= n * n.saturating_sub(1));
        let single = build_adaptive(&pts, BuildParams::with_s(usize::MAX >> 8));
        let cs = count_ops(&single, &dual_traversal(&single, Mac::new(theta)));
        prop_assert_eq!(cs.p2p_interactions, n * n.saturating_sub(1));
        prop_assert_eq!(cs.m2l_ops, 0);
    }
}
