//! Online anomaly detection over the step-time and prediction-error
//! series: a rolling median/MAD z-score for spikes plus a two-sided CUSUM
//! for slow drifts.
//!
//! The detector is *observe-only*: it consumes the same measurements the
//! balancer already takes, never feeds anything back into control, and is
//! meant to be gated on an enabled [`crate::Recorder`] exactly like the
//! prediction audits — a telemetry-enabled run stays bit-identical to a
//! disabled one.
//!
//! Why median/MAD rather than mean/stddev: the step-time series is heavy-
//! tailed (Search probes, plan rebuilds), and a single fault spike must not
//! inflate the dispersion estimate enough to mask the next one. The MAD is
//! additionally floored (relative + absolute) so a near-constant window —
//! common in deterministic steady state, where MAD is exactly zero — does
//! not turn numerical dust into false positives. Spike samples are *not*
//! absorbed into the window, so a sustained fault keeps firing until the
//! balancer reacts and the caller resets the detector.

use crate::event::Value;

/// Which monitored series a sample belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyChannel {
    /// Measured per-step compute time (seconds).
    StepTime,
    /// Cost-model relative prediction error (dimensionless).
    PredError,
}

impl AnomalyChannel {
    pub fn as_str(self) -> &'static str {
        match self {
            AnomalyChannel::StepTime => "step_time",
            AnomalyChannel::PredError => "pred_error",
        }
    }

    /// Telemetry event name for anomalies on this channel.
    pub fn event_name(self) -> &'static str {
        match self {
            AnomalyChannel::StepTime => "anomaly.step_time",
            AnomalyChannel::PredError => "anomaly.pred_error",
        }
    }
}

/// What the detector saw: a point spike or an accumulated drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    Spike,
    Drift,
}

impl AnomalyKind {
    pub fn as_str(self) -> &'static str {
        match self {
            AnomalyKind::Spike => "spike",
            AnomalyKind::Drift => "drift",
        }
    }
}

/// How loud to be about it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warn,
    Critical,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Critical => "critical",
        }
    }
}

/// One detected anomaly, ready to be emitted as an `anomaly.*` event.
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    pub channel: AnomalyChannel,
    pub kind: AnomalyKind,
    pub severity: Severity,
    /// The offending sample.
    pub value: f64,
    /// Rolling median at detection time.
    pub median: f64,
    /// Modified z-score (spike) or CUSUM statistic (drift).
    pub score: f64,
}

impl Anomaly {
    /// Structured fields for the `anomaly.*` telemetry event.
    pub fn fields(&self) -> Vec<(&'static str, Value)> {
        vec![
            ("channel", Value::Str(self.channel.as_str().to_owned())),
            // Not "kind": that name belongs to the record envelope.
            ("anomaly_kind", Value::Str(self.kind.as_str().to_owned())),
            ("severity", Value::Str(self.severity.as_str().to_owned())),
            ("value", Value::F64(self.value)),
            ("median", Value::F64(self.median)),
            ("score", Value::F64(self.score)),
        ]
    }
}

/// Detector thresholds. Defaults are deliberately conservative: the clean
/// fault-scenario runs in `tests/fault_recovery.rs` must stay silent.
#[derive(Debug, Clone, Copy)]
pub struct AnomalyConfig {
    /// Rolling-window length (samples) for the median/MAD baseline.
    pub window: usize,
    /// Minimum samples before the detector scores anything.
    pub min_samples: usize,
    /// Modified z-score above which a sample is a `Warn` spike.
    pub z_warn: f64,
    /// Modified z-score above which a spike is `Critical`.
    pub z_critical: f64,
    /// Relative MAD floor: sigma never drops below `mad_floor_frac·|median|`.
    pub mad_floor_frac: f64,
    /// Absolute sigma floor, in channel units (guards the median≈0 case).
    pub abs_floor: f64,
    /// CUSUM slack per standardized sample (drift must exceed this rate).
    pub cusum_k: f64,
    /// CUSUM decision threshold (standardized units, accumulated).
    pub cusum_h: f64,
}

impl AnomalyConfig {
    /// Tuning for the step-time series (seconds).
    pub fn step_time() -> Self {
        AnomalyConfig {
            window: 16,
            min_samples: 8,
            z_warn: 4.0,
            z_critical: 8.0,
            mad_floor_frac: 0.05,
            abs_floor: 1e-9,
            cusum_k: 0.5,
            cusum_h: 8.0,
        }
    }

    /// Tuning for the prediction-relative-error series (dimensionless).
    /// The absolute floor is the error band the audit gate already calls
    /// healthy, so small-error wobble never scores.
    pub fn pred_error() -> Self {
        AnomalyConfig {
            abs_floor: 0.05,
            ..Self::step_time()
        }
    }
}

/// One channel's rolling state.
#[derive(Debug, Clone)]
struct ChannelState {
    cfg: AnomalyConfig,
    channel: AnomalyChannel,
    window: Vec<f64>,
    /// Next slot to overwrite once the window is full (ring index).
    cursor: usize,
    filled: bool,
    cusum_pos: f64,
    cusum_neg: f64,
}

impl ChannelState {
    fn new(channel: AnomalyChannel, cfg: AnomalyConfig) -> Self {
        ChannelState {
            cfg,
            channel,
            window: Vec::with_capacity(cfg.window),
            cursor: 0,
            filled: false,
            cusum_pos: 0.0,
            cusum_neg: 0.0,
        }
    }

    fn reset(&mut self) {
        self.window.clear();
        self.cursor = 0;
        self.filled = false;
        self.cusum_pos = 0.0;
        self.cusum_neg = 0.0;
    }

    fn push(&mut self, v: f64) {
        if self.window.len() < self.cfg.window {
            self.window.push(v);
        } else {
            self.window[self.cursor] = v;
            self.cursor = (self.cursor + 1) % self.cfg.window;
            self.filled = true;
        }
    }

    fn observe(&mut self, v: f64) -> Option<Anomaly> {
        if !v.is_finite() {
            // Non-finite samples (e.g. an inf relative error against a ~0
            // actual) are reported as critical spikes but never enter the
            // baseline.
            if self.window.len() >= self.cfg.min_samples {
                return Some(Anomaly {
                    channel: self.channel,
                    kind: AnomalyKind::Spike,
                    severity: Severity::Critical,
                    value: v,
                    median: median_of(&self.window),
                    score: f64::INFINITY,
                });
            }
            return None;
        }
        if self.window.len() < self.cfg.min_samples {
            self.push(v);
            return None;
        }
        let med = median_of(&self.window);
        let mad = mad_of(&self.window, med);
        // 1.4826 rescales MAD to a normal-consistent sigma.
        let sigma = (1.4826 * mad)
            .max(self.cfg.mad_floor_frac * med.abs())
            .max(self.cfg.abs_floor);
        let z = (v - med) / sigma;
        if z.abs() >= self.cfg.z_warn {
            // A spike does not contaminate the baseline or the drift
            // accumulators: a persistent fault keeps scoring until reset.
            let severity = if z.abs() >= self.cfg.z_critical {
                Severity::Critical
            } else {
                Severity::Warn
            };
            return Some(Anomaly {
                channel: self.channel,
                kind: AnomalyKind::Spike,
                severity,
                value: v,
                median: med,
                score: z,
            });
        }
        self.push(v);
        // Two-sided CUSUM on the standardized residual catches slow drifts
        // that never clear the spike bar.
        self.cusum_pos = (self.cusum_pos + z - self.cfg.cusum_k).max(0.0);
        self.cusum_neg = (self.cusum_neg - z - self.cfg.cusum_k).max(0.0);
        let s = self.cusum_pos.max(self.cusum_neg);
        if s >= self.cfg.cusum_h {
            let score = if self.cusum_pos >= self.cusum_neg {
                s
            } else {
                -s
            };
            self.cusum_pos = 0.0;
            self.cusum_neg = 0.0;
            return Some(Anomaly {
                channel: self.channel,
                kind: AnomalyKind::Drift,
                severity: Severity::Warn,
                value: v,
                median: med,
                score,
            });
        }
        None
    }
}

fn median_of(w: &[f64]) -> f64 {
    if w.is_empty() {
        return 0.0;
    }
    let mut s = w.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = s.len();
    if n % 2 == 1 {
        s[n / 2]
    } else {
        0.5 * (s[n / 2 - 1] + s[n / 2])
    }
}

fn mad_of(w: &[f64], med: f64) -> f64 {
    let dev: Vec<f64> = w.iter().map(|x| (x - med).abs()).collect();
    median_of(&dev)
}

/// The online detector: one [`ChannelState`] per monitored series.
///
/// Usage pattern (mirrors `StrategyTracker`):
///
/// * after a step in which the balancer did *not* act, feed the measured
///   compute time to [`AnomalyDetector::observe_step_time`] and the audit's
///   relative error to [`AnomalyDetector::observe_pred_error`];
/// * after a step in which it *did* act (rebuild / enforce / FGO), call
///   [`AnomalyDetector::reset`] — the timing level legitimately moved, so
///   the old baseline is void (the same rule the balancer's `TimingFilter`
///   applies to itself).
#[derive(Debug, Clone)]
pub struct AnomalyDetector {
    step_time: ChannelState,
    pred_error: ChannelState,
}

impl Default for AnomalyDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl AnomalyDetector {
    pub fn new() -> Self {
        Self::with_configs(AnomalyConfig::step_time(), AnomalyConfig::pred_error())
    }

    pub fn with_configs(step_time: AnomalyConfig, pred_error: AnomalyConfig) -> Self {
        AnomalyDetector {
            step_time: ChannelState::new(AnomalyChannel::StepTime, step_time),
            pred_error: ChannelState::new(AnomalyChannel::PredError, pred_error),
        }
    }

    /// Score a measured step compute time (seconds).
    pub fn observe_step_time(&mut self, seconds: f64) -> Option<Anomaly> {
        self.step_time.observe(seconds)
    }

    /// Score a cost-model relative prediction error.
    pub fn observe_pred_error(&mut self, rel_error: f64) -> Option<Anomaly> {
        self.pred_error.observe(rel_error)
    }

    /// Void the baselines after an intentional regime change.
    pub fn reset(&mut self) {
        self.step_time.reset();
        self.pred_error.reset();
    }

    /// Samples currently in the step-time baseline (diagnostics).
    pub fn step_time_samples(&self) -> usize {
        self.step_time.window.len()
    }
}

// ---- offline trend classification ----------------------------------------

/// Thresholds for [`classify_series`] — the offline, whole-series analogue
/// of the online detector, tuned for *short* cross-run series (a perf
/// ledger holds tens of entries, not thousands of steps).
#[derive(Debug, Clone, Copy)]
pub struct TrendConfig {
    /// Baseline samples required before anything is scored. Series shorter
    /// than `min_history + 1` classify as [`TrendKind::Insufficient`].
    pub min_history: usize,
    /// Modified z-score at which a sample leaves the noise band.
    pub z_step: f64,
    /// How many *consecutive* out-of-band samples confirm a step. Below
    /// this the excursion is a [`TrendKind::Spike`].
    pub confirm: usize,
    /// Relative sigma floor: `sigma >= rel_floor · |median|`, so runs whose
    /// history is near-constant (MAD ≈ 0) don't alarm on numerical dust.
    pub rel_floor: f64,
    /// Absolute sigma floor (guards the median ≈ 0 case).
    pub abs_floor: f64,
    /// CUSUM slack per standardized sample.
    pub cusum_k: f64,
    /// CUSUM decision threshold.
    pub cusum_h: f64,
}

impl Default for TrendConfig {
    fn default() -> Self {
        TrendConfig {
            min_history: 4,
            z_step: 3.5,
            confirm: 2,
            rel_floor: 0.05,
            abs_floor: 1e-12,
            cusum_k: 0.25,
            cusum_h: 5.0,
        }
    }
}

/// What a series did, in decreasing order of severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrendKind {
    /// A confirmed level change: `confirm`+ consecutive out-of-band samples.
    Step,
    /// The CUSUM accumulated a slow, sustained movement that never cleared
    /// the per-sample step bar.
    Drift,
    /// An unconfirmed excursion — out-of-band sample(s) that either
    /// reverted or sit at the series tail awaiting confirmation.
    Spike,
    /// Nothing but noise.
    Stable,
    /// Not enough history to score at all.
    Insufficient,
}

impl TrendKind {
    pub fn as_str(self) -> &'static str {
        match self {
            TrendKind::Step => "step",
            TrendKind::Drift => "drift",
            TrendKind::Spike => "spike",
            TrendKind::Stable => "stable",
            TrendKind::Insufficient => "insufficient",
        }
    }
}

/// Verdict of [`classify_series`] on one series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrendReport {
    pub kind: TrendKind,
    /// Index of the first sample of the detected step/drift/spike.
    pub at: Option<usize>,
    /// Modified z (step/spike) or signed CUSUM statistic (drift). The sign
    /// is the direction of movement: positive = the values went *up*.
    pub score: f64,
    /// Baseline median at detection time (whole-series median when stable).
    pub baseline: f64,
    /// Median of the samples after the detected change (== `baseline` when
    /// nothing was detected).
    pub level: f64,
}

/// Classify a whole series of per-run measurements as a confirmed step
/// change, a slow drift, an unconfirmed spike, or noise.
///
/// Walks the series in order, exactly like [`AnomalyDetector`] walks a live
/// run: the first `min_history` samples seed a rolling baseline, each later
/// sample is scored by its floored modified z, out-of-band samples are *not*
/// absorbed (so a genuine level change keeps scoring until confirmed rather
/// than dragging the baseline up after it), and in-band samples feed a
/// two-sided CUSUM that catches sub-threshold creep. A step is only
/// *confirmed* by `confirm` consecutive out-of-band samples in the same
/// direction — one bad run is a spike, two in a row is a regression. This is
/// why a gated trend alarm needs at most 2 post-step entries, and why a
/// single noisy CI run can never flip the gate.
pub fn classify_series(values: &[f64], cfg: &TrendConfig) -> TrendReport {
    let stable = |baseline: f64| TrendReport {
        kind: TrendKind::Stable,
        at: None,
        score: 0.0,
        baseline,
        level: baseline,
    };
    if values.len() < cfg.min_history + 1 {
        return TrendReport {
            kind: TrendKind::Insufficient,
            ..stable(median_of(values))
        };
    }
    let mut baseline: Vec<f64> = values[..cfg.min_history].to_vec();
    let mut cusum_pos = 0.0f64;
    let mut cusum_neg = 0.0f64;
    let mut drift: Option<(usize, f64)> = None;
    let mut spike: Option<(usize, f64)> = None;
    // Current run of consecutive out-of-band samples: (start, direction, z).
    let mut streak: Option<(usize, f64, f64)> = None;
    for (i, &v) in values.iter().enumerate().skip(cfg.min_history) {
        let med = median_of(&baseline);
        let mad = mad_of(&baseline, med);
        let sigma = (1.4826 * mad)
            .max(cfg.rel_floor * med.abs())
            .max(cfg.abs_floor);
        let z = if v.is_finite() {
            (v - med) / sigma
        } else {
            f64::INFINITY
        };
        if z.abs() >= cfg.z_step {
            let dir = z.signum();
            streak = match streak {
                Some((start, d, _)) if d == dir => Some((start, d, z)),
                _ => Some((i, dir, z)),
            };
            let (start, _, z_last) = streak.expect("just set");
            if i + 1 - start >= cfg.confirm {
                // Confirmed level change.
                return TrendReport {
                    kind: TrendKind::Step,
                    at: Some(start),
                    score: z_last,
                    baseline: med,
                    level: median_of(&values[start..]),
                };
            }
            spike = spike.or(Some((i, z)));
            continue; // never absorbed into the baseline
        }
        streak = None;
        baseline.push(v);
        cusum_pos = (cusum_pos + z - cfg.cusum_k).max(0.0);
        cusum_neg = (cusum_neg - z - cfg.cusum_k).max(0.0);
        let s = cusum_pos.max(cusum_neg);
        if s >= cfg.cusum_h && drift.is_none() {
            let signed = if cusum_pos >= cusum_neg { s } else { -s };
            drift = Some((i, signed));
        }
    }
    if let Some((at, score)) = drift {
        return TrendReport {
            kind: TrendKind::Drift,
            at: Some(at),
            score,
            baseline: median_of(&values[..at.max(1)]),
            level: median_of(&values[at..]),
        };
    }
    if let Some((at, score)) = spike {
        return TrendReport {
            kind: TrendKind::Spike,
            at: Some(at),
            score,
            baseline: median_of(&baseline),
            level: values[at],
        };
    }
    stable(median_of(&baseline))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(det: &mut AnomalyDetector, xs: &[f64]) -> Vec<Anomaly> {
        xs.iter()
            .filter_map(|&x| det.observe_step_time(x))
            .collect()
    }

    #[test]
    fn constant_series_is_silent() {
        let mut det = AnomalyDetector::new();
        let found = feed(&mut det, &[0.01; 200]);
        assert!(
            found.is_empty(),
            "false positives on constant series: {found:?}"
        );
    }

    #[test]
    fn small_jitter_is_silent() {
        let mut det = AnomalyDetector::new();
        // ±2% deterministic wobble around 10ms stays under the floored z.
        let xs: Vec<f64> = (0..200)
            .map(|i| 0.01 * (1.0 + 0.02 * ((i % 7) as f64 - 3.0) / 3.0))
            .collect();
        let found = feed(&mut det, &xs);
        assert!(found.is_empty(), "false positives on jitter: {found:?}");
    }

    #[test]
    fn spike_is_flagged_and_does_not_poison_baseline() {
        let mut det = AnomalyDetector::new();
        assert!(feed(&mut det, &[0.01; 20]).is_empty());
        let a = det.observe_step_time(0.03).expect("3x step not flagged");
        assert_eq!(a.kind, AnomalyKind::Spike);
        assert_eq!(a.channel, AnomalyChannel::StepTime);
        assert!(a.score > 0.0);
        // The spike was not absorbed: the very next spike still fires.
        let b = det.observe_step_time(0.03).expect("repeat spike missed");
        assert_eq!(b.kind, AnomalyKind::Spike);
        // And normal samples remain normal.
        assert!(det.observe_step_time(0.01).is_none());
    }

    #[test]
    fn severity_scales_with_magnitude() {
        let mut det = AnomalyDetector::new();
        feed(&mut det, &[0.01; 20]);
        let warn = det.observe_step_time(0.0125).expect("mild spike missed");
        assert_eq!(warn.severity, Severity::Warn);
        let crit = det.observe_step_time(0.1).expect("huge spike missed");
        assert_eq!(crit.severity, Severity::Critical);
    }

    #[test]
    fn slow_drift_trips_cusum() {
        let mut det = AnomalyDetector::new();
        feed(&mut det, &[0.01; 16]);
        // +2% per step: each sample is ~sub-spike but the drift accumulates.
        let mut v = 0.01;
        let mut hit = None;
        for i in 0..60 {
            v *= 1.02;
            if let Some(a) = det.observe_step_time(v) {
                hit = Some((i, a));
                break;
            }
        }
        let (_, a) = hit.expect("drift never detected");
        assert!(matches!(a.kind, AnomalyKind::Drift | AnomalyKind::Spike));
    }

    #[test]
    fn reset_voids_baseline() {
        let mut det = AnomalyDetector::new();
        feed(&mut det, &[0.01; 20]);
        det.reset();
        assert_eq!(det.step_time_samples(), 0);
        // New regime at 3x the old level: silent, it is the new normal.
        assert!(feed(&mut det, &[0.03; 20]).is_empty());
    }

    #[test]
    fn nonfinite_pred_error_is_critical_after_warmup() {
        let mut det = AnomalyDetector::new();
        for _ in 0..10 {
            assert!(det.observe_pred_error(0.02).is_none());
        }
        let a = det
            .observe_pred_error(f64::INFINITY)
            .expect("inf error missed");
        assert_eq!(a.severity, Severity::Critical);
        assert_eq!(a.channel, AnomalyChannel::PredError);
    }

    #[test]
    fn pred_error_floor_tolerates_healthy_band() {
        let mut det = AnomalyDetector::new();
        // Errors bouncing in [0, 4%] — inside the healthy band, no alarms
        // even though the relative variation is large.
        let xs: Vec<f64> = (0..100).map(|i| 0.04 * ((i % 5) as f64) / 4.0).collect();
        let found: Vec<_> = xs
            .iter()
            .filter_map(|&x| det.observe_pred_error(x))
            .collect();
        assert!(
            found.is_empty(),
            "false positives in healthy band: {found:?}"
        );
    }

    // ---- classify_series ----

    /// Deterministic jitter in [-j, j] around `center` (cheap LCG; the
    /// trend tests need many distinct series, not statistical perfection).
    fn jittered(center: f64, j: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = (state >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
                center * (1.0 + j * (2.0 * u - 1.0))
            })
            .collect()
    }

    #[test]
    fn series_step_confirmed_within_two_entries() {
        // 10-entry series, 2x step at index 8: exactly 2 post-step entries.
        for seed in 0..20 {
            let mut xs = jittered(1.0, 0.05, 10, seed);
            for v in xs.iter_mut().skip(8) {
                *v *= 2.0;
            }
            let r = classify_series(&xs, &TrendConfig::default());
            assert_eq!(r.kind, TrendKind::Step, "seed {seed}: {r:?}");
            assert_eq!(r.at, Some(8));
            assert!(r.score > 0.0, "upward step must score positive");
            assert!(r.level > 1.5 && r.baseline < 1.5);
        }
    }

    #[test]
    fn series_pure_noise_never_alarms() {
        for seed in 0..40 {
            let xs = jittered(1.0, 0.05, 12, 1000 + seed);
            let r = classify_series(&xs, &TrendConfig::default());
            assert_eq!(r.kind, TrendKind::Stable, "seed {seed}: {r:?}");
        }
    }

    #[test]
    fn series_single_outlier_is_spike_not_step() {
        let mut xs = jittered(1.0, 0.03, 12, 3);
        xs[7] *= 3.0; // one preempted run, reverts next entry
        let r = classify_series(&xs, &TrendConfig::default());
        assert_eq!(r.kind, TrendKind::Spike, "{r:?}");
        assert_eq!(r.at, Some(7));
        // Same for a last-entry outlier: suspect, not yet confirmed.
        let mut xs = jittered(1.0, 0.03, 12, 4);
        *xs.last_mut().unwrap() *= 3.0;
        let r = classify_series(&xs, &TrendConfig::default());
        assert_eq!(r.kind, TrendKind::Spike, "{r:?}");
        assert_eq!(r.at, Some(11));
    }

    #[test]
    fn series_slow_drift_trips_cusum() {
        // +2.5% per entry: each step is sub-threshold, the creep is not.
        let xs: Vec<f64> = (0..24).map(|i| 1.025f64.powi(i)).collect();
        let r = classify_series(&xs, &TrendConfig::default());
        assert!(
            matches!(r.kind, TrendKind::Drift | TrendKind::Step),
            "{r:?}"
        );
        assert!(r.score > 0.0, "upward drift must score positive");
    }

    #[test]
    fn series_downward_step_scores_negative() {
        let mut xs = vec![1.0; 10];
        for v in xs.iter_mut().skip(6) {
            *v = 0.4;
        }
        let r = classify_series(&xs, &TrendConfig::default());
        assert_eq!(r.kind, TrendKind::Step);
        assert_eq!(r.at, Some(6));
        assert!(r.score < 0.0);
    }

    #[test]
    fn series_too_short_is_insufficient() {
        let r = classify_series(&[1.0, 1.0, 1.0], &TrendConfig::default());
        assert_eq!(r.kind, TrendKind::Insufficient);
        assert_eq!(classify_series(&[], &TrendConfig::default()).kind, {
            TrendKind::Insufficient
        });
    }

    #[test]
    fn series_constant_history_tolerates_floor_wobble() {
        // Identical history (MAD = 0) + one 3% wobble: the relative floor
        // keeps it in band.
        let mut xs = vec![0.5; 9];
        xs.push(0.515);
        let r = classify_series(&xs, &TrendConfig::default());
        assert_eq!(r.kind, TrendKind::Stable, "{r:?}");
    }

    #[test]
    fn anomaly_fields_are_structured() {
        let a = Anomaly {
            channel: AnomalyChannel::StepTime,
            kind: AnomalyKind::Spike,
            severity: Severity::Critical,
            value: 0.5,
            median: 0.01,
            score: 12.0,
        };
        let f = a.fields();
        assert_eq!(f[0], ("channel", Value::Str("step_time".into())));
        assert_eq!(f[2], ("severity", Value::Str("critical".into())));
    }
}
