//! Structured records: the [`Value`] field type, [`EventRecord`] payloads,
//! and the hand-rolled JSON encoder shared by the trace and metric sinks.
//!
//! The workspace deliberately carries no serde dependency, so records encode
//! themselves; the only subtlety is that non-finite floats become `null`
//! (JSON has no NaN/Inf) and strings are escaped per RFC 8259.

use std::fmt::Write as _;

/// A dynamically typed field value attached to an event or span.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(i64::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// What kind of record this is. Spans carry a duration; events are points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    Span,
    Event,
}

impl RecordKind {
    pub fn as_str(self) -> &'static str {
        match self {
            RecordKind::Span => "span",
            RecordKind::Event => "event",
        }
    }
}

/// One trace record: a point event or a completed span.
///
/// `seq` is a monotone sequence number assigned by the recorder; `step` is
/// the logical simulation step active when the record was emitted (set via
/// `Recorder::set_step`), so offline analysis can align traces with
/// `StepRecord` histories without wall clocks.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    pub seq: u64,
    pub step: u64,
    pub kind: RecordKind,
    pub name: &'static str,
    /// Span duration in seconds; `None` for point events.
    pub dur_s: Option<f64>,
    pub fields: Vec<(&'static str, Value)>,
}

impl EventRecord {
    /// Fetch a field by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == name).map(|(_, v)| v)
    }

    /// Fetch a numeric field as `f64` (accepts `F64`, `U64`, and `I64` —
    /// JSON does not distinguish, so readers should not either).
    pub fn field_f64(&self, name: &str) -> Option<f64> {
        match self.field(name)? {
            Value::F64(v) => Some(*v),
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Fetch a non-negative integer field as `u64`.
    pub fn field_u64(&self, name: &str) -> Option<u64> {
        match self.field(name)? {
            Value::U64(v) => Some(*v),
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Fetch a signed integer field as `i64`.
    pub fn field_i64(&self, name: &str) -> Option<i64> {
        match self.field(name)? {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Fetch a string field.
    pub fn field_str(&self, name: &str) -> Option<&str> {
        match self.field(name)? {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Fetch a boolean field.
    pub fn field_bool(&self, name: &str) -> Option<bool> {
        match self.field(name)? {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Structural heap footprint of this record: the fields vector's
    /// capacity plus any owned string payloads. Excludes `size_of::<Self>()`
    /// itself — the container holding the record accounts for that.
    pub fn heap_bytes(&self) -> usize {
        let strings: usize = self
            .fields
            .iter()
            .map(|(_, v)| match v {
                Value::Str(s) => s.capacity(),
                _ => 0,
            })
            .sum();
        self.fields.capacity() * std::mem::size_of::<(&'static str, Value)>() + strings
    }

    /// Encode as a single JSON object (one JSONL line, no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push('{');
        let _ = write!(
            out,
            "\"seq\":{},\"step\":{},\"kind\":\"{}\",\"name\":\"{}\"",
            self.seq,
            self.step,
            self.kind.as_str(),
            self.name
        );
        if let Some(d) = self.dur_s {
            out.push_str(",\"dur_s\":");
            push_json_f64(&mut out, d);
        }
        for (k, v) in &self.fields {
            // A payload field named like an envelope key would produce a
            // duplicate JSON key and break the reader; prefix it instead of
            // silently emitting an unreadable line.
            if matches!(*k, "seq" | "step" | "kind" | "name" | "dur_s") {
                let _ = write!(out, ",\"field_{k}\":");
            } else {
                let _ = write!(out, ",\"{k}\":");
            }
            push_json_value(&mut out, v);
        }
        out.push('}');
        out
    }
}

/// Append `v` as JSON, mapping non-finite floats to `null`.
pub fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn push_json_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::F64(x) => push_json_f64(out, *x),
        Value::Bool(x) => {
            let _ = write!(out, "{x}");
        }
        Value::Str(s) => push_json_str(out, s),
    }
}

/// Append `s` as a JSON string literal with RFC 8259 escaping.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_shape() {
        let rec = EventRecord {
            seq: 7,
            step: 3,
            kind: RecordKind::Span,
            name: "phase.m2l",
            dur_s: Some(0.5),
            fields: vec![
                ("ops", Value::U64(42)),
                ("cause", Value::Str("s\"x".into())),
            ],
        };
        let j = rec.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"seq\":7"));
        assert!(j.contains("\"dur_s\":0.5"));
        assert!(j.contains("\"cause\":\"s\\\"x\""));
    }

    #[test]
    fn nonfinite_floats_become_null() {
        let rec = EventRecord {
            seq: 0,
            step: 0,
            kind: RecordKind::Event,
            name: "x",
            dur_s: Some(f64::NAN),
            fields: vec![("v", Value::F64(f64::INFINITY))],
        };
        let j = rec.to_json();
        assert!(j.contains("\"dur_s\":null"));
        assert!(j.contains("\"v\":null"));
    }

    #[test]
    fn field_lookup() {
        let rec = EventRecord {
            seq: 0,
            step: 0,
            kind: RecordKind::Event,
            name: "x",
            dur_s: None,
            fields: vec![("a", Value::Bool(true))],
        };
        assert_eq!(rec.field("a"), Some(&Value::Bool(true)));
        assert_eq!(rec.field("b"), None);
    }
}
