//! The read side of the trace pipeline: parse JSONL emitted by
//! [`EventRecord::to_json`] back into typed records ([`EventRecord::from_json`],
//! [`TraceReader`]) and export a parsed trace as Chrome `trace_event` JSON
//! ([`ChromeTraceExporter`]) loadable in Perfetto / `chrome://tracing`.
//!
//! Round-trip contract: for any record `r`, `from_json(r.to_json())` succeeds
//! and re-serializes to the *identical byte string*. Two conventions make
//! this exact rather than approximate:
//!
//! * **Non-finite floats.** `to_json` maps NaN/±Inf to `null`; `from_json`
//!   maps `null` back to `Value::F64(NAN)` (and a `null` `dur_s` to
//!   `Some(NAN)`), which re-serializes to `null` — the byte round-trip holds
//!   even though NaN cannot compare equal to itself.
//! * **Number typing.** JSON does not distinguish `U64(2)` from `F64(2.0)`
//!   (both print `2`); `from_json` canonicalizes by syntax — no `.`/`e` and
//!   in `u64`/`i64` range parses integral, everything else (including `-0`,
//!   which must re-print with its sign) parses as `F64`. Either reading
//!   re-serializes byte-identically because the encoder is deterministic.
//!
//! Parsed names and field keys are interned into a process-wide pool (the
//! schema's vocabulary is finite, so the pool is bounded) to satisfy
//! [`EventRecord`]'s `&'static str` fields without cloning per record.

use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::sync::{Mutex, OnceLock};

use crate::event::{push_json_f64, push_json_str, EventRecord, RecordKind, Value};

/// Failure while reading a trace: I/O, or a malformed line (1-based).
#[derive(Debug)]
pub enum TraceError {
    Io(std::io::Error),
    Parse { line: usize, msg: String },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Parse { line, msg } => write!(f, "trace line {line}: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Intern a name/key into the process-wide pool, leaking each *distinct*
/// string once. The event vocabulary is a fixed schema, so the pool stays
/// bounded in any legitimate trace.
pub fn intern(s: &str) -> &'static str {
    static POOL: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(HashSet::new()));
    let mut set = pool.lock().unwrap();
    if let Some(&hit) = set.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    set.insert(leaked);
    leaked
}

// ---- the flat-object JSON parser -----------------------------------------

/// One parsed scalar, before number canonicalization.
enum Token<'a> {
    Num(&'a str),
    Str(String),
    Bool(bool),
    Null,
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            s: s.as_bytes(),
            i: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn bump(&mut self) -> Result<u8, String> {
        let b = self.peek().ok_or("unexpected end of input")?;
        self.i += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        self.skip_ws();
        let got = self.bump()?;
        if got != want {
            return Err(format!(
                "expected '{}', found '{}'",
                want as char, got as char
            ));
        }
        Ok(())
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hi = self.parse_hex4()?;
                        let c = if (0xD800..=0xDBFF).contains(&hi) {
                            // Surrogate pair: the low half must follow.
                            if self.bump()? != b'\\' || self.bump()? != b'u' {
                                return Err("unpaired high surrogate".into());
                            }
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..=0xDFFF).contains(&lo) {
                                return Err("invalid low surrogate".into());
                            }
                            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(code).ok_or("invalid surrogate pair")?
                        } else {
                            char::from_u32(hi).ok_or("invalid \\u escape")?
                        };
                        out.push(c);
                    }
                    other => return Err(format!("bad escape '\\{}'", other as char)),
                },
                b if b < 0x20 => return Err("raw control character in string".into()),
                b if b < 0x80 => out.push(b as char),
                b => {
                    // Multi-byte UTF-8: re-decode from the source slice.
                    let start = self.i - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err("invalid UTF-8 byte in string".into()),
                    };
                    let end = start + len;
                    let slice = self.s.get(start..end).ok_or("truncated UTF-8 sequence")?;
                    let chunk =
                        std::str::from_utf8(slice).map_err(|_| "invalid UTF-8 in string")?;
                    out.push_str(chunk);
                    self.i = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump()?;
            let d = (b as char)
                .to_digit(16)
                .ok_or("bad hex digit in \\u escape")?;
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn parse_token(&mut self) -> Result<Token<'a>, String> {
        self.skip_ws();
        match self.peek().ok_or("unexpected end of input")? {
            b'"' => Ok(Token::Str(self.parse_string()?)),
            b't' => {
                self.literal("true")?;
                Ok(Token::Bool(true))
            }
            b'f' => {
                self.literal("false")?;
                Ok(Token::Bool(false))
            }
            b'n' => {
                self.literal("null")?;
                Ok(Token::Null)
            }
            b'{' | b'[' => Err("nested values are not part of the trace schema".into()),
            _ => {
                let start = self.i;
                while matches!(
                    self.peek(),
                    Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
                ) {
                    self.i += 1;
                }
                if self.i == start {
                    return Err(format!("unexpected character '{}'", self.s[start] as char));
                }
                let tok = std::str::from_utf8(&self.s[start..self.i]).unwrap();
                Ok(Token::Num(tok))
            }
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        for want in word.bytes() {
            if self.bump()? != want {
                return Err(format!("malformed literal (expected \"{word}\")"));
            }
        }
        Ok(())
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.i == self.s.len()
    }
}

/// Canonicalize a JSON number token into the [`Value`] variant that
/// re-serializes to the same bytes (see the module docs).
fn number_value(tok: &str) -> Result<Value, String> {
    if !tok.contains(['.', 'e', 'E']) {
        if let Some(rest) = tok.strip_prefix('-') {
            // "-0" must stay a float: I64(0) would re-print without the sign.
            if rest.bytes().all(|b| b == b'0') {
                return Ok(Value::F64(-0.0));
            }
            if let Ok(v) = tok.parse::<i64>() {
                return Ok(Value::I64(v));
            }
        } else if let Ok(v) = tok.parse::<u64>() {
            return Ok(Value::U64(v));
        }
    }
    tok.parse::<f64>()
        .map(Value::F64)
        .map_err(|_| format!("malformed number \"{tok}\""))
}

fn token_f64(tok: Token) -> Result<f64, String> {
    match tok {
        Token::Num(t) => t
            .parse::<f64>()
            .map_err(|_| format!("malformed number \"{t}\"")),
        Token::Null => Ok(f64::NAN),
        _ => Err("expected a number or null".into()),
    }
}

fn token_u64(tok: Token, key: &str) -> Result<u64, String> {
    match tok {
        Token::Num(t) => t
            .parse::<u64>()
            .map_err(|_| format!("\"{key}\" must be an unsigned integer, got \"{t}\"")),
        _ => Err(format!("\"{key}\" must be an unsigned integer")),
    }
}

impl EventRecord {
    /// Parse one JSONL line produced by [`EventRecord::to_json`].
    ///
    /// Accepts any key order but requires the four header keys
    /// (`seq`/`step`/`kind`/`name`); re-serialization is canonical, so a
    /// line straight from `to_json` round-trips byte-for-byte.
    pub fn from_json(line: &str) -> Result<EventRecord, String> {
        let mut p = Parser::new(line);
        p.expect(b'{')?;
        let mut seq = None;
        let mut step = None;
        let mut kind = None;
        let mut name = None;
        let mut dur_s = None;
        let mut fields: Vec<(&'static str, Value)> = Vec::new();
        let mut first = true;
        loop {
            p.skip_ws();
            if p.peek() == Some(b'}') {
                p.i += 1;
                break;
            }
            if !first {
                p.expect(b',')?;
            }
            first = false;
            let key = p.parse_string()?;
            p.expect(b':')?;
            let tok = p.parse_token()?;
            match key.as_str() {
                "seq" => seq = Some(token_u64(tok, "seq")?),
                "step" => step = Some(token_u64(tok, "step")?),
                "kind" => match tok {
                    Token::Str(s) if s == "span" => kind = Some(RecordKind::Span),
                    Token::Str(s) if s == "event" => kind = Some(RecordKind::Event),
                    Token::Str(s) => return Err(format!("unknown kind \"{s}\"")),
                    _ => return Err("\"kind\" must be a string".into()),
                },
                "name" => match tok {
                    Token::Str(s) => name = Some(intern(&s)),
                    _ => return Err("\"name\" must be a string".into()),
                },
                "dur_s" => dur_s = Some(token_f64(tok)?),
                _ => {
                    let value = match tok {
                        Token::Num(t) => number_value(t)?,
                        Token::Str(s) => Value::Str(s),
                        Token::Bool(b) => Value::Bool(b),
                        // `null` is how the encoder spells a non-finite
                        // float; NaN re-serializes to `null`.
                        Token::Null => Value::F64(f64::NAN),
                    };
                    fields.push((intern(&key), value));
                }
            }
        }
        if !p.at_end() {
            return Err("trailing garbage after record".into());
        }
        Ok(EventRecord {
            seq: seq.ok_or("missing \"seq\"")?,
            step: step.ok_or("missing \"step\"")?,
            kind: kind.ok_or("missing \"kind\"")?,
            name: name.ok_or("missing \"name\"")?,
            dur_s,
            fields,
        })
    }
}

/// Parse one *flat* JSON object (string/number/bool/null values only) into
/// its key/value pairs, preserving order.
///
/// This is the shared reader for every flat JSONL artifact in the repo that
/// is not an event record — audit-stat summaries, calibration-store cells —
/// so they all accept exactly the grammar the canonical encoders emit.
/// Unknown keys are the caller's business (they are returned, not rejected),
/// which is what makes the artifacts forward-compatible: a newer writer can
/// add fields without breaking an older reader. Nested objects/arrays are
/// rejected like in the trace schema.
pub fn parse_flat_json(line: &str) -> Result<Vec<(String, Value)>, String> {
    let mut p = Parser::new(line);
    p.expect(b'{')?;
    let mut out: Vec<(String, Value)> = Vec::new();
    let mut first = true;
    loop {
        p.skip_ws();
        if p.peek() == Some(b'}') {
            p.i += 1;
            break;
        }
        if !first {
            p.expect(b',')?;
        }
        first = false;
        let key = p.parse_string()?;
        p.expect(b':')?;
        let value = match p.parse_token()? {
            Token::Num(t) => number_value(t)?,
            Token::Str(s) => Value::Str(s),
            Token::Bool(b) => Value::Bool(b),
            // `null` is the canonical spelling of a non-finite float.
            Token::Null => Value::F64(f64::NAN),
        };
        out.push((key, value));
    }
    if !p.at_end() {
        return Err("trailing garbage after object".into());
    }
    Ok(out)
}

/// Fetch a numeric field from [`parse_flat_json`] output as `f64`.
pub fn flat_f64(fields: &[(String, Value)], key: &str) -> Option<f64> {
    match fields.iter().find(|(k, _)| k == key)?.1 {
        Value::F64(v) => Some(v),
        Value::U64(v) => Some(v as f64),
        Value::I64(v) => Some(v as f64),
        _ => None,
    }
}

/// Fetch a non-negative integer field from [`parse_flat_json`] output.
pub fn flat_u64(fields: &[(String, Value)], key: &str) -> Option<u64> {
    match fields.iter().find(|(k, _)| k == key)?.1 {
        Value::U64(v) => Some(v),
        Value::I64(v) if v >= 0 => Some(v as u64),
        _ => None,
    }
}

/// Fetch a string field from [`parse_flat_json`] output.
pub fn flat_str<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a str> {
    match &fields.iter().find(|(k, _)| k == key)?.1 {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

// ---- streaming reader ----------------------------------------------------

/// Streams a JSONL trace file back into typed [`EventRecord`]s, skipping
/// blank lines and reporting parse failures with their line number.
pub struct TraceReader<R: BufRead = BufReader<File>> {
    lines: std::io::Lines<R>,
    line_no: usize,
}

impl TraceReader<BufReader<File>> {
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self::from_reader(BufReader::new(File::open(path)?)))
    }
}

impl<R: BufRead> TraceReader<R> {
    pub fn from_reader(reader: R) -> Self {
        TraceReader {
            lines: reader.lines(),
            line_no: 0,
        }
    }

    /// Read the whole stream, failing on the first bad line.
    pub fn read_all(self) -> Result<Vec<EventRecord>, TraceError> {
        self.collect()
    }
}

impl<R: BufRead> Iterator for TraceReader<R> {
    type Item = Result<EventRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.line_no += 1;
            match self.lines.next()? {
                Err(e) => return Some(Err(TraceError::Io(e))),
                Ok(line) if line.trim().is_empty() => continue,
                Ok(line) => {
                    return Some(
                        EventRecord::from_json(&line).map_err(|msg| TraceError::Parse {
                            line: self.line_no,
                            msg,
                        }),
                    )
                }
            }
        }
    }
}

/// Parse a whole trace file into memory.
pub fn read_trace(path: impl AsRef<Path>) -> Result<Vec<EventRecord>, TraceError> {
    TraceReader::open(path)?.read_all()
}

// ---- Chrome trace_event export -------------------------------------------

/// Process/track ids of the exported timeline.
const PID_PHASES: u32 = 1;
const PID_GPU: u32 = 2;
const PID_LB: u32 = 3;
/// Scheduler lanes (`sched.task` spans): one thread per execution slot, so
/// a DAG-scheduled step renders as a Gantt chart of the virtual node.
const PID_SCHED: u32 = 4;
/// Memory counter tracks (`mem.peak` / `mem.scope` events from
/// `memprof::publish`): live/peak bytes plus one track per scope.
const PID_MEM: u32 = 5;

/// (tid, label) per far-field/near-field phase, in pipeline order.
const PHASE_TRACKS: [(&str, u32); 6] = [
    ("phase.p2m", 1),
    ("phase.m2m", 2),
    ("phase.m2l", 3),
    ("phase.l2l", 4),
    ("phase.l2p", 5),
    ("phase.p2p", 6),
];
const TID_SOLVE: u32 = 7;
const TID_LB_EVENTS: u32 = 1;
const TID_ANOMALY: u32 = 2;
/// `sched.critpath` summary instants; slot tracks start at tid 1 (slot + 1).
const TID_CRITPATH: u32 = 0;

/// Exports a parsed trace as Chrome `trace_event` JSON (the "JSON Array
/// Format" object flavor: `{"traceEvents": [...]}`), with
///
/// * one track per FMM phase (P2M/M2M/M2L/L2L/L2P/P2P) plus a solve track,
/// * one track per GPU device (from per-launch `gpu.util` events),
/// * one track per scheduler slot (core0… / gpu0…, from `sched.task` spans
///   of an `ExecPolicy { trace: true }` run) — each task placed at its
///   simulated start time, named by phase, critical-path tasks starred,
/// * instant events for the balancer flight record (`lb.*`) and anomaly
///   detector (`anomaly.*`), and an `S` counter track.
///
/// Records carry a logical `step` clock rather than wall time, so the
/// exporter synthesizes a timeline: each step occupies a slot wide enough
/// for its longest track (far-field phases laid out sequentially, P2P and
/// the per-device kernels in parallel), and instants land at their step's
/// start. Durations are exported in microseconds.
pub struct ChromeTraceExporter {
    events: Vec<String>,
}

impl Default for ChromeTraceExporter {
    fn default() -> Self {
        Self::new()
    }
}

impl ChromeTraceExporter {
    pub fn new() -> Self {
        ChromeTraceExporter { events: Vec::new() }
    }

    /// One-shot convenience: build the full export for `records`.
    pub fn export(records: &[EventRecord]) -> String {
        let mut ex = Self::new();
        ex.add_records(records);
        ex.finish()
    }

    /// Append all of `records` to the timeline.
    pub fn add_records(&mut self, records: &[EventRecord]) {
        self.emit_metadata(records);
        // Group by logical step, preserving seq order within each.
        let mut by_step: BTreeMap<u64, Vec<&EventRecord>> = BTreeMap::new();
        for r in records {
            by_step.entry(r.step).or_default().push(r);
        }
        let mut base_us = 0.0f64;
        for (_step, recs) in by_step {
            let mut farfield_cursor = 0.0f64; // sequential P2M..L2P chain
            let mut solve_cursor = 0.0f64;
            let mut width = 1.0f64; // a step is never zero-width
            for r in recs {
                let dur_us = r.dur_s.unwrap_or(0.0).max(0.0) * 1e6;
                match r.kind {
                    RecordKind::Span => {
                        if r.name == "sched.task" {
                            // Scheduler Gantt slice: simulated start/finish
                            // inside the step, one thread per slot.
                            let slot = r.field_u64("slot").unwrap_or(0) as u32;
                            let start_us = r.field_f64("start").unwrap_or(0.0).max(0.0) * 1e6;
                            let on_crit = r.field_i64("crit").is_some_and(|c| c >= 0);
                            let phase = r.field_str("phase").unwrap_or("task");
                            let label = if on_crit {
                                format!("{phase}*")
                            } else {
                                phase.to_string()
                            };
                            self.push_named_span(
                                &label,
                                r,
                                PID_SCHED,
                                slot + 1,
                                base_us + start_us,
                                dur_us,
                            );
                            width = width.max(start_us + dur_us);
                        } else if let Some(&(_, tid)) =
                            PHASE_TRACKS.iter().find(|(n, _)| *n == r.name)
                        {
                            if r.name == "phase.p2p" {
                                // Near field runs concurrently with the
                                // far-field chain, from the step's start.
                                self.push_span(r, PID_PHASES, tid, base_us, dur_us);
                                width = width.max(dur_us);
                            } else {
                                self.push_span(
                                    r,
                                    PID_PHASES,
                                    tid,
                                    base_us + farfield_cursor,
                                    dur_us,
                                );
                                farfield_cursor += dur_us;
                            }
                        } else {
                            self.push_span(
                                r,
                                PID_PHASES,
                                TID_SOLVE,
                                base_us + solve_cursor,
                                dur_us,
                            );
                            solve_cursor += dur_us;
                        }
                    }
                    RecordKind::Event => {
                        if r.name == "gpu.util" {
                            let device = match r.field("device") {
                                Some(Value::U64(d)) => *d as u32,
                                _ => 0,
                            };
                            let dur = match r.field("elapsed_s") {
                                Some(Value::F64(s)) if s.is_finite() && *s > 0.0 => s * 1e6,
                                _ => 0.0,
                            };
                            self.push_gpu_span(r, device, base_us, dur);
                            width = width.max(dur);
                        } else if r.name == "step.record" {
                            self.push_counter(r, base_us);
                        } else if r.name == "sched.lane" {
                            let slot = r.field_u64("slot").unwrap_or(0) as u32;
                            self.push_instant(r, PID_SCHED, slot + 1, base_us);
                        } else if r.name == "sched.critpath" {
                            self.push_instant(r, PID_SCHED, TID_CRITPATH, base_us);
                        } else if r.name == "mem.peak" || r.name == "mem.scope" {
                            self.push_mem_counter(r, base_us);
                        } else {
                            let tid = if r.name.starts_with("anomaly.") {
                                TID_ANOMALY
                            } else {
                                TID_LB_EVENTS
                            };
                            self.push_instant(r, PID_LB, tid, base_us);
                        }
                    }
                }
            }
            width = width.max(farfield_cursor).max(solve_cursor);
            base_us += width;
        }
    }

    /// Finish the export: the `{"traceEvents": [...]}` document.
    pub fn finish(self) -> String {
        let mut out =
            String::with_capacity(64 + self.events.iter().map(String::len).sum::<usize>());
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        out.push_str(&self.events.join(",\n"));
        out.push_str("\n]}\n");
        out
    }

    fn emit_metadata(&mut self, records: &[EventRecord]) {
        self.push_meta_process(PID_PHASES, "fmm phases");
        for (name, tid) in PHASE_TRACKS {
            self.push_meta_thread(PID_PHASES, tid, name.trim_start_matches("phase."));
        }
        self.push_meta_thread(PID_PHASES, TID_SOLVE, "solve");
        self.push_meta_process(PID_LB, "load balancer");
        self.push_meta_thread(PID_LB, TID_LB_EVENTS, "flight record");
        self.push_meta_thread(PID_LB, TID_ANOMALY, "anomalies");
        let mut devices: Vec<u64> = records
            .iter()
            .filter(|r| r.name == "gpu.util")
            .filter_map(|r| match r.field("device") {
                Some(Value::U64(d)) => Some(*d),
                _ => None,
            })
            .collect();
        devices.sort_unstable();
        devices.dedup();
        if !devices.is_empty() {
            self.push_meta_process(PID_GPU, "gpu devices");
            for d in devices {
                self.push_meta_thread(PID_GPU, d as u32 + 1, &format!("gpu{d}"));
            }
        }
        // Memory counter tracks exist only when a memprof publish happened.
        if records
            .iter()
            .any(|r| r.name == "mem.peak" || r.name == "mem.scope")
        {
            self.push_meta_process(PID_MEM, "memory");
        }
        // Scheduler lanes: name each slot's thread from the records' own
        // `lane` labels (core0…/gpuN), discovered rather than assumed so the
        // export works for any core/lane count.
        let mut lanes: Vec<(u64, String)> = records
            .iter()
            .filter(|r| r.name == "sched.task" || r.name == "sched.lane")
            .filter_map(|r| {
                let slot = r.field_u64("slot")?;
                let lane = r.field_str("lane")?;
                Some((slot, lane.to_string()))
            })
            .collect();
        lanes.sort();
        lanes.dedup();
        if !lanes.is_empty() {
            self.push_meta_process(PID_SCHED, "scheduler lanes");
            self.push_meta_thread(PID_SCHED, TID_CRITPATH, "critical path");
            for (slot, lane) in lanes {
                self.push_meta_thread(PID_SCHED, slot as u32 + 1, &lane);
            }
        }
    }

    fn push_meta_process(&mut self, pid: u32, name: &str) {
        let mut e =
            format!("{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":");
        push_json_str(&mut e, name);
        e.push_str("}}");
        self.events.push(e);
    }

    fn push_meta_thread(&mut self, pid: u32, tid: u32, name: &str) {
        let mut e = format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":"
        );
        push_json_str(&mut e, name);
        e.push_str("}}");
        self.events.push(e);
    }

    fn push_span(&mut self, r: &EventRecord, pid: u32, tid: u32, ts_us: f64, dur_us: f64) {
        self.push_named_span(r.name, r, pid, tid, ts_us, dur_us);
    }

    fn push_named_span(
        &mut self,
        name: &str,
        r: &EventRecord,
        pid: u32,
        tid: u32,
        ts_us: f64,
        dur_us: f64,
    ) {
        let mut e = String::with_capacity(128);
        e.push_str("{\"name\":");
        push_json_str(&mut e, name);
        e.push_str(&format!(
            ",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":"
        ));
        push_json_f64(&mut e, ts_us);
        e.push_str(",\"dur\":");
        push_json_f64(&mut e, dur_us.max(0.001));
        e.push_str(",\"args\":");
        push_args(&mut e, r);
        e.push('}');
        self.events.push(e);
    }

    fn push_gpu_span(&mut self, r: &EventRecord, device: u32, ts_us: f64, dur_us: f64) {
        let mut e = String::with_capacity(128);
        e.push_str(&format!(
            "{{\"name\":\"gpu{device} p2p\",\"ph\":\"X\",\"pid\":{PID_GPU},\"tid\":{},\"ts\":",
            device + 1
        ));
        push_json_f64(&mut e, ts_us);
        e.push_str(",\"dur\":");
        push_json_f64(&mut e, dur_us.max(0.001));
        e.push_str(",\"args\":");
        push_args(&mut e, r);
        e.push('}');
        self.events.push(e);
    }

    fn push_instant(&mut self, r: &EventRecord, pid: u32, tid: u32, ts_us: f64) {
        let mut e = String::with_capacity(128);
        e.push_str("{\"name\":");
        push_json_str(&mut e, r.name);
        e.push_str(&format!(
            ",\"ph\":\"i\",\"s\":\"p\",\"pid\":{pid},\"tid\":{tid},\"ts\":"
        ));
        push_json_f64(&mut e, ts_us);
        e.push_str(",\"args\":");
        push_args(&mut e, r);
        e.push('}');
        self.events.push(e);
    }

    /// Memory observatory counter tracks: `mem.peak` renders live vs peak
    /// bytes as one two-series counter; each `mem.scope` renders that
    /// scope's cumulative allocated bytes as its own track.
    fn push_mem_counter(&mut self, r: &EventRecord, ts_us: f64) {
        if r.name == "mem.peak" {
            let (Some(live), Some(peak)) =
                (r.field_u64("live_bytes"), r.field_u64("peak_live_bytes"))
            else {
                return;
            };
            let mut e = format!("{{\"name\":\"mem bytes\",\"ph\":\"C\",\"pid\":{PID_MEM},\"ts\":");
            push_json_f64(&mut e, ts_us);
            e.push_str(&format!(",\"args\":{{\"live\":{live},\"peak\":{peak}}}}}"));
            self.events.push(e);
        } else {
            let (Some(scope), Some(bytes)) = (r.field_str("scope"), r.field_u64("alloc_bytes"))
            else {
                return;
            };
            let mut e = String::with_capacity(128);
            e.push_str("{\"name\":");
            push_json_str(&mut e, &format!("mem {scope}"));
            e.push_str(&format!(",\"ph\":\"C\",\"pid\":{PID_MEM},\"ts\":"));
            push_json_f64(&mut e, ts_us);
            e.push_str(&format!(",\"args\":{{\"alloc_bytes\":{bytes}}}}}"));
            self.events.push(e);
        }
    }

    /// The balancer's S trajectory as a Chrome counter track.
    fn push_counter(&mut self, r: &EventRecord, ts_us: f64) {
        let Some(Value::U64(s)) = r.field("s") else {
            return;
        };
        let mut e = format!("{{\"name\":\"S\",\"ph\":\"C\",\"pid\":{PID_LB},\"ts\":");
        push_json_f64(&mut e, ts_us);
        e.push_str(&format!(",\"args\":{{\"s\":{s}}}}}"));
        self.events.push(e);
    }
}

/// Serialize a record's fields (plus its seq/step) as the `args` object.
fn push_args(out: &mut String, r: &EventRecord) {
    out.push_str(&format!("{{\"seq\":{},\"step\":{}", r.seq, r.step));
    for (k, v) in &r.fields {
        out.push_str(",\"");
        out.push_str(k);
        out.push_str("\":");
        match v {
            Value::U64(x) => out.push_str(&x.to_string()),
            Value::I64(x) => out.push_str(&x.to_string()),
            Value::F64(x) => push_json_f64(out, *x),
            Value::Bool(x) => out.push_str(if *x { "true" } else { "false" }),
            Value::Str(s) => push_json_str(out, s),
        }
    }
    out.push('}');
}

// ---- generic JSON syntax check -------------------------------------------

/// Validate that `s` is one syntactically well-formed JSON value (objects,
/// arrays, scalars — full grammar, no schema). Used to sanity-check exported
/// Chrome traces without a full DOM parser.
pub fn json_syntax_ok(s: &str) -> bool {
    let mut p = Parser::new(s);
    skip_json_value(&mut p).is_ok() && p.at_end()
}

fn skip_json_value(p: &mut Parser) -> Result<(), String> {
    p.skip_ws();
    match p.peek().ok_or("unexpected end")? {
        b'{' => {
            p.i += 1;
            p.skip_ws();
            if p.peek() == Some(b'}') {
                p.i += 1;
                return Ok(());
            }
            loop {
                p.parse_string()?;
                p.expect(b':')?;
                skip_json_value(p)?;
                p.skip_ws();
                match p.bump()? {
                    b',' => p.skip_ws(),
                    b'}' => return Ok(()),
                    c => return Err(format!("expected ',' or '}}', found '{}'", c as char)),
                }
            }
        }
        b'[' => {
            p.i += 1;
            p.skip_ws();
            if p.peek() == Some(b']') {
                p.i += 1;
                return Ok(());
            }
            loop {
                skip_json_value(p)?;
                p.skip_ws();
                match p.bump()? {
                    b',' => {}
                    b']' => return Ok(()),
                    c => return Err(format!("expected ',' or ']', found '{}'", c as char)),
                }
            }
        }
        _ => p.parse_token().map(|_| ()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(fields: Vec<(&'static str, Value)>) -> EventRecord {
        EventRecord {
            seq: 42,
            step: 7,
            kind: RecordKind::Event,
            name: "lb.transition",
            dur_s: None,
            fields,
        }
    }

    #[test]
    fn roundtrip_basic() {
        let r = rec(vec![
            ("from", Value::Str("search".into())),
            ("s", Value::U64(220)),
            ("neg", Value::I64(-3)),
            ("frac", Value::F64(0.125)),
            ("flag", Value::Bool(true)),
        ]);
        let line = r.to_json();
        let back = EventRecord::from_json(&line).unwrap();
        assert_eq!(back.to_json(), line);
        assert_eq!(back, r);
    }

    #[test]
    fn roundtrip_span_duration() {
        let mut r = rec(vec![("ops", Value::U64(4096))]);
        r.kind = RecordKind::Span;
        r.dur_s = Some(0.0123);
        let line = r.to_json();
        let back = EventRecord::from_json(&line).unwrap();
        assert_eq!(back.dur_s, Some(0.0123));
        assert_eq!(back.to_json(), line);
    }

    #[test]
    fn roundtrip_nonfinite_and_negative_zero() {
        let mut r = rec(vec![
            ("nan", Value::F64(f64::NAN)),
            ("inf", Value::F64(f64::INFINITY)),
            ("nz", Value::F64(-0.0)),
        ]);
        r.dur_s = Some(f64::NEG_INFINITY);
        r.kind = RecordKind::Span;
        let line = r.to_json();
        assert!(line.contains("\"nan\":null"));
        assert!(line.contains("\"nz\":-0"));
        let back = EventRecord::from_json(&line).unwrap();
        // Byte-for-byte round trip even though NaN != NaN.
        assert_eq!(back.to_json(), line);
        assert!(matches!(back.field("nz"), Some(Value::F64(z)) if z.is_sign_negative()));
        assert!(matches!(back.dur_s, Some(d) if d.is_nan()));
    }

    #[test]
    fn roundtrip_extreme_integers_and_floats() {
        let r = rec(vec![
            ("umax", Value::U64(u64::MAX)),
            ("imin", Value::I64(i64::MIN)),
            ("big", Value::F64(1e300)),
            ("tiny", Value::F64(5e-324)),
        ]);
        let line = r.to_json();
        let back = EventRecord::from_json(&line).unwrap();
        assert_eq!(back.to_json(), line);
        assert_eq!(back.field("umax"), Some(&Value::U64(u64::MAX)));
        assert_eq!(back.field("imin"), Some(&Value::I64(i64::MIN)));
    }

    #[test]
    fn roundtrip_string_escapes() {
        let r = rec(vec![(
            "cause",
            Value::Str("a\"b\\c\nd\te\u{1}f — ünïcode 🚀".into()),
        )]);
        let line = r.to_json();
        let back = EventRecord::from_json(&line).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_json(), line);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "{}",
            "not json",
            "{\"seq\":1,\"step\":0,\"kind\":\"span\",\"name\":\"x\"} trailing",
            "{\"seq\":1,\"step\":0,\"kind\":\"what\",\"name\":\"x\"}",
            "{\"seq\":-1,\"step\":0,\"kind\":\"event\",\"name\":\"x\"}",
            "{\"seq\":1,\"step\":0,\"kind\":\"event\",\"name\":\"x\",\"v\":[1]}",
        ] {
            assert!(EventRecord::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn reader_streams_and_reports_line_numbers() {
        let good = rec(vec![]).to_json();
        let data = format!("{good}\n\n{good}\nBROKEN\n");
        let mut reader = TraceReader::from_reader(std::io::Cursor::new(data));
        assert!(reader.next().unwrap().is_ok());
        assert!(reader.next().unwrap().is_ok());
        match reader.next().unwrap() {
            Err(TraceError::Parse { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn interning_is_stable() {
        let a = intern("some.event");
        let b = intern("some.event");
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn chrome_export_has_tracks_and_valid_json() {
        let mut records = Vec::new();
        let mut seq = 0u64;
        for step in 0..3u64 {
            for (name, _) in PHASE_TRACKS {
                records.push(EventRecord {
                    seq,
                    step,
                    kind: RecordKind::Span,
                    name: intern(name),
                    dur_s: Some(0.001 * (step + 1) as f64),
                    fields: vec![("ops", Value::U64(100))],
                });
                seq += 1;
            }
            for device in 0..2u64 {
                records.push(EventRecord {
                    seq,
                    step,
                    kind: RecordKind::Event,
                    name: "gpu.util",
                    dur_s: None,
                    fields: vec![
                        ("device", Value::U64(device)),
                        ("elapsed_s", Value::F64(0.0005)),
                        ("util", Value::F64(0.9)),
                    ],
                });
                seq += 1;
            }
            records.push(EventRecord {
                seq,
                step,
                kind: RecordKind::Event,
                name: "step.record",
                dur_s: None,
                fields: vec![("s", Value::U64(128))],
            });
            seq += 1;
        }
        records.push(EventRecord {
            seq,
            step: 1,
            kind: RecordKind::Event,
            name: "lb.transition",
            dur_s: None,
            fields: vec![("from", Value::Str("search".into()))],
        });
        let json = ChromeTraceExporter::export(&records);
        assert!(json_syntax_ok(&json), "export is not valid JSON");
        assert!(json.contains("\"traceEvents\""));
        for want in [
            "\"m2l\"",
            "\"gpu0\"",
            "\"gpu1\"",
            "\"load balancer\"",
            "\"ph\":\"X\"",
            "\"ph\":\"i\"",
            "\"ph\":\"C\"",
            "\"ph\":\"M\"",
        ] {
            assert!(json.contains(want), "missing {want} in export");
        }
    }

    #[test]
    fn chrome_export_renders_scheduler_lanes() {
        // Two sched.task slices on different slots (one on the critical
        // path), a sched.lane instant, and a sched.critpath summary.
        let task = |seq, slot: u64, lane: &str, start: f64, dur: f64, crit: i64| EventRecord {
            seq,
            step: 0,
            kind: RecordKind::Span,
            name: "sched.task",
            dur_s: Some(dur),
            fields: vec![
                ("task", Value::U64(seq)),
                ("phase", Value::Str("m2l".into())),
                ("lane", Value::Str(lane.into())),
                ("slot", Value::U64(slot)),
                ("start", Value::F64(start)),
                ("crit", Value::I64(crit)),
            ],
        };
        let records = vec![
            task(0, 0, "core0", 0.0, 0.002, 0),
            task(1, 2, "gpu0", 0.001, 0.004, -1),
            EventRecord {
                seq: 2,
                step: 0,
                kind: RecordKind::Event,
                name: "sched.lane",
                dur_s: None,
                fields: vec![
                    ("lane", Value::Str("gpu0".into())),
                    ("slot", Value::U64(2)),
                    ("util", Value::F64(0.8)),
                ],
            },
            EventRecord {
                seq: 3,
                step: 0,
                kind: RecordKind::Event,
                name: "sched.critpath",
                dur_s: None,
                fields: vec![("len", Value::U64(1)), ("sum", Value::F64(0.002))],
            },
        ];
        let json = ChromeTraceExporter::export(&records);
        assert!(json_syntax_ok(&json), "export is not valid JSON");
        for want in [
            "\"scheduler lanes\"",
            "\"core0\"",
            "\"gpu0\"",
            "\"critical path\"",
            // The on-path slice is starred; the off-path one is not.
            "\"name\":\"m2l*\"",
            "\"name\":\"m2l\"",
            "\"name\":\"sched.critpath\"",
        ] {
            assert!(json.contains(want), "missing {want} in export");
        }
        // The gpu0 slice starts 1000us into the step on tid 3 (slot 2 + 1).
        assert!(json.contains("\"tid\":3,\"ts\":1000"), "{json}");
    }

    #[test]
    fn chrome_export_renders_memory_counters() {
        let records = vec![
            EventRecord {
                seq: 0,
                step: 3,
                kind: RecordKind::Event,
                name: "mem.scope",
                dur_s: None,
                fields: vec![
                    ("scope", Value::Str("rebin".into())),
                    ("allocs", Value::U64(0)),
                    ("frees", Value::U64(0)),
                    ("alloc_bytes", Value::U64(4096)),
                    ("free_bytes", Value::U64(0)),
                    ("peak_live_bytes", Value::U64(4096)),
                ],
            },
            EventRecord {
                seq: 1,
                step: 3,
                kind: RecordKind::Event,
                name: "mem.peak",
                dur_s: None,
                fields: vec![
                    ("allocs", Value::U64(12)),
                    ("frees", Value::U64(4)),
                    ("live_bytes", Value::U64(1024)),
                    ("peak_live_bytes", Value::U64(2048)),
                ],
            },
        ];
        let json = ChromeTraceExporter::export(&records);
        assert!(json_syntax_ok(&json), "export is not valid JSON");
        for want in [
            "\"memory\"",
            "\"name\":\"mem rebin\"",
            "\"alloc_bytes\":4096",
            "\"name\":\"mem bytes\"",
            "\"live\":1024,\"peak\":2048",
        ] {
            assert!(json.contains(want), "missing {want} in export");
        }
        // Without mem events, no memory process metadata appears.
        let empty = ChromeTraceExporter::export(&[]);
        assert!(!empty.contains("\"memory\""));
    }

    #[test]
    fn json_syntax_checker_accepts_and_rejects() {
        assert!(json_syntax_ok("{\"a\":[1,2,{\"b\":null}],\"c\":\"x\"}"));
        assert!(json_syntax_ok("[]"));
        assert!(json_syntax_ok("3.5"));
        assert!(!json_syntax_ok("{\"a\":}"));
        assert!(!json_syntax_ok("[1,2"));
        assert!(!json_syntax_ok("{} extra"));
    }
}
