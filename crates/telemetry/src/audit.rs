//! Cost-model audit trail: pairs of (predicted, observed) step times and
//! rolling error statistics over them.
//!
//! The paper's balancer is only as good as its observational cost model
//! `T = Σ M(op)·C(op)`; the audit trail makes the model's honesty a
//! first-class, testable quantity instead of an article of faith.

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::event::push_json_f64;

/// Default rolling-window length for [`AuditTrail`].
pub const DEFAULT_WINDOW: usize = 256;

/// One predict-vs-observe pairing for a single solve step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionAudit {
    /// Logical step index the prediction was made for.
    pub step: u64,
    /// Predicted CPU-side time (seconds).
    pub pred_cpu: f64,
    /// Predicted GPU-side time (seconds).
    pub pred_gpu: f64,
    /// Observed CPU-side time (seconds).
    pub actual_cpu: f64,
    /// Observed GPU-side time (seconds).
    pub actual_gpu: f64,
    /// Whether the balancer acted on this step (rebuild / Enforce_S / FGO).
    pub acted: bool,
}

fn rel_err(pred: f64, actual: f64) -> f64 {
    if actual.abs() < 1e-30 {
        if pred.abs() < 1e-30 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (pred - actual).abs() / actual.abs()
    }
}

impl PredictionAudit {
    /// Predicted makespan: concurrent CPU/GPU sides ⇒ max.
    pub fn pred_total(&self) -> f64 {
        self.pred_cpu.max(self.pred_gpu)
    }
    /// Observed makespan.
    pub fn actual_total(&self) -> f64 {
        self.actual_cpu.max(self.actual_gpu)
    }
    /// |pred−actual| / actual on the makespan — the headline honesty metric.
    pub fn rel_error(&self) -> f64 {
        rel_err(self.pred_total(), self.actual_total())
    }
    pub fn rel_error_cpu(&self) -> f64 {
        rel_err(self.pred_cpu, self.actual_cpu)
    }
    pub fn rel_error_gpu(&self) -> f64 {
        rel_err(self.pred_gpu, self.actual_gpu)
    }

    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        let _ = write!(out, "{{\"step\":{},\"pred_cpu\":", self.step);
        push_json_f64(&mut out, self.pred_cpu);
        out.push_str(",\"pred_gpu\":");
        push_json_f64(&mut out, self.pred_gpu);
        out.push_str(",\"actual_cpu\":");
        push_json_f64(&mut out, self.actual_cpu);
        out.push_str(",\"actual_gpu\":");
        push_json_f64(&mut out, self.actual_gpu);
        out.push_str(",\"rel_error\":");
        push_json_f64(&mut out, self.rel_error());
        let _ = write!(out, ",\"acted\":{}}}", self.acted);
        out
    }
}

/// Rolling window of audits with summary statistics.
#[derive(Debug, Clone, Default)]
pub struct AuditTrail {
    window: usize,
    audits: VecDeque<PredictionAudit>,
    total: u64,
}

impl AuditTrail {
    pub fn new() -> Self {
        Self::with_window(DEFAULT_WINDOW)
    }

    pub fn with_window(window: usize) -> Self {
        AuditTrail {
            window: window.max(1),
            audits: VecDeque::new(),
            total: 0,
        }
    }

    pub fn push(&mut self, audit: PredictionAudit) {
        if self.audits.len() == self.window {
            self.audits.pop_front();
        }
        self.audits.push_back(audit);
        self.total += 1;
    }

    /// Audits currently in the window, oldest first.
    pub fn audits(&self) -> impl Iterator<Item = &PredictionAudit> {
        self.audits.iter()
    }

    pub fn len(&self) -> usize {
        self.audits.len()
    }

    pub fn is_empty(&self) -> bool {
        self.audits.is_empty()
    }

    /// Audits ever pushed (including ones rolled out of the window).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Summary over the current window; zeros when empty.
    pub fn stats(&self) -> AuditStats {
        let mut errs: Vec<f64> = self
            .audits
            .iter()
            .map(|a| a.rel_error())
            .filter(|e| e.is_finite())
            .collect();
        if errs.is_empty() {
            return AuditStats {
                count: self.audits.len(),
                acted: self.audits.iter().filter(|a| a.acted).count(),
                ..AuditStats::default()
            };
        }
        errs.sort_by(|a, b| a.total_cmp(b));
        let n = errs.len();
        let q = |q: f64| -> f64 {
            let idx = ((q * (n - 1) as f64).round() as usize).min(n - 1);
            errs[idx]
        };
        AuditStats {
            count: self.audits.len(),
            acted: self.audits.iter().filter(|a| a.acted).count(),
            mean: errs.iter().sum::<f64>() / n as f64,
            median: q(0.5),
            p90: q(0.9),
            max: errs[n - 1],
        }
    }
}

/// Rolling relative-error statistics over an [`AuditTrail`] window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AuditStats {
    pub count: usize,
    /// Audits in the window where the balancer acted.
    pub acted: usize,
    pub mean: f64,
    pub median: f64,
    pub p90: f64,
    pub max: f64,
}

impl AuditStats {
    /// Parse the flat object [`AuditStats::to_json`] writes. Unknown fields
    /// are ignored (forward compatibility: the calibration store reads
    /// stats written by possibly newer binaries); missing fields default to
    /// zero the same way an empty window does.
    pub fn from_json(line: &str) -> Result<Self, String> {
        let fields = crate::trace::parse_flat_json(line)?;
        let num = |k: &str| crate::trace::flat_f64(&fields, k).unwrap_or(0.0);
        let int = |k: &str| crate::trace::flat_u64(&fields, k).unwrap_or(0) as usize;
        Ok(AuditStats {
            count: int("count"),
            acted: int("acted"),
            mean: num("mean"),
            median: num("median"),
            p90: num("p90"),
            max: num("max"),
        })
    }

    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        let _ = write!(
            out,
            "{{\"count\":{},\"acted\":{},\"mean\":",
            self.count, self.acted
        );
        push_json_f64(&mut out, self.mean);
        out.push_str(",\"median\":");
        push_json_f64(&mut out, self.median);
        out.push_str(",\"p90\":");
        push_json_f64(&mut out, self.p90);
        out.push_str(",\"max\":");
        push_json_f64(&mut out, self.max);
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit(step: u64, pred: f64, actual: f64) -> PredictionAudit {
        PredictionAudit {
            step,
            pred_cpu: pred,
            pred_gpu: 0.0,
            actual_cpu: actual,
            actual_gpu: 0.0,
            acted: false,
        }
    }

    #[test]
    fn rel_error_basics() {
        let a = audit(0, 1.1, 1.0);
        assert!((a.rel_error() - 0.1).abs() < 1e-12);
        let exact = audit(0, 0.0, 0.0);
        assert_eq!(exact.rel_error(), 0.0);
        let infinite = audit(0, 1.0, 0.0);
        assert!(infinite.rel_error().is_infinite());
    }

    #[test]
    fn total_is_makespan() {
        let a = PredictionAudit {
            step: 0,
            pred_cpu: 1.0,
            pred_gpu: 3.0,
            actual_cpu: 2.0,
            actual_gpu: 1.0,
            acted: true,
        };
        assert_eq!(a.pred_total(), 3.0);
        assert_eq!(a.actual_total(), 2.0);
        assert!((a.rel_error() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn trail_window_rolls() {
        let mut t = AuditTrail::with_window(3);
        for i in 0..5 {
            t.push(audit(i, 1.0, 1.0));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_recorded(), 5);
        assert_eq!(t.audits().next().unwrap().step, 2);
    }

    #[test]
    fn stats_median_and_max() {
        let mut t = AuditTrail::new();
        for (p, a) in [(1.05, 1.0), (1.1, 1.0), (1.2, 1.0), (2.0, 1.0)] {
            t.push(audit(0, p, a));
        }
        let s = t.stats();
        assert_eq!(s.count, 4);
        assert!((s.max - 1.0).abs() < 1e-12);
        assert!(s.median >= 0.05 && s.median <= 0.2, "median={}", s.median);
        assert!(s.mean > 0.0);
    }

    #[test]
    fn stats_empty_and_infinite_filtered() {
        let t = AuditTrail::new();
        assert_eq!(t.stats(), AuditStats::default());
        let mut t = AuditTrail::new();
        t.push(audit(0, 1.0, 0.0)); // infinite rel error → filtered
        let s = t.stats();
        assert_eq!(s.count, 1);
        assert_eq!(s.median, 0.0);
    }

    #[test]
    fn window_of_one_keeps_only_latest() {
        // `with_window(0)` clamps to 1 — the degenerate "latest only" trail.
        let mut t = AuditTrail::with_window(0);
        t.push(audit(0, 1.5, 1.0));
        t.push(audit(1, 1.1, 1.0));
        assert_eq!(t.len(), 1);
        assert_eq!(t.total_recorded(), 2);
        assert_eq!(t.audits().next().unwrap().step, 1);
        let s = t.stats();
        assert_eq!(s.count, 1);
        assert!((s.median - 0.1).abs() < 1e-12, "median={}", s.median);
        assert_eq!(s.median, s.max);
    }

    #[test]
    fn exactly_full_window_does_not_evict_early() {
        // Filling to exactly the window length must keep every audit; the
        // eviction boundary is at window+1, not window.
        let mut t = AuditTrail::with_window(4);
        for i in 0..4 {
            t.push(audit(i, 1.0 + 0.1 * (i + 1) as f64, 1.0));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.total_recorded(), 4);
        assert_eq!(t.audits().next().unwrap().step, 0);
        // One more evicts exactly one, from the front.
        t.push(audit(4, 1.0, 1.0));
        assert_eq!(t.len(), 4);
        assert_eq!(t.total_recorded(), 5);
        assert_eq!(t.audits().next().unwrap().step, 1);
    }

    #[test]
    fn total_recorded_diverges_from_len_after_eviction() {
        let mut t = AuditTrail::with_window(2);
        assert_eq!((t.len(), t.total_recorded()), (0, 0));
        for i in 0..10 {
            t.push(audit(i, 1.0, 1.0));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_recorded(), 10);
        // Stats are over the *window*, not over everything ever recorded.
        assert_eq!(t.stats().count, 2);
    }

    #[test]
    fn stats_round_trip_through_json() {
        let mut t = AuditTrail::new();
        for (i, (p, a)) in [(1.05, 1.0), (1.3, 1.0), (0.8, 1.0), (2.0, 1.0)]
            .iter()
            .enumerate()
        {
            let mut au = audit(i as u64, *p, *a);
            au.acted = i % 2 == 0;
            t.push(au);
        }
        let s = t.stats();
        let text = s.to_json();
        assert!(crate::json_syntax_ok(&text));
        let back = AuditStats::from_json(&text).unwrap();
        assert_eq!(back, s);
        // Unknown fields from a newer writer are tolerated.
        let grown = text.replacen('{', "{\"p99\":0.5,\"note\":\"x\",", 1);
        let back = AuditStats::from_json(&grown).unwrap();
        assert_eq!(back, s);
        // Default stats round-trip too (the empty-window case).
        let d = AuditStats::default();
        assert_eq!(AuditStats::from_json(&d.to_json()).unwrap(), d);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(AuditStats::from_json("not json").is_err());
        assert!(AuditStats::from_json("{\"count\":1").is_err());
    }

    #[test]
    fn json_shapes() {
        let a = audit(3, 1.0, 2.0);
        let j = a.to_json();
        assert!(j.contains("\"step\":3"));
        assert!(j.contains("\"acted\":false"));
        let mut t = AuditTrail::new();
        t.push(a);
        assert!(t.stats().to_json().contains("\"count\":1"));
    }
}
