//! Metrics registry: counters, gauges, and log-bucketed histograms keyed by
//! static names.
//!
//! All handles are lock-free after first registration (atomics behind an
//! `Arc`); the registry itself takes a short write lock only when a new name
//! first appears. Histograms use geometric buckets spanning `[1e-12, ∞)`
//! with ratio 2^(1/3) (~26% per bucket, 256 buckets ≈ 25 decades), which is
//! plenty for timing data while keeping quantile error under the bucket
//! width.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::event::{push_json_f64, push_json_str};

const HIST_BUCKETS: usize = 256;
const HIST_MIN: f64 = 1e-12;
// ratio 2^(1/3): three buckets per doubling.
const HIST_LOG2_PER_BUCKET: f64 = 1.0 / 3.0;

/// Monotone counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge holding an `f64` (stored as bits).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
    set_count: AtomicI64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
            set_count: AtomicI64::new(0),
        }
    }
}

impl Gauge {
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
        self.set_count.fetch_add(1, Ordering::Relaxed);
    }
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
    /// Number of times the gauge was written (0 ⇒ never set).
    pub fn writes(&self) -> i64 {
        self.set_count.load(Ordering::Relaxed)
    }
}

/// Log-bucketed histogram for non-negative samples (timings, ratios).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum stored as integer picoseconds-like fixed point would lose range;
    /// instead accumulate via CAS on f64 bits.
    sum_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

fn bucket_index(v: f64) -> usize {
    // Callers reject non-finite samples, so `v` is an ordinary value here.
    if v <= HIST_MIN {
        return 0;
    }
    let idx = ((v / HIST_MIN).log2() / HIST_LOG2_PER_BUCKET) as usize + 1;
    idx.min(HIST_BUCKETS - 1)
}

/// Geometric midpoint of bucket `i`, used when reporting quantiles.
fn bucket_mid(i: usize) -> f64 {
    if i == 0 {
        return HIST_MIN;
    }
    let lo = HIST_MIN * (2f64).powf(HIST_LOG2_PER_BUCKET * (i - 1) as f64);
    let hi = lo * (2f64).powf(HIST_LOG2_PER_BUCKET);
    (lo * hi).sqrt()
}

impl Histogram {
    pub fn record(&self, v: f64) {
        if !v.is_finite() || v < 0.0 {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // f64 accumulate via CAS loop; contention is negligible at our rates.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Approximate quantile `q ∈ [0,1]` from cumulative bucket counts,
    /// reported at the geometric midpoint of the selected bucket.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // rank: smallest index with cumulative count >= ceil(q*n), min 1.
        let target = ((q * n as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= target {
                return bucket_mid(i);
            }
        }
        bucket_mid(HIST_BUCKETS - 1)
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// Point-in-time histogram statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: f64,
    pub mean: f64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
}

/// Registry of named metrics. Names must be `'static` so handles can be
/// cached and so snapshots carry no allocation churn.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
}

fn get_or_insert<T: Default>(
    map: &RwLock<BTreeMap<&'static str, Arc<T>>>,
    name: &'static str,
) -> Arc<T> {
    if let Some(m) = map.read().unwrap().get(name) {
        return Arc::clone(m);
    }
    let mut w = map.write().unwrap();
    Arc::clone(w.entry(name).or_default())
}

impl MetricsRegistry {
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// Snapshot every metric, sorted by name within each family.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (*k, v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (*k, v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (*k, v.snapshot()))
                .collect(),
        }
    }

    /// One-call JSON dump of the whole registry — counters, gauges, and
    /// histogram quantiles as one stable object (same shape as
    /// [`MetricsSnapshot::to_json`]). The canonical per-run metrics dump
    /// for harnesses and reports.
    pub fn snapshot_json(&self) -> String {
        self.snapshot().to_json()
    }
}

/// Point-in-time view of the whole registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(&'static str, u64)>,
    pub gauges: Vec<(&'static str, f64)>,
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| *v)
    }
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| *v)
    }
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v)
    }

    /// Encode as one JSON object: `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, k);
            let _ = write!(out, ":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, k);
            out.push(':');
            push_json_f64(&mut out, *v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, k);
            let _ = write!(out, ":{{\"count\":{},\"mean\":", h.count);
            push_json_f64(&mut out, h.mean);
            out.push_str(",\"p50\":");
            push_json_f64(&mut out, h.p50);
            out.push_str(",\"p90\":");
            push_json_f64(&mut out, h.p90);
            out.push_str(",\"p99\":");
            push_json_f64(&mut out, h.p99);
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = MetricsRegistry::default();
        reg.counter("a").add(2);
        reg.counter("a").add(3);
        reg.gauge("g").set(1.5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("a"), Some(5));
        assert_eq!(snap.gauge("g"), Some(1.5));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::default();
        for i in 1..=1000 {
            h.record(i as f64 * 1e-3); // 1ms .. 1s
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        // bucket width is ~26%, so allow that much slack around the truth.
        assert!((s.p50 / 0.5 - 1.0).abs() < 0.3, "p50={}", s.p50);
        assert!((s.p90 / 0.9 - 1.0).abs() < 0.3, "p90={}", s.p90);
        assert!((s.p99 / 0.99 - 1.0).abs() < 0.3, "p99={}", s.p99);
        assert!((s.mean - 0.5005).abs() < 0.01);
    }

    #[test]
    fn histogram_ignores_junk() {
        let h = Histogram::default();
        h.record(f64::NAN);
        h.record(-1.0);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn histogram_tiny_and_huge_clamp() {
        let h = Histogram::default();
        h.record(0.0); // below MIN → bucket 0
        h.record(1e30); // above top → last bucket
        assert_eq!(h.count(), 2);
        assert!(h.quantile(0.0) >= 0.0);
    }

    #[test]
    fn concurrent_updates_sum_correctly() {
        let reg = Arc::new(MetricsRegistry::default());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let r = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                let c = r.counter("hits");
                let h = r.histogram("lat");
                for _ in 0..1000 {
                    c.add(1);
                    h.record(1e-3);
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("hits"), Some(4000));
        assert_eq!(snap.histogram("lat").unwrap().count, 4000);
    }

    #[test]
    fn snapshot_json_shape() {
        let reg = MetricsRegistry::default();
        reg.counter("c").add(1);
        reg.gauge("g").set(f64::NAN);
        reg.histogram("h").record(0.25);
        let j = reg.snapshot().to_json();
        assert!(j.contains("\"counters\":{\"c\":1}"));
        assert!(j.contains("\"g\":null"));
        assert!(j.contains("\"count\":1"));
        // The one-call dump is identical to snapshotting then encoding.
        assert_eq!(reg.snapshot_json(), j);
    }
}
