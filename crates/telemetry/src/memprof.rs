//! Scoped allocation profiling: a counting [`GlobalAlloc`] wrapper plus a
//! thread-local RAII [`AllocScope`] tag stack that attributes allocation
//! counts, bytes, and peak-live-bytes to named scopes.
//!
//! Two accounting systems coexist in the workspace and answer different
//! questions (see DESIGN.md §14):
//!
//! * **Allocator accounting** (this module, feature `memprof`): *how many
//!   times did we hit the allocator, and from where?* Exact counts from a
//!   [`CountingAlloc`] installed as the `#[global_allocator]` by bins and
//!   test harnesses. Deterministic on a fixed workload, so CI can gate the
//!   steady-state solve path at **zero** allocations with no noise band.
//! * **Structural accounting** (`heap_bytes()` on `Bodies`, `Octree`,
//!   `IncrementalLists`, `ExecutionPlan`, [`Recorder`](crate::Recorder)):
//!   *how big are the load-bearing structures?* Computed from container
//!   capacities, available with or without the feature, and attributable
//!   to bytes-per-body / bytes-per-node ratios.
//!
//! Attribution is **exclusive** (innermost frame only): an allocation made
//! while scopes `A` → `B` are both live is charged to `B` alone, never to
//! `A`. This is what makes the zero-alloc gate composable — the
//! `"telemetry"` scope wrapped around `Recorder::push` absorbs observer
//! allocations so they never pollute the `"rebin"`/`"plan.refresh"` scopes
//! that the gate covers.
//!
//! With the feature **off**, [`AllocScope::enter`] is an inline no-op unit
//! guard and every query returns zeros: call sites stay unconditional, the
//! build carries no allocator wrapping, and the only residue is a dead
//! `#[must_use]` unit struct.

#[cfg(feature = "memprof")]
use std::alloc::{GlobalAlloc, Layout, System};
#[cfg(feature = "memprof")]
use std::cell::UnsafeCell;
#[cfg(feature = "memprof")]
use std::collections::BTreeMap;
#[cfg(feature = "memprof")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "memprof")]
use std::sync::Mutex;

use crate::recorder::Recorder;
use crate::Value;

/// Whole-process allocation totals since start (or the last [`reset`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GlobalStats {
    pub allocs: u64,
    pub frees: u64,
    pub alloc_bytes: u64,
    pub free_bytes: u64,
    /// Bytes currently live (allocated minus freed).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` since start / last [`reset_peak`].
    pub peak_live_bytes: u64,
}

/// Per-scope totals accumulated across every activation of a scope name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScopeStats {
    pub allocs: u64,
    pub frees: u64,
    pub alloc_bytes: u64,
    pub free_bytes: u64,
    /// Maximum net live bytes attributable to this scope within a single
    /// activation (allocations minus frees made *while innermost*).
    pub peak_live_bytes: u64,
}

impl ScopeStats {
    /// Net bytes retained across all activations (saturating at zero: a
    /// scope that frees buffers allocated elsewhere nets negative, which
    /// is "no retained footprint" for reporting purposes).
    pub fn net_bytes(&self) -> u64 {
        self.alloc_bytes.saturating_sub(self.free_bytes)
    }
}

// ---------------------------------------------------------------------------
// Feature ON: the real implementation.
// ---------------------------------------------------------------------------

/// Global counters. Only [`CountingAlloc`] advances them, so
/// `ALLOCS > 0` doubles as "the wrapper is installed in this process".
#[cfg(feature = "memprof")]
static ALLOCS: AtomicU64 = AtomicU64::new(0);
#[cfg(feature = "memprof")]
static FREES: AtomicU64 = AtomicU64::new(0);
#[cfg(feature = "memprof")]
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
#[cfg(feature = "memprof")]
static FREE_BYTES: AtomicU64 = AtomicU64::new(0);
#[cfg(feature = "memprof")]
static LIVE: AtomicU64 = AtomicU64::new(0);
#[cfg(feature = "memprof")]
static PEAK: AtomicU64 = AtomicU64::new(0);

/// Accumulated per-scope totals, folded in on [`AllocScope`] drop (the
/// fold may allocate — it runs *outside* the allocator hook, attributed to
/// the parent frame if any).
#[cfg(feature = "memprof")]
static SCOPES: Mutex<BTreeMap<&'static str, ScopeStats>> = Mutex::new(BTreeMap::new());

/// Deepest scope nesting tracked per thread. Scopes entered beyond this
/// depth merge their attribution into the `MAX_DEPTH`-th frame — the
/// workspace nests at most 3 deep (solve → phase → telemetry).
#[cfg(feature = "memprof")]
const MAX_DEPTH: usize = 16;

#[cfg(feature = "memprof")]
#[derive(Clone, Copy)]
struct Frame {
    name: &'static str,
    allocs: u64,
    frees: u64,
    alloc_bytes: u64,
    free_bytes: u64,
    /// Net live bytes from allocations made while this frame was innermost;
    /// signed because a frame may free more than it allocates.
    net_live: i64,
    peak_net: i64,
}

#[cfg(feature = "memprof")]
const EMPTY_FRAME: Frame = Frame {
    name: "",
    allocs: 0,
    frees: 0,
    alloc_bytes: 0,
    free_bytes: 0,
    net_live: 0,
    peak_net: 0,
};

#[cfg(feature = "memprof")]
struct FrameStack {
    /// Logical depth; may exceed `MAX_DEPTH`, in which case the extra
    /// scopes alias the last frame.
    depth: usize,
    frames: [Frame; MAX_DEPTH],
}

// SAFETY of every `STACK.with` below: the stack is thread-local and each
// access is a short, non-reentrant read-modify-write. The allocator hooks
// (`on_alloc`/`on_dealloc`) perform no allocation and call nothing that
// could re-enter the TLS; `AllocScope::enter`/`drop` touch the stack only
// outside any allocating call. `try_with` tolerates TLS teardown during
// thread exit (allocations there simply go unattributed to any scope).
#[cfg(feature = "memprof")]
thread_local! {
    static STACK: UnsafeCell<FrameStack> = const {
        UnsafeCell::new(FrameStack { depth: 0, frames: [EMPTY_FRAME; MAX_DEPTH] })
    };
}

/// Counting allocator wrapper around [`System`]. Install from a **bin or
/// test crate** (the workspace libraries never install it themselves):
///
/// ```ignore
/// #[cfg(feature = "memprof")]
/// #[global_allocator]
/// static ALLOC: telemetry::CountingAlloc = telemetry::CountingAlloc;
/// ```
#[cfg(feature = "memprof")]
pub struct CountingAlloc;

#[cfg(feature = "memprof")]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            // Counted as one free + one alloc: a realloc that grows a
            // buffer on a "zero-alloc" path is exactly the event the gate
            // exists to catch, so it must not be invisible.
            on_dealloc(layout.size() as u64);
            on_alloc(new_size as u64);
        }
        p
    }
}

/// Hook body shared by `alloc`/`alloc_zeroed`/`realloc`. Must not allocate.
#[cfg(feature = "memprof")]
#[inline]
fn on_alloc(size: u64) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES.fetch_add(size, Ordering::Relaxed);
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    // CAS-loop peak update; contention is rare and bounded.
    let mut peak = PEAK.load(Ordering::Relaxed);
    while live > peak {
        match PEAK.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
    let _ = STACK.try_with(|s| {
        // SAFETY: see the comment on `STACK`.
        let st = unsafe { &mut *s.get() };
        if st.depth > 0 {
            let f = &mut st.frames[st.depth.min(MAX_DEPTH) - 1];
            f.allocs += 1;
            f.alloc_bytes += size;
            f.net_live += size as i64;
            f.peak_net = f.peak_net.max(f.net_live);
        }
    });
}

/// Must not allocate.
#[cfg(feature = "memprof")]
#[inline]
fn on_dealloc(size: u64) {
    FREES.fetch_add(1, Ordering::Relaxed);
    FREE_BYTES.fetch_add(size, Ordering::Relaxed);
    LIVE.fetch_sub(size, Ordering::Relaxed);
    let _ = STACK.try_with(|s| {
        // SAFETY: see the comment on `STACK`.
        let st = unsafe { &mut *s.get() };
        if st.depth > 0 {
            let f = &mut st.frames[st.depth.min(MAX_DEPTH) - 1];
            f.frees += 1;
            f.free_bytes += size;
            f.net_live -= size as i64;
        }
    });
}

/// RAII scope tag: allocations made while this guard is the innermost one
/// on its thread are attributed to `name`. Mirrors
/// [`SpanGuard`](crate::SpanGuard), but tracks bytes instead of time.
#[cfg(feature = "memprof")]
#[must_use = "an AllocScope attributes allocations only while it is alive"]
pub struct AllocScope {
    _not_send: std::marker::PhantomData<*const ()>,
}

#[cfg(feature = "memprof")]
impl AllocScope {
    /// Push `name` onto this thread's scope stack.
    #[inline]
    pub fn enter(name: &'static str) -> AllocScope {
        let _ = STACK.try_with(|s| {
            // SAFETY: see the comment on `STACK`.
            let st = unsafe { &mut *s.get() };
            st.depth += 1;
            if st.depth <= MAX_DEPTH {
                st.frames[st.depth - 1] = Frame {
                    name,
                    ..EMPTY_FRAME
                };
            }
        });
        AllocScope {
            _not_send: std::marker::PhantomData,
        }
    }
}

#[cfg(feature = "memprof")]
impl Drop for AllocScope {
    fn drop(&mut self) {
        let folded = STACK.try_with(|s| {
            // SAFETY: see the comment on `STACK`.
            let st = unsafe { &mut *s.get() };
            if st.depth == 0 {
                return None;
            }
            let popped = (st.depth <= MAX_DEPTH).then(|| st.frames[st.depth - 1]);
            st.depth -= 1;
            popped
        });
        if let Ok(Some(f)) = folded {
            // The map insert may allocate; that lands in the *parent*
            // frame (or unattributed), never in the frame just popped.
            let mut scopes = SCOPES.lock().unwrap_or_else(|e| e.into_inner());
            let e = scopes.entry(f.name).or_default();
            e.allocs += f.allocs;
            e.frees += f.frees;
            e.alloc_bytes += f.alloc_bytes;
            e.free_bytes += f.free_bytes;
            e.peak_live_bytes = e.peak_live_bytes.max(f.peak_net.max(0) as u64);
        }
    }
}

/// Whether a [`CountingAlloc`] is live in this process. Allocation counts
/// are only meaningful when this returns `true` — a `memprof`-built *lib*
/// linked into a bin that did not install the wrapper sees all zeros.
#[cfg(feature = "memprof")]
pub fn counting() -> bool {
    ALLOCS.load(Ordering::Relaxed) > 0
}

/// Snapshot the process-wide totals.
#[cfg(feature = "memprof")]
pub fn global() -> GlobalStats {
    GlobalStats {
        allocs: ALLOCS.load(Ordering::Relaxed),
        frees: FREES.load(Ordering::Relaxed),
        alloc_bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        free_bytes: FREE_BYTES.load(Ordering::Relaxed),
        live_bytes: LIVE.load(Ordering::Relaxed),
        peak_live_bytes: PEAK.load(Ordering::Relaxed),
    }
}

/// Zero every counter and drop all accumulated scope totals. Live-byte
/// tracking restarts from zero, so call this only between workloads (any
/// buffer allocated before the reset and freed after it will underflow
/// into a huge `free_bytes`; the gate scenarios reset *before* measuring
/// and only read deltas).
#[cfg(feature = "memprof")]
pub fn reset() {
    SCOPES.lock().unwrap_or_else(|e| e.into_inner()).clear();
    ALLOCS.store(0, Ordering::Relaxed);
    FREES.store(0, Ordering::Relaxed);
    ALLOC_BYTES.store(0, Ordering::Relaxed);
    FREE_BYTES.store(0, Ordering::Relaxed);
    LIVE.store(0, Ordering::Relaxed);
    PEAK.store(0, Ordering::Relaxed);
}

/// Collapse the high-water mark to the current live figure, so the next
/// peak reading covers only the workload that follows.
#[cfg(feature = "memprof")]
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Drop the accumulated per-scope totals without touching the global
/// counters — the scenario-local reset used between measured sections.
#[cfg(feature = "memprof")]
pub fn reset_scopes() {
    SCOPES.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Accumulated totals for every scope name seen so far, sorted by name.
#[cfg(feature = "memprof")]
pub fn scopes() -> Vec<(&'static str, ScopeStats)> {
    SCOPES
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(&k, &v)| (k, v))
        .collect()
}

/// Totals for one scope name, if it has been entered at least once.
#[cfg(feature = "memprof")]
pub fn scope_stats(name: &str) -> Option<ScopeStats> {
    SCOPES
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .find(|(k, _)| **k == name)
        .map(|(_, &v)| v)
}

// ---------------------------------------------------------------------------
// Feature OFF: inert stand-ins with identical signatures.
// ---------------------------------------------------------------------------

/// Inert scope guard (feature `memprof` disabled).
#[cfg(not(feature = "memprof"))]
#[must_use = "an AllocScope attributes allocations only while it is alive"]
pub struct AllocScope;

#[cfg(not(feature = "memprof"))]
impl AllocScope {
    /// No-op: compiles to nothing without the `memprof` feature.
    #[inline(always)]
    pub fn enter(_name: &'static str) -> AllocScope {
        AllocScope
    }
}

#[cfg(not(feature = "memprof"))]
pub fn counting() -> bool {
    false
}

#[cfg(not(feature = "memprof"))]
pub fn global() -> GlobalStats {
    GlobalStats::default()
}

#[cfg(not(feature = "memprof"))]
pub fn reset() {}

#[cfg(not(feature = "memprof"))]
pub fn reset_peak() {}

#[cfg(not(feature = "memprof"))]
pub fn reset_scopes() {}

#[cfg(not(feature = "memprof"))]
pub fn scopes() -> Vec<(&'static str, ScopeStats)> {
    Vec::new()
}

#[cfg(not(feature = "memprof"))]
pub fn scope_stats(_name: &str) -> Option<ScopeStats> {
    None
}

// ---------------------------------------------------------------------------
// Publication: events + gauges, feature-independent (zeros when off).
// ---------------------------------------------------------------------------

/// Emit the current memory picture into a recorder: one `mem.scope` event
/// per scope (allocs/frees/bytes/peak), one `mem.peak` event with the
/// process totals, and matching `MetricsRegistry` gauges
/// (`mem.live_bytes`, `mem.peak_bytes`, `mem.scope.<name>.allocs`, …).
/// A no-op when the recorder is disabled or no allocator data exists.
pub fn publish(rec: &Recorder) {
    if !rec.is_enabled() || !counting() {
        return;
    }
    let g = global();
    for (name, s) in scopes() {
        rec.event(
            "mem.scope",
            vec![
                ("scope", Value::Str(name.to_string())),
                ("allocs", Value::U64(s.allocs)),
                ("frees", Value::U64(s.frees)),
                ("alloc_bytes", Value::U64(s.alloc_bytes)),
                ("free_bytes", Value::U64(s.free_bytes)),
                ("peak_live_bytes", Value::U64(s.peak_live_bytes)),
            ],
        );
        rec.gauge_set(
            crate::intern(&format!("mem.scope.{name}.allocs")),
            s.allocs as f64,
        );
        rec.gauge_set(
            crate::intern(&format!("mem.scope.{name}.alloc_bytes")),
            s.alloc_bytes as f64,
        );
        rec.gauge_set(
            crate::intern(&format!("mem.scope.{name}.peak_live_bytes")),
            s.peak_live_bytes as f64,
        );
    }
    rec.event(
        "mem.peak",
        vec![
            ("allocs", Value::U64(g.allocs)),
            ("frees", Value::U64(g.frees)),
            ("live_bytes", Value::U64(g.live_bytes)),
            ("peak_live_bytes", Value::U64(g.peak_live_bytes)),
        ],
    );
    rec.gauge_set("mem.live_bytes", g.live_bytes as f64);
    rec.gauge_set("mem.peak_bytes", g.peak_live_bytes as f64);
    rec.gauge_set("mem.allocs", g.allocs as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The counters are process-global and the test harness runs threads
    /// concurrently; every test that resets or asserts on them serializes
    /// here so they cannot observe each other's traffic.
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn no_alloc_wrapper_means_inert_api() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        // Without a CountingAlloc installed (lib tests never install one)
        // both builds agree: no counting, zero stats, inert guards.
        assert!(!counting());
        assert_eq!(global(), GlobalStats::default());
        assert!(scope_stats("nope").is_none());
        let _g = AllocScope::enter("x");
        reset_peak();
        reset_scopes();
    }

    #[test]
    fn publish_without_counting_emits_nothing() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        let rec = Recorder::enabled();
        publish(&rec);
        assert!(rec.events().is_empty());
    }

    #[cfg(feature = "memprof")]
    #[test]
    fn scope_guard_nests_and_folds() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Simulate hook traffic directly — the lib test binary does not
        // install CountingAlloc, so drive on_alloc/on_dealloc by hand.
        reset();
        {
            let _outer = AllocScope::enter("outer");
            on_alloc(100);
            {
                let _inner = AllocScope::enter("inner");
                on_alloc(64);
                on_dealloc(16);
            }
            on_alloc(8);
        }
        let outer = scope_stats("outer").expect("outer folded");
        let inner = scope_stats("inner").expect("inner folded");
        // Exclusive attribution: inner's 64/16 never reach outer.
        assert_eq!(outer.allocs, 2);
        assert_eq!(outer.alloc_bytes, 108);
        assert_eq!(inner.allocs, 1);
        assert_eq!(inner.frees, 1);
        assert_eq!(inner.alloc_bytes, 64);
        assert_eq!(inner.peak_live_bytes, 64);
        let g = global();
        assert_eq!(g.allocs, 3);
        assert_eq!(g.live_bytes, 100 + 64 - 16 + 8);
        assert_eq!(g.peak_live_bytes, 164); // high-water at 100+64
        reset();
        assert_eq!(global(), GlobalStats::default());
    }

    #[cfg(feature = "memprof")]
    #[test]
    fn peak_reset_collapses_to_live() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        on_alloc(1000);
        on_dealloc(900);
        assert_eq!(global().peak_live_bytes, 1000);
        reset_peak();
        assert_eq!(global().peak_live_bytes, 100);
        reset();
    }

    #[cfg(feature = "memprof")]
    #[test]
    fn publish_emits_scope_events_and_gauges() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        {
            let _s = AllocScope::enter("rebin");
            on_alloc(256);
        }
        let rec = Recorder::enabled();
        publish(&rec);
        let sc = rec.events_named("mem.scope");
        assert_eq!(sc.len(), 1);
        assert_eq!(sc[0].field_str("scope"), Some("rebin"));
        assert_eq!(sc[0].field_u64("alloc_bytes"), Some(256));
        let pk = rec.events_named("mem.peak");
        assert_eq!(pk.len(), 1);
        assert_eq!(pk[0].field_u64("live_bytes"), Some(256));
        let m = rec.metrics();
        assert_eq!(m.gauge("mem.live_bytes"), Some(256.0));
        assert_eq!(m.gauge("mem.scope.rebin.allocs"), Some(1.0));
        reset();
    }
}
