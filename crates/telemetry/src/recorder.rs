//! The [`Recorder`]: a cheaply clonable handle to a shared trace buffer,
//! metrics registry, and optional write-through sink.
//!
//! A disabled recorder (`Recorder::disabled()`, also `Default`) holds no
//! allocation at all — every method is a branch on `Option::None` — so
//! instrumented code can keep a recorder field unconditionally and pay
//! nothing when observability is off.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{EventRecord, RecordKind, Value};
use crate::metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};

/// Default ring-buffer capacity (records); oldest records drop first.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Destination for completed records, written as one JSON line each.
pub trait Sink: Send {
    fn write_line(&mut self, line: &str);
    fn flush(&mut self) {}
}

/// Appends JSONL to a file through a buffered writer.
pub struct JsonlSink {
    w: BufWriter<File>,
}

impl JsonlSink {
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(JsonlSink {
            w: BufWriter::new(File::create(path)?),
        })
    }
}

impl Sink for JsonlSink {
    fn write_line(&mut self, line: &str) {
        let _ = self.w.write_all(line.as_bytes());
        let _ = self.w.write_all(b"\n");
    }
    fn flush(&mut self) {
        let _ = self.w.flush();
    }
}

impl Drop for JsonlSink {
    /// Belt-and-braces flush: `BufWriter` flushes on drop too, but only
    /// best-effort inside its own `Drop`; doing it here keeps the guarantee
    /// local and covers sinks extracted from their recorder.
    fn drop(&mut self) {
        let _ = self.w.flush();
    }
}

/// Collects JSONL lines in memory; keep a clone to read them back later.
#[derive(Clone, Default)]
pub struct VecSink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl VecSink {
    pub fn new() -> Self {
        Self::default()
    }
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().unwrap().clone()
    }
}

impl Sink for VecSink {
    fn write_line(&mut self, line: &str) {
        self.lines.lock().unwrap().push(line.to_owned());
    }
}

struct Inner {
    seq: AtomicU64,
    step: AtomicU64,
    capacity: usize,
    events: Mutex<VecDeque<EventRecord>>,
    sink: Mutex<Option<Box<dyn Sink>>>,
    metrics: MetricsRegistry,
}

impl Drop for Inner {
    /// Flush-on-drop: when the last `Recorder` clone goes away, any lines
    /// still buffered in the sink reach their destination — a forgotten
    /// `rec.flush()` must not truncate the JSONL trace.
    fn drop(&mut self) {
        if let Ok(sink) = self.sink.get_mut() {
            if let Some(sink) = sink.as_mut() {
                sink.flush();
            }
        }
    }
}

/// Handle to the telemetry pipeline. Clones share one buffer/registry.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Recorder(disabled)"),
            Some(i) => f
                .debug_struct("Recorder")
                .field("capacity", &i.capacity)
                .field("seq", &i.seq.load(Ordering::Relaxed))
                .finish(),
        }
    }
}

impl Recorder {
    /// The zero-cost no-op recorder.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// An enabled recorder with the default ring capacity.
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// An enabled recorder keeping at most `capacity` records in memory.
    pub fn with_capacity(capacity: usize) -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                seq: AtomicU64::new(0),
                step: AtomicU64::new(0),
                capacity: capacity.max(1),
                events: Mutex::new(VecDeque::new()),
                sink: Mutex::new(None),
                metrics: MetricsRegistry::default(),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Install (or replace) the write-through sink.
    pub fn set_sink(&self, sink: impl Sink + 'static) {
        if let Some(i) = &self.inner {
            *i.sink.lock().unwrap() = Some(Box::new(sink));
        }
    }

    /// Set the logical step stamped onto subsequently emitted records.
    pub fn set_step(&self, step: u64) {
        if let Some(i) = &self.inner {
            i.step.store(step, Ordering::Relaxed);
        }
    }

    pub fn step(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.step.load(Ordering::Relaxed))
    }

    fn push(
        &self,
        kind: RecordKind,
        name: &'static str,
        dur_s: Option<f64>,
        fields: Vec<(&'static str, Value)>,
    ) {
        let Some(i) = &self.inner else { return };
        // Attribute the recorder's own allocations (JSON encode, ring
        // growth) to the "telemetry" scope so they never pollute whatever
        // scope the instrumented caller is in (see `memprof`).
        let _mem = crate::memprof::AllocScope::enter("telemetry");
        let rec = EventRecord {
            seq: i.seq.fetch_add(1, Ordering::Relaxed),
            step: i.step.load(Ordering::Relaxed),
            kind,
            name,
            dur_s,
            fields,
        };
        if let Some(sink) = i.sink.lock().unwrap().as_mut() {
            sink.write_line(&rec.to_json());
        }
        let mut ev = i.events.lock().unwrap();
        if ev.len() == i.capacity {
            ev.pop_front();
        }
        ev.push_back(rec);
    }

    /// Emit a point event.
    pub fn event(&self, name: &'static str, fields: Vec<(&'static str, Value)>) {
        if self.inner.is_some() {
            self.push(RecordKind::Event, name, None, fields);
        }
    }

    /// Emit a completed span with an externally measured duration.
    pub fn span(&self, name: &'static str, dur_s: f64, fields: Vec<(&'static str, Value)>) {
        if self.inner.is_some() {
            self.push(RecordKind::Span, name, Some(dur_s), fields);
        }
    }

    /// Start a wall-clock span; the record is emitted when the guard drops
    /// (or on [`SpanGuard::finish`]).
    pub fn start_span(&self, name: &'static str) -> SpanGuard {
        SpanGuard {
            rec: self.clone(),
            name,
            start: self.inner.as_ref().map(|_| Instant::now()),
            fields: Vec::new(),
        }
    }

    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if let Some(i) = &self.inner {
            i.metrics.counter(name).add(delta);
        }
    }

    pub fn gauge_set(&self, name: &'static str, v: f64) {
        if let Some(i) = &self.inner {
            i.metrics.gauge(name).set(v);
        }
    }

    pub fn hist_record(&self, name: &'static str, v: f64) {
        if let Some(i) = &self.inner {
            i.metrics.histogram(name).record(v);
        }
    }

    /// Direct handles, for hot paths that want to cache them.
    pub fn counter(&self, name: &'static str) -> Option<Arc<Counter>> {
        self.inner.as_ref().map(|i| i.metrics.counter(name))
    }
    pub fn gauge(&self, name: &'static str) -> Option<Arc<Gauge>> {
        self.inner.as_ref().map(|i| i.metrics.gauge(name))
    }
    pub fn histogram(&self, name: &'static str) -> Option<Arc<Histogram>> {
        self.inner.as_ref().map(|i| i.metrics.histogram(name))
    }

    /// Snapshot of the in-memory ring (oldest first).
    pub fn events(&self) -> Vec<EventRecord> {
        self.inner
            .as_ref()
            .map(|i| i.events.lock().unwrap().iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Records with the given name, oldest first.
    pub fn events_named(&self, name: &str) -> Vec<EventRecord> {
        self.events()
            .into_iter()
            .filter(|e| e.name == name)
            .collect()
    }

    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner
            .as_ref()
            .map(|i| i.metrics.snapshot())
            .unwrap_or_default()
    }

    /// The registry's one-call JSON dump
    /// ([`MetricsRegistry::snapshot_json`]); an empty-but-valid object for
    /// a disabled recorder.
    pub fn metrics_json(&self) -> String {
        self.inner
            .as_ref()
            .map(|i| i.metrics.snapshot_json())
            .unwrap_or_else(|| MetricsSnapshot::default().to_json())
    }

    /// Structural heap footprint of the ring buffer: the `VecDeque`'s
    /// reserved capacity at `EventRecord` granularity plus each buffered
    /// record's own heap (field vectors, string payloads). Zero for a
    /// disabled recorder. Metrics-registry storage is not included — it is
    /// bounded by the number of distinct metric names, not by traffic.
    pub fn heap_bytes(&self) -> usize {
        let Some(i) = &self.inner else { return 0 };
        let ev = i.events.lock().unwrap();
        ev.capacity() * std::mem::size_of::<EventRecord>()
            + ev.iter().map(EventRecord::heap_bytes).sum::<usize>()
    }

    pub fn flush(&self) {
        if let Some(i) = &self.inner {
            if let Some(sink) = i.sink.lock().unwrap().as_mut() {
                sink.flush();
            }
        }
    }
}

/// RAII wall-clock span. Extra fields can be attached before it drops.
pub struct SpanGuard {
    rec: Recorder,
    name: &'static str,
    start: Option<Instant>,
    fields: Vec<(&'static str, Value)>,
}

impl SpanGuard {
    pub fn field(&mut self, key: &'static str, value: impl Into<Value>) -> &mut Self {
        if self.start.is_some() {
            self.fields.push((key, value.into()));
        }
        self
    }

    /// Close the span now instead of at scope end.
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let fields = std::mem::take(&mut self.fields);
            self.rec
                .span(self.name, start.elapsed().as_secs_f64(), fields);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.event("x", vec![]);
        r.span("y", 1.0, vec![]);
        r.counter_add("c", 1);
        r.gauge_set("g", 1.0);
        r.hist_record("h", 1.0);
        r.set_step(9);
        assert_eq!(r.step(), 0);
        assert!(r.events().is_empty());
        assert!(r.metrics().counters.is_empty());
        assert!(r.counter("c").is_none());
        let mut s = r.start_span("z");
        s.field("k", 1u64);
        drop(s);
        assert!(r.events().is_empty());
    }

    #[test]
    fn ring_drops_oldest() {
        let r = Recorder::with_capacity(3);
        for i in 0..5u64 {
            r.set_step(i);
            r.event("tick", vec![]);
        }
        let ev = r.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].seq, 2);
        assert_eq!(ev[2].seq, 4);
        assert_eq!(ev[2].step, 4);
    }

    #[test]
    fn sink_sees_all_records_even_past_capacity() {
        let r = Recorder::with_capacity(2);
        let sink = VecSink::new();
        r.set_sink(sink.clone());
        for _ in 0..5 {
            r.event("e", vec![("k", Value::U64(1))]);
        }
        r.flush();
        let lines = sink.lines();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].contains("\"name\":\"e\""));
        assert_eq!(r.events().len(), 2);
    }

    #[test]
    fn last_handle_drop_flushes_jsonl_sink() {
        let path = std::env::temp_dir().join(format!(
            "telemetry_flush_on_drop_{}.jsonl",
            std::process::id()
        ));
        {
            let r = Recorder::enabled();
            let r2 = r.clone();
            r.set_sink(JsonlSink::create(&path).unwrap());
            for i in 0..100u64 {
                r.event("tick", vec![("i", Value::U64(i))]);
            }
            // No explicit flush anywhere: dropping both handles must do it.
            drop(r);
            drop(r2);
        }
        let data = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(data.lines().count(), 100);
        assert!(data.lines().last().unwrap().contains("\"i\":99"));
    }

    #[test]
    fn span_guard_measures_and_carries_fields() {
        let r = Recorder::enabled();
        {
            let mut g = r.start_span("work");
            g.field("n", 42u64);
        }
        let ev = r.events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].kind, RecordKind::Span);
        assert!(ev[0].dur_s.unwrap() >= 0.0);
        assert_eq!(ev[0].field("n"), Some(&Value::U64(42)));
    }

    #[test]
    fn clones_share_state() {
        let r = Recorder::enabled();
        let r2 = r.clone();
        r2.set_step(7);
        r2.event("a", vec![]);
        r.counter_add("c", 3);
        assert_eq!(r.events().len(), 1);
        assert_eq!(r.events()[0].step, 7);
        assert_eq!(r2.metrics().counter("c"), Some(3));
    }

    #[test]
    fn threads_can_emit_concurrently() {
        let r = Recorder::with_capacity(10_000);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rc = r.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    rc.event("t", vec![]);
                    rc.counter_add("n", 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.events().len(), 2000);
        assert_eq!(r.metrics().counter("n"), Some(2000));
        // seq numbers are unique.
        let mut seqs: Vec<u64> = r.events().iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 2000);
    }
}
