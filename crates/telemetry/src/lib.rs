//! # telemetry
//!
//! Observability layer for the AFMM workspace: structured spans/events with
//! a ring-buffered [`Recorder`] and pluggable JSONL sink, a metrics registry
//! (counters / gauges / log-bucketed histograms with p50/p90/p99), and a
//! cost-model [`AuditTrail`] pairing every `CostModel::predict` with the
//! observed step time.
//!
//! Design rules:
//!
//! * **Leaf crate, zero deps.** `octree` and `gpu-sim` depend on this crate,
//!   so it can depend on nothing but `std`.
//! * **No global state.** A [`Recorder`] is an explicit handle threaded
//!   through engine / balancer / plan; clones share one buffer.
//! * **Zero-cost when off.** `Recorder::disabled()` holds no allocation and
//!   every call short-circuits on a `None` check, so instrumented hot paths
//!   cost one predictable branch.
//!
//! ```
//! use telemetry::{Recorder, Value};
//!
//! let rec = Recorder::enabled();
//! rec.set_step(4);
//! rec.span("phase.m2l", 0.012, vec![("ops", Value::U64(4096))]);
//! rec.counter_add("plan.rebuild", 1);
//! rec.hist_record("step.time", 0.034);
//! assert_eq!(rec.events()[0].step, 4);
//! assert_eq!(rec.metrics().counter("plan.rebuild"), Some(1));
//! ```

mod anomaly;
mod audit;
mod event;
pub mod memprof;
mod metrics;
mod recorder;
mod trace;

pub use anomaly::{
    classify_series, Anomaly, AnomalyChannel, AnomalyConfig, AnomalyDetector, AnomalyKind,
    Severity, TrendConfig, TrendKind, TrendReport,
};
pub use audit::{AuditStats, AuditTrail, PredictionAudit, DEFAULT_WINDOW};
pub use event::{push_json_f64, push_json_str, EventRecord, RecordKind, Value};
#[cfg(feature = "memprof")]
pub use memprof::CountingAlloc;
pub use memprof::{AllocScope, GlobalStats, ScopeStats};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use recorder::{JsonlSink, Recorder, Sink, SpanGuard, VecSink, DEFAULT_CAPACITY};
pub use trace::{
    flat_f64, flat_str, flat_u64, intern, json_syntax_ok, parse_flat_json, read_trace,
    ChromeTraceExporter, TraceError, TraceReader,
};
