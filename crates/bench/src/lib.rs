//! Shared plumbing for the experiment harnesses (`src/bin/fig*.rs`,
//! `src/bin/table*.rs`), one binary per table/figure of the paper's
//! evaluation. Each binary prints a self-describing TSV series to stdout;
//! EXPERIMENTS.md records paper-vs-measured for each.

use afmm::{time_step, FmmParams, HeteroNode, TimingReport};
use fmm_math::{Kernel, OpFlops};
use gpu_sim::KernelTiming;
use octree::{count_ops, dual_traversal, InteractionLists, Octree, OpCounts};
use std::path::PathBuf;

pub mod cli;
pub mod harness;

/// Where a bench artifact named `name` should be written: `$BENCH_OUT_DIR/
/// name` when the variable is set and non-empty (the directory is created
/// on demand), the current working directory otherwise.
///
/// Every bin that emits a `BENCH_*.json` goes through here — previously
/// each wrote into whatever CWD it was launched from, littering the repo
/// root during local runs.
pub fn out_path(name: &str) -> PathBuf {
    match std::env::var_os("BENCH_OUT_DIR") {
        Some(dir) if !dir.is_empty() => {
            let dir = PathBuf::from(dir);
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!(
                    "# warning: cannot create BENCH_OUT_DIR {}: {e}; writing to CWD",
                    dir.display()
                );
                return PathBuf::from(name);
            }
            dir.join(name)
        }
        _ => PathBuf::from(name),
    }
}

/// GPU makespan of a timing, or 0.0 when the timing covers no devices.
///
/// [`KernelTiming::gpu_time`] returns `None` for a no-device timing — "no
/// measurement", not "zero seconds". The harness binaries report aggregate
/// times where a device-less launch genuinely contributes nothing, so they
/// all map `None` to 0.0; do that through this one helper instead of ad-hoc
/// `unwrap`s that panic on CPU-only configurations.
pub fn gpu_time_or_zero(t: &KernelTiming) -> f64 {
    t.gpu_time().unwrap_or(0.0)
}

/// Whole-system SIMT efficiency, or 1.0 when the timing covers no devices
/// (nothing ran, so nothing ran inefficiently). The uniform `None` policy
/// for harness binaries; see [`gpu_time_or_zero`].
pub fn efficiency_or_one(t: &KernelTiming) -> f64 {
    t.efficiency().unwrap_or(1.0)
}

/// A geometric grid of S values, `per_decade` points per factor of 10.
pub fn s_grid(lo: usize, hi: usize, per_decade: usize) -> Vec<usize> {
    assert!(lo >= 1 && lo < hi && per_decade >= 1);
    let step = 10f64.powf(1.0 / per_decade as f64);
    let mut out = Vec::new();
    let mut s = lo as f64;
    while (s.round() as usize) <= hi {
        let v = s.round() as usize;
        if out.last() != Some(&v) {
            out.push(v);
        }
        s *= step;
    }
    out
}

/// Print a TSV header + rows with a `#`-prefixed title block.
pub fn print_tsv(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("# {title}");
    println!("{}", header.join("\t"));
    for r in rows {
        println!("{}", r.join("\t"));
    }
    println!();
}

/// Format seconds with fixed precision suitable for the tables.
pub fn fmt_s(t: f64) -> String {
    format!("{t:.6}")
}

/// Time one tree (lists are computed here) on a node; convenience for the
/// sweep harnesses that never need numeric solves.
pub fn time_tree(
    tree: &Octree,
    flops: &OpFlops,
    node: &HeteroNode,
) -> (TimingReport, OpCounts, InteractionLists) {
    let params = FmmParams::default();
    let lists = dual_traversal(tree, params.mac);
    let counts = count_ops(tree, &lists);
    let timing = time_step(tree, &lists, flops, node).expect("healthy node cannot fail");
    (timing, counts, lists)
}

/// Op-flop table for a kernel at the default expansion order.
pub fn default_flops<K: Kernel>(kernel: &K) -> OpFlops {
    let ops = fmm_math::ExpansionOps::new(FmmParams::default().order);
    kernel.op_flops(&ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s_grid_is_geometric_and_deduped() {
        let g = s_grid(8, 4096, 4);
        assert_eq!(g.first(), Some(&8));
        assert!(*g.last().unwrap() <= 4096);
        for w in g.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(g.len() > 8);
    }

    #[test]
    fn fmt_is_stable() {
        assert_eq!(fmt_s(0.1234567), "0.123457");
    }

    #[test]
    fn empty_timing_maps_to_zero_time_and_unit_efficiency() {
        let t = KernelTiming {
            per_gpu: Vec::new(),
            assignment: Vec::new(),
        };
        assert_eq!(t.gpu_time(), None);
        assert_eq!(t.efficiency(), None);
        assert_eq!(gpu_time_or_zero(&t), 0.0);
        assert_eq!(efficiency_or_one(&t), 1.0);
    }

    #[test]
    fn real_timing_passes_through_helpers() {
        let sys = gpu_sim::GpuSystem::homogeneous(2, gpu_sim::GpuSpec::default()).unwrap();
        let jobs = vec![gpu_sim::P2pJob::new(64, vec![256])];
        let t = sys.execute(&jobs).unwrap();
        assert_eq!(gpu_time_or_zero(&t), t.gpu_time().unwrap());
        assert_eq!(efficiency_or_one(&t), t.efficiency().unwrap());
        assert!(gpu_time_or_zero(&t) > 0.0);
    }
}
