//! Shared command-line conventions for the bench binaries.
//!
//! Every harness bin used to hand-roll the same three lines of positional
//! parsing (`args.get(i).and_then(parse).unwrap_or(default)`) — which
//! silently swallowed typos: `fig8_dynamic_strategies 50O` ran the default
//! 500 steps without a word. This module centralizes the convention and
//! makes it strict, matching `afmm-trace`: a malformed or unexpected
//! argument prints the usage string to stderr and exits with code **2**
//! (0 = success, 1 = gate/validation failure, 2 = usage or I/O error).
//!
//! The parsing core returns `Result` so it stays unit-testable; binaries
//! use the `_or_exit` surface.

/// Positional-argument cursor over `std::env::args`.
pub struct Args {
    /// Binary name for error prefixes.
    name: &'static str,
    /// One-line usage, printed on any parse error.
    usage: &'static str,
    argv: Vec<String>,
    next: usize,
}

/// A parse failure: which argument, what it was, what was expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError {
    pub what: String,
}

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.what)
    }
}

impl Args {
    /// Capture the process arguments (program name dropped).
    pub fn parse(name: &'static str, usage: &'static str) -> Self {
        Self::from_vec(name, usage, std::env::args().skip(1).collect())
    }

    /// Testable constructor.
    pub fn from_vec(name: &'static str, usage: &'static str, argv: Vec<String>) -> Self {
        Args {
            name,
            usage,
            argv,
            next: 0,
        }
    }

    /// Next positional as `usize`, or `default` when absent.
    pub fn opt_usize(&mut self, what: &str, default: usize) -> Result<usize, UsageError> {
        self.opt_parsed(what, default)
    }

    /// Next positional as `f64`, or `default` when absent.
    pub fn opt_f64(&mut self, what: &str, default: f64) -> Result<f64, UsageError> {
        self.opt_parsed(what, default)
    }

    fn opt_parsed<T: std::str::FromStr>(
        &mut self,
        what: &str,
        default: T,
    ) -> Result<T, UsageError> {
        match self.argv.get(self.next) {
            None => Ok(default),
            Some(raw) => {
                self.next += 1;
                raw.parse().map_err(|_| UsageError {
                    what: format!("invalid {what} \"{raw}\""),
                })
            }
        }
    }

    /// Reject any unconsumed arguments.
    pub fn finish(&self) -> Result<(), UsageError> {
        match self.argv.get(self.next) {
            None => Ok(()),
            Some(extra) => Err(UsageError {
                what: format!("unexpected argument \"{extra}\""),
            }),
        }
    }

    /// Print `err` + usage to stderr and exit 2.
    pub fn die(&self, err: &UsageError) -> ! {
        eprintln!(
            "{}: {}\nusage: {} {}",
            self.name, err.what, self.name, self.usage
        );
        std::process::exit(2);
    }

    /// [`Args::opt_usize`] with the exit-2 convention.
    pub fn opt_usize_or_exit(&mut self, what: &str, default: usize) -> usize {
        match self.opt_usize(what, default) {
            Ok(v) => v,
            Err(e) => self.die(&e),
        }
    }

    /// [`Args::opt_f64`] with the exit-2 convention.
    pub fn opt_f64_or_exit(&mut self, what: &str, default: f64) -> f64 {
        match self.opt_f64(what, default) {
            Ok(v) => v,
            Err(e) => self.die(&e),
        }
    }

    /// [`Args::finish`] with the exit-2 convention.
    pub fn finish_or_exit(&self) {
        if let Err(e) = self.finish() {
            self.die(&e);
        }
    }
}

/// For binaries that take no arguments at all: enforce it, exit 2
/// otherwise.
pub fn no_args(name: &'static str) {
    Args::parse(name, "(no arguments)").finish_or_exit();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        Args::from_vec(
            "test-bin",
            "[a] [b]",
            v.iter().map(|s| s.to_string()).collect(),
        )
    }

    #[test]
    fn defaults_when_absent() {
        let mut a = args(&[]);
        assert_eq!(a.opt_usize("steps", 120).unwrap(), 120);
        assert_eq!(a.opt_f64("theta", 0.5).unwrap(), 0.5);
        assert!(a.finish().is_ok());
    }

    #[test]
    fn parses_in_order() {
        let mut a = args(&["60", "20000"]);
        assert_eq!(a.opt_usize("steps", 120).unwrap(), 60);
        assert_eq!(a.opt_usize("bodies", 8000).unwrap(), 20_000);
        assert!(a.finish().is_ok());
    }

    #[test]
    fn rejects_malformed() {
        let mut a = args(&["50O"]);
        let err = a.opt_usize("steps", 120).unwrap_err();
        assert!(err.what.contains("invalid steps"), "{err}");
        assert!(err.what.contains("50O"), "{err}");
    }

    #[test]
    fn rejects_extras() {
        let mut a = args(&["60", "stray"]);
        assert_eq!(a.opt_usize("steps", 120).unwrap(), 60);
        let err = a.finish().unwrap_err();
        assert!(err.what.contains("stray"), "{err}");
    }

    #[test]
    fn partial_consumption_then_finish() {
        let mut a = args(&["60"]);
        assert_eq!(a.opt_usize("steps", 1).unwrap(), 60);
        assert_eq!(a.opt_usize("bodies", 2).unwrap(), 2);
        assert_eq!(a.opt_usize("more", 3).unwrap(), 3);
        assert!(a.finish().is_ok());
    }
}
