//! The canonical `BenchReport` JSON schema — one shape for every perf
//! artifact the repo produces, so reports from different commits and hosts
//! can be compared mechanically.
//!
//! Top level:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "host": {"os": "...", "arch": "...", "cpus": 8},
//!   "commit": "abc123... | unknown",
//!   "config": {"mode": "quick|full|smoke", "reps": 5, "warmup": 1, "seed": 7},
//!   "scenarios": [
//!     {
//!       "name": "solve_step",
//!       "params": {"n": 12000, "distribution": "plummer", "s": 96, "gpus": 4},
//!       "metrics": [
//!         {"name": "wall_s", "unit": "s", "kind": "wall", "direction": "lower",
//!          "samples": [...], "median": .., "mad": .., "ci_lo": .., "ci_hi": ..}
//!       ],
//!       "snapshot": { ...structural introspection, see snapshot.rs... }
//!     }
//!   ]
//! }
//! ```
//!
//! `kind` tells the comparator how much noise to expect: `"wall"` metrics
//! are wall-clock measurements with host-dependent jitter, `"virtual"`
//! metrics come out of the deterministic simulators (identical input ⇒
//! identical value, on any host), so a virtual change is always a code or
//! structure change, never noise.

use super::json::{obj, Json};
use super::stats::MetricStats;

/// Bumped whenever the report shape changes incompatibly.
pub const SCHEMA_VERSION: u64 = 1;

/// How a metric was measured — drives the comparator's noise floor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Wall-clock time on the running host; jittery.
    Wall,
    /// Output of the deterministic virtual-node simulation; noise-free.
    Virtual,
}

impl MetricKind {
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Wall => "wall",
            MetricKind::Virtual => "virtual",
        }
    }

    pub fn from_str(s: &str) -> Option<Self> {
        match s {
            "wall" => Some(MetricKind::Wall),
            "virtual" => Some(MetricKind::Virtual),
            _ => None,
        }
    }
}

/// Which way is better for this metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Timings, imbalance: smaller is better.
    Lower,
    /// Speedups, efficiency: larger is better.
    Higher,
}

impl Direction {
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::Lower => "lower",
            Direction::Higher => "higher",
        }
    }

    pub fn from_str(s: &str) -> Option<Self> {
        match s {
            "lower" => Some(Direction::Lower),
            "higher" => Some(Direction::Higher),
            _ => None,
        }
    }
}

/// One measured quantity of a scenario with its raw samples and robust
/// summary.
#[derive(Clone, Debug)]
pub struct Metric {
    pub name: String,
    pub unit: String,
    pub kind: MetricKind,
    pub direction: Direction,
    /// Whether the comparator may fail a build on this metric. Derived or
    /// near-zero quantities (overhead fractions) are recorded for humans
    /// but never gate — their relative deltas are numerically meaningless.
    pub gate: bool,
    pub samples: Vec<f64>,
    pub stats: MetricStats,
}

impl Metric {
    /// A wall-clock metric summarized from its samples.
    pub fn wall(name: &str, unit: &str, samples: Vec<f64>, seed: u64) -> Self {
        let stats = super::stats::summarize(&samples, seed);
        Metric {
            name: name.to_string(),
            unit: unit.to_string(),
            kind: MetricKind::Wall,
            direction: Direction::Lower,
            gate: true,
            samples,
            stats,
        }
    }

    /// A deterministic simulator output: a single sample with a point CI.
    pub fn virtual_point(name: &str, unit: &str, value: f64) -> Self {
        Metric {
            name: name.to_string(),
            unit: unit.to_string(),
            kind: MetricKind::Virtual,
            direction: Direction::Lower,
            gate: true,
            samples: vec![value],
            stats: MetricStats {
                median: value,
                mad: 0.0,
                ci_lo: value,
                ci_hi: value,
            },
        }
    }

    /// Flip the preferred direction (for speedups, efficiencies).
    pub fn higher_is_better(mut self) -> Self {
        self.direction = Direction::Higher;
        self
    }

    /// Record for humans, never fail a build on it.
    pub fn informational(mut self) -> Self {
        self.gate = false;
        self
    }

    fn to_json(&self) -> Json {
        obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("unit", Json::Str(self.unit.clone())),
            ("kind", Json::Str(self.kind.as_str().to_string())),
            ("direction", Json::Str(self.direction.as_str().to_string())),
            ("gate", Json::Bool(self.gate)),
            (
                "samples",
                Json::Arr(self.samples.iter().map(|&s| Json::Num(s)).collect()),
            ),
            ("median", Json::Num(self.stats.median)),
            ("mad", Json::Num(self.stats.mad)),
            ("ci_lo", Json::Num(self.stats.ci_lo)),
            ("ci_hi", Json::Num(self.stats.ci_hi)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let str_field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("metric missing string field \"{k}\""))
        };
        let num_field = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("metric missing number field \"{k}\""))
        };
        let kind_s = str_field("kind")?;
        let dir_s = str_field("direction")?;
        Ok(Metric {
            name: str_field("name")?,
            unit: str_field("unit")?,
            kind: MetricKind::from_str(&kind_s)
                .ok_or_else(|| format!("unknown metric kind \"{kind_s}\""))?,
            direction: Direction::from_str(&dir_s)
                .ok_or_else(|| format!("unknown metric direction \"{dir_s}\""))?,
            gate: v.get("gate").and_then(Json::as_bool).unwrap_or(true),
            samples: v
                .get("samples")
                .and_then(Json::as_arr)
                .ok_or("metric missing \"samples\"")?
                .iter()
                .map(|s| s.as_f64().ok_or("non-numeric sample"))
                .collect::<Result<_, _>>()?,
            stats: MetricStats {
                median: num_field("median")?,
                mad: num_field("mad")?,
                ci_lo: num_field("ci_lo")?,
                ci_hi: num_field("ci_hi")?,
            },
        })
    }
}

/// One benchmark scenario: its identifying parameters, measured metrics,
/// and the structural introspection snapshot taken during the run.
#[derive(Clone, Debug)]
pub struct Scenario {
    pub name: String,
    /// Identifying parameters (N, distribution, S, gpus, …). Two scenario
    /// results are comparable only when these match exactly.
    pub params: Json,
    pub metrics: Vec<Metric>,
    /// Structural introspection (tree shape, plan lists, GPU shares, cost
    /// coefficients, metrics registry) — see [`super::snapshot`].
    pub snapshot: Json,
}

impl Scenario {
    pub fn metric(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    fn to_json(&self) -> Json {
        obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("params", self.params.clone()),
            (
                "metrics",
                Json::Arr(self.metrics.iter().map(Metric::to_json).collect()),
            ),
            ("snapshot", self.snapshot.clone()),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Scenario {
            name: v
                .get("name")
                .and_then(Json::as_str)
                .ok_or("scenario missing \"name\"")?
                .to_string(),
            params: v.get("params").cloned().unwrap_or(Json::Obj(Vec::new())),
            metrics: v
                .get("metrics")
                .and_then(Json::as_arr)
                .ok_or("scenario missing \"metrics\"")?
                .iter()
                .map(Metric::from_json)
                .collect::<Result<_, _>>()?,
            snapshot: v.get("snapshot").cloned().unwrap_or(Json::Obj(Vec::new())),
        })
    }
}

/// The whole report: schema tag, provenance, run configuration, scenarios.
#[derive(Clone, Debug)]
pub struct BenchReport {
    pub schema_version: u64,
    /// `{"os", "arch", "cpus"}` of the measuring host.
    pub host: Json,
    /// Git commit the measured binary was built from, or "unknown".
    pub commit: String,
    /// Suite configuration echo: `{"mode", "reps", "warmup", "seed"}`.
    pub config: Json,
    pub scenarios: Vec<Scenario>,
}

impl BenchReport {
    pub fn scenario(&self, name: &str) -> Option<&Scenario> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// Fingerprint of the current host.
    pub fn current_host() -> Json {
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        obj(vec![
            ("os", Json::Str(std::env::consts::OS.to_string())),
            ("arch", Json::Str(std::env::consts::ARCH.to_string())),
            ("cpus", Json::Num(cpus as f64)),
        ])
    }

    /// HEAD commit read straight from `.git` (no subprocess): follows one
    /// level of `ref:` indirection, returns "unknown" outside a checkout.
    pub fn current_commit() -> String {
        fn read_head(root: &std::path::Path) -> Option<String> {
            let head = std::fs::read_to_string(root.join(".git/HEAD")).ok()?;
            let head = head.trim();
            if let Some(r) = head.strip_prefix("ref: ") {
                let direct = std::fs::read_to_string(root.join(".git").join(r)).ok();
                if let Some(sha) = direct {
                    return Some(sha.trim().to_string());
                }
                // Packed refs fallback.
                let packed = std::fs::read_to_string(root.join(".git/packed-refs")).ok()?;
                for line in packed.lines() {
                    if let Some(sha) = line.strip_suffix(r) {
                        return Some(sha.trim().to_string());
                    }
                }
                None
            } else {
                Some(head.to_string())
            }
        }
        let mut dir = std::env::current_dir().ok();
        while let Some(d) = dir {
            if d.join(".git").exists() {
                return read_head(&d).unwrap_or_else(|| "unknown".to_string());
            }
            dir = d.parent().map(|p| p.to_path_buf());
        }
        "unknown".to_string()
    }

    pub fn to_json_value(&self) -> Json {
        obj(vec![
            ("schema_version", Json::Num(self.schema_version as f64)),
            ("host", self.host.clone()),
            ("commit", Json::Str(self.commit.clone())),
            ("config", self.config.clone()),
            (
                "scenarios",
                Json::Arr(self.scenarios.iter().map(Scenario::to_json).collect()),
            ),
        ])
    }

    /// Serialize; single line plus trailing newline.
    pub fn to_json(&self) -> String {
        let mut s = self.to_json_value().to_json();
        s.push('\n');
        s
    }

    /// Parse a report, rejecting unknown schema versions (a future v2
    /// report must not be silently misread as v1).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let version = v
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("report missing \"schema_version\"")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (this build reads {SCHEMA_VERSION})"
            ));
        }
        Ok(BenchReport {
            schema_version: version,
            host: v.get("host").cloned().unwrap_or(Json::Obj(Vec::new())),
            commit: v
                .get("commit")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            config: v.get("config").cloned().unwrap_or(Json::Obj(Vec::new())),
            scenarios: v
                .get("scenarios")
                .and_then(Json::as_arr)
                .ok_or("report missing \"scenarios\"")?
                .iter()
                .map(Scenario::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            host: BenchReport::current_host(),
            commit: "deadbeef".to_string(),
            config: obj(vec![("mode", Json::Str("smoke".into()))]),
            scenarios: vec![Scenario {
                name: "solve_step".to_string(),
                params: obj(vec![("n", Json::Num(1000.0))]),
                metrics: vec![
                    Metric::wall("wall_s", "s", vec![0.5, 0.52, 0.49], 1),
                    Metric::virtual_point("virtual_compute_s", "s", 0.123),
                    Metric::wall("speedup", "x", vec![8.0, 8.1], 2).higher_is_better(),
                ],
                snapshot: obj(vec![("tree", Json::Obj(Vec::new()))]),
            }],
        }
    }

    #[test]
    fn report_round_trips() {
        let r = tiny_report();
        let text = r.to_json();
        assert!(telemetry::json_syntax_ok(text.trim_end()));
        let back = BenchReport::from_json(&text).unwrap();
        assert_eq!(back.commit, "deadbeef");
        let s = back.scenario("solve_step").unwrap();
        assert_eq!(s.metrics.len(), 3);
        let m = s.metric("wall_s").unwrap();
        assert_eq!(m.samples, vec![0.5, 0.52, 0.49]);
        assert_eq!(m.stats, r.scenarios[0].metrics[0].stats);
        assert_eq!(m.kind, MetricKind::Wall);
        assert_eq!(s.metric("speedup").unwrap().direction, Direction::Higher);
        assert_eq!(
            s.metric("virtual_compute_s").unwrap().kind,
            MetricKind::Virtual
        );
    }

    #[test]
    fn rejects_future_schema() {
        let mut text = tiny_report().to_json();
        text = text.replace("\"schema_version\":1", "\"schema_version\":99");
        let err = BenchReport::from_json(&text).unwrap_err();
        assert!(err.contains("schema_version 99"), "{err}");
    }

    #[test]
    fn current_commit_resolves_in_this_repo() {
        let c = BenchReport::current_commit();
        // In the repo checkout this is a 40-char sha; elsewhere "unknown".
        assert!(c == "unknown" || c.len() == 40, "commit = {c:?}");
    }
}
