//! The canonical `BenchReport` JSON schema — one shape for every perf
//! artifact the repo produces, so reports from different commits and hosts
//! can be compared mechanically.
//!
//! Top level:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "host": {"os": "...", "arch": "...", "cpus": 8},
//!   "commit": "abc123... | unknown",
//!   "config": {"mode": "quick|full|smoke", "reps": 5, "warmup": 1, "seed": 7},
//!   "scenarios": [
//!     {
//!       "name": "solve_step",
//!       "params": {"n": 12000, "distribution": "plummer", "s": 96, "gpus": 4},
//!       "metrics": [
//!         {"name": "wall_s", "unit": "s", "kind": "wall", "direction": "lower",
//!          "samples": [...], "median": .., "mad": .., "ci_lo": .., "ci_hi": ..}
//!       ],
//!       "snapshot": { ...structural introspection, see snapshot.rs... }
//!     }
//!   ]
//! }
//! ```
//!
//! `kind` tells the comparator how much noise to expect: `"wall"` metrics
//! are wall-clock measurements with host-dependent jitter, `"virtual"`
//! metrics come out of the deterministic simulators (identical input ⇒
//! identical value, on any host), so a virtual change is always a code or
//! structure change, never noise.

use super::json::{obj, Json};
use super::stats::MetricStats;

/// Bumped whenever the report shape changes incompatibly.
pub const SCHEMA_VERSION: u64 = 1;

/// How a metric was measured — drives the comparator's noise floor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Wall-clock time on the running host; jittery.
    Wall,
    /// Output of the deterministic virtual-node simulation; noise-free.
    Virtual,
}

impl MetricKind {
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Wall => "wall",
            MetricKind::Virtual => "virtual",
        }
    }

    pub fn from_str(s: &str) -> Option<Self> {
        match s {
            "wall" => Some(MetricKind::Wall),
            "virtual" => Some(MetricKind::Virtual),
            _ => None,
        }
    }
}

/// Which way is better for this metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Timings, imbalance: smaller is better.
    Lower,
    /// Speedups, efficiency: larger is better.
    Higher,
}

impl Direction {
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::Lower => "lower",
            Direction::Higher => "higher",
        }
    }

    pub fn from_str(s: &str) -> Option<Self> {
        match s {
            "lower" => Some(Direction::Lower),
            "higher" => Some(Direction::Higher),
            _ => None,
        }
    }
}

/// One measured quantity of a scenario with its raw samples and robust
/// summary.
#[derive(Clone, Debug)]
pub struct Metric {
    pub name: String,
    pub unit: String,
    pub kind: MetricKind,
    pub direction: Direction,
    /// Whether the comparator may fail a build on this metric. Derived or
    /// near-zero quantities (overhead fractions) are recorded for humans
    /// but never gate — their relative deltas are numerically meaningless.
    pub gate: bool,
    pub samples: Vec<f64>,
    pub stats: MetricStats,
}

impl Metric {
    /// A wall-clock metric summarized from its samples.
    pub fn wall(name: &str, unit: &str, samples: Vec<f64>, seed: u64) -> Self {
        let stats = super::stats::summarize(&samples, seed);
        Metric {
            name: name.to_string(),
            unit: unit.to_string(),
            kind: MetricKind::Wall,
            direction: Direction::Lower,
            gate: true,
            samples,
            stats,
        }
    }

    /// A deterministic simulator output: a single sample with a point CI.
    pub fn virtual_point(name: &str, unit: &str, value: f64) -> Self {
        Metric {
            name: name.to_string(),
            unit: unit.to_string(),
            kind: MetricKind::Virtual,
            direction: Direction::Lower,
            gate: true,
            samples: vec![value],
            stats: MetricStats {
                median: value,
                mad: 0.0,
                ci_lo: value,
                ci_hi: value,
            },
        }
    }

    /// Flip the preferred direction (for speedups, efficiencies).
    pub fn higher_is_better(mut self) -> Self {
        self.direction = Direction::Higher;
        self
    }

    /// Record for humans, never fail a build on it.
    pub fn informational(mut self) -> Self {
        self.gate = false;
        self
    }

    fn to_json(&self) -> Json {
        obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("unit", Json::Str(self.unit.clone())),
            ("kind", Json::Str(self.kind.as_str().to_string())),
            ("direction", Json::Str(self.direction.as_str().to_string())),
            ("gate", Json::Bool(self.gate)),
            (
                "samples",
                Json::Arr(self.samples.iter().map(|&s| Json::Num(s)).collect()),
            ),
            ("median", Json::Num(self.stats.median)),
            ("mad", Json::Num(self.stats.mad)),
            ("ci_lo", Json::Num(self.stats.ci_lo)),
            ("ci_hi", Json::Num(self.stats.ci_hi)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let str_field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("metric missing string field \"{k}\""))
        };
        let num_field = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("metric missing number field \"{k}\""))
        };
        let kind_s = str_field("kind")?;
        let dir_s = str_field("direction")?;
        Ok(Metric {
            name: str_field("name")?,
            unit: str_field("unit")?,
            kind: MetricKind::from_str(&kind_s)
                .ok_or_else(|| format!("unknown metric kind \"{kind_s}\""))?,
            direction: Direction::from_str(&dir_s)
                .ok_or_else(|| format!("unknown metric direction \"{dir_s}\""))?,
            gate: v.get("gate").and_then(Json::as_bool).unwrap_or(true),
            samples: v
                .get("samples")
                .and_then(Json::as_arr)
                .ok_or("metric missing \"samples\"")?
                .iter()
                .map(|s| s.as_f64().ok_or("non-numeric sample"))
                .collect::<Result<_, _>>()?,
            stats: MetricStats {
                median: num_field("median")?,
                mad: num_field("mad")?,
                ci_lo: num_field("ci_lo")?,
                ci_hi: num_field("ci_hi")?,
            },
        })
    }
}

/// One benchmark scenario: its identifying parameters, measured metrics,
/// and the structural introspection snapshot taken during the run.
#[derive(Clone, Debug)]
pub struct Scenario {
    pub name: String,
    /// Identifying parameters (N, distribution, S, gpus, …). Two scenario
    /// results are comparable only when these match exactly.
    pub params: Json,
    pub metrics: Vec<Metric>,
    /// Structural introspection (tree shape, plan lists, GPU shares, cost
    /// coefficients, metrics registry) — see [`super::snapshot`].
    pub snapshot: Json,
}

impl Scenario {
    pub fn metric(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    fn to_json(&self) -> Json {
        obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("params", self.params.clone()),
            (
                "metrics",
                Json::Arr(self.metrics.iter().map(Metric::to_json).collect()),
            ),
            ("snapshot", self.snapshot.clone()),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Scenario {
            name: v
                .get("name")
                .and_then(Json::as_str)
                .ok_or("scenario missing \"name\"")?
                .to_string(),
            params: v.get("params").cloned().unwrap_or(Json::Obj(Vec::new())),
            metrics: v
                .get("metrics")
                .and_then(Json::as_arr)
                .ok_or("scenario missing \"metrics\"")?
                .iter()
                .map(Metric::from_json)
                .collect::<Result<_, _>>()?,
            snapshot: v.get("snapshot").cloned().unwrap_or(Json::Obj(Vec::new())),
        })
    }
}

/// The whole report: schema tag, provenance, run configuration, scenarios.
#[derive(Clone, Debug)]
pub struct BenchReport {
    pub schema_version: u64,
    /// `{"os", "arch", "cpus"}` of the measuring host.
    pub host: Json,
    /// Git commit the measured binary was built from, or "unknown".
    pub commit: String,
    /// Suite configuration echo: `{"mode", "reps", "warmup", "seed"}`.
    pub config: Json,
    pub scenarios: Vec<Scenario>,
}

impl BenchReport {
    pub fn scenario(&self, name: &str) -> Option<&Scenario> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// Fingerprint of the current host.
    pub fn current_host() -> Json {
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        obj(vec![
            ("os", Json::Str(std::env::consts::OS.to_string())),
            ("arch", Json::Str(std::env::consts::ARCH.to_string())),
            ("cpus", Json::Num(cpus as f64)),
        ])
    }

    /// HEAD commit read straight from `.git` (no subprocess): follows one
    /// level of `ref:` indirection, returns "unknown" outside a checkout.
    pub fn current_commit() -> String {
        let mut dir = std::env::current_dir().ok();
        while let Some(d) = dir {
            if d.join(".git").exists() {
                return commit_from_repo_root(&d).unwrap_or_else(|| "unknown".to_string());
            }
            dir = d.parent().map(|p| p.to_path_buf());
        }
        "unknown".to_string()
    }

    pub fn to_json_value(&self) -> Json {
        obj(vec![
            ("schema_version", Json::Num(self.schema_version as f64)),
            ("host", self.host.clone()),
            ("commit", Json::Str(self.commit.clone())),
            ("config", self.config.clone()),
            (
                "scenarios",
                Json::Arr(self.scenarios.iter().map(Scenario::to_json).collect()),
            ),
        ])
    }

    /// Serialize; single line plus trailing newline.
    pub fn to_json(&self) -> String {
        let mut s = self.to_json_value().to_json();
        s.push('\n');
        s
    }

    /// Parse a report. See [`BenchReport::from_json_warn`]; warnings are
    /// dropped here for callers that only need the data.
    pub fn from_json(text: &str) -> Result<Self, String> {
        Self::from_json_warn(text).map(|(r, _)| r)
    }

    /// Parse a report, tolerating growth: unknown fields are ignored
    /// everywhere, and a *newer* `schema_version` parses best-effort with a
    /// warning instead of a hard error — an old binary must still be able
    /// to read (and trend over) a ledger grown by newer ones. Under a newer
    /// version, scenarios this build cannot interpret are skipped with a
    /// warning; under the native version they stay hard errors, because
    /// there they can only mean corruption.
    pub fn from_json_warn(text: &str) -> Result<(Self, Vec<String>), String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let version = v
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("report missing \"schema_version\"")?;
        let mut warnings = Vec::new();
        let newer = version > SCHEMA_VERSION;
        if newer {
            warnings.push(format!(
                "report schema_version {version} is newer than this build's \
                 {SCHEMA_VERSION}; parsing known fields only"
            ));
        }
        let mut scenarios = Vec::new();
        for sv in v
            .get("scenarios")
            .and_then(Json::as_arr)
            .ok_or("report missing \"scenarios\"")?
        {
            match Scenario::from_json(sv) {
                Ok(sc) => scenarios.push(sc),
                Err(e) if newer => warnings.push(format!("skipping scenario: {e}")),
                Err(e) => return Err(e),
            }
        }
        Ok((
            BenchReport {
                schema_version: version,
                host: v.get("host").cloned().unwrap_or(Json::Obj(Vec::new())),
                commit: v
                    .get("commit")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
                config: v.get("config").cloned().unwrap_or(Json::Obj(Vec::new())),
                scenarios,
            },
            warnings,
        ))
    }
}

/// Resolve HEAD inside `root/.git`: a detached sha directly, a loose ref
/// file, or the packed-refs fallback. Packed-refs lines are matched
/// strictly — `"<sha> <full ref name>"` with a single separating space —
/// and peeled `^<sha>` annotations plus `#` headers are skipped, so a ref
/// whose name merely *ends with* the target (e.g. `refs/heads/do-main` vs
/// `main`) or a tag's peeled object can never be reported as HEAD.
fn commit_from_repo_root(root: &std::path::Path) -> Option<String> {
    let head = std::fs::read_to_string(root.join(".git/HEAD")).ok()?;
    let head = head.trim();
    let Some(r) = head.strip_prefix("ref: ") else {
        return Some(head.to_string());
    };
    if let Ok(sha) = std::fs::read_to_string(root.join(".git").join(r)) {
        return Some(sha.trim().to_string());
    }
    let packed = std::fs::read_to_string(root.join(".git/packed-refs")).ok()?;
    for line in packed.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') || line.starts_with('^') {
            continue;
        }
        if let Some((sha, name)) = line.split_once(' ') {
            if name == r && !sha.is_empty() && sha.bytes().all(|b| b.is_ascii_hexdigit()) {
                return Some(sha.to_string());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            host: BenchReport::current_host(),
            commit: "deadbeef".to_string(),
            config: obj(vec![("mode", Json::Str("smoke".into()))]),
            scenarios: vec![Scenario {
                name: "solve_step".to_string(),
                params: obj(vec![("n", Json::Num(1000.0))]),
                metrics: vec![
                    Metric::wall("wall_s", "s", vec![0.5, 0.52, 0.49], 1),
                    Metric::virtual_point("virtual_compute_s", "s", 0.123),
                    Metric::wall("speedup", "x", vec![8.0, 8.1], 2).higher_is_better(),
                ],
                snapshot: obj(vec![("tree", Json::Obj(Vec::new()))]),
            }],
        }
    }

    #[test]
    fn report_round_trips() {
        let r = tiny_report();
        let text = r.to_json();
        assert!(telemetry::json_syntax_ok(text.trim_end()));
        let back = BenchReport::from_json(&text).unwrap();
        assert_eq!(back.commit, "deadbeef");
        let s = back.scenario("solve_step").unwrap();
        assert_eq!(s.metrics.len(), 3);
        let m = s.metric("wall_s").unwrap();
        assert_eq!(m.samples, vec![0.5, 0.52, 0.49]);
        assert_eq!(m.stats, r.scenarios[0].metrics[0].stats);
        assert_eq!(m.kind, MetricKind::Wall);
        assert_eq!(s.metric("speedup").unwrap().direction, Direction::Higher);
        assert_eq!(
            s.metric("virtual_compute_s").unwrap().kind,
            MetricKind::Virtual
        );
    }

    #[test]
    fn tolerates_future_schema_with_warning() {
        let mut text = tiny_report().to_json();
        text = text.replace("\"schema_version\":1", "\"schema_version\":99");
        let (r, warnings) = BenchReport::from_json_warn(&text).unwrap();
        assert_eq!(r.schema_version, 99);
        assert_eq!(r.scenarios.len(), 1);
        assert!(
            warnings.iter().any(|w| w.contains("schema_version 99")),
            "{warnings:?}"
        );
    }

    #[test]
    fn round_trips_with_unknown_extra_fields() {
        // A grown v1 report: extra keys at every level must be ignored, and
        // everything this build understands must survive unchanged.
        let text = tiny_report()
            .to_json()
            .replace(
                "{\"schema_version\":1",
                "{\"schema_version\":1,\"flux_capacitance\":[1,2,3]",
            )
            .replace(
                "{\"name\":\"solve_step\"",
                "{\"name\":\"solve_step\",\"annotations\":{\"color\":\"teal\"}",
            )
            .replace("{\"name\":\"wall_s\"", "{\"name\":\"wall_s\",\"p99\":0.53");
        let (r, warnings) = BenchReport::from_json_warn(&text).unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(r.commit, "deadbeef");
        let m = r.scenario("solve_step").unwrap().metric("wall_s").unwrap();
        assert_eq!(m.samples, vec![0.5, 0.52, 0.49]);
        // Re-serializing drops the unknown fields but stays parseable.
        let again = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(again.scenarios[0].metrics.len(), 3);
    }

    #[test]
    fn future_schema_skips_unreadable_scenarios() {
        // Under a *newer* schema, a scenario shaped in a way v1 cannot read
        // is skipped with a warning; under the native version it is a
        // hard error (corruption).
        let broken = tiny_report()
            .to_json()
            .replace("\"kind\":\"wall\"", "\"kind\":\"quantile_sketch\"");
        assert!(BenchReport::from_json(&broken).is_err());
        let future = broken.replace("\"schema_version\":1", "\"schema_version\":2");
        let (r, warnings) = BenchReport::from_json_warn(&future).unwrap();
        assert!(r.scenarios.is_empty());
        assert!(
            warnings.iter().any(|w| w.contains("skipping scenario")),
            "{warnings:?}"
        );
    }

    #[test]
    fn current_commit_resolves_in_this_repo() {
        let c = BenchReport::current_commit();
        // In the repo checkout this is a 40-char sha; elsewhere "unknown".
        assert!(c == "unknown" || c.len() == 40, "commit = {c:?}");
    }

    /// Build a synthetic `.git` layout under a fresh temp dir.
    fn synthetic_git(tag: &str, head: &str, files: &[(&str, &str)]) -> std::path::PathBuf {
        let root =
            std::env::temp_dir().join(format!("afmm-report-git-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join(".git/refs/heads")).unwrap();
        std::fs::write(root.join(".git/HEAD"), head).unwrap();
        for (rel, contents) in files {
            let p = root.join(".git").join(rel);
            std::fs::create_dir_all(p.parent().unwrap()).unwrap();
            std::fs::write(p, contents).unwrap();
        }
        root
    }

    const SHA_A: &str = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa";
    const SHA_B: &str = "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb";

    #[test]
    fn commit_loose_ref_wins_over_packed() {
        let root = synthetic_git(
            "loose",
            "ref: refs/heads/main\n",
            &[
                ("refs/heads/main", &format!("{SHA_A}\n")),
                ("packed-refs", &format!("{SHA_B} refs/heads/main\n")),
            ],
        );
        assert_eq!(commit_from_repo_root(&root).as_deref(), Some(SHA_A));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn commit_packed_refs_requires_exact_name_and_skips_peeled() {
        // `refs/heads/do-main` ends with "main" and the peeled `^sha` line
        // follows an annotated tag; neither may be reported as HEAD.
        let packed = format!(
            "# pack-refs with: peeled fully-peeled sorted \n\
             {SHA_B} refs/heads/do-main\n\
             {SHA_B} refs/tags/v1.0\n\
             ^{SHA_B}\n\
             {SHA_A} refs/heads/main\n"
        );
        let root = synthetic_git(
            "packed",
            "ref: refs/heads/main\n",
            &[("packed-refs", &packed)],
        );
        assert_eq!(commit_from_repo_root(&root).as_deref(), Some(SHA_A));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn commit_packed_refs_rejects_non_hex_and_missing_ref() {
        let packed = format!(
            "gggggggggggggggggggggggggggggggggggggggg refs/heads/main\n\
             {SHA_A} refs/heads/other\n"
        );
        let root = synthetic_git(
            "miss",
            "ref: refs/heads/main\n",
            &[("packed-refs", &packed)],
        );
        assert_eq!(commit_from_repo_root(&root), None);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn commit_detached_head_returns_sha() {
        let root = synthetic_git("detached", &format!("{SHA_A}\n"), &[]);
        assert_eq!(commit_from_repo_root(&root).as_deref(), Some(SHA_A));
        let _ = std::fs::remove_dir_all(&root);
    }
}
