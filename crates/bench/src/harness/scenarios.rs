//! The scenario registry: every benchmark the perf-lab runs, parameterized
//! by problem size, distribution, leaf capacity, GPU count, and fault
//! schedule.
//!
//! Each scenario follows the same discipline: deterministic setup (seeded
//! body distributions), `warmup` unmeasured iterations to pay one-time
//! setup (tree build, plan build, page faults), then `reps` measured
//! repetitions whose wall times become the metric samples. Deterministic
//! *virtual* quantities (simulated compute times, edit counts) are recorded
//! as single-sample `virtual` metrics — on the virtual node they cannot
//! jitter, so any change between reports is a real code/structure change.
//! Every scenario ends by gathering a structural introspection snapshot so
//! perf deltas can be attributed (see [`super::snapshot`]).

use std::time::Instant;

use afmm::{
    CostModel, ExecPolicy, FaultEvent, FaultSchedule, FmmEngine, FmmParams, HeteroNode, LbConfig,
    LbState, SchedMode, Strategy, StrategyTracker,
};
use fmm_math::GravityKernel;
use octree::{
    build_adaptive, count_ops, dual_traversal, BuildParams, IncrementalLists, Mac, NodeId, Octree,
};

use super::json::{obj, Json};
use super::report::{BenchReport, Metric, Scenario, SCHEMA_VERSION};
use super::snapshot::{gather, MemFootprint, SnapshotParts};

/// Suite-wide configuration; every scenario scales from these knobs.
#[derive(Clone, Copy, Debug)]
pub struct SuiteConfig {
    /// "full", "quick", or "smoke" — echoed into the report and required
    /// to match between compared reports.
    pub mode: &'static str,
    /// Measured repetitions per wall metric.
    pub reps: usize,
    /// Unmeasured warmup iterations (≥ 1 so first-call setup never lands
    /// in a sample).
    pub warmup: usize,
    /// Master seed for body distributions and bootstrap resampling.
    pub seed: u64,
    /// CPU cores / GPU count of the virtual node.
    pub cores: usize,
    pub gpus: usize,
    pub n_solve: usize,
    pub n_plan: usize,
    pub plan_edits: usize,
    pub n_enforce: usize,
    pub n_balance: usize,
    pub balance_steps: usize,
    pub n_overhead: usize,
    pub n_fault: usize,
    pub fault_steps: usize,
}

impl SuiteConfig {
    /// Full-size suite for interactive use (~minutes).
    pub fn full() -> Self {
        SuiteConfig {
            mode: "full",
            reps: 7,
            warmup: 2,
            seed: 7,
            cores: 10,
            gpus: 4,
            n_solve: 60_000,
            n_plan: 120_000,
            plan_edits: 48,
            n_enforce: 60_000,
            n_balance: 20_000,
            balance_steps: 60,
            n_overhead: 60_000,
            n_fault: 8_000,
            fault_steps: 60,
        }
    }

    /// Small fixed sizes for the CI gate (~tens of seconds). The
    /// checked-in `bench/baseline.json` is produced at these sizes.
    pub fn quick() -> Self {
        SuiteConfig {
            mode: "quick",
            reps: 5,
            warmup: 1,
            seed: 7,
            cores: 10,
            gpus: 4,
            n_solve: 12_000,
            n_plan: 30_000,
            plan_edits: 32,
            n_enforce: 20_000,
            n_balance: 6_000,
            balance_steps: 24,
            n_overhead: 12_000,
            n_fault: 3_000,
            fault_steps: 30,
        }
    }

    /// Tiny sizes for the test suite (~seconds); exercises every scenario
    /// end to end without meaningful timing resolution.
    pub fn smoke() -> Self {
        SuiteConfig {
            mode: "smoke",
            reps: 2,
            warmup: 1,
            seed: 7,
            cores: 4,
            gpus: 2,
            n_solve: 2_000,
            n_plan: 4_000,
            plan_edits: 8,
            n_enforce: 3_000,
            n_balance: 1_500,
            balance_steps: 8,
            n_overhead: 2_000,
            n_fault: 1_200,
            fault_steps: 12,
        }
    }
}

/// Run the whole registry; `progress` receives one line per scenario.
pub fn run_suite(cfg: &SuiteConfig, progress: &mut dyn FnMut(&str)) -> BenchReport {
    let runners: [(&str, fn(&SuiteConfig) -> Scenario); 8] = [
        ("solve_step", solve_step),
        ("dag_pipeline", dag_pipeline),
        ("plan_patch_vs_rebuild", plan_patch_vs_rebuild),
        ("enforce_s", enforce_s),
        ("balancer_convergence", balancer_convergence),
        ("telemetry_overhead", telemetry_overhead),
        ("balancer_faults", balancer_faults),
        ("memory_profile", memory_profile),
    ];
    let mut scenarios = Vec::with_capacity(runners.len());
    for (name, run) in runners {
        progress(&format!("running {name} ..."));
        let t0 = Instant::now();
        let sc = run(cfg);
        progress(&format!(
            "  {name} done in {:.1}s",
            t0.elapsed().as_secs_f64()
        ));
        scenarios.push(sc);
    }
    BenchReport {
        schema_version: SCHEMA_VERSION,
        host: BenchReport::current_host(),
        commit: BenchReport::current_commit(),
        config: obj(vec![
            ("mode", Json::Str(cfg.mode.to_string())),
            ("reps", Json::Num(cfg.reps as f64)),
            ("warmup", Json::Num(cfg.warmup as f64)),
            ("seed", Json::Num(cfg.seed as f64)),
        ]),
        scenarios,
    }
}

/// Time `f` once, in seconds.
fn wall<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let t0 = Instant::now();
    let out = std::hint::black_box(f());
    (t0.elapsed().as_secs_f64(), out)
}

/// `warmup` unmeasured + `reps` measured runs of `f`.
fn sample(warmup: usize, reps: usize, mut f: impl FnMut()) -> Vec<f64> {
    for _ in 0..warmup.max(1) {
        f();
    }
    (0..reps).map(|_| wall(&mut f).0).collect()
}

/// **solve_step** — one numeric FMM solve (gravity, Plummer sphere) plus
/// the virtual-node timing of the same tree. The core "is the solver
/// getting slower" scenario; its snapshot carries the full structural
/// context including the observed cost-model coefficients.
fn solve_step(cfg: &SuiteConfig) -> Scenario {
    let s = 96;
    let b = nbody::plummer(cfg.n_solve, 1.0, 1.0, cfg.seed);
    let mut engine = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &b.pos, s);
    let samples = sample(cfg.warmup, cfg.reps, || {
        std::hint::black_box(engine.solve(&b.pos, &b.mass));
    });

    let node = HeteroNode::system_a(cfg.cores, cfg.gpus);
    let flops = crate::default_flops(&GravityKernel::default());
    let timing = engine
        .time_step(&flops, &node)
        .expect("healthy virtual node");
    let counts = engine.counts();
    let mut cost = CostModel::new();
    cost.observe(&counts, &timing, &flops, &node);

    let snapshot = gather(&SnapshotParts {
        tree: Some(engine.tree()),
        lists: Some(engine.lists()),
        counts: Some(counts),
        cost: Some(&cost),
        timing: timing.gpu.as_ref(),
        metrics_json: None,
        audit: None,
        mem: None,
    });
    Scenario {
        name: "solve_step".to_string(),
        params: obj(vec![
            ("n", Json::Num(cfg.n_solve as f64)),
            ("distribution", Json::Str("plummer".to_string())),
            ("s", Json::Num(s as f64)),
            ("cores", Json::Num(cfg.cores as f64)),
            ("gpus", Json::Num(cfg.gpus as f64)),
        ]),
        metrics: vec![
            Metric::wall("wall_solve_s", "s", samples, cfg.seed),
            Metric::virtual_point("virtual_compute_s", "s", timing.compute()),
            Metric::virtual_point("virtual_cpu_s", "s", timing.t_cpu),
            Metric::virtual_point("virtual_gpu_s", "s", timing.t_gpu),
        ],
        snapshot,
    }
}

/// **dag_pipeline** — barrier vs dependency-driven execution of the *same*
/// plan on a matrix of heterogeneous node shapes. The virtual makespans are
/// deterministic, so the per-config speedups are gated: a change that costs
/// the list scheduler its pipelining win (M2L overlapping the upsweep, GPU
/// lanes overlapping CPU work) fails the compare. The wall metric tracks
/// the scheduler's own cost — the price of dependency-driven dispatch over
/// the barrier oracle's simpler id-greedy sweep.
///
/// The leaf capacity matches `solve_step`'s S=96: the fine-grained DAG pays
/// one extra task of dispatch overhead per node, so its win lives where
/// dependency slack binds (deeper trees, span-bound schedules), not in the
/// work-bound limit — see DESIGN.md §11.
fn dag_pipeline(cfg: &SuiteConfig) -> Scenario {
    let s = 96;
    let configs: [(usize, usize); 3] = [(10, 4), (10, 1), (8, 2)];
    let b = nbody::plummer(cfg.n_solve, 1.0, 1.0, cfg.seed + 6);
    let mut engine = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &b.pos, s);
    engine.refresh_lists();
    let flops = crate::default_flops(&GravityKernel::default());

    let node0 = HeteroNode::system_a(configs[0].0, configs[0].1);
    engine.set_exec_policy(ExecPolicy {
        mode: SchedMode::Dag,
        ..Default::default()
    });
    let samples = sample(cfg.warmup, cfg.reps, || {
        std::hint::black_box(engine.time_step(&flops, &node0).expect("healthy node"));
    });

    let mut metrics = vec![Metric::wall("wall_dag_step_s", "s", samples, cfg.seed)];
    for &(cores, gpus) in &configs {
        let node = HeteroNode::system_a(cores, gpus);
        engine.set_exec_policy(ExecPolicy::default());
        let bar = engine.time_step(&flops, &node).expect("healthy node");
        engine.set_exec_policy(ExecPolicy {
            mode: SchedMode::Dag,
            ..Default::default()
        });
        let dag = engine.time_step(&flops, &node).expect("healthy node");
        let tag = format!("{cores}c{gpus}g");
        metrics.push(Metric::virtual_point(
            &format!("virtual_barrier_{tag}_s"),
            "s",
            bar.compute(),
        ));
        metrics.push(Metric::virtual_point(
            &format!("virtual_dag_{tag}_s"),
            "s",
            dag.compute(),
        ));
        metrics.push(
            Metric::virtual_point(
                &format!("dag_speedup_{tag}"),
                "x",
                bar.compute() / dag.compute(),
            )
            .higher_is_better(),
        );
    }

    // One traced run on the primary config: the scheduler x-ray feeds the
    // snapshot so a gated speedup regression can be attributed to the
    // phase/lane where the critical path moved (see `afmm-perf compare`).
    engine.set_exec_policy(ExecPolicy {
        mode: SchedMode::Dag,
        trace: true,
        ..Default::default()
    });
    let traced = engine.time_step(&flops, &node0).expect("healthy node");
    let sched_json = traced.sched.as_deref().map(sched_snapshot);

    let counts = engine.counts();
    let mut snapshot = gather(&SnapshotParts {
        tree: Some(engine.tree()),
        lists: Some(engine.lists()),
        counts: Some(counts),
        ..Default::default()
    });
    if let (Json::Obj(fields), Some(sched)) = (&mut snapshot, sched_json) {
        fields.push(("sched".to_string(), sched));
    }
    Scenario {
        name: "dag_pipeline".to_string(),
        params: obj(vec![
            ("n", Json::Num(cfg.n_solve as f64)),
            ("distribution", Json::Str("plummer".to_string())),
            ("s", Json::Num(s as f64)),
            (
                "configs",
                Json::Str(
                    configs
                        .iter()
                        .map(|(c, g)| format!("{c}C{g}G"))
                        .collect::<Vec<_>>()
                        .join(","),
                ),
            ),
        ]),
        metrics,
        snapshot,
    }
}

/// Flatten a scheduler x-ray into the snapshot's `sched` object: enough to
/// say *where* a makespan delta lives (phase fractions of the realized
/// critical path, cause split, per-lane utilization) without storing the
/// per-task trace.
fn sched_snapshot(x: &afmm::SchedXray) -> Json {
    let a = &x.analysis;
    let phases: Vec<(String, Json)> = afmm::PhaseTag::ALL
        .iter()
        .map(|p| {
            (
                p.label().to_string(),
                Json::Num(x.crit_phase_frac[p.index()]),
            )
        })
        .collect();
    let lane_util = (0..x.gpu_lanes)
        .map(|d| Json::Num(x.gpu_lane_util[d]))
        .collect();
    obj(vec![
        ("pass", Json::Str(x.pass.label().to_string())),
        ("cores", Json::Num(x.cores as f64)),
        ("gpu_lanes", Json::Num(x.gpu_lanes as f64)),
        ("makespan_s", Json::Num(a.makespan)),
        ("critpath_len", Json::Num(a.crit_path.len() as f64)),
        ("critpath_sum_s", Json::Num(a.crit_sum)),
        ("lane_idle_frac", Json::Num(a.lane_idle_frac)),
        ("pipeline_overlap", Json::Num(a.pipeline_overlap)),
        ("crit_cpu_frac", Json::Num(a.crit_cpu_frac)),
        ("crit_gpu_frac", Json::Num(a.crit_gpu_frac)),
        ("dependency_frac", Json::Num(a.dependency_frac)),
        ("starvation_frac", Json::Num(a.resource_cpu_frac)),
        ("serialization_frac", Json::Num(a.resource_gpu_frac)),
        ("crit_phase_frac", Json::Obj(phases)),
        ("gpu_lane_util", Json::Arr(lane_util)),
    ])
}

/// Result of one plan-economy measurement at a fixed S — shared with the
/// legacy `plan_patch_vs_rebuild` bin, which sweeps it over S values.
pub struct PlanEconomy {
    /// One full `dual_traversal` + `count_ops` pass, microseconds.
    pub rebuild_us: f64,
    /// One plan-routed collapse or push-down, microseconds.
    pub patch_us_per_edit: f64,
    /// Edits applied (collapse + reverting push-down per twig).
    pub edits: usize,
}

/// Internal non-root nodes whose visible children are all leaves — the
/// edit sites a capacity sweep actually touches, and whose hidden children
/// let `push_down` revert the collapse exactly.
pub fn twigs(tree: &Octree, limit: usize) -> Vec<NodeId> {
    tree.visible_nodes()
        .into_iter()
        .filter(|&id| {
            id != Octree::ROOT
                && !tree.node(id).is_leaf()
                && tree.visible_children(id).all(|c| tree.node(c).is_leaf())
        })
        .take(limit)
        .collect()
}

/// Measure rebuild-vs-patch once on `tree` (left structurally unchanged:
/// every collapse is reverted by its push-down).
pub fn measure_plan_economy(tree: &mut Octree, mac: Mac, max_edits: usize) -> PlanEconomy {
    let (rebuild_s, _) = wall(|| {
        let lists = dual_traversal(tree, mac);
        count_ops(tree, &lists)
    });
    let victims = twigs(tree, max_edits);
    let mut plan = IncrementalLists::build(tree, mac);
    let mut applied = 0usize;
    let (patch_s, _) = wall(|| {
        for &id in &victims {
            applied += usize::from(plan.apply_collapse(tree, id));
            applied += usize::from(plan.apply_push_down(tree, id));
        }
    });
    assert_eq!(applied, 2 * victims.len(), "every twig edit must apply");
    PlanEconomy {
        rebuild_us: rebuild_s * 1e6,
        patch_us_per_edit: patch_s * 1e6 / applied.max(1) as f64,
        edits: applied,
    }
}

/// **plan_patch_vs_rebuild** — the plan layer's economics at one fixed S:
/// patching a live plan through single-node edits vs re-deriving lists and
/// counts from scratch.
fn plan_patch_vs_rebuild(cfg: &SuiteConfig) -> Scenario {
    let s = 256;
    let b = nbody::plummer(cfg.n_plan, 1.0, 1.0, cfg.seed + 1);
    let mut tree = build_adaptive(&b.pos, BuildParams::with_s(s));
    let mac = Mac::default();

    // Warmup pass, then paired samples from the same tree (edits revert).
    for _ in 0..cfg.warmup.max(1) {
        measure_plan_economy(&mut tree, mac, cfg.plan_edits);
    }
    let mut rebuilds = Vec::with_capacity(cfg.reps);
    let mut patches = Vec::with_capacity(cfg.reps);
    let mut speedups = Vec::with_capacity(cfg.reps);
    let mut edits = 0usize;
    for _ in 0..cfg.reps {
        let e = measure_plan_economy(&mut tree, mac, cfg.plan_edits);
        rebuilds.push(e.rebuild_us);
        patches.push(e.patch_us_per_edit);
        speedups.push(e.rebuild_us / e.patch_us_per_edit);
        edits = e.edits;
    }

    let lists = dual_traversal(&tree, mac);
    let snapshot = gather(&SnapshotParts {
        tree: Some(&tree),
        lists: Some(&lists),
        counts: None,
        ..Default::default()
    });
    Scenario {
        name: "plan_patch_vs_rebuild".to_string(),
        params: obj(vec![
            ("n", Json::Num(cfg.n_plan as f64)),
            ("distribution", Json::Str("plummer".to_string())),
            ("s", Json::Num(s as f64)),
            ("edits", Json::Num(edits as f64)),
        ]),
        metrics: vec![
            Metric::wall("rebuild_us", "us", rebuilds, cfg.seed),
            Metric::wall("patch_us_per_edit", "us", patches, cfg.seed + 1),
            Metric::wall("patch_speedup", "x", speedups, cfg.seed + 2)
                .higher_is_better()
                .informational(),
        ],
        snapshot,
    }
}

/// **enforce_s** — the cost of the paper's `Enforce_S` walk through the
/// live plan: rebuild the tree at S=128 (outside the timer), drop the
/// target to S=64, and time one full plan-patching enforcement pass.
fn enforce_s(cfg: &SuiteConfig) -> Scenario {
    let (s_from, s_to) = (128usize, 64usize);
    let b = nbody::plummer(cfg.n_enforce, 1.0, 1.0, cfg.seed + 2);
    let mut engine = FmmEngine::new(
        GravityKernel::default(),
        FmmParams::default(),
        &b.pos,
        s_from,
    );
    let mut samples = Vec::with_capacity(cfg.reps);
    let mut edits = 0u64;
    for rep in 0..cfg.warmup.max(1) + cfg.reps {
        engine.rebuild(&b.pos, s_from);
        engine.refresh_plan();
        engine.set_s(s_to);
        let (t, (out, patched)) = wall(|| engine.enforce_s());
        assert!(patched, "enforce_s must take the plan path here");
        if rep >= cfg.warmup.max(1) {
            samples.push(t * 1e3);
            edits = (out.collapses + out.pushdowns) as u64;
        }
    }

    let counts = engine.counts();
    let snapshot = gather(&SnapshotParts {
        tree: Some(engine.tree()),
        lists: Some(engine.lists()),
        counts: Some(counts),
        ..Default::default()
    });
    Scenario {
        name: "enforce_s".to_string(),
        params: obj(vec![
            ("n", Json::Num(cfg.n_enforce as f64)),
            ("distribution", Json::Str("plummer".to_string())),
            ("s_from", Json::Num(s_from as f64)),
            ("s_to", Json::Num(s_to as f64)),
        ]),
        metrics: vec![
            Metric::wall("enforce_ms", "ms", samples, cfg.seed),
            Metric::virtual_point("edits", "count", edits as f64),
        ],
        snapshot,
    }
}

/// **balancer_convergence** — the full Strategy-3 loop on the paper's
/// contracting-cloud workload: wall time of the whole run plus the
/// deterministic virtual compute/LB totals and the settle step.
fn balancer_convergence(cfg: &SuiteConfig) -> Scenario {
    type BalanceRun = (
        f64,
        afmm::RunSummary,
        Option<String>,
        u64,
        usize,
        telemetry::AuditStats,
    );
    let run = |record: bool| -> BalanceRun {
        let setup = nbody::collapsing_plummer(cfg.n_balance, 1.0, cfg.seed + 3);
        let rec = if record {
            telemetry::Recorder::enabled()
        } else {
            telemetry::Recorder::disabled()
        };
        let mut tracker = StrategyTracker::with_telemetry(
            GravityKernel::default(),
            FmmParams::default(),
            HeteroNode::system_a(cfg.cores, cfg.gpus),
            Strategy::Full,
            LbConfig::default(),
            &setup.bodies.pos,
            Some((setup.domain_center, setup.domain_half_width)),
            rec.clone(),
        );
        let clump = geom::Vec3::new(
            0.4 * setup.domain_half_width,
            0.4 * setup.domain_half_width,
            0.4 * setup.domain_half_width,
        );
        let mut pos = setup.bodies.pos.clone();
        let (t, ()) = wall(|| {
            for step in 0..cfg.balance_steps {
                tracker.step(&pos).expect("healthy node cannot fail");
                if step < cfg.balance_steps / 2 {
                    for p in &mut pos {
                        *p = *p + (clump - *p) * 0.05;
                    }
                }
            }
        });
        let settle = tracker
            .records()
            .iter()
            .position(|r| r.state == LbState::Observation)
            .unwrap_or(cfg.balance_steps);
        let s_final = tracker.balancer().s() as u64;
        let metrics_json = record.then(|| rec.metrics_json());
        let audit = tracker.audits().stats();
        (t, tracker.summary(), metrics_json, s_final, settle, audit)
    };

    for _ in 0..cfg.warmup.max(1) {
        run(false);
    }
    let mut samples = Vec::with_capacity(cfg.reps);
    let mut last = None;
    for _ in 0..cfg.reps {
        let (t, summary, metrics_json, s_final, settle, audit) = run(true);
        samples.push(t);
        last = Some((summary, metrics_json, s_final, settle, audit));
    }
    let (summary, metrics_json, s_final, settle, audit) = last.expect("reps >= 1");

    let snapshot = gather(&SnapshotParts {
        metrics_json: metrics_json.clone(),
        audit: Some(audit),
        ..Default::default()
    });
    Scenario {
        name: "balancer_convergence".to_string(),
        params: obj(vec![
            ("n", Json::Num(cfg.n_balance as f64)),
            ("distribution", Json::Str("collapsing_plummer".to_string())),
            ("steps", Json::Num(cfg.balance_steps as f64)),
            ("strategy", Json::Str("full".to_string())),
            ("cores", Json::Num(cfg.cores as f64)),
            ("gpus", Json::Num(cfg.gpus as f64)),
        ]),
        metrics: vec![
            Metric::wall("wall_run_s", "s", samples, cfg.seed),
            Metric::virtual_point("virtual_total_compute_s", "s", summary.total_compute),
            Metric::virtual_point("virtual_total_lb_s", "s", summary.total_lb),
            Metric::virtual_point("settle_step", "step", settle as f64),
            Metric::virtual_point("final_s", "bodies", s_final as f64).informational(),
        ],
        snapshot,
    }
}

/// **telemetry_overhead** — the cost of observability itself: numeric
/// solves with no recorder vs an enabled recorder with a live ring buffer.
fn telemetry_overhead(cfg: &SuiteConfig) -> Scenario {
    let b = nbody::plummer(cfg.n_overhead, 1.0, 1.0, cfg.seed + 4);
    let time_variant = |rec: Option<telemetry::Recorder>| -> Vec<f64> {
        let mut engine = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &b.pos, 96);
        if let Some(rec) = rec {
            engine.set_recorder(rec);
        }
        sample(cfg.warmup, cfg.reps, || {
            std::hint::black_box(engine.solve(&b.pos, &b.mass));
        })
    };
    let base = time_variant(None);
    let rec = telemetry::Recorder::enabled();
    let enabled = time_variant(Some(rec.clone()));
    let overhead: Vec<f64> = enabled
        .iter()
        .zip(&base)
        .map(|(e, b)| e / b - 1.0)
        .collect();

    let snapshot = gather(&SnapshotParts {
        metrics_json: Some(rec.metrics_json()),
        ..Default::default()
    });
    Scenario {
        name: "telemetry_overhead".to_string(),
        params: obj(vec![
            ("n", Json::Num(cfg.n_overhead as f64)),
            ("distribution", Json::Str("plummer".to_string())),
            ("s", Json::Num(96.0)),
        ]),
        metrics: vec![
            Metric::wall("wall_base_s", "s", base, cfg.seed),
            Metric::wall("wall_enabled_s", "s", enabled, cfg.seed + 1),
            Metric::wall("overhead_frac", "frac", overhead, cfg.seed + 2).informational(),
        ],
        snapshot,
    }
}

/// **balancer_faults** — resilience cost: a device dropout mid-run and its
/// recovery, on the virtual node. Wall time covers the whole faulted run;
/// virtual metrics capture the deterministic recovery trajectory.
fn balancer_faults(cfg: &SuiteConfig) -> Scenario {
    let fault_step = cfg.fault_steps / 3;
    let recover_step = 2 * cfg.fault_steps / 3;
    let run = || -> (f64, afmm::RunSummary, usize, String) {
        let b = nbody::plummer(cfg.n_fault, 1.0, 1.0, cfg.seed + 5);
        let rec = telemetry::Recorder::enabled();
        let mut tracker = StrategyTracker::with_telemetry(
            GravityKernel::default(),
            FmmParams::default(),
            HeteroNode::system_a(cfg.cores, cfg.gpus.max(2)),
            Strategy::Full,
            LbConfig::default(),
            &b.pos,
            None,
            rec.clone(),
        );
        let mut schedule = FaultSchedule::new();
        schedule.push(fault_step, FaultEvent::GpuDropout { device: 0 });
        schedule.push(recover_step, FaultEvent::GpuRecover { device: 0 });
        tracker.set_fault_schedule(schedule);
        let (t, ()) = wall(|| {
            for _ in 0..cfg.fault_steps {
                tracker
                    .step(&b.pos)
                    .expect("dropout must degrade, not fail");
            }
        });
        let recovery_steps = tracker
            .records()
            .iter()
            .filter(|r| r.state == LbState::Recovery)
            .count();
        (t, tracker.summary(), recovery_steps, rec.metrics_json())
    };

    for _ in 0..cfg.warmup.max(1) {
        run();
    }
    let mut samples = Vec::with_capacity(cfg.reps);
    let mut last = None;
    for _ in 0..cfg.reps {
        let (t, summary, recovery_steps, metrics_json) = run();
        samples.push(t);
        last = Some((summary, recovery_steps, metrics_json));
    }
    let (summary, recovery_steps, metrics_json) = last.expect("reps >= 1");
    let snapshot = gather(&SnapshotParts {
        metrics_json: Some(metrics_json),
        ..Default::default()
    });

    Scenario {
        name: "balancer_faults".to_string(),
        params: obj(vec![
            ("n", Json::Num(cfg.n_fault as f64)),
            ("distribution", Json::Str("plummer".to_string())),
            ("steps", Json::Num(cfg.fault_steps as f64)),
            ("fault_step", Json::Num(fault_step as f64)),
            ("recover_step", Json::Num(recover_step as f64)),
            ("gpus", Json::Num(cfg.gpus.max(2) as f64)),
        ]),
        metrics: vec![
            Metric::wall("wall_run_s", "s", samples, cfg.seed),
            Metric::virtual_point("virtual_total_compute_s", "s", summary.total_compute),
            Metric::virtual_point("virtual_total_lb_s", "s", summary.total_lb),
            Metric::virtual_point("recovery_steps", "step", recovery_steps as f64),
        ],
        snapshot,
    }
}

/// **memory_profile** — the memory observatory: a steady-state solve loop
/// (rebin + refresh + solve on a warm plan) under scoped allocation
/// profiling, plus structural heap-footprint accounting and the
/// patch-vs-rebuild allocation economics.
///
/// Allocator-derived metrics (allocation counts, byte deltas, peak live
/// bytes) are emitted only when the counting `GlobalAlloc` wrapper is
/// installed (`memprof` feature + `#[global_allocator]` in the bin) —
/// without it they are omitted and `afmm-perf compare` skips them. They are
/// exact `virtual`-kind points: the workload is sequential and seeded, so
/// the counts are bit-for-bit reproducible on one host and any change is a
/// real allocation-behavior change. The hard invariant is
/// `steady_gate_allocs == 0`: a warm cached-plan step performs zero heap
/// allocations inside the `rebin` and `plan.refresh` scopes. The gate
/// phase holds positions fixed so every refresh provably stays on the
/// cached-plan path at any workload scale (under motion an emptiness flip
/// legitimately rebuilds, which allocates); the motion phase's refresh
/// cost is reported as an informational metric instead, and the
/// patch-path zero-alloc property is covered by `tests/memprof.rs`.
///
/// Structural footprint metrics come from the `heap_bytes()` family and
/// work with or without the feature.
fn memory_profile(cfg: &SuiteConfig) -> Scenario {
    use telemetry::memprof;
    let s = 96;
    let b = nbody::plummer(cfg.n_solve, 1.0, 1.0, cfg.seed + 9);
    let mut engine = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &b.pos, s);

    // Steady-state motion model: a uniform contraction mild enough that
    // refreshes mostly take the patch path (occasional emptiness flips at
    // large N rebuild, which is the correct dynamic-workload behavior —
    // that is why the zero-alloc gate below measures a frozen-position
    // phase instead).
    let mut pos = b.pos.clone();
    let step = |engine: &mut FmmEngine<GravityKernel>, pos: &mut Vec<geom::Vec3>| {
        for p in pos.iter_mut() {
            *p *= 0.9995;
        }
        engine.rebin(pos);
        std::hint::black_box(engine.solve(pos, &b.mass));
    };

    // Warmup pays every one-time allocation: plan build, rebin scratch,
    // refresh scratch, solve gathers and expansion storage.
    for _ in 0..cfg.warmup.max(2) {
        step(&mut engine, &mut pos);
    }

    // Motion phase: steady-state dynamics. Yields peak live bytes, the
    // numeric phases' allocation rate, and the refresh cost under motion.
    memprof::reset_scopes();
    memprof::reset_peak();
    let steps = cfg.reps.max(1);
    for _ in 0..steps {
        step(&mut engine, &mut pos);
    }
    let global = memprof::global();
    let phase_sc = memprof::scope_stats("phase").unwrap_or_default();
    let refresh_motion = memprof::scope_stats("plan.refresh").unwrap_or_default();

    // Gate phase: positions frozen, so every refresh takes the cached-plan
    // Clean path — rebin still re-sorts every body. Zero allocations in
    // the gated scopes is the hard invariant.
    memprof::reset_scopes();
    for _ in 0..steps {
        engine.rebin(&pos);
        std::hint::black_box(engine.solve(&pos, &b.mass));
    }
    let rebin_sc = memprof::scope_stats("rebin").unwrap_or_default();
    let refresh_sc = memprof::scope_stats("plan.refresh").unwrap_or_default();
    let gate_allocs = rebin_sc.allocs + refresh_sc.allocs;

    // Structural footprint of the steady-state structures, before the edit
    // experiment below perturbs them.
    let tree_bytes = engine.tree().heap_bytes();
    let fp = MemFootprint {
        bodies_bytes: b.heap_bytes() + pos.capacity() * std::mem::size_of::<geom::Vec3>(),
        tree_bytes,
        plan_bytes: engine.heap_bytes() - tree_bytes,
        recorder_bytes: 0,
        bodies: cfg.n_solve,
        nodes: engine.tree().num_nodes(),
        list_entries: engine.lists().num_m2l() + engine.lists().num_p2p_pairs(),
    };

    // Surface the scope table as mem.scope/mem.peak events and gauges so
    // the snapshot's metrics part and a chrome export carry them.
    let rec = telemetry::Recorder::enabled();
    memprof::publish(&rec);
    let snapshot = gather(&SnapshotParts {
        tree: Some(engine.tree()),
        lists: Some(engine.lists()),
        counts: Some(engine.counts()),
        metrics_json: memprof::counting().then(|| rec.metrics_json()),
        mem: Some(fp),
        ..Default::default()
    });

    // Patch-vs-rebuild allocation economics: bytes allocated per plan-routed
    // collapse edit vs one full plan rebuild on the same tree.
    memprof::reset_scopes();
    let twigs = twigs(engine.tree(), cfg.plan_edits.max(1));
    let mut edits = 0usize;
    for id in twigs {
        edits += usize::from(engine.apply_collapse(id));
    }
    let patch_sc = memprof::scope_stats("plan.patch").unwrap_or_default();
    let patch_bytes_per_edit = patch_sc.alloc_bytes as f64 / edits.max(1) as f64;
    let g0 = memprof::global();
    // Mark the plan stale behind its back so the next refresh is a full
    // rebuild, then measure the rebuild's allocation bill.
    let _ = engine.tree_mut();
    engine.refresh_plan();
    let rebuild_bytes = (memprof::global().alloc_bytes - g0.alloc_bytes) as f64;

    let n = cfg.n_solve as f64;
    let mut metrics = vec![Metric::virtual_point(
        "footprint_bytes_per_body",
        "B",
        fp.total_bytes() as f64 / n,
    )];
    if memprof::counting() {
        metrics.push(Metric::virtual_point(
            "steady_gate_allocs",
            "allocs",
            gate_allocs as f64,
        ));
        metrics.push(Metric::virtual_point(
            "peak_live_bytes_per_body",
            "B",
            global.peak_live_bytes as f64 / n,
        ));
        metrics.push(Metric::virtual_point(
            "patch_bytes_per_edit",
            "B",
            patch_bytes_per_edit,
        ));
        metrics.push(Metric::virtual_point("rebuild_bytes", "B", rebuild_bytes));
        metrics.push(
            Metric::virtual_point(
                "phase_alloc_bytes_per_step",
                "B",
                phase_sc.alloc_bytes as f64 / steps as f64,
            )
            .informational(),
        );
        metrics.push(
            Metric::virtual_point(
                "refresh_motion_bytes_per_step",
                "B",
                refresh_motion.alloc_bytes as f64 / steps as f64,
            )
            .informational(),
        );
    }
    Scenario {
        name: "memory_profile".to_string(),
        params: obj(vec![
            ("n", Json::Num(cfg.n_solve as f64)),
            ("distribution", Json::Str("plummer".to_string())),
            ("s", Json::Num(s as f64)),
            ("steps", Json::Num(steps as f64)),
            ("edits", Json::Num(edits as f64)),
        ]),
        metrics,
        snapshot,
    }
}
