//! Minimal owned JSON tree for the benchmark reports.
//!
//! `telemetry::Value` is deliberately flat (one event = one object of
//! scalars), but a [`BenchReport`](super::report::BenchReport) is nested:
//! scenarios hold metric arrays hold sample arrays. This module provides the
//! small recursive value type plus a parser and writer, sharing the
//! telemetry crate's canonical number/string encoding (`push_json_f64` /
//! `push_json_str`) so every JSON artifact in the repo serializes floats the
//! same way (NaN/±inf → `null`, shortest round-trip otherwise).

use std::fmt;
use telemetry::{push_json_f64, push_json_str};

/// An owned JSON value. Objects preserve insertion order so reports are
/// diffable with plain text tools.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Compact single-line encoding.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => push_json_f64(out, *v),
            Json::Str(s) => push_json_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_json_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

/// Convenience: an object from `(key, value)` pairs.
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Parse failure with a byte offset for error messages.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected \"{word}\"")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid scalar boundaries).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// `\uXXXX` with surrogate-pair handling; cursor is on the 'u'.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hex4 = |p: &mut Self| -> Result<u32, JsonError> {
            p.pos += 1; // skip 'u'
            if p.pos + 4 > p.bytes.len() {
                return Err(p.err("truncated \\u escape"));
            }
            let s = std::str::from_utf8(&p.bytes[p.pos..p.pos + 4])
                .map_err(|_| p.err("bad \\u escape"))?;
            let v = u32::from_str_radix(s, 16).map_err(|_| p.err("bad \\u escape"))?;
            p.pos += 4;
            Ok(v)
        };
        let hi = hex4(self)?;
        let cp = if (0xD800..0xDC00).contains(&hi) {
            if self.peek() != Some(b'\\') {
                return Err(self.err("unpaired surrogate"));
            }
            self.pos += 1;
            if self.peek() != Some(b'u') {
                return Err(self.err("unpaired surrogate"));
            }
            let lo = hex4(self)?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
        } else {
            hi
        };
        char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number \"{text}\"")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = Json::parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\ny"}"#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn round_trips_through_writer() {
        let doc = obj(vec![
            ("name", Json::Str("solve \"quick\"".into())),
            ("samples", Json::Arr(vec![Json::Num(0.1), Json::Num(2.0)])),
            ("ok", Json::Bool(true)),
            ("missing", Json::Null),
        ]);
        let text = doc.to_json();
        assert!(telemetry::json_syntax_ok(&text));
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = Json::parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
        assert!(Json::parse(r#""\ud800""#).is_err());
    }

    #[test]
    fn u64_accessor_is_strict() {
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
    }
}
