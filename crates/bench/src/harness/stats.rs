//! Robust sample statistics for noisy timing data: median, MAD, and a
//! bootstrap confidence interval for the median.
//!
//! Wall-clock benchmark samples are short-tailed on a quiet machine but
//! grow arbitrary outliers under load (page cache misses, scheduler
//! preemption), so every summary here is median-based — the mean of 5
//! repetitions is one bad sample away from meaningless, the median is not.
//! The bootstrap is deterministic (seeded SplitMix64 via the vendored
//! `rand` shim) so identical sample vectors always produce identical CIs,
//! which the comparator's self-comparison guarantee relies on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of bootstrap resamples; 200 keeps the quick suite fast while the
/// percentile CI of a median stabilizes well before that.
pub const BOOTSTRAP_RESAMPLES: usize = 200;

/// Robust summary of one metric's samples.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MetricStats {
    /// Sample median.
    pub median: f64,
    /// Median absolute deviation from the median (unscaled).
    pub mad: f64,
    /// 2.5th percentile of the bootstrap distribution of the median.
    pub ci_lo: f64,
    /// 97.5th percentile of the bootstrap distribution of the median.
    pub ci_hi: f64,
}

impl MetricStats {
    /// MAD relative to the median magnitude — the comparator's per-metric
    /// noise estimate. Zero for an empty or zero-median sample set.
    pub fn rel_mad(&self) -> f64 {
        if self.median.abs() > 0.0 {
            self.mad / self.median.abs()
        } else {
            0.0
        }
    }
}

/// Median of a sample set; 0.0 for an empty slice (callers treat "no
/// samples" as "no measurement", never as NaN).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Median absolute deviation from the median (unscaled — multiply by
/// 1.4826 for a normal-consistent sigma, which the comparator never needs).
pub fn mad(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = median(xs);
    let dev: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&dev)
}

/// Percentile-method bootstrap CI for the median: resample with
/// replacement `resamples` times, take the 2.5/97.5 percentiles of the
/// resampled medians. Deterministic for a fixed `seed`. Degenerates to the
/// point median for singleton or empty input.
pub fn bootstrap_ci_median(xs: &[f64], resamples: usize, seed: u64) -> (f64, f64) {
    if xs.len() <= 1 {
        let m = median(xs);
        return (m, m);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut medians = Vec::with_capacity(resamples);
    let mut buf = vec![0.0; xs.len()];
    for _ in 0..resamples {
        for slot in buf.iter_mut() {
            *slot = xs[rng.random_range(0..xs.len())];
        }
        medians.push(median(&buf));
    }
    medians.sort_by(|a, b| a.partial_cmp(b).expect("finite medians"));
    let pick = |q: f64| {
        let idx = ((q * (medians.len() - 1) as f64).round() as usize).min(medians.len() - 1);
        medians[idx]
    };
    (pick(0.025), pick(0.975))
}

/// Full robust summary of one metric's samples.
pub fn summarize(samples: &[f64], seed: u64) -> MetricStats {
    let (ci_lo, ci_hi) = bootstrap_ci_median(samples, BOOTSTRAP_RESAMPLES, seed);
    MetricStats {
        median: median(samples),
        mad: mad(samples),
        ci_lo,
        ci_hi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn mad_known_values() {
        // median 3, deviations [2,1,0,1,2] -> mad 1.
        assert_eq!(mad(&[1.0, 2.0, 3.0, 4.0, 5.0]), 1.0);
        assert_eq!(mad(&[5.0, 5.0, 5.0]), 0.0);
        assert_eq!(mad(&[]), 0.0);
    }

    #[test]
    fn median_shrugs_off_outlier() {
        let clean = [1.0, 1.01, 0.99, 1.02, 0.98];
        let mut dirty = clean;
        dirty[4] = 50.0; // one preempted run
        assert!((median(&dirty) - median(&clean)).abs() < 0.02);
    }

    #[test]
    fn bootstrap_is_deterministic_and_brackets_median() {
        let xs = [1.0, 1.1, 0.9, 1.05, 0.95, 1.2, 0.8];
        let (lo1, hi1) = bootstrap_ci_median(&xs, BOOTSTRAP_RESAMPLES, 42);
        let (lo2, hi2) = bootstrap_ci_median(&xs, BOOTSTRAP_RESAMPLES, 42);
        assert_eq!((lo1, hi1), (lo2, hi2));
        let m = median(&xs);
        assert!(lo1 <= m && m <= hi1);
        assert!(lo1 >= 0.8 && hi1 <= 1.2);
    }

    #[test]
    fn bootstrap_degenerate_inputs() {
        assert_eq!(bootstrap_ci_median(&[], 100, 1), (0.0, 0.0));
        assert_eq!(bootstrap_ci_median(&[3.0], 100, 1), (3.0, 3.0));
    }

    #[test]
    fn summarize_ties_the_pieces_together() {
        let s = summarize(&[2.0, 2.0, 2.0, 2.0], 7);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.mad, 0.0);
        assert_eq!((s.ci_lo, s.ci_hi), (2.0, 2.0));
        assert_eq!(s.rel_mad(), 0.0);
    }
}
