//! The perf-lab: a unified benchmark harness with statistical regression
//! gating and structural introspection snapshots.
//!
//! The paper's whole load-balancing loop rests on *measured* per-operation
//! costs; this module applies the same discipline to the repo's own
//! performance story. One scenario registry ([`scenarios`]) runs every
//! benchmark with warmup + repetitions, robust statistics ([`stats`]) turn
//! the samples into median/MAD/bootstrap-CI summaries, one canonical JSON
//! schema ([`report`]) makes every run comparable to every other, a
//! noise-aware comparator ([`compare`]) classifies deltas against a
//! checked-in baseline, and every result carries a structural snapshot
//! ([`snapshot`]) so a perf delta can be *attributed* instead of guessed
//! at. The `afmm-perf` binary is the driver; `plan_patch_vs_rebuild` and
//! `telemetry_report` are thin wrappers over the same building blocks.
//!
//! The pairwise gate is extended longitudinally by the perf [`ledger`]: an
//! append-only JSONL history of run summaries keyed by `(host, mode)`
//! series, with median/MAD history views, offline change-point trend
//! classification (step / drift / spike), and rolling-median baselines for
//! `compare --against-ledger`.

pub mod compare;
pub mod json;
pub mod ledger;
pub mod report;
pub mod scenarios;
pub mod snapshot;
pub mod stats;

pub use compare::{compare, CompareConfig, CompareReport, Verdict};
pub use json::Json;
pub use ledger::{
    host_key, render_history, render_trends, synthesize_baseline, trend_rows, Ledger, LedgerEntry,
    TrendRow, LEDGER_SCHEMA_VERSION,
};
pub use report::{BenchReport, Direction, Metric, MetricKind, Scenario, SCHEMA_VERSION};
pub use scenarios::{measure_plan_economy, run_suite, twigs, PlanEconomy, SuiteConfig};
pub use snapshot::{gather, SnapshotParts};
pub use stats::{bootstrap_ci_median, mad, median, summarize, MetricStats};
