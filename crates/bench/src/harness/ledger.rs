//! The perf ledger: persistent cross-run history with trend gating.
//!
//! A single `afmm-perf compare` answers "did *this* change regress
//! anything?", but a 15% creep spread over ten PRs never trips a 25%
//! pairwise gate. The ledger closes that hole longitudinally: every
//! `afmm-perf run` can [`Ledger::append`] one [`LedgerEntry`] — the gated
//! metric summaries, host fingerprint, commit, and the attribution
//! extracts (scheduler x-ray, cost-model coefficients, prediction-audit
//! stats) — to an append-only JSONL file, keyed into series by
//! `(host_key, mode)` so numbers from different machines or suite
//! configurations never mix.
//!
//! On top of the file sit three consumers:
//!
//! * **history** ([`render_history`]) — per-metric series with robust
//!   median/MAD bands, outliers flagged;
//! * **trend** ([`trend_rows`]) — the offline change-point classifier
//!   ([`telemetry::classify_series`]) labels each gated series Step /
//!   Drift / Spike / Stable; a confirmed step in the *bad* direction on a
//!   gated metric is a regression verdict;
//! * **`compare --against-ledger K`** ([`synthesize_baseline`]) — gate a
//!   fresh report against the rolling median of the last K same-series
//!   entries instead of a single checked-in baseline, so one lucky or
//!   unlucky baseline run cannot skew the gate. With K=1 the synthesized
//!   baseline carries the stored stats verbatim and the comparison is
//!   identical to a plain `compare` against that run's report.
//!
//! Entries only ever append; the reader tolerates unknown fields and
//! newer `schema_version`s with warnings (old binaries must keep reading
//! ledgers grown by newer ones), and skips corrupt lines rather than
//! bricking the whole history.

use super::compare::format_value;
use super::json::{obj, Json};
use super::report::{BenchReport, Direction, Metric, MetricKind, Scenario, SCHEMA_VERSION};
use super::stats::{median, MetricStats};
use std::io::Write as _;
use std::path::Path;

/// Bumped whenever the ledger line shape changes incompatibly.
pub const LEDGER_SCHEMA_VERSION: u64 = 1;

/// Compact series key for a host fingerprint: `"linux-x86_64-16c"`.
pub fn host_key(host: &Json) -> String {
    let os = host.get("os").and_then(Json::as_str).unwrap_or("unknown");
    let arch = host.get("arch").and_then(Json::as_str).unwrap_or("unknown");
    let cpus = host.get("cpus").and_then(Json::as_u64).unwrap_or(0);
    format!("{os}-{arch}-{cpus}c")
}

/// One appended run: provenance, per-scenario metric summaries (stats
/// only — raw samples stay in the full report artifact), and the
/// attribution extracts trend analysis wants next to a moved number.
#[derive(Clone, Debug)]
pub struct LedgerEntry {
    pub schema_version: u64,
    /// Seconds since the Unix epoch when the run was recorded.
    pub unix_s: u64,
    /// Host fingerprint object (`{"os","arch","cpus"}`).
    pub host: Json,
    /// [`host_key`] of `host`, stored so series grouping survives future
    /// fingerprint fields.
    pub host_key: String,
    pub commit: String,
    /// Suite mode (`full` / `quick` / `smoke`); part of the series key.
    pub mode: String,
    /// Scenario metric summaries. `Metric::samples` is empty after a
    /// ledger read — only the robust stats are persisted.
    pub scenarios: Vec<Scenario>,
    /// Scheduler x-ray summary from the `dag_pipeline` snapshot.
    pub sched: Json,
    /// Cost-model coefficient table from the `solve_step` snapshot.
    pub cost_model: Json,
    /// Prediction-audit stats from the `balancer_convergence` snapshot.
    pub audit: Json,
    /// Heap-footprint summary from the `memory_profile` snapshot.
    pub mem: Json,
}

impl LedgerEntry {
    /// Distill a full report into a ledger entry. `unix_s` comes from the
    /// caller so tests (and replays) stay deterministic.
    pub fn from_report(report: &BenchReport, unix_s: u64) -> Self {
        let extract = |scenario: &str, key: &str| -> Json {
            report
                .scenario(scenario)
                .and_then(|s| s.snapshot.get(key))
                .cloned()
                .unwrap_or(Json::Null)
        };
        LedgerEntry {
            schema_version: LEDGER_SCHEMA_VERSION,
            unix_s,
            host: report.host.clone(),
            host_key: host_key(&report.host),
            commit: report.commit.clone(),
            mode: report
                .config
                .get("mode")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            scenarios: report
                .scenarios
                .iter()
                .map(|s| Scenario {
                    name: s.name.clone(),
                    params: s.params.clone(),
                    metrics: s.metrics.clone(),
                    snapshot: Json::Obj(Vec::new()),
                })
                .collect(),
            sched: extract("dag_pipeline", "sched"),
            cost_model: extract("solve_step", "cost_model"),
            audit: extract("balancer_convergence", "audit"),
            mem: extract("memory_profile", "mem"),
        }
    }

    pub fn scenario(&self, name: &str) -> Option<&Scenario> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// The series this entry belongs to.
    pub fn series_key(&self) -> (String, String) {
        (self.host_key.clone(), self.mode.clone())
    }

    pub fn to_json_value(&self) -> Json {
        obj(vec![
            ("schema_version", Json::Num(self.schema_version as f64)),
            ("unix_s", Json::Num(self.unix_s as f64)),
            ("host", self.host.clone()),
            ("host_key", Json::Str(self.host_key.clone())),
            ("commit", Json::Str(self.commit.clone())),
            ("mode", Json::Str(self.mode.clone())),
            (
                "scenarios",
                Json::Arr(self.scenarios.iter().map(scenario_to_json).collect()),
            ),
            ("sched", self.sched.clone()),
            ("cost_model", self.cost_model.clone()),
            ("audit", self.audit.clone()),
            ("mem", self.mem.clone()),
        ])
    }

    /// One JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }

    /// Parse one ledger line, tolerating growth exactly like
    /// [`BenchReport::from_json_warn`]: unknown fields are ignored, a
    /// newer `schema_version` downgrades scenario parse errors to
    /// skip-with-warning.
    pub fn from_json_warn(line: &str) -> Result<(Self, Vec<String>), String> {
        let v = Json::parse(line).map_err(|e| e.to_string())?;
        let version = v
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("ledger entry missing \"schema_version\"")?;
        let mut warnings = Vec::new();
        let newer = version > LEDGER_SCHEMA_VERSION;
        if newer {
            warnings.push(format!(
                "ledger schema_version {version} is newer than this build's \
                 {LEDGER_SCHEMA_VERSION}; parsing known fields only"
            ));
        }
        let mut scenarios = Vec::new();
        for sv in v
            .get("scenarios")
            .and_then(Json::as_arr)
            .ok_or("ledger entry missing \"scenarios\"")?
        {
            match scenario_from_json(sv) {
                Ok(sc) => scenarios.push(sc),
                Err(e) if newer => warnings.push(format!("skipping scenario: {e}")),
                Err(e) => return Err(e),
            }
        }
        let host = v.get("host").cloned().unwrap_or(Json::Obj(Vec::new()));
        let key = v
            .get("host_key")
            .and_then(Json::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| host_key(&host));
        Ok((
            LedgerEntry {
                schema_version: version,
                unix_s: v.get("unix_s").and_then(Json::as_u64).unwrap_or(0),
                host,
                host_key: key,
                commit: v
                    .get("commit")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
                mode: v
                    .get("mode")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
                scenarios,
                sched: v.get("sched").cloned().unwrap_or(Json::Null),
                cost_model: v.get("cost_model").cloned().unwrap_or(Json::Null),
                audit: v.get("audit").cloned().unwrap_or(Json::Null),
                // Absent in pre-memory-observatory ledgers: read as Null.
                mem: v.get("mem").cloned().unwrap_or(Json::Null),
            },
            warnings,
        ))
    }
}

/// Ledger scenario encoding: metric stats without the raw samples.
fn scenario_to_json(s: &Scenario) -> Json {
    obj(vec![
        ("name", Json::Str(s.name.clone())),
        ("params", s.params.clone()),
        (
            "metrics",
            Json::Arr(
                s.metrics
                    .iter()
                    .map(|m| {
                        obj(vec![
                            ("name", Json::Str(m.name.clone())),
                            ("unit", Json::Str(m.unit.clone())),
                            ("kind", Json::Str(m.kind.as_str().to_string())),
                            ("direction", Json::Str(m.direction.as_str().to_string())),
                            ("gate", Json::Bool(m.gate)),
                            ("median", Json::Num(m.stats.median)),
                            ("mad", Json::Num(m.stats.mad)),
                            ("ci_lo", Json::Num(m.stats.ci_lo)),
                            ("ci_hi", Json::Num(m.stats.ci_hi)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn scenario_from_json(v: &Json) -> Result<Scenario, String> {
    let mut metrics = Vec::new();
    for mv in v
        .get("metrics")
        .and_then(Json::as_arr)
        .ok_or("ledger scenario missing \"metrics\"")?
    {
        let str_field = |k: &str| -> Result<String, String> {
            mv.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("ledger metric missing string field \"{k}\""))
        };
        let num_field = |k: &str| -> Result<f64, String> {
            mv.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("ledger metric missing number field \"{k}\""))
        };
        let kind_s = str_field("kind")?;
        let dir_s = str_field("direction")?;
        metrics.push(Metric {
            name: str_field("name")?,
            unit: str_field("unit")?,
            kind: MetricKind::from_str(&kind_s)
                .ok_or_else(|| format!("unknown metric kind \"{kind_s}\""))?,
            direction: Direction::from_str(&dir_s)
                .ok_or_else(|| format!("unknown metric direction \"{dir_s}\""))?,
            gate: mv.get("gate").and_then(Json::as_bool).unwrap_or(true),
            samples: Vec::new(),
            stats: MetricStats {
                median: num_field("median")?,
                mad: num_field("mad")?,
                ci_lo: num_field("ci_lo")?,
                ci_hi: num_field("ci_hi")?,
            },
        });
    }
    Ok(Scenario {
        name: v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("ledger scenario missing \"name\"")?
            .to_string(),
        params: v.get("params").cloned().unwrap_or(Json::Obj(Vec::new())),
        metrics,
        snapshot: Json::Obj(Vec::new()),
    })
}

/// An in-memory view of the append-only ledger file, in file order
/// (oldest first).
#[derive(Clone, Debug, Default)]
pub struct Ledger {
    pub entries: Vec<LedgerEntry>,
}

impl Ledger {
    /// Read a ledger file. A missing file is an empty ledger (the first
    /// `record` creates it); an unreadable file is an error; corrupt or
    /// unparseable lines are skipped with a warning each, so one bad
    /// append never bricks the whole history.
    pub fn load(path: &Path) -> Result<(Ledger, Vec<String>), String> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok((Ledger::default(), Vec::new()))
            }
            Err(e) => return Err(format!("reading {}: {e}", path.display())),
        };
        let mut entries = Vec::new();
        let mut warnings = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match LedgerEntry::from_json_warn(line) {
                Ok((e, mut w)) => {
                    warnings.append(&mut w);
                    entries.push(e);
                }
                Err(e) => warnings.push(format!("skipping ledger line {}: {e}", i + 1)),
            }
        }
        Ok((Ledger { entries }, warnings))
    }

    /// Append one entry (creating the file and parent directory on first
    /// use). Append-only by construction: existing bytes are never
    /// rewritten.
    pub fn append(path: &Path, entry: &LedgerEntry) -> Result<(), String> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("creating {}: {e}", dir.display()))?;
            }
        }
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("opening {}: {e}", path.display()))?;
        writeln!(f, "{}", entry.to_json()).map_err(|e| format!("writing {}: {e}", path.display()))
    }

    /// Entries of one series, oldest first.
    pub fn series(&self, host_key: &str, mode: &str) -> Vec<&LedgerEntry> {
        self.entries
            .iter()
            .filter(|e| e.host_key == host_key && e.mode == mode)
            .collect()
    }

    /// Distinct `(host_key, mode)` series present, in first-seen order.
    pub fn series_keys(&self) -> Vec<(String, String)> {
        let mut keys: Vec<(String, String)> = Vec::new();
        for e in &self.entries {
            let k = e.series_key();
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
        keys
    }
}

/// Build a baseline report from the last `k` entries of a series: per
/// metric, the rolling median of the stored medians (and of the MAD / CI
/// bounds). With `k == 1` the stored stats pass through verbatim, making
/// the comparison bit-identical to a plain compare against that run.
/// Returns `None` on an empty series.
pub fn synthesize_baseline(series: &[&LedgerEntry], k: usize) -> Option<BenchReport> {
    let k = k.max(1).min(series.len());
    if k == 0 {
        return None;
    }
    let window = &series[series.len() - k..];
    let last = window.last()?;
    let scenarios = last
        .scenarios
        .iter()
        .map(|sc| {
            let metrics = sc
                .metrics
                .iter()
                .map(|m| {
                    let mut meds = Vec::new();
                    let mut mads = Vec::new();
                    let mut los = Vec::new();
                    let mut his = Vec::new();
                    for e in window.iter() {
                        if let Some(om) = e
                            .scenario(&sc.name)
                            .filter(|s| s.params == sc.params)
                            .and_then(|s| s.metric(&m.name))
                        {
                            meds.push(om.stats.median);
                            mads.push(om.stats.mad);
                            los.push(om.stats.ci_lo);
                            his.push(om.stats.ci_hi);
                        }
                    }
                    Metric {
                        name: m.name.clone(),
                        unit: m.unit.clone(),
                        kind: m.kind,
                        direction: m.direction,
                        gate: m.gate,
                        samples: meds.clone(),
                        stats: MetricStats {
                            median: median(&meds),
                            mad: median(&mads),
                            ci_lo: median(&los),
                            ci_hi: median(&his),
                        },
                    }
                })
                .collect();
            Scenario {
                name: sc.name.clone(),
                params: sc.params.clone(),
                metrics,
                snapshot: Json::Obj(Vec::new()),
            }
        })
        .collect();
    Some(BenchReport {
        schema_version: SCHEMA_VERSION,
        host: last.host.clone(),
        commit: format!("ledger:last{k}"),
        config: obj(vec![("mode", Json::Str(last.mode.clone()))]),
        scenarios,
    })
}

/// `unix_s` → `"YYYY-MM-DD"` (proleptic Gregorian, UTC). Days-to-civil
/// conversion after Hinnant; enough calendar for a history listing.
pub fn utc_date(unix_s: u64) -> String {
    let days = (unix_s / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// Per-metric series listing with robust median/MAD bands; values outside
/// the band are flagged `*`.
pub fn render_history(series: &[&LedgerEntry], host_key: &str, mode: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "series {host_key}/{mode} — {} entr{}\n",
        series.len(),
        if series.len() == 1 { "y" } else { "ies" }
    ));
    let Some(last) = series.last() else {
        out.push_str("  (empty)\n");
        return out;
    };
    for sc in &last.scenarios {
        for m in &sc.metrics {
            let rows: Vec<(usize, &LedgerEntry, f64)> = series
                .iter()
                .enumerate()
                .filter_map(|(i, e)| {
                    e.scenario(&sc.name)
                        .filter(|s| s.params == sc.params)
                        .and_then(|s| s.metric(&m.name))
                        .map(|om| (i, *e, om.stats.median))
                })
                .collect();
            if rows.is_empty() {
                continue;
            }
            let values: Vec<f64> = rows.iter().map(|r| r.2).collect();
            let med = median(&values);
            let deviations: Vec<f64> = values.iter().map(|v| (v - med).abs()).collect();
            let band = 3.0 * 1.4826 * median(&deviations);
            out.push_str(&format!(
                "\n{}/{} [{}]{}  median {}  band ±{}\n",
                sc.name,
                m.name,
                m.unit,
                if m.gate { "" } else { " (info)" },
                format_value(med),
                format_value(band),
            ));
            for (i, e, v) in rows {
                let commit_short: String = e.commit.chars().take(9).collect();
                let flag = if band > 0.0 && (v - med).abs() > band {
                    " *"
                } else {
                    ""
                };
                out.push_str(&format!(
                    "  {i:>3}  {}  {commit_short:<9}  {}{flag}\n",
                    utc_date(e.unix_s),
                    format_value(v),
                ));
            }
        }
    }
    out
}

/// One classified metric series.
#[derive(Clone, Debug)]
pub struct TrendRow {
    pub scenario: String,
    pub metric: String,
    pub unit: String,
    pub gate: bool,
    pub len: usize,
    pub report: telemetry::TrendReport,
    /// Confirmed step on a gated metric, moving in the bad direction.
    pub regression: bool,
}

/// Classify every metric series of `series` (latest entry's metric set,
/// values in chronological order) with [`telemetry::classify_series`].
pub fn trend_rows(series: &[&LedgerEntry], cfg: &telemetry::TrendConfig) -> Vec<TrendRow> {
    let Some(last) = series.last() else {
        return Vec::new();
    };
    let mut rows = Vec::new();
    for sc in &last.scenarios {
        for m in &sc.metrics {
            let values: Vec<f64> = series
                .iter()
                .filter_map(|e| {
                    e.scenario(&sc.name)
                        .filter(|s| s.params == sc.params)
                        .and_then(|s| s.metric(&m.name))
                        .map(|om| om.stats.median)
                })
                .collect();
            let report = telemetry::classify_series(&values, cfg);
            let bad_direction = match m.direction {
                Direction::Lower => report.score > 0.0,
                Direction::Higher => report.score < 0.0,
            };
            let regression = m.gate && report.kind == telemetry::TrendKind::Step && bad_direction;
            rows.push(TrendRow {
                scenario: sc.name.clone(),
                metric: m.name.clone(),
                unit: m.unit.clone(),
                gate: m.gate,
                len: values.len(),
                report,
                regression,
            });
        }
    }
    rows
}

/// Human-readable trend table plus the verdict line.
pub fn render_trends(rows: &[TrendRow], host_key: &str, mode: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("trend {host_key}/{mode}\n"));
    for r in rows {
        let detail = match r.report.kind {
            telemetry::TrendKind::Stable => String::new(),
            telemetry::TrendKind::Insufficient => {
                format!("  ({} entries, need more history)", r.len)
            }
            _ => format!(
                "  at #{}  {} -> {}  score {:+.1}",
                r.report.at.map(|i| i as i64).unwrap_or(-1),
                format_value(r.report.baseline),
                format_value(r.report.level),
                r.report.score,
            ),
        };
        out.push_str(&format!(
            "  {:<10}{} {}/{} [{}]{}{}\n",
            r.report.kind.as_str(),
            if r.regression { " REGRESSED" } else { "" },
            r.scenario,
            r.metric,
            r.unit,
            if r.gate { "" } else { " (info)" },
            detail,
        ));
    }
    let regressions = rows.iter().filter(|r| r.regression).count();
    out.push_str(&format!(
        "\n{} gated step regression{}\n",
        regressions,
        if regressions == 1 { "" } else { "s" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(commit: &str, unix_s: u64, wall: f64) -> LedgerEntry {
        let report = BenchReport {
            schema_version: SCHEMA_VERSION,
            host: obj(vec![
                ("os", Json::Str("linux".into())),
                ("arch", Json::Str("x86_64".into())),
                ("cpus", Json::Num(16.0)),
            ]),
            commit: commit.to_string(),
            config: obj(vec![("mode", Json::Str("quick".into()))]),
            scenarios: vec![Scenario {
                name: "solve_step".to_string(),
                params: obj(vec![("n", Json::Num(1000.0))]),
                metrics: vec![
                    Metric::wall("wall_s", "s", vec![wall, wall * 1.01, wall * 0.99], 7),
                    Metric::virtual_point("virtual_compute_s", "s", 0.5),
                ],
                snapshot: obj(vec![(
                    "cost_model",
                    obj(vec![("c_m2l", Json::Num(2.5e-9))]),
                )]),
            }],
        };
        LedgerEntry::from_report(&report, unix_s)
    }

    #[test]
    fn host_key_formats() {
        let e = entry("abc", 0, 1.0);
        assert_eq!(e.host_key, "linux-x86_64-16c");
        assert_eq!(e.mode, "quick");
    }

    #[test]
    fn entry_extracts_snapshot_parts() {
        let e = entry("abc", 0, 1.0);
        assert_eq!(
            e.cost_model.get("c_m2l").and_then(Json::as_f64),
            Some(2.5e-9)
        );
        assert_eq!(e.sched, Json::Null);
        assert_eq!(e.mem, Json::Null);
        // Scenario snapshots are not duplicated into the ledger.
        assert_eq!(e.scenarios[0].snapshot, Json::Obj(Vec::new()));
    }

    #[test]
    fn line_round_trips_byte_stable() {
        let e = entry("abc123", 1_754_611_200, 0.987654321);
        let line = e.to_json();
        let (back, warnings) = LedgerEntry::from_json_warn(&line).unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(back.to_json(), line);
        assert!(back.scenarios[0].metrics[0].samples.is_empty());
        assert_eq!(
            back.scenarios[0].metrics[0].stats,
            e.scenarios[0].metrics[0].stats
        );
    }

    #[test]
    fn reader_tolerates_future_version_and_unknown_fields() {
        let line = entry("abc", 5, 1.0)
            .to_json()
            .replace("\"schema_version\":1", "\"schema_version\":7")
            .replace("\"commit\":", "\"hyperparams\":{\"x\":[1,2]},\"commit\":");
        let (e, warnings) = LedgerEntry::from_json_warn(&line).unwrap();
        assert_eq!(e.commit, "abc");
        assert!(
            warnings.iter().any(|w| w.contains("schema_version 7")),
            "{warnings:?}"
        );
    }

    #[test]
    fn load_skips_corrupt_lines_with_warning() {
        let dir = std::env::temp_dir().join(format!("afmm-ledger-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("ledger.jsonl");
        Ledger::append(&path, &entry("aaa", 1, 1.0)).unwrap();
        std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .and_then(|mut f| writeln!(f, "{{not json"))
            .unwrap();
        Ledger::append(&path, &entry("bbb", 2, 1.1)).unwrap();
        let (ledger, warnings) = Ledger::load(&path).unwrap();
        assert_eq!(ledger.entries.len(), 2);
        assert!(
            warnings.iter().any(|w| w.contains("line 2")),
            "{warnings:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_empty_ledger() {
        let (ledger, warnings) = Ledger::load(Path::new("/nonexistent/afmm/ledger.jsonl")).unwrap();
        assert!(ledger.entries.is_empty());
        assert!(warnings.is_empty());
    }

    #[test]
    fn series_filters_by_host_and_mode() {
        let mut other = entry("zzz", 3, 2.0);
        other.mode = "full".to_string();
        let ledger = Ledger {
            entries: vec![entry("aaa", 1, 1.0), other, entry("bbb", 2, 1.1)],
        };
        let s = ledger.series("linux-x86_64-16c", "quick");
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].commit, "aaa");
        assert_eq!(ledger.series_keys().len(), 2);
    }

    #[test]
    fn k1_baseline_carries_stats_verbatim() {
        let e = entry("aaa", 1, 1.0);
        let series = [&e];
        let b = synthesize_baseline(&series, 1).unwrap();
        assert_eq!(
            b.scenarios[0].metric("wall_s").unwrap().stats,
            e.scenarios[0].metric("wall_s").unwrap().stats
        );
    }

    #[test]
    fn rolling_baseline_takes_median_of_medians() {
        let entries = [entry("a", 1, 1.0), entry("b", 2, 3.0), entry("c", 3, 2.0)];
        let series: Vec<&LedgerEntry> = entries.iter().collect();
        let b = synthesize_baseline(&series, 3).unwrap();
        let m = b.scenarios[0].metric("wall_s").unwrap();
        // medians of the three runs are ~1, ~3, ~2 → rolling median ~2.
        assert!((m.stats.median - 2.0).abs() < 0.1, "{}", m.stats.median);
    }

    #[test]
    fn utc_date_known_values() {
        assert_eq!(utc_date(0), "1970-01-01");
        assert_eq!(utc_date(951_782_400), "2000-02-29");
        assert_eq!(utc_date(1_754_611_200), "2025-08-08");
        assert_eq!(utc_date(1_786_147_200), "2026-08-08");
    }

    #[test]
    fn history_flags_outliers() {
        let entries: Vec<LedgerEntry> = (0..6)
            .map(|i| {
                let w = if i == 4 { 5.0 } else { 1.0 + 0.01 * i as f64 };
                entry(&format!("c{i}"), i, w)
            })
            .collect();
        let series: Vec<&LedgerEntry> = entries.iter().collect();
        let text = render_history(&series, "linux-x86_64-16c", "quick");
        assert!(text.contains("solve_step/wall_s"), "{text}");
        assert!(text.contains('*'), "outlier unflagged:\n{text}");
    }

    #[test]
    fn trend_flags_gated_step_as_regression() {
        let entries: Vec<LedgerEntry> = (0..10)
            .map(|i| {
                let w = if i >= 8 { 2.0 } else { 1.0 };
                entry(&format!("c{i}"), i, w)
            })
            .collect();
        let series: Vec<&LedgerEntry> = entries.iter().collect();
        let rows = trend_rows(&series, &telemetry::TrendConfig::default());
        let wall = rows
            .iter()
            .find(|r| r.metric == "wall_s")
            .expect("wall_s row");
        assert_eq!(wall.report.kind, telemetry::TrendKind::Step);
        assert!(wall.regression);
        let text = render_trends(&rows, "linux-x86_64-16c", "quick");
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("1 gated step regression"), "{text}");
    }

    #[test]
    fn trend_improvement_is_not_a_regression() {
        let entries: Vec<LedgerEntry> = (0..10)
            .map(|i| {
                let w = if i >= 8 { 0.5 } else { 1.0 };
                entry(&format!("c{i}"), i, w)
            })
            .collect();
        let series: Vec<&LedgerEntry> = entries.iter().collect();
        let rows = trend_rows(&series, &telemetry::TrendConfig::default());
        let wall = rows.iter().find(|r| r.metric == "wall_s").unwrap();
        assert_eq!(wall.report.kind, telemetry::TrendKind::Step);
        assert!(!wall.regression, "downward step on lower-is-better metric");
    }
}
