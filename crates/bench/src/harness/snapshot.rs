//! Structural introspection snapshots: *why* did a perf number move?
//!
//! A bare timing delta between two reports is unattributable — did the
//! solve get slower because the code regressed, or because the tree came
//! out one level deeper and M2L list lengths doubled? Each scenario result
//! therefore embeds a snapshot of the structures that determine its cost:
//!
//! * **tree** — per-level node/leaf/body counts and a power-of-two leaf
//!   occupancy histogram from `octree` ([`TreeStats`] plus level walks);
//! * **plan** — the [`OpCounts`] totals and the M2L/P2P interaction-list
//!   length distributions the execution plan will run;
//! * **gpu** — per-device interaction share and makespan imbalance from
//!   [`gpu_sim::KernelTiming`] (the quantity the paper's partitioner
//!   balances);
//! * **cost_model** — the current observational coefficient table from
//!   [`afmm::CostModel`], so coefficient drift between baselines is visible;
//! * **metrics** — the telemetry registry dump
//!   ([`telemetry::MetricsRegistry::snapshot_json`]) when a recorder was
//!   live during the scenario;
//! * **mem** — the structural heap footprint ([`MemFootprint`]): absolute
//!   bytes per owner plus the normalized bytes-per-body / bytes-per-node /
//!   bytes-per-list-entry figures the memory observatory trends. Structural
//!   accounting works with or without the `memprof` allocator feature.

use super::json::{obj, Json};
use super::stats::median;
use afmm::CostModel;
use gpu_sim::KernelTiming;
use octree::{InteractionLists, Octree, OpCounts, TreeStats};

/// Everything a scenario can attach; absent parts are simply omitted from
/// the snapshot object.
#[derive(Default)]
pub struct SnapshotParts<'a> {
    pub tree: Option<&'a Octree>,
    pub lists: Option<&'a InteractionLists>,
    pub counts: Option<OpCounts>,
    pub cost: Option<&'a CostModel>,
    pub timing: Option<&'a KernelTiming>,
    /// Pre-rendered metrics registry JSON (from
    /// [`telemetry::MetricsRegistry::snapshot_json`]).
    pub metrics_json: Option<String>,
    /// Cost-model prediction audit summary
    /// ([`telemetry::AuditTrail::stats`]) from a tracked run — the realized
    /// predict-vs-observe error the calibration store aggregates.
    pub audit: Option<telemetry::AuditStats>,
    /// Structural heap footprint of the scenario's live structures.
    pub mem: Option<MemFootprint>,
}

/// Structural heap-footprint accounting, assembled by a scenario from the
/// `heap_bytes()` methods on [`nbody::Bodies`], [`Octree`],
/// [`afmm::ExecutionPlan`] / engine scratch, and the telemetry recorder's
/// ring buffer. Byte figures are capacity-granular (reserved headroom is
/// real memory); the divisor counts normalize them into the per-body /
/// per-node / per-list-entry densities the perf ledger trends.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemFootprint {
    pub bodies_bytes: usize,
    pub tree_bytes: usize,
    /// Plan lists + caches + engine solve scratch.
    pub plan_bytes: usize,
    /// Telemetry recorder ring buffer ([`telemetry::Recorder::heap_bytes`]).
    pub recorder_bytes: usize,
    /// Body count (divisor for bytes-per-body).
    pub bodies: usize,
    /// Allocated node count (divisor for bytes-per-node).
    pub nodes: usize,
    /// Total M2L + P2P list entries (divisor for bytes-per-list-entry).
    pub list_entries: usize,
}

impl MemFootprint {
    pub fn total_bytes(&self) -> usize {
        self.bodies_bytes + self.tree_bytes + self.plan_bytes + self.recorder_bytes
    }
}

/// Assemble the snapshot object from whichever parts the scenario has.
pub fn gather(parts: &SnapshotParts<'_>) -> Json {
    let mut fields: Vec<(&str, Json)> = Vec::new();
    if let Some(tree) = parts.tree {
        fields.push(("tree", tree_snapshot(tree)));
    }
    if let (Some(tree), Some(lists)) = (parts.tree, parts.lists) {
        fields.push(("plan", plan_snapshot(tree, lists, parts.counts)));
    }
    if let Some(timing) = parts.timing {
        fields.push(("gpu", gpu_snapshot(timing)));
    }
    if let Some(cost) = parts.cost {
        fields.push(("cost_model", cost_snapshot(cost)));
    }
    if let Some(audit) = &parts.audit {
        fields.push(("audit", audit_snapshot(audit)));
    }
    if let Some(mem) = &parts.mem {
        fields.push(("mem", mem_snapshot(mem)));
    }
    if let Some(mj) = &parts.metrics_json {
        // The registry dump is already canonical JSON; parse so it nests as
        // structure rather than as an escaped string.
        if let Ok(v) = Json::parse(mj) {
            fields.push(("metrics", v));
        }
    }
    obj(fields)
}

/// Per-level counts plus a power-of-two leaf-occupancy histogram.
fn tree_snapshot(tree: &Octree) -> Json {
    let st = TreeStats::gather(tree);
    let mut levels: Vec<Json> = Vec::new();
    for (level, ids) in tree.levels().iter().enumerate() {
        if ids.is_empty() {
            continue;
        }
        let leaves = ids.iter().filter(|&&id| tree.node(id).is_leaf()).count();
        let bodies: usize = ids
            .iter()
            .filter(|&&id| tree.node(id).is_leaf())
            .map(|&id| tree.node(id).count())
            .sum();
        levels.push(obj(vec![
            ("level", Json::Num(level as f64)),
            ("nodes", Json::Num(ids.len() as f64)),
            ("leaves", Json::Num(leaves as f64)),
            ("bodies", Json::Num(bodies as f64)),
        ]));
    }

    // Occupancy histogram: bucket 0 holds empty leaves, bucket k>0 holds
    // counts in [2^(k-1), 2^k).
    let occupancies: Vec<usize> = tree
        .visible_leaves()
        .into_iter()
        .map(|id| tree.node(id).count())
        .collect();
    let max_bucket = occupancies
        .iter()
        .map(|&c| if c == 0 { 0 } else { c.ilog2() as usize + 1 })
        .max()
        .unwrap_or(0);
    let mut hist = vec![0usize; max_bucket + 1];
    for &c in &occupancies {
        let b = if c == 0 { 0 } else { c.ilog2() as usize + 1 };
        hist[b] += 1;
    }
    let hist_json: Vec<Json> = hist
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(b, &n)| {
            let (lo, hi) = if b == 0 {
                (0, 0)
            } else {
                (1 << (b - 1), (1 << b) - 1)
            };
            obj(vec![
                ("lo", Json::Num(lo as f64)),
                ("hi", Json::Num(hi as f64)),
                ("leaves", Json::Num(n as f64)),
            ])
        })
        .collect();

    obj(vec![
        ("s", Json::Num(tree.s_value() as f64)),
        ("bodies", Json::Num(tree.num_bodies() as f64)),
        ("visible_nodes", Json::Num(st.visible_nodes as f64)),
        ("visible_leaves", Json::Num(st.visible_leaves as f64)),
        ("nonempty_leaves", Json::Num(st.nonempty_leaves as f64)),
        ("depth", Json::Num(st.depth as f64)),
        ("max_leaf", Json::Num(st.max_leaf as f64)),
        ("mean_leaf", Json::Num(st.mean_leaf)),
        ("levels", Json::Arr(levels)),
        ("leaf_occupancy", Json::Arr(hist_json)),
    ])
}

/// Min/median/p90/max of a length distribution.
fn length_dist(lens: &[usize]) -> Json {
    if lens.is_empty() {
        return obj(vec![("count", Json::Num(0.0))]);
    }
    let mut sorted: Vec<f64> = lens.iter().map(|&l| l as f64).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let p90 = sorted[((0.90 * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1)];
    obj(vec![
        ("count", Json::Num(sorted.len() as f64)),
        ("total", Json::Num(sorted.iter().sum::<f64>())),
        ("min", Json::Num(sorted[0])),
        ("median", Json::Num(median(&sorted))),
        ("p90", Json::Num(p90)),
        ("max", Json::Num(*sorted.last().expect("nonempty"))),
    ])
}

/// Interaction-list shape plus the op-count totals the cost model prices.
fn plan_snapshot(tree: &Octree, lists: &InteractionLists, counts: Option<OpCounts>) -> Json {
    let visible = tree.visible_nodes();
    let m2l_lens: Vec<usize> = visible
        .iter()
        .map(|&id| lists.m2l[id as usize].len())
        .filter(|&l| l > 0)
        .collect();
    let p2p_lens: Vec<usize> = tree
        .active_leaves()
        .into_iter()
        .map(|id| lists.p2p[id as usize].len())
        .filter(|&l| l > 0)
        .collect();
    let counts = counts.unwrap_or_else(|| octree::count_ops(tree, lists));
    obj(vec![
        (
            "op_counts",
            obj(vec![
                ("p2m_bodies", Json::Num(counts.p2m_bodies as f64)),
                ("m2m_ops", Json::Num(counts.m2m_ops as f64)),
                ("m2l_ops", Json::Num(counts.m2l_ops as f64)),
                ("l2l_ops", Json::Num(counts.l2l_ops as f64)),
                ("l2p_bodies", Json::Num(counts.l2p_bodies as f64)),
                (
                    "p2p_interactions",
                    Json::Num(counts.p2p_interactions as f64),
                ),
                ("active_nodes", Json::Num(counts.active_nodes as f64)),
            ]),
        ),
        ("m2l_list_len", length_dist(&m2l_lens)),
        ("p2p_list_len", length_dist(&p2p_lens)),
    ])
}

/// Per-device interaction share and the makespan imbalance of one launch.
fn gpu_snapshot(timing: &KernelTiming) -> Json {
    let total: u64 = timing.total_pairs();
    let shares: Vec<Json> = timing
        .per_gpu
        .iter()
        .enumerate()
        .map(|(device, r)| {
            let share = if total > 0 {
                r.useful_pairs as f64 / total as f64
            } else {
                0.0
            };
            obj(vec![
                ("device", Json::Num(device as f64)),
                ("pairs", Json::Num(r.useful_pairs as f64)),
                ("share", Json::Num(share)),
                ("elapsed_s", Json::Num(r.elapsed_s)),
            ])
        })
        .collect();
    obj(vec![
        ("devices", Json::Num(timing.per_gpu.len() as f64)),
        ("total_pairs", Json::Num(total as f64)),
        (
            "makespan_s",
            timing.gpu_time().map(Json::Num).unwrap_or(Json::Null),
        ),
        (
            "imbalance",
            timing.imbalance().map(Json::Num).unwrap_or(Json::Null),
        ),
        (
            "efficiency",
            timing.efficiency().map(Json::Num).unwrap_or(Json::Null),
        ),
        ("interaction_share", Json::Arr(shares)),
    ])
}

/// Prediction-audit summary: how far the cost model's `predict` calls were
/// from the observed step times over the run.
fn audit_snapshot(a: &telemetry::AuditStats) -> Json {
    obj(vec![
        ("count", Json::Num(a.count as f64)),
        ("acted", Json::Num(a.acted as f64)),
        ("mean", Json::Num(a.mean)),
        ("median", Json::Num(a.median)),
        ("p90", Json::Num(a.p90)),
        ("max", Json::Num(a.max)),
    ])
}

/// Absolute bytes per owner plus the normalized densities. Ratios divide
/// by zero-safe denominators (`Null` when the divisor is zero).
fn mem_snapshot(mem: &MemFootprint) -> Json {
    let ratio = |bytes: usize, div: usize| {
        if div == 0 {
            Json::Null
        } else {
            Json::Num(bytes as f64 / div as f64)
        }
    };
    obj(vec![
        ("bodies_bytes", Json::Num(mem.bodies_bytes as f64)),
        ("tree_bytes", Json::Num(mem.tree_bytes as f64)),
        ("plan_bytes", Json::Num(mem.plan_bytes as f64)),
        ("recorder_bytes", Json::Num(mem.recorder_bytes as f64)),
        ("total_bytes", Json::Num(mem.total_bytes() as f64)),
        ("bytes_per_body", ratio(mem.bodies_bytes, mem.bodies)),
        ("bytes_per_node", ratio(mem.tree_bytes, mem.nodes)),
        (
            "bytes_per_list_entry",
            ratio(mem.plan_bytes, mem.list_entries),
        ),
    ])
}

/// The observational coefficient table (paper §IV.D).
fn cost_snapshot(cost: &CostModel) -> Json {
    obj(vec![
        ("observed", Json::Bool(cost.is_observed())),
        ("c_p2m", Json::Num(cost.c_p2m)),
        ("c_m2m", Json::Num(cost.c_m2m)),
        ("c_m2l", Json::Num(cost.c_m2l)),
        ("c_l2l", Json::Num(cost.c_l2l)),
        ("c_l2p", Json::Num(cost.c_l2p)),
        ("c_cpu_pair", Json::Num(cost.c_cpu_pair)),
        ("c_node", Json::Num(cost.c_node)),
        ("c_gpu_pair", Json::Num(cost.c_gpu_pair)),
        ("parallel_rate", Json::Num(cost.parallel_rate)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use octree::{build_adaptive, dual_traversal, BuildParams, Mac};

    fn small_tree() -> (Octree, InteractionLists) {
        let b = nbody::plummer(2000, 1.0, 1.0, 5);
        let tree = build_adaptive(&b.pos, BuildParams::with_s(32));
        let lists = dual_traversal(&tree, Mac::default());
        (tree, lists)
    }

    #[test]
    fn snapshot_contains_all_requested_parts() {
        let (tree, lists) = small_tree();
        let node = afmm::HeteroNode::system_a(4, 2);
        let counts = octree::count_ops(&tree, &lists);
        let flops = crate::default_flops(&fmm_math::GravityKernel::default());
        let timing = afmm::time_step(&tree, &lists, &flops, &node).unwrap();
        let mut cost = CostModel::new();
        cost.observe(&counts, &timing, &flops, &node);
        let reg = telemetry::MetricsRegistry::default();
        reg.counter("x").add(3);

        let snap = gather(&SnapshotParts {
            tree: Some(&tree),
            lists: Some(&lists),
            counts: Some(counts),
            cost: Some(&cost),
            timing: timing.gpu.as_ref(),
            metrics_json: Some(reg.snapshot_json()),
            audit: Some(telemetry::AuditStats {
                count: 8,
                acted: 3,
                mean: 0.07,
                median: 0.05,
                p90: 0.12,
                max: 0.2,
            }),
            mem: Some(MemFootprint {
                bodies_bytes: 2000 * 56,
                tree_bytes: tree.heap_bytes(),
                plan_bytes: lists.heap_bytes(),
                recorder_bytes: 0,
                bodies: 2000,
                nodes: tree.num_nodes(),
                list_entries: lists.num_m2l() + lists.num_p2p_pairs(),
            }),
        });

        let t = snap.get("tree").expect("tree part");
        assert_eq!(t.get("bodies").unwrap().as_f64(), Some(2000.0));
        assert!(!t.get("levels").unwrap().as_arr().unwrap().is_empty());
        assert!(!t
            .get("leaf_occupancy")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty());

        let p = snap.get("plan").expect("plan part");
        assert_eq!(
            p.get("op_counts")
                .unwrap()
                .get("p2m_bodies")
                .unwrap()
                .as_f64(),
            Some(2000.0)
        );
        assert!(p.get("m2l_list_len").unwrap().get("max").unwrap().as_f64() > Some(0.0));

        let g = snap.get("gpu").expect("gpu part");
        assert_eq!(g.get("devices").unwrap().as_f64(), Some(2.0));
        let shares = g.get("interaction_share").unwrap().as_arr().unwrap();
        let total: f64 = shares
            .iter()
            .map(|s| s.get("share").unwrap().as_f64().unwrap())
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to 1, got {total}");

        let c = snap.get("cost_model").expect("cost part");
        assert_eq!(c.get("observed").unwrap().as_bool(), Some(true));
        assert!(c.get("c_m2l").unwrap().as_f64().unwrap() > 0.0);

        let a = snap.get("audit").expect("audit part");
        assert_eq!(a.get("count").unwrap().as_f64(), Some(8.0));
        assert_eq!(a.get("p90").unwrap().as_f64(), Some(0.12));

        let mem = snap.get("mem").expect("mem part");
        assert_eq!(
            mem.get("bytes_per_body").unwrap().as_f64(),
            Some(56.0),
            "2000 bodies at 56 bytes each"
        );
        assert!(mem.get("bytes_per_node").unwrap().as_f64().unwrap() > 0.0);
        assert!(mem.get("bytes_per_list_entry").unwrap().as_f64().unwrap() > 0.0);
        let total = mem.get("total_bytes").unwrap().as_f64().unwrap();
        assert_eq!(
            total,
            (2000.0 * 56.0)
                + mem.get("tree_bytes").unwrap().as_f64().unwrap()
                + mem.get("plan_bytes").unwrap().as_f64().unwrap()
        );

        let m = snap.get("metrics").expect("metrics part");
        assert_eq!(
            m.get("counters").unwrap().get("x").unwrap().as_f64(),
            Some(3.0)
        );

        // The whole snapshot is valid JSON.
        assert!(telemetry::json_syntax_ok(&snap.to_json()));
    }

    #[test]
    fn absent_parts_are_omitted() {
        let snap = gather(&SnapshotParts::default());
        assert_eq!(snap, Json::Obj(Vec::new()));
        let (tree, _) = small_tree();
        let snap = gather(&SnapshotParts {
            tree: Some(&tree),
            ..Default::default()
        });
        assert!(snap.get("tree").is_some());
        assert!(snap.get("plan").is_none());
        assert!(snap.get("gpu").is_none());
    }

    #[test]
    fn length_dist_handles_empty() {
        let d = length_dist(&[]);
        assert_eq!(d.get("count").unwrap().as_f64(), Some(0.0));
        assert!(d.get("median").is_none());
    }
}
