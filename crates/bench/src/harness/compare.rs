//! Noise-aware report comparison: classify every metric shared by two
//! reports as improved / regressed / unchanged, and decide whether the new
//! report fails the gate.
//!
//! The classification rule, per metric (Holm et al.'s observation that
//! autotuning decisions need noise-aware repeated measurements applies
//! equally to the measurements *about* the system):
//!
//! 1. **CI overlap.** If the bootstrap confidence intervals of the two
//!    medians overlap, the difference is indistinguishable from sampling
//!    noise → `Unchanged`, full stop.
//! 2. **Relative-MAD threshold.** Otherwise the relative delta of the
//!    medians must clear `max(noise_mult · rel_mad, min_rel_change)`,
//!    where `rel_mad` is the worse of the two reports' MAD/median ratios
//!    floored at a per-kind minimum (wall metrics get a generous floor,
//!    virtual metrics a tight one — the simulators are deterministic).
//! 3. Direction decides `Improved` vs `Regressed`; only `gate: true`
//!    metrics can fail the build.
//!
//! Scenarios are matched by name and compared only when their `params`
//! objects are identical — a quick-mode report never silently gates
//! against a full-mode baseline.

use super::json::Json;
use super::report::{BenchReport, Direction, Metric, MetricKind};

/// Comparator thresholds; the defaults are deliberately blunt — this gate
/// exists to catch real regressions (the acceptance bar is 2×), not 3%
/// drifts that would make CI flaky across runners.
#[derive(Clone, Copy, Debug)]
pub struct CompareConfig {
    /// Noise floor for wall-clock metrics (relative MAD is clamped up to
    /// this before thresholding).
    pub min_rel_noise_wall: f64,
    /// Noise floor for virtual (deterministic) metrics.
    pub min_rel_noise_virtual: f64,
    /// The delta must exceed `noise_mult` × the noise estimate ...
    pub noise_mult: f64,
    /// ... and this absolute relative floor, whichever is larger.
    pub min_rel_change: f64,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            min_rel_noise_wall: 0.10,
            min_rel_noise_virtual: 0.02,
            noise_mult: 3.0,
            min_rel_change: 0.25,
        }
    }
}

/// Outcome for one metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    Improved,
    Regressed,
    Unchanged,
    /// Not comparable (params mismatch, metric missing on one side, zero
    /// baseline) — reported, never gated.
    Skipped,
}

impl Verdict {
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Improved => "improved",
            Verdict::Regressed => "REGRESSED",
            Verdict::Unchanged => "unchanged",
            Verdict::Skipped => "skipped",
        }
    }
}

/// One row of the comparison table.
#[derive(Clone, Debug)]
pub struct MetricComparison {
    pub scenario: String,
    pub metric: String,
    pub unit: String,
    pub old_median: f64,
    pub new_median: f64,
    /// Signed relative delta of the medians, `(new - old) / |old|`
    /// (positive = the value went up, independent of direction).
    pub rel_delta: f64,
    /// The noise threshold the delta was tested against.
    pub threshold: f64,
    pub gate: bool,
    pub verdict: Verdict,
    /// Human-readable reason for skipped rows.
    pub note: String,
}

/// Full result of comparing two reports.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    pub rows: Vec<MetricComparison>,
}

impl CompareReport {
    /// Gated regressions — nonzero means the build fails.
    pub fn regressions(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.gate && r.verdict == Verdict::Regressed)
            .count()
    }

    pub fn improvements(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.verdict == Verdict::Improved)
            .count()
    }

    /// Fixed-width summary table for terminals and CI logs.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:<22} {:>12} {:>12} {:>8}  {}",
            "scenario", "metric", "old", "new", "delta", "verdict"
        );
        for r in &self.rows {
            let delta = if r.verdict == Verdict::Skipped {
                "-".to_string()
            } else {
                format!("{:+.1}%", 100.0 * r.rel_delta)
            };
            let _ = writeln!(
                out,
                "{:<24} {:<22} {:>12} {:>12} {:>8}  {}{}",
                r.scenario,
                r.metric,
                format_value(r.old_median),
                format_value(r.new_median),
                delta,
                r.verdict.as_str(),
                if r.note.is_empty() {
                    String::new()
                } else {
                    format!(" ({})", r.note)
                },
            );
        }
        let _ = writeln!(
            out,
            "-- {} metric(s): {} regressed (gated), {} improved",
            self.rows.len(),
            self.regressions(),
            self.improvements()
        );
        out
    }
}

pub(crate) fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.5}")
    }
}

/// Do two closed intervals overlap?
fn ci_overlap(a_lo: f64, a_hi: f64, b_lo: f64, b_hi: f64) -> bool {
    a_lo <= b_hi && b_lo <= a_hi
}

fn compare_metric(
    scenario: &str,
    old: &Metric,
    new: &Metric,
    cfg: &CompareConfig,
) -> MetricComparison {
    let mut row = MetricComparison {
        scenario: scenario.to_string(),
        metric: old.name.clone(),
        unit: old.unit.clone(),
        old_median: old.stats.median,
        new_median: new.stats.median,
        rel_delta: 0.0,
        threshold: 0.0,
        gate: old.gate && new.gate,
        verdict: Verdict::Unchanged,
        note: String::new(),
    };
    if old.stats.median.abs() < f64::EPSILON {
        // A zero baseline admits no relative comparison; absolute deltas
        // of heterogeneous units are not gateable either.
        row.verdict = if new.stats.median.abs() < f64::EPSILON {
            Verdict::Unchanged
        } else {
            row.note = "zero baseline".to_string();
            Verdict::Skipped
        };
        return row;
    }

    row.rel_delta = (new.stats.median - old.stats.median) / old.stats.median.abs();

    let floor = match (old.kind, new.kind) {
        (MetricKind::Virtual, MetricKind::Virtual) => cfg.min_rel_noise_virtual,
        _ => cfg.min_rel_noise_wall,
    };
    let noise = old.stats.rel_mad().max(new.stats.rel_mad()).max(floor);
    row.threshold = (cfg.noise_mult * noise).max(cfg.min_rel_change);

    if ci_overlap(
        old.stats.ci_lo,
        old.stats.ci_hi,
        new.stats.ci_lo,
        new.stats.ci_hi,
    ) {
        return row; // statistically indistinguishable
    }
    // Positive `worse` = moved in the bad direction.
    let worse = match old.direction {
        Direction::Lower => row.rel_delta,
        Direction::Higher => -row.rel_delta,
    };
    if worse > row.threshold {
        row.verdict = Verdict::Regressed;
    } else if -worse > row.threshold {
        row.verdict = Verdict::Improved;
    }
    row
}

/// Compare two reports scenario-by-scenario, metric-by-metric.
pub fn compare(old: &BenchReport, new: &BenchReport, cfg: &CompareConfig) -> CompareReport {
    let mut rows = Vec::new();
    for old_sc in &old.scenarios {
        let Some(new_sc) = new.scenario(&old_sc.name) else {
            rows.push(skip_row(
                &old_sc.name,
                "*",
                "scenario missing in new report",
            ));
            continue;
        };
        if old_sc.params != new_sc.params {
            rows.push(skip_row(&old_sc.name, "*", "params differ; not comparable"));
            continue;
        }
        for old_m in &old_sc.metrics {
            match new_sc.metric(&old_m.name) {
                Some(new_m) => rows.push(compare_metric(&old_sc.name, old_m, new_m, cfg)),
                None => rows.push(skip_row(
                    &old_sc.name,
                    &old_m.name,
                    "metric missing in new report",
                )),
            }
        }
    }
    for new_sc in &new.scenarios {
        if old.scenario(&new_sc.name).is_none() {
            rows.push(skip_row(&new_sc.name, "*", "new scenario (no baseline)"));
        }
    }
    CompareReport { rows }
}

fn skip_row(scenario: &str, metric: &str, note: &str) -> MetricComparison {
    MetricComparison {
        scenario: scenario.to_string(),
        metric: metric.to_string(),
        unit: String::new(),
        old_median: 0.0,
        new_median: 0.0,
        rel_delta: 0.0,
        threshold: 0.0,
        gate: false,
        verdict: Verdict::Skipped,
        note: note.to_string(),
    }
}

/// Params mismatch helper used by the driver for friendlier messages.
pub fn modes(old: &BenchReport, new: &BenchReport) -> (String, String) {
    let mode = |r: &BenchReport| {
        r.config
            .get("mode")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    (mode(old), mode(new))
}
