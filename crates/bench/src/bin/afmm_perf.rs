//! **afmm-perf** — the perf-lab driver: run the benchmark suite, compare
//! two reports with the noise-aware gate, refresh the checked-in baseline,
//! and keep the longitudinal perf ledger.
//!
//! ```text
//! afmm-perf run [--quick|--smoke] [-o out.json]   run the suite → BENCH_perf.json
//! afmm-perf compare <old.json> <new.json>         classify deltas; exit 1 on regression
//! afmm-perf compare --against-ledger K <new.json> gate vs rolling median of last K runs
//! afmm-perf baseline [--full] [-o path]           refresh bench/baseline.json
//! afmm-perf record <report.json>                  append a run to the ledger + calibration
//! afmm-perf history [--quick|--full|--smoke]      per-metric series with median/MAD bands
//! afmm-perf trend [--quick|--full|--smoke]        step/drift/spike classification
//! afmm-perf calibration                           dump the cost-model calibration table
//! ```
//!
//! Exit codes follow `afmm-trace`: 0 = ok, 1 = statistically significant
//! regression (a gated `compare` verdict, or a confirmed gated step for
//! `trend`), 2 = usage or I/O error. `compare` prints a fixed-width
//! verdict table; a metric only fails the gate when its bootstrap CIs
//! don't overlap *and* the median delta clears the relative-MAD threshold
//! (see `bench::harness::compare`). Reports embed structural introspection
//! snapshots, so a regression comes with the tree/plan/GPU/cost-model
//! context needed to attribute it.
//!
//! The ledger (`bench/ledger.jsonl`, or `$BENCH_OUT_DIR/ledger.jsonl` when
//! that is set) is append-only JSONL, one entry per recorded run, keyed
//! into series by `(host fingerprint, suite mode)`; the calibration store
//! (`bench/calibration.jsonl`) aggregates each run's realized cost-model
//! coefficients into per-(host, ⌊log₂N⌋, device-mix, S) running means.

use std::process::ExitCode;

/// With the `memprof` feature the counting allocator wraps the system one,
/// lighting up the `memory_profile` scenario's allocator metrics. Without
/// the feature nothing is wrapped and those metrics are omitted.
#[cfg(feature = "memprof")]
#[global_allocator]
static ALLOC: telemetry::CountingAlloc = telemetry::CountingAlloc;

use bench::harness::{
    compare, host_key, render_history, render_trends, run_suite, synthesize_baseline, trend_rows,
    BenchReport, CompareConfig, Json, Ledger, LedgerEntry, SuiteConfig, Verdict,
};

const USAGE: &str = "usage: afmm-perf <run|compare|baseline|record|history|trend|calibration> [...]
  run [--quick|--smoke] [-o out.json]   run the suite, write a BenchReport JSON
  compare <old.json> <new.json>         noise-aware comparison; exit 1 on regression
  compare --against-ledger K <new.json> [--ledger path]
                                        gate vs the rolling median of the last K
                                        same-host, same-mode ledger entries
  baseline [--full] [-o path]           run the suite and refresh the checked-in baseline
  record <report.json> [--ledger path] [--calibration path] [--time unix_s]
                                        append the run to the perf ledger and fold its
                                        cost coefficients into the calibration store
  history [--quick|--full|--smoke] [--host key] [--ledger path]
                                        print per-metric series with median/MAD bands
  trend [--quick|--full|--smoke] [--host key] [--ledger path]
                                        classify each gated series (step/drift/spike);
                                        exit 1 on a confirmed gated step regression
  calibration [--calibration path]      dump the cost-model calibration table";

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("afmm-perf: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return fail(USAGE);
    };
    match cmd.as_str() {
        "run" => cmd_run(&args[1..]),
        "compare" => cmd_compare(&args[1..]),
        "baseline" => cmd_baseline(&args[1..]),
        "record" => cmd_record(&args[1..]),
        "history" => cmd_history(&args[1..]),
        "trend" => cmd_trend(&args[1..]),
        "calibration" => cmd_calibration(&args[1..]),
        other => fail(format!("unknown subcommand \"{other}\"\n{USAGE}")),
    }
}

fn run_and_render(cfg: &SuiteConfig) -> BenchReport {
    eprintln!(
        "# afmm-perf: {} suite ({} scenarios pending, reps={}, warmup={})",
        cfg.mode, 8, cfg.reps, cfg.warmup
    );
    run_suite(cfg, &mut |line| eprintln!("# {line}"))
}

fn write_report(report: &BenchReport, path: &std::path::Path) -> Result<(), String> {
    std::fs::write(path, report.to_json()).map_err(|e| format!("write {}: {e}", path.display()))
}

fn load_report(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let (report, warnings) =
        BenchReport::from_json_warn(&text).map_err(|e| format!("{path}: {e}"))?;
    for w in warnings {
        eprintln!("# warning: {path}: {w}");
    }
    Ok(report)
}

/// Workspace-root file path (resolved from this crate's manifest dir so
/// commands work from any CWD inside the repo).
fn workspace_path(rel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

/// Default ledger location: `$BENCH_OUT_DIR/ledger.jsonl` when the
/// override is set (same routing as every other bench artifact), else the
/// persistent `bench/ledger.jsonl` at the workspace root.
fn default_ledger_path() -> std::path::PathBuf {
    match std::env::var_os("BENCH_OUT_DIR") {
        Some(d) if !d.is_empty() => bench::out_path("ledger.jsonl"),
        _ => workspace_path("bench/ledger.jsonl"),
    }
}

/// Default calibration-store location, routed like the ledger.
fn default_calibration_path() -> std::path::PathBuf {
    match std::env::var_os("BENCH_OUT_DIR") {
        Some(d) if !d.is_empty() => bench::out_path("calibration.jsonl"),
        _ => workspace_path("bench/calibration.jsonl"),
    }
}

fn load_ledger(path: &std::path::Path) -> Result<Ledger, String> {
    let (ledger, warnings) = Ledger::load(path)?;
    for w in warnings {
        eprintln!("# warning: {}: {w}", path.display());
    }
    Ok(ledger)
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut cfg = SuiteConfig::full();
    let mut output = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => cfg = SuiteConfig::quick(),
            "--smoke" => cfg = SuiteConfig::smoke(),
            "--full" => cfg = SuiteConfig::full(),
            "-o" | "--output" => match it.next() {
                Some(p) => output = Some(std::path::PathBuf::from(p)),
                None => return fail("-o requires a path"),
            },
            other => return fail(format!("unexpected argument \"{other}\"\n{USAGE}")),
        }
    }
    let report = run_and_render(&cfg);
    let path = output.unwrap_or_else(|| bench::out_path("BENCH_perf.json"));
    if let Err(e) = write_report(&report, &path) {
        return fail(e);
    }
    eprintln!(
        "# wrote {} ({} scenarios, commit {})",
        path.display(),
        report.scenarios.len(),
        &report.commit[..report.commit.len().min(12)]
    );
    ExitCode::SUCCESS
}

fn cmd_compare(args: &[String]) -> ExitCode {
    let mut against_ledger: Option<usize> = None;
    let mut ledger_path = default_ledger_path();
    let mut paths: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--against-ledger" => match it.next().and_then(|k| k.parse::<usize>().ok()) {
                Some(k) if k >= 1 => against_ledger = Some(k),
                _ => return fail("--against-ledger requires a window size K >= 1"),
            },
            "--ledger" => match it.next() {
                Some(p) => ledger_path = std::path::PathBuf::from(p),
                None => return fail("--ledger requires a path"),
            },
            _ => paths.push(a),
        }
    }
    let (old, new, old_path) = match (against_ledger, paths.as_slice()) {
        (None, [old_path, new_path]) => match (load_report(old_path), load_report(new_path)) {
            (Ok(o), Ok(n)) => (o, n, old_path.to_string()),
            (Err(e), _) | (_, Err(e)) => return fail(e),
        },
        (Some(k), [new_path]) => {
            let new = match load_report(new_path) {
                Ok(n) => n,
                Err(e) => return fail(e),
            };
            let ledger = match load_ledger(&ledger_path) {
                Ok(l) => l,
                Err(e) => return fail(e),
            };
            let key = host_key(&new.host);
            let mode = new
                .config
                .get("mode")
                .and_then(Json::as_str)
                .unwrap_or("unknown");
            let series = ledger.series(&key, mode);
            let Some(old) = synthesize_baseline(&series, k) else {
                return fail(format!(
                    "no ledger history for series {key}/{mode} in {}",
                    ledger_path.display()
                ));
            };
            if series.len() < k {
                eprintln!(
                    "# warning: --against-ledger {k} requested but the {key}/{mode} \
                     series has only {} entr{}; the rolling median is thinner than \
                     asked for and a single outlier run weighs more",
                    series.len(),
                    if series.len() == 1 { "y" } else { "ies" }
                );
            }
            eprintln!(
                "# baseline synthesized from the last {} of {} ledger entries ({key}/{mode})",
                k.min(series.len()),
                series.len()
            );
            let label = format!("ledger:{key}/{mode}");
            (old, new, label)
        }
        _ => return fail(USAGE),
    };
    let result = compare(&old, &new, &CompareConfig::default());
    print!("{}", result.render());
    let (om, nm) = bench::harness::compare::modes(&old, &new);
    if om != nm {
        eprintln!("# note: comparing a \"{om}\" baseline against a \"{nm}\" report");
    }
    if result.regressions() > 0 {
        if result
            .rows
            .iter()
            .any(|r| r.scenario == "dag_pipeline" && r.gate && r.verdict == Verdict::Regressed)
        {
            print_sched_attribution(&old, &new);
        }
        eprintln!(
            "# FAIL: {} statistically significant regression(s) vs {old_path}",
            result.regressions()
        );
        return ExitCode::from(1);
    }
    eprintln!("# OK: no significant regressions vs {old_path}");
    ExitCode::SUCCESS
}

/// A gated `dag_pipeline` regression says the scheduler lost time — this
/// says *where*: compare the two reports' scheduler-x-ray snapshots and
/// print the phase / cause / lane shifts of the realized critical path.
fn print_sched_attribution(old: &BenchReport, new: &BenchReport) {
    let sched = |r: &BenchReport| -> Option<Json> {
        r.scenario("dag_pipeline")
            .and_then(|s| s.snapshot.get("sched"))
            .cloned()
    };
    let (Some(o), Some(n)) = (sched(old), sched(new)) else {
        eprintln!("# dag_pipeline regressed; no sched snapshot on one side — cannot attribute");
        return;
    };
    let num = |j: &Json, k: &str| j.get(k).and_then(Json::as_f64).unwrap_or(f64::NAN);
    eprintln!(
        "# dag_pipeline regressed — critical-path attribution (old -> new, {} cores + {} lanes):",
        num(&n, "cores"),
        num(&n, "gpu_lanes")
    );
    eprintln!(
        "#   makespan {:.4e}s -> {:.4e}s   crit len {} -> {}   lane idle {:.1}% -> {:.1}%   overlap {:.1}% -> {:.1}%",
        num(&o, "makespan_s"),
        num(&n, "makespan_s"),
        num(&o, "critpath_len"),
        num(&n, "critpath_len"),
        100.0 * num(&o, "lane_idle_frac"),
        100.0 * num(&n, "lane_idle_frac"),
        100.0 * num(&o, "pipeline_overlap"),
        100.0 * num(&n, "pipeline_overlap"),
    );
    let pair = |label: &str, ov: f64, nv: f64| {
        let marker = if (nv - ov).abs() > 0.05 {
            "  <-- moved"
        } else {
            ""
        };
        eprintln!(
            "#   {label:<22} {:>6.1}% -> {:>6.1}%{marker}",
            100.0 * ov,
            100.0 * nv
        );
    };
    for k in ["dependency_frac", "starvation_frac", "serialization_frac"] {
        pair(k, num(&o, k), num(&n, k));
    }
    let phase_frac = |j: &Json, p: &str| {
        j.get("crit_phase_frac")
            .and_then(|x| x.get(p))
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN)
    };
    for p in ["p2m", "m2m", "m2l", "l2l", "l2p", "p2p"] {
        pair(
            &format!("crit phase {p}"),
            phase_frac(&o, p),
            phase_frac(&n, p),
        );
    }
}

/// Default location of the checked-in baseline: `bench/baseline.json` at
/// the workspace root (resolved from this crate's manifest dir so the
/// command works from any CWD inside the repo).
fn default_baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("bench/baseline.json")
}

fn cmd_baseline(args: &[String]) -> ExitCode {
    // The baseline is what CI's quick run gates against, so it is recorded
    // at quick-mode sizes unless --full is given.
    let mut cfg = SuiteConfig::quick();
    let mut output = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => cfg = SuiteConfig::full(),
            "--smoke" => cfg = SuiteConfig::smoke(),
            "-o" | "--output" => match it.next() {
                Some(p) => output = Some(std::path::PathBuf::from(p)),
                None => return fail("-o requires a path"),
            },
            other => return fail(format!("unexpected argument \"{other}\"\n{USAGE}")),
        }
    }
    let report = run_and_render(&cfg);
    let path = output.unwrap_or_else(default_baseline_path);
    if let Some(dir) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            return fail(format!("create {}: {e}", dir.display()));
        }
    }
    if let Err(e) = write_report(&report, &path) {
        return fail(e);
    }
    eprintln!(
        "# baseline refreshed: {} ({} mode, commit {})",
        path.display(),
        cfg.mode,
        &report.commit[..report.commit.len().min(12)]
    );
    ExitCode::SUCCESS
}

/// Rebuild a `CostModel` from the coefficient table a `solve_step`
/// snapshot carries. `None` when the snapshot has no coefficients (e.g. a
/// report from a suite that skipped the scenario).
fn cost_model_from_json(v: &Json) -> Option<afmm::CostModel> {
    let mut m = afmm::CostModel::new();
    let num = |k: &str| v.get(k).and_then(Json::as_f64);
    m.c_p2m = num("c_p2m")?;
    m.c_m2m = num("c_m2m")?;
    m.c_m2l = num("c_m2l")?;
    m.c_l2l = num("c_l2l")?;
    m.c_l2p = num("c_l2p")?;
    m.c_cpu_pair = num("c_cpu_pair")?;
    m.c_node = num("c_node")?;
    m.c_gpu_pair = num("c_gpu_pair")?;
    m.parallel_rate = num("parallel_rate")?;
    m.set_observed(v.get("observed").and_then(Json::as_bool).unwrap_or(true));
    Some(m)
}

/// Fold one recorded run into the calibration store: the realized
/// coefficients from `solve_step`, keyed by that scenario's (N, mix, S),
/// with the prediction-audit stats from `balancer_convergence` attached.
fn update_calibration(
    path: &std::path::Path,
    report: &BenchReport,
    entry: &LedgerEntry,
) -> Result<Option<afmm::CalibrationKey>, String> {
    let Some(model) = cost_model_from_json(&entry.cost_model) else {
        return Ok(None);
    };
    let Some(solve) = report.scenario("solve_step") else {
        return Ok(None);
    };
    let p = |k: &str| solve.params.get(k).and_then(Json::as_u64);
    let (Some(n), Some(s)) = (p("n"), p("s")) else {
        return Ok(None);
    };
    let (cores, gpus) = (p("cores").unwrap_or(0), p("gpus").unwrap_or(0));
    let key = afmm::CalibrationKey::new(
        &entry.host_key,
        n as usize,
        cores as usize,
        gpus as usize,
        s,
    );
    let audit = if entry.audit == Json::Null {
        None
    } else {
        telemetry::AuditStats::from_json(&entry.audit.to_json()).ok()
    };
    let (mut store, warnings) = afmm::CalibrationStore::load(path)?;
    for w in warnings {
        eprintln!("# warning: {}: {w}", path.display());
    }
    store.observe(key.clone(), &model, audit.as_ref());
    store.save(path)?;
    Ok(Some(key))
}

fn cmd_record(args: &[String]) -> ExitCode {
    let mut ledger_path = default_ledger_path();
    let mut calibration_path = default_calibration_path();
    let mut unix_s: Option<u64> = None;
    let mut report_path: Option<&String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ledger" => match it.next() {
                Some(p) => ledger_path = std::path::PathBuf::from(p),
                None => return fail("--ledger requires a path"),
            },
            "--calibration" => match it.next() {
                Some(p) => calibration_path = std::path::PathBuf::from(p),
                None => return fail("--calibration requires a path"),
            },
            "--time" => match it.next().and_then(|t| t.parse::<u64>().ok()) {
                Some(t) => unix_s = Some(t),
                None => return fail("--time requires unix seconds"),
            },
            other if report_path.is_none() && !other.starts_with('-') => report_path = Some(a),
            other => return fail(format!("unexpected argument \"{other}\"\n{USAGE}")),
        }
    }
    let Some(report_path) = report_path else {
        return fail("record requires a report path");
    };
    let report = match load_report(report_path) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    let unix_s = unix_s.unwrap_or_else(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0)
    });
    let entry = LedgerEntry::from_report(&report, unix_s);
    if let Err(e) = Ledger::append(&ledger_path, &entry) {
        return fail(e);
    }
    eprintln!(
        "# recorded {}/{} commit {} -> {}",
        entry.host_key,
        entry.mode,
        &entry.commit[..entry.commit.len().min(12)],
        ledger_path.display()
    );
    match update_calibration(&calibration_path, &report, &entry) {
        Ok(Some(key)) => eprintln!(
            "# calibration cell {} N=2^{} {} S={} updated -> {}",
            key.host,
            key.n_bucket,
            key.mix,
            key.s,
            calibration_path.display()
        ),
        Ok(None) => eprintln!("# no cost-model snapshot in report; calibration store untouched"),
        Err(e) => return fail(e),
    }
    ExitCode::SUCCESS
}

/// Shared flag parsing for `history` / `trend`: ledger path, host key
/// (default: this machine), optional mode filter.
struct SeriesArgs {
    ledger_path: std::path::PathBuf,
    host: String,
    mode: Option<String>,
}

fn parse_series_args(args: &[String]) -> Result<SeriesArgs, String> {
    let mut out = SeriesArgs {
        ledger_path: default_ledger_path(),
        host: host_key(&BenchReport::current_host()),
        mode: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => out.mode = Some("quick".to_string()),
            "--full" => out.mode = Some("full".to_string()),
            "--smoke" => out.mode = Some("smoke".to_string()),
            "--mode" => match it.next() {
                Some(m) => out.mode = Some(m.to_string()),
                None => return Err("--mode requires a suite mode".to_string()),
            },
            "--host" => match it.next() {
                Some(h) => out.host = h.to_string(),
                None => return Err("--host requires a host key".to_string()),
            },
            "--ledger" => match it.next() {
                Some(p) => out.ledger_path = std::path::PathBuf::from(p),
                None => return Err("--ledger requires a path".to_string()),
            },
            other => return Err(format!("unexpected argument \"{other}\"\n{USAGE}")),
        }
    }
    Ok(out)
}

/// The `(host, mode)` series selected by the flags: the given mode, or
/// every mode this host has recorded.
fn selected_series(ledger: &Ledger, sel: &SeriesArgs) -> Vec<(String, String)> {
    match &sel.mode {
        Some(m) => vec![(sel.host.clone(), m.clone())],
        None => ledger
            .series_keys()
            .into_iter()
            .filter(|(h, _)| *h == sel.host)
            .collect(),
    }
}

fn cmd_history(args: &[String]) -> ExitCode {
    let sel = match parse_series_args(args) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let ledger = match load_ledger(&sel.ledger_path) {
        Ok(l) => l,
        Err(e) => return fail(e),
    };
    let keys = selected_series(&ledger, &sel);
    if keys.is_empty() {
        eprintln!(
            "# no ledger entries for host {} in {}",
            sel.host,
            sel.ledger_path.display()
        );
        return ExitCode::SUCCESS;
    }
    for (host, mode) in keys {
        let series = ledger.series(&host, &mode);
        print!("{}", render_history(&series, &host, &mode));
    }
    ExitCode::SUCCESS
}

fn cmd_trend(args: &[String]) -> ExitCode {
    let sel = match parse_series_args(args) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let ledger = match load_ledger(&sel.ledger_path) {
        Ok(l) => l,
        Err(e) => return fail(e),
    };
    let keys = selected_series(&ledger, &sel);
    if keys.is_empty() {
        eprintln!(
            "# no ledger entries for host {} in {}",
            sel.host,
            sel.ledger_path.display()
        );
        return ExitCode::SUCCESS;
    }
    let cfg = telemetry::TrendConfig::default();
    let mut regressions = 0;
    for (host, mode) in keys {
        let series = ledger.series(&host, &mode);
        let rows = trend_rows(&series, &cfg);
        print!("{}", render_trends(&rows, &host, &mode));
        regressions += rows.iter().filter(|r| r.regression).count();
    }
    if regressions > 0 {
        eprintln!("# FAIL: {regressions} confirmed gated step regression(s) in the ledger");
        return ExitCode::from(1);
    }
    eprintln!("# OK: no confirmed gated step regressions");
    ExitCode::SUCCESS
}

fn cmd_calibration(args: &[String]) -> ExitCode {
    let mut path = default_calibration_path();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--calibration" => match it.next() {
                Some(p) => path = std::path::PathBuf::from(p),
                None => return fail("--calibration requires a path"),
            },
            other => return fail(format!("unexpected argument \"{other}\"\n{USAGE}")),
        }
    }
    let (store, warnings) = match afmm::CalibrationStore::load(&path) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    for w in warnings {
        eprintln!("# warning: {}: {w}", path.display());
    }
    print!("{}", store.render());
    ExitCode::SUCCESS
}
