//! **afmm-perf** — the perf-lab driver: run the benchmark suite, compare
//! two reports with the noise-aware gate, refresh the checked-in baseline.
//!
//! ```text
//! afmm-perf run [--quick|--smoke] [-o out.json]   run the suite → BENCH_perf.json
//! afmm-perf compare <old.json> <new.json>         classify deltas; exit 1 on regression
//! afmm-perf baseline [--full] [-o path]           refresh bench/baseline.json
//! ```
//!
//! Exit codes follow `afmm-trace`: 0 = ok, 1 = statistically significant
//! regression, 2 = usage or I/O error. `compare` prints a fixed-width
//! verdict table; a metric only fails the gate when its bootstrap CIs
//! don't overlap *and* the median delta clears the relative-MAD threshold
//! (see `bench::harness::compare`). Reports embed structural introspection
//! snapshots, so a regression comes with the tree/plan/GPU/cost-model
//! context needed to attribute it.

use std::process::ExitCode;

use bench::harness::{compare, run_suite, BenchReport, CompareConfig, Json, SuiteConfig, Verdict};

const USAGE: &str = "usage: afmm-perf <run|compare|baseline> [...]
  run [--quick|--smoke] [-o out.json]   run the suite, write a BenchReport JSON
  compare <old.json> <new.json>         noise-aware comparison; exit 1 on regression
  baseline [--full] [-o path]           run the suite and refresh the checked-in baseline";

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("afmm-perf: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return fail(USAGE);
    };
    match cmd.as_str() {
        "run" => cmd_run(&args[1..]),
        "compare" => cmd_compare(&args[1..]),
        "baseline" => cmd_baseline(&args[1..]),
        other => fail(format!("unknown subcommand \"{other}\"\n{USAGE}")),
    }
}

fn run_and_render(cfg: &SuiteConfig) -> BenchReport {
    eprintln!(
        "# afmm-perf: {} suite ({} scenarios pending, reps={}, warmup={})",
        cfg.mode, 7, cfg.reps, cfg.warmup
    );
    run_suite(cfg, &mut |line| eprintln!("# {line}"))
}

fn write_report(report: &BenchReport, path: &std::path::Path) -> Result<(), String> {
    std::fs::write(path, report.to_json()).map_err(|e| format!("write {}: {e}", path.display()))
}

fn load_report(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    BenchReport::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut cfg = SuiteConfig::full();
    let mut output = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => cfg = SuiteConfig::quick(),
            "--smoke" => cfg = SuiteConfig::smoke(),
            "--full" => cfg = SuiteConfig::full(),
            "-o" | "--output" => match it.next() {
                Some(p) => output = Some(std::path::PathBuf::from(p)),
                None => return fail("-o requires a path"),
            },
            other => return fail(format!("unexpected argument \"{other}\"\n{USAGE}")),
        }
    }
    let report = run_and_render(&cfg);
    let path = output.unwrap_or_else(|| bench::out_path("BENCH_perf.json"));
    if let Err(e) = write_report(&report, &path) {
        return fail(e);
    }
    eprintln!(
        "# wrote {} ({} scenarios, commit {})",
        path.display(),
        report.scenarios.len(),
        &report.commit[..report.commit.len().min(12)]
    );
    ExitCode::SUCCESS
}

fn cmd_compare(args: &[String]) -> ExitCode {
    let [old_path, new_path] = args else {
        return fail(USAGE);
    };
    let (old, new) = match (load_report(old_path), load_report(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => return fail(e),
    };
    let result = compare(&old, &new, &CompareConfig::default());
    print!("{}", result.render());
    let (om, nm) = bench::harness::compare::modes(&old, &new);
    if om != nm {
        eprintln!("# note: comparing a \"{om}\" baseline against a \"{nm}\" report");
    }
    if result.regressions() > 0 {
        if result
            .rows
            .iter()
            .any(|r| r.scenario == "dag_pipeline" && r.gate && r.verdict == Verdict::Regressed)
        {
            print_sched_attribution(&old, &new);
        }
        eprintln!(
            "# FAIL: {} statistically significant regression(s) vs {old_path}",
            result.regressions()
        );
        return ExitCode::from(1);
    }
    eprintln!("# OK: no significant regressions vs {old_path}");
    ExitCode::SUCCESS
}

/// A gated `dag_pipeline` regression says the scheduler lost time — this
/// says *where*: compare the two reports' scheduler-x-ray snapshots and
/// print the phase / cause / lane shifts of the realized critical path.
fn print_sched_attribution(old: &BenchReport, new: &BenchReport) {
    let sched = |r: &BenchReport| -> Option<Json> {
        r.scenario("dag_pipeline")
            .and_then(|s| s.snapshot.get("sched"))
            .cloned()
    };
    let (Some(o), Some(n)) = (sched(old), sched(new)) else {
        eprintln!("# dag_pipeline regressed; no sched snapshot on one side — cannot attribute");
        return;
    };
    let num = |j: &Json, k: &str| j.get(k).and_then(Json::as_f64).unwrap_or(f64::NAN);
    eprintln!(
        "# dag_pipeline regressed — critical-path attribution (old -> new, {} cores + {} lanes):",
        num(&n, "cores"),
        num(&n, "gpu_lanes")
    );
    eprintln!(
        "#   makespan {:.4e}s -> {:.4e}s   crit len {} -> {}   lane idle {:.1}% -> {:.1}%   overlap {:.1}% -> {:.1}%",
        num(&o, "makespan_s"),
        num(&n, "makespan_s"),
        num(&o, "critpath_len"),
        num(&n, "critpath_len"),
        100.0 * num(&o, "lane_idle_frac"),
        100.0 * num(&n, "lane_idle_frac"),
        100.0 * num(&o, "pipeline_overlap"),
        100.0 * num(&n, "pipeline_overlap"),
    );
    let pair = |label: &str, ov: f64, nv: f64| {
        let marker = if (nv - ov).abs() > 0.05 {
            "  <-- moved"
        } else {
            ""
        };
        eprintln!(
            "#   {label:<22} {:>6.1}% -> {:>6.1}%{marker}",
            100.0 * ov,
            100.0 * nv
        );
    };
    for k in ["dependency_frac", "starvation_frac", "serialization_frac"] {
        pair(k, num(&o, k), num(&n, k));
    }
    let phase_frac = |j: &Json, p: &str| {
        j.get("crit_phase_frac")
            .and_then(|x| x.get(p))
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN)
    };
    for p in ["p2m", "m2m", "m2l", "l2l", "l2p", "p2p"] {
        pair(
            &format!("crit phase {p}"),
            phase_frac(&o, p),
            phase_frac(&n, p),
        );
    }
}

/// Default location of the checked-in baseline: `bench/baseline.json` at
/// the workspace root (resolved from this crate's manifest dir so the
/// command works from any CWD inside the repo).
fn default_baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("bench/baseline.json")
}

fn cmd_baseline(args: &[String]) -> ExitCode {
    // The baseline is what CI's quick run gates against, so it is recorded
    // at quick-mode sizes unless --full is given.
    let mut cfg = SuiteConfig::quick();
    let mut output = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => cfg = SuiteConfig::full(),
            "--smoke" => cfg = SuiteConfig::smoke(),
            "-o" | "--output" => match it.next() {
                Some(p) => output = Some(std::path::PathBuf::from(p)),
                None => return fail("-o requires a path"),
            },
            other => return fail(format!("unexpected argument \"{other}\"\n{USAGE}")),
        }
    }
    let report = run_and_render(&cfg);
    let path = output.unwrap_or_else(default_baseline_path);
    if let Some(dir) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            return fail(format!("create {}: {e}", dir.display()));
        }
    }
    if let Err(e) = write_report(&report, &path) {
        return fail(e);
    }
    eprintln!(
        "# baseline refreshed: {} ({} mode, commit {})",
        path.display(),
        cfg.mode,
        &report.commit[..report.commit.len().min(12)]
    );
    ExitCode::SUCCESS
}
