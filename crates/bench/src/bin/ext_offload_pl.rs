//! **Extension (paper §VIII.E)** — the paper's proposed fix for unbalanced
//! nodes, implemented: "The way forward in such an unbalanced situation is
//! to move additional work to the GPU... This can include the P2M expansion
//! formation and L2P expansion evaluation."
//!
//! For each CPU/GPU combination the harness sweeps S with and without the
//! P2M/L2P offload and reports the best compute time of each mode. The
//! CPU-starved configurations (few cores, many GPUs) gain the most; the
//! balanced ones barely move — exactly the situation the paper describes
//! for its 4C4G run.

use afmm::{time_step, time_step_policy, ExecPolicy, FmmEngine, FmmParams, HeteroNode};
use bench::{fmt_s, print_tsv, s_grid};
use fmm_math::{GravityKernel, Kernel};

fn main() {
    bench::cli::no_args("ext_offload_pl");
    let n = 100_000;
    let bodies = nbody::plummer(n, 1.0, 1.0, 71);
    let mut engine = FmmEngine::new(
        GravityKernel::default(),
        FmmParams::default(),
        &bodies.pos,
        128,
    );
    let flops = engine.kernel.op_flops(engine.expansion_ops());
    let grid = s_grid(32, 4096, 4);

    let configs: [(usize, usize); 6] = [(2, 8), (4, 4), (4, 8), (10, 1), (10, 2), (10, 4)];
    let mut rows = Vec::new();
    for &(cores, gpus) in &configs {
        let node = HeteroNode::system_a(cores, gpus);
        let mut best_base = (0usize, f64::INFINITY);
        let mut best_off = (0usize, f64::INFINITY);
        for &s in &grid {
            engine.rebuild(&bodies.pos, s);
            engine.refresh_lists();
            let base = time_step(engine.tree(), engine.lists(), &flops, &node)
                .unwrap()
                .compute();
            let off = time_step_policy(
                engine.tree(),
                engine.lists(),
                &flops,
                &node,
                ExecPolicy {
                    offload_pl: true,
                    ..Default::default()
                },
            )
            .unwrap()
            .compute();
            if base < best_base.1 {
                best_base = (s, base);
            }
            if off < best_off.1 {
                best_off = (s, off);
            }
        }
        rows.push(vec![
            format!("{cores}C_{gpus}G"),
            best_base.0.to_string(),
            fmt_s(best_base.1),
            best_off.0.to_string(),
            fmt_s(best_off.1),
            format!("{:+.1}%", 100.0 * (best_off.1 / best_base.1 - 1.0)),
        ]);
    }
    print_tsv(
        &format!(
            "Extension §VIII.E: best compute time with/without P2M+L2P GPU offload \
             (Plummer N={n}); CPU-starved configs gain most"
        ),
        &[
            "config",
            "S*_base",
            "best_base_s",
            "S*_offload",
            "best_offload_s",
            "change",
        ],
        &rows,
    );
}
