//! **Fig 7** — heterogeneous-node speedup as a function of S for six
//! CPU-core / GPU combinations, relative to the best single-core serial run
//! (expansion *and* direct work on one core, at the serial-optimal S).
//!
//! The paper's headline: ≈98× with 10 cores + 4 GPUs on 1M bodies; it also
//! highlights the *unbalanced-node* inversion — 10C2G (64×) beats 4C4G
//! (57×) because a weak CPU side forces work onto the GPUs as
//! asymptotically inferior direct interactions. This harness runs at the
//! paper's full 1M-body scale (timing is virtual, so no GPU is needed);
//! override with `fig7_hetero_speedup [bodies]`.

use afmm::HeteroNode;
use bench::{default_flops, fmt_s, print_tsv, s_grid, time_tree};
use fmm_math::GravityKernel;
use octree::{build_adaptive, BuildParams};

fn main() {
    let mut args = bench::cli::Args::parse("fig7_hetero_speedup", "[bodies]");
    let n = args.opt_usize_or_exit("bodies", 1_000_000);
    args.finish_or_exit();
    let bodies = nbody::plummer(n, 1.0, 1.0, 46);
    let flops = default_flops(&GravityKernel::default());
    let grid = s_grid(8, 4096, 3);

    // Serial baseline: best S for everything on one core.
    let serial = HeteroNode::serial();
    let mut t_serial = f64::INFINITY;
    let mut s_serial = 0;
    for &s in &grid {
        let tree = build_adaptive(&bodies.pos, BuildParams::with_s(s));
        let t = time_tree(&tree, &flops, &serial).0.compute();
        if t < t_serial {
            t_serial = t;
            s_serial = s;
        }
    }
    println!("# serial baseline: S={s_serial}, t={:.4}s", t_serial);

    let configs: [(usize, usize); 6] = [(4, 1), (10, 1), (4, 2), (10, 2), (4, 4), (10, 4)];
    let mut rows = Vec::new();
    let mut peaks = Vec::new();
    for &(cores, gpus) in &configs {
        let node = HeteroNode::system_a(cores, gpus);
        let mut peak = (0usize, 0.0f64);
        for &s in &grid {
            let tree = build_adaptive(&bodies.pos, BuildParams::with_s(s));
            let timing = time_tree(&tree, &flops, &node).0;
            let speedup = t_serial / timing.compute();
            rows.push(vec![
                format!("{cores}C_{gpus}G"),
                s.to_string(),
                fmt_s(timing.t_cpu),
                fmt_s(timing.t_gpu),
                format!("{speedup:.2}"),
            ]);
            if speedup > peak.1 {
                peak = (s, speedup);
            }
        }
        peaks.push(format!(
            "{cores}C_{gpus}G: peak {:.1}x at S={}",
            peak.1, peak.0
        ));
    }
    print_tsv(
        &format!(
            "Fig 7: heterogeneous speedup vs S (Plummer N={n}) relative to 1-core serial; \
             paper peaks: 10C4G=98x, 10C2G=64x, 4C4G=57x"
        ),
        &["config", "S", "t_cpu_s", "t_gpu_s", "speedup"],
        &rows,
    );
    println!("# peaks:");
    for p in peaks {
        println!("#   {p}");
    }
}
