//! **afmm-mem** — the memory observatory's CLI: runs the same seeded
//! steady-state workload as the `memory_profile` perf-lab scenario and
//! renders what the two measurement systems see:
//!
//! * the **allocator view** (requires the `memprof` feature, which installs
//!   [`telemetry::CountingAlloc`] here as the global allocator): process
//!   totals, peak live bytes, and the per-scope attribution table built by
//!   [`telemetry::AllocScope`];
//! * the **structural view** (always available): `heap_bytes()` walks over
//!   bodies, octree, execution plan, and recorder — capacity-granular
//!   accounting that works with the stock allocator.
//!
//! ```text
//! afmm-mem report    [n] [steps]   # both views + zero-alloc gate, writes BENCH_mem.json
//! afmm-mem scopes    [n] [steps]   # per-scope allocation table only
//! afmm-mem footprint [n]           # structural footprint breakdown only
//! ```
//!
//! `report` enforces the steady-state invariant the perf lab gates on: a
//! warm cached-plan step performs **zero** allocations inside the `rebin`
//! and `plan.refresh` scopes. Like the `memory_profile` scenario, the
//! gate is measured over frozen-position steps (guaranteed cached-plan
//! path at any scale) after a motion phase that reports the dynamic
//! allocation profile. Exit codes follow the suite convention:
//! 0 = ok, 1 = gate violation, 2 = usage or I/O error. Without the
//! `memprof` feature the allocator view reports as disabled, the gate is
//! skipped, and only the structural view is shown.

use std::fmt::Write as _;

use afmm::FmmEngine;
use afmm::FmmParams;
use fmm_math::GravityKernel;
use geom::Vec3;
use telemetry::memprof;

/// Install the counting allocator so `memprof::counting()` lights up.
#[cfg(feature = "memprof")]
#[global_allocator]
static ALLOC: telemetry::CountingAlloc = telemetry::CountingAlloc;

/// Leaf capacity, matching the `memory_profile` scenario.
const S: usize = 96;
/// Workload seed, matching the perf lab's `cfg.seed + 9` for `memory_profile`.
const SEED: u64 = 7 + 9;

/// A warm engine plus the positions its plan was warmed on.
struct Workload {
    engine: FmmEngine<GravityKernel>,
    pos: Vec<Vec3>,
    mass: Vec<f64>,
}

/// Build the steady-state workload: a Plummer sphere under a uniform
/// contraction mild enough that no visible cell flips emptiness, so every
/// plan refresh takes the allocation-free patch path once warm.
fn warm_workload(n: usize, warmup: usize) -> Workload {
    let b = nbody::plummer(n, 1.0, 1.0, SEED);
    let mut engine = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &b.pos, S);
    let mut pos = b.pos.clone();
    for _ in 0..warmup.max(2) {
        step(&mut engine, &mut pos, &b.mass);
    }
    Workload {
        engine,
        pos,
        mass: b.mass,
    }
}

fn step(engine: &mut FmmEngine<GravityKernel>, pos: &mut Vec<Vec3>, mass: &[f64]) {
    for p in pos.iter_mut() {
        *p *= 0.9995;
    }
    engine.rebin(pos);
    std::hint::black_box(engine.solve(pos, mass));
}

/// `1234567` → `"1.18 MiB"` — a human-scaled byte count.
fn human(bytes: u64) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut v = bytes as f64;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.2} {}", UNITS[u])
    }
}

/// Run `steps` measured iterations with scope/peak counters reset at the
/// start; returns the measured global stats.
fn measure(w: &mut Workload, steps: usize) -> telemetry::GlobalStats {
    memprof::reset_scopes();
    memprof::reset_peak();
    for _ in 0..steps.max(1) {
        step(&mut w.engine, &mut w.pos, &w.mass);
    }
    memprof::global()
}

fn print_scope_table(steps: usize) {
    let scopes = memprof::scopes();
    if scopes.is_empty() {
        println!("  (no scope activations recorded)");
        return;
    }
    println!(
        "  {:<14} {:>10} {:>14} {:>14} {:>14}",
        "scope", "allocs", "alloc bytes", "freed bytes", "peak live"
    );
    for (name, sc) in scopes {
        println!(
            "  {:<14} {:>10} {:>14} {:>14} {:>14}",
            name,
            sc.allocs,
            human(sc.alloc_bytes),
            human(sc.free_bytes),
            human(sc.peak_live_bytes),
        );
    }
    println!("  ({steps} measured steps; counts are totals across all of them)");
}

/// Structural footprint rows: (label, bytes). The divisor trio for the
/// per-unit lines is returned alongside.
fn footprint_rows(w: &Workload) -> (Vec<(&'static str, usize)>, usize, usize, usize) {
    let tree_bytes = w.engine.tree().heap_bytes();
    let bodies_bytes = w.pos.capacity() * std::mem::size_of::<Vec3>()
        + w.mass.capacity() * std::mem::size_of::<f64>();
    let plan_bytes = w.engine.heap_bytes() - tree_bytes;
    let rows = vec![
        ("bodies", bodies_bytes),
        ("octree", tree_bytes),
        ("plan+solve", plan_bytes),
    ];
    let nodes = w.engine.tree().num_nodes();
    let entries = w.engine.lists().num_m2l() + w.engine.lists().num_p2p_pairs();
    (rows, w.pos.len(), nodes, entries)
}

fn print_footprint(w: &Workload) {
    let (rows, bodies, nodes, entries) = footprint_rows(w);
    let total: usize = rows.iter().map(|(_, b)| b).sum();
    println!("# structural footprint (capacity granularity)");
    for (label, bytes) in &rows {
        println!("  {label:<12} {:>12}", human(*bytes as u64));
    }
    println!("  {:<12} {:>12}", "total", human(total as u64));
    println!(
        "  per body {:.1} B ({bodies} bodies), per node {:.1} B ({nodes} nodes), \
         per list entry {:.1} B ({entries} entries)",
        total as f64 / bodies.max(1) as f64,
        w.engine.tree().heap_bytes() as f64 / nodes.max(1) as f64,
        (w.engine.heap_bytes() - w.engine.tree().heap_bytes()) as f64 / entries.max(1) as f64,
    );
    if memprof::counting() {
        let live = memprof::global().live_bytes;
        println!(
            "  allocator live bytes: {} (structural total covers {:.0}% of process live)",
            human(live),
            100.0 * total as f64 / live.max(1) as f64
        );
    }
}

fn cmd_report(n: usize, steps: usize) -> i32 {
    let mut w = warm_workload(n, 2);
    let g = measure(&mut w, steps);
    println!("# afmm-mem report: n={n}, s={S}, {steps} steady-state steps");
    if memprof::counting() {
        println!(
            "# allocator view: {} allocs / {} frees, {} allocated, peak live {}",
            g.allocs,
            g.frees,
            human(g.alloc_bytes),
            human(g.peak_live_bytes)
        );
        print_scope_table(steps);
    } else {
        println!("# allocator view disabled (build with --features memprof); gate skipped");
    }
    print_footprint(&w);

    // Gate phase: frozen positions, so every refresh provably stays on the
    // cached-plan Clean path (under motion a legitimate emptiness-flip
    // rebuild would allocate). Rebin still re-sorts every body.
    memprof::reset_scopes();
    for _ in 0..steps.max(1) {
        w.engine.rebin(&w.pos);
        std::hint::black_box(w.engine.solve(&w.pos, &w.mass));
    }
    let rebin = memprof::scope_stats("rebin").unwrap_or_default();
    let refresh = memprof::scope_stats("plan.refresh").unwrap_or_default();
    let gate_allocs = rebin.allocs + refresh.allocs;
    let (rows, bodies, nodes, entries) = footprint_rows(&w);
    let total: usize = rows.iter().map(|(_, b)| b).sum();
    let mut doc = String::new();
    let _ = write!(
        doc,
        "{{\n  \"config\": {{\"n\": {n}, \"s\": {S}, \"steps\": {steps}}},\n  \
         \"counting\": {},\n  \
         \"global\": {{\"allocs\": {}, \"frees\": {}, \"alloc_bytes\": {}, \
         \"peak_live_bytes\": {}}},\n  \
         \"gate\": {{\"steady_gate_allocs\": {gate_allocs}}},\n  \"scopes\": {{",
        memprof::counting(),
        g.allocs,
        g.frees,
        g.alloc_bytes,
        g.peak_live_bytes,
    );
    for (i, (name, sc)) in memprof::scopes().iter().enumerate() {
        let _ = write!(
            doc,
            "{}\n    \"{name}\": {{\"allocs\": {}, \"alloc_bytes\": {}, \
             \"free_bytes\": {}, \"peak_live_bytes\": {}}}",
            if i == 0 { "" } else { "," },
            sc.allocs,
            sc.alloc_bytes,
            sc.free_bytes,
            sc.peak_live_bytes,
        );
    }
    let _ = write!(
        doc,
        "\n  }},\n  \"footprint\": {{\"bodies_bytes\": {}, \"tree_bytes\": {}, \
         \"plan_bytes\": {}, \"total_bytes\": {total}, \"bodies\": {bodies}, \
         \"nodes\": {nodes}, \"list_entries\": {entries}}}\n}}\n",
        rows[0].1, rows[1].1, rows[2].1,
    );
    let path = bench::out_path("BENCH_mem.json");
    if let Err(e) = std::fs::write(&path, &doc) {
        eprintln!("# FAIL: write {}: {e}", path.display());
        return 2;
    }
    println!("# report: {}", path.display());

    if memprof::counting() {
        if gate_allocs > 0 {
            eprintln!(
                "# GATE FAIL: {gate_allocs} allocation(s) inside rebin/plan.refresh \
                 during steady state (expected 0: warm scratch buffers cover both)"
            );
            return 1;
        }
        println!("# zero-alloc steady-state gate holds (rebin + plan.refresh: 0 allocs)");
    }
    0
}

fn cmd_scopes(n: usize, steps: usize) -> i32 {
    if !memprof::counting() {
        eprintln!("# allocator view disabled: build with --features memprof to see scopes");
        return 0;
    }
    let mut w = warm_workload(n, 2);
    measure(&mut w, steps);
    println!("# afmm-mem scopes: n={n}, {steps} steady-state steps");
    print_scope_table(steps);
    0
}

fn cmd_footprint(n: usize) -> i32 {
    let w = warm_workload(n, 2);
    println!("# afmm-mem footprint: n={n}, s={S} (warm steady state)");
    print_footprint(&w);
    0
}

fn main() {
    const USAGE: &str = "<report|scopes|footprint> [n] [steps]";
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().cloned() else {
        eprintln!("afmm-mem: missing subcommand\nusage: afmm-mem {USAGE}");
        std::process::exit(2);
    };
    let mut args = bench::cli::Args::from_vec("afmm-mem", USAGE, raw[1..].to_vec());
    let n = args.opt_usize_or_exit("n", 2000);
    let code = match cmd.as_str() {
        "report" => {
            let steps = args.opt_usize_or_exit("steps", 8);
            args.finish_or_exit();
            cmd_report(n, steps)
        }
        "scopes" => {
            let steps = args.opt_usize_or_exit("steps", 8);
            args.finish_or_exit();
            cmd_scopes(n, steps)
        }
        "footprint" => {
            args.finish_or_exit();
            cmd_footprint(n)
        }
        other => {
            eprintln!("afmm-mem: unknown subcommand \"{other}\"\nusage: afmm-mem {USAGE}");
            std::process::exit(2);
        }
    };
    std::process::exit(code);
}
