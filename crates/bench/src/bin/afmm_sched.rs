//! **afmm-sched** — the scheduler x-ray toolchain: inspect the per-task DAG
//! traces an `ExecPolicy { mode: Dag, trace: true }` run records.
//!
//! ```text
//! afmm-sched demo    [-o trace.jsonl] [--steps N] [--bodies N] [--cores C] [--gpus G]
//!                                          record a small traced run
//! afmm-sched explain <trace.jsonl> [--step N]
//!                                          critical path + attribution table
//! afmm-sched gantt   <trace.jsonl> [-o out.json]
//!                                          lane-track Chrome trace export
//! ```
//!
//! Exit codes: 0 = ok; 1 = malformed trace, no scheduler x-ray in the
//! trace, critical-path sum disagreeing with the recorded makespan (beyond
//! 1e-9 relative), or attribution fractions not summing to 1; 2 = usage.
//!
//! `explain` is also the CI reconciliation gate: it recomputes the critical
//! path's duration sum from the per-task `sched.task` spans and cross-checks
//! it against the `sched.critpath` summary the run recorded — a mismatch
//! means the trace (or the analyzer) is lying about where the makespan went.

use std::process::ExitCode;

use afmm::{ExecPolicy, FmmParams, HeteroNode, LbConfig, SchedMode, Strategy, StrategyTracker};
use fmm_math::GravityKernel;
use telemetry::{ChromeTraceExporter, EventRecord, JsonlSink, Recorder};

const USAGE: &str = "usage: afmm-sched <demo|explain|gantt> [...]
  demo    [-o trace.jsonl] [--steps N] [--bodies N] [--cores C] [--gpus G]
                                         record a traced DAG-scheduled run
  explain <trace.jsonl> [--step N]       print critical path + attribution
  gantt   <trace.jsonl> [-o out.json]    export scheduler-lane Chrome trace";

/// Relative tolerance for the crit-sum vs makespan reconciliation and for
/// the attribution-fraction sum checks. The analyzer's abutting invariant
/// telescopes exactly; only float rounding over ~1e3 tasks remains.
const RECONCILE_TOL: f64 = 1e-9;

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("afmm-sched: {msg}");
    ExitCode::from(2)
}

/// Data problems (malformed trace, missing x-ray, failed reconciliation)
/// exit 1 so CI can distinguish them from usage errors.
fn bad_trace(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("afmm-sched: {msg}");
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return fail(USAGE);
    };
    match cmd.as_str() {
        "demo" => cmd_demo(&args[1..]),
        "explain" => cmd_explain(&args[1..]),
        "gantt" => cmd_gantt(&args[1..]),
        other => fail(format!("unknown subcommand \"{other}\"\n{USAGE}")),
    }
}

fn cmd_demo(args: &[String]) -> ExitCode {
    let mut output = None;
    let mut steps = 6usize;
    let mut bodies = 4_000usize;
    let mut cores = 10usize;
    let mut gpus = 4usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> Result<usize, ExitCode> {
            it.next()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&v| v > 0)
                .ok_or_else(|| fail(format!("{name} requires a positive integer")))
        };
        match a.as_str() {
            "-o" | "--output" => match it.next() {
                Some(p) => output = Some(std::path::PathBuf::from(p)),
                None => return fail("-o requires a path"),
            },
            "--steps" => match num("--steps") {
                Ok(v) => steps = v,
                Err(e) => return e,
            },
            "--bodies" => match num("--bodies") {
                Ok(v) => bodies = v,
                Err(e) => return e,
            },
            "--cores" => match num("--cores") {
                Ok(v) => cores = v,
                Err(e) => return e,
            },
            "--gpus" => match num("--gpus") {
                Ok(v) => gpus = v,
                Err(e) => return e,
            },
            other => return fail(format!("unexpected argument \"{other}\"\n{USAGE}")),
        }
    }
    let path = output.unwrap_or_else(|| bench::out_path("BENCH_sched_trace.jsonl"));
    let rec = Recorder::enabled();
    match JsonlSink::create(&path) {
        Ok(sink) => rec.set_sink(sink),
        Err(e) => return fail(format!("create {}: {e}", path.display())),
    }
    let b = nbody::plummer(bodies, 1.0, 1.0, 1213);
    let mut tracker = StrategyTracker::with_telemetry(
        GravityKernel::default(),
        FmmParams::default(),
        HeteroNode::system_a(cores, gpus),
        Strategy::Full,
        LbConfig::default(),
        &b.pos,
        None,
        rec.clone(),
    );
    tracker.set_exec_policy(ExecPolicy {
        mode: SchedMode::Dag,
        trace: true,
        ..Default::default()
    });
    for step in 0..steps {
        if let Err(e) = tracker.step(&b.pos) {
            return fail(format!("step {step}: {e}"));
        }
    }
    rec.flush();
    eprintln!(
        "# recorded {steps} traced steps (N={bodies}, {cores}C{gpus}G) to {}",
        path.display()
    );
    ExitCode::SUCCESS
}

fn load(path: &str) -> Result<Vec<EventRecord>, String> {
    telemetry::read_trace(path).map_err(|e| format!("{path}: {e}"))
}

/// The `sched.critpath` summary event of the chosen step, or the latest one.
fn pick_step(records: &[EventRecord], want: Option<u64>) -> Option<&EventRecord> {
    let mut found = None;
    for r in records.iter().filter(|r| r.name == "sched.critpath") {
        match want {
            Some(s) if r.step == s => return Some(r),
            Some(_) => {}
            None => found = Some(r),
        }
    }
    found
}

fn cmd_explain(args: &[String]) -> ExitCode {
    let mut input = None;
    let mut step = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--step" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(s) => step = Some(s),
                None => return fail("--step requires a step number"),
            },
            _ if input.is_none() => input = Some(a.clone()),
            _ => return fail(format!("unexpected argument \"{a}\"\n{USAGE}")),
        }
    }
    let Some(input) = input else {
        return fail(USAGE);
    };
    let records = match load(&input) {
        Ok(r) => r,
        Err(e) => return bad_trace(e),
    };
    let Some(summary) = pick_step(&records, step) else {
        return bad_trace(match step {
            Some(s) => format!("{input}: no sched.critpath record at step {s}"),
            None => format!(
                "{input}: no scheduler x-ray in trace — record one with \
                 ExecPolicy {{ mode: Dag, trace: true }} (afmm-sched demo)"
            ),
        });
    };
    let step = summary.step;
    let f = |k: &str| summary.field_f64(k).unwrap_or(f64::NAN);
    let u = |k: &str| summary.field_u64(k).unwrap_or(0);
    let makespan = f("makespan");
    let recorded_sum = f("sum");
    let len = u("len") as usize;

    // The step's per-task slices, and the critical path in walk order.
    let tasks: Vec<&EventRecord> = records
        .iter()
        .filter(|r| r.name == "sched.task" && r.step == step)
        .collect();
    let mut crit: Vec<(i64, &EventRecord)> = tasks
        .iter()
        .filter_map(|r| {
            let c = r.field_i64("crit")?;
            (c >= 0).then_some((c, *r))
        })
        .collect();
    crit.sort_by_key(|(c, _)| *c);
    if crit.len() != len || crit.iter().enumerate().any(|(i, (c, _))| *c != i as i64) {
        return bad_trace(format!(
            "{input}: step {step} carries {} on-path sched.task slices but the \
             summary says the critical path has {len} — malformed trace",
            crit.len()
        ));
    }

    println!("scheduler x-ray — step {step} ({input})");
    println!(
        "  pass: {}   node: {} cores + {} GPU lanes   tasks: {}",
        summary.field_str("pass").unwrap_or("?"),
        u("cores"),
        u("gpu_lanes"),
        tasks.len()
    );
    println!(
        "  makespan: {makespan:.6e} s   lane idle: {:.1}%   CPU/GPU overlap: {:.1}%",
        100.0 * f("lane_idle_frac"),
        100.0 * f("pipeline_overlap")
    );

    println!("\ncritical path ({len} tasks):");
    println!(
        "  {:>4} {:>6} {:<6} {:<7} {:>12} {:>12} {:>12}",
        "#", "task", "phase", "lane", "start", "finish", "dur"
    );
    let mut crit_sum = 0.0f64;
    for (i, (_, r)) in crit.iter().enumerate() {
        let dur = r.dur_s.unwrap_or(0.0);
        let start = r.field_f64("start").unwrap_or(f64::NAN);
        crit_sum += dur;
        println!(
            "  {:>4} {:>6} {:<6} {:<7} {:>12.6e} {:>12.6e} {:>12.6e}",
            i,
            r.field_u64("task").unwrap_or(0),
            r.field_str("phase").unwrap_or("?"),
            r.field_str("lane").unwrap_or("?"),
            start,
            start + dur,
            dur
        );
    }

    println!("\nattribution (fractions of the critical path):");
    println!(
        "  by cause:  dependency {:.1}%   CPU starvation {:.1}%   GPU serialization {:.1}%",
        100.0 * f("dep_frac"),
        100.0 * f("starve_frac"),
        100.0 * f("serial_frac")
    );
    println!(
        "  by lane:   CPU {:.1}%   GPU {:.1}%",
        100.0 * f("cpu_frac"),
        100.0 * f("gpu_frac")
    );
    let phases = ["p2m", "m2m", "m2l", "l2l", "l2p", "p2p"];
    let phase_line: Vec<String> = phases
        .iter()
        .map(|p| format!("{p} {:.1}%", 100.0 * f(&format!("frac_{p}"))))
        .collect();
    println!("  by phase:  {}", phase_line.join("   "));

    let lanes: Vec<&EventRecord> = records
        .iter()
        .filter(|r| r.name == "sched.lane" && r.step == step)
        .collect();
    if !lanes.is_empty() {
        println!("\nlane utilization:");
        for l in lanes {
            println!(
                "  {:<7} util {:>5.1}%   {:>5} tasks   {:>3} idle gaps (max {:.3e} s)",
                l.field_str("lane").unwrap_or("?"),
                100.0 * l.field_f64("util").unwrap_or(f64::NAN),
                l.field_u64("tasks").unwrap_or(0),
                l.field_u64("idle_gaps").unwrap_or(0),
                l.field_f64("idle_max").unwrap_or(f64::NAN)
            );
        }
    }

    // ---- reconciliation gate ----
    let scale = makespan.abs().max(1e-12);
    if !makespan.is_finite() || (crit_sum - makespan).abs() > RECONCILE_TOL * scale + 1e-15 {
        return bad_trace(format!(
            "step {step}: critical-path durations sum to {crit_sum:.12e} but the \
             recorded makespan is {makespan:.12e} — reconciliation failed"
        ));
    }
    if (recorded_sum - crit_sum).abs() > RECONCILE_TOL * scale + 1e-15 {
        return bad_trace(format!(
            "step {step}: recomputed crit sum {crit_sum:.12e} disagrees with the \
             recorded sum {recorded_sum:.12e}"
        ));
    }
    let families: [(&str, f64); 3] = [
        ("cause", f("dep_frac") + f("starve_frac") + f("serial_frac")),
        ("lane", f("cpu_frac") + f("gpu_frac")),
        (
            "phase",
            phases.iter().map(|p| f(&format!("frac_{p}"))).sum::<f64>(),
        ),
    ];
    for (family, total) in families {
        if (total - 1.0).abs() > RECONCILE_TOL {
            return bad_trace(format!(
                "step {step}: {family} attribution fractions sum to {total:.12} (want 1.0)"
            ));
        }
    }
    println!(
        "\nreconciled: crit-path sum {crit_sum:.6e} s == makespan (within {RECONCILE_TOL:.0e} \
         relative); all attribution families sum to 1"
    );
    ExitCode::SUCCESS
}

fn cmd_gantt(args: &[String]) -> ExitCode {
    let mut input = None;
    let mut output = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--output" => match it.next() {
                Some(p) => output = Some(p.clone()),
                None => return fail("-o requires a path"),
            },
            _ if input.is_none() => input = Some(a.clone()),
            _ => return fail(format!("unexpected argument \"{a}\"\n{USAGE}")),
        }
    }
    let Some(input) = input else {
        return fail(USAGE);
    };
    let records = match load(&input) {
        Ok(r) => r,
        Err(e) => return bad_trace(e),
    };
    let slices = records.iter().filter(|r| r.name == "sched.task").count();
    if slices == 0 {
        return bad_trace(format!(
            "{input}: no sched.task spans — nothing to chart (run with \
             ExecPolicy {{ mode: Dag, trace: true }})"
        ));
    }
    let json = ChromeTraceExporter::export(&records);
    debug_assert!(telemetry::json_syntax_ok(&json));
    // Default output goes through `bench::out_path` (honoring
    // `$BENCH_OUT_DIR`) so CI runs land artifacts in the scratch dir
    // instead of the working tree; `-o` still overrides verbatim.
    let out_path = output.map(std::path::PathBuf::from).unwrap_or_else(|| {
        let stem = std::path::Path::new(&input)
            .file_name()
            .map(|f| f.to_string_lossy().into_owned())
            .unwrap_or_else(|| input.clone());
        bench::out_path(&format!("{}.gantt.json", stem.trim_end_matches(".jsonl")))
    });
    if let Err(e) = std::fs::write(&out_path, &json) {
        return fail(format!("write {}: {e}", out_path.display()));
    }
    eprintln!(
        "# exported {slices} task slices ({} records total) to {}; the \
         \"scheduler lanes\" process renders the per-lane Gantt chart in Perfetto",
        records.len(),
        out_path.display()
    );
    ExitCode::SUCCESS
}
