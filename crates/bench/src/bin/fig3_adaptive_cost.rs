//! **Fig 3** — CPU and GPU cost as a function of S on an *adaptive*
//! decomposition: both curves vary gradually, so the crossover (the balanced
//! operating point) can be approached smoothly. Contrast with Fig 4.
//!
//! Workload: Plummer sphere (the paper's main distribution), heterogeneous
//! node with 10 CPU cores and 4 GPUs.

use bench::{default_flops, fmt_s, print_tsv, s_grid, time_tree};
use fmm_math::GravityKernel;
use octree::{build_adaptive, BuildParams};

fn main() {
    bench::cli::no_args("fig3_adaptive_cost");
    let n = 50_000;
    let bodies = nbody::plummer(n, 1.0, 1.0, 42);
    let node = afmm::HeteroNode::system_a(10, 4);
    let flops = default_flops(&GravityKernel::default());

    let mut rows = Vec::new();
    for s in s_grid(8, 4096, 4) {
        let tree = build_adaptive(&bodies.pos, BuildParams::with_s(s));
        let (timing, counts, _) = time_tree(&tree, &flops, &node);
        rows.push(vec![
            s.to_string(),
            fmt_s(timing.t_cpu),
            fmt_s(timing.t_gpu),
            fmt_s(timing.compute()),
            counts.p2p_interactions.to_string(),
            counts.m2l_ops.to_string(),
            tree.visible_leaves().len().to_string(),
        ]);
    }
    print_tsv(
        &format!(
            "Fig 3: adaptive-decomposition cost vs S (Plummer N={n}, 10 cores, 4 GPUs) — \
             gradual curves, smooth crossover"
        ),
        &[
            "S",
            "t_cpu_s",
            "t_gpu_s",
            "compute_s",
            "p2p_pairs",
            "m2l_ops",
            "leaves",
        ],
        &rows,
    );
}
