//! **Figs 8 & 9 and Table II** — the paper's dynamic-workload experiment: a
//! warm Plummer sphere initially confined to 1/64th of the simulation space
//! expands across the domain and falls back under self-gravity while three
//! load-balancing strategies run:
//!
//! 1. optimal S at the outset, tree frozen afterwards;
//! 2. initial search + `Enforce_S` on >5% regressions;
//! 3. the full Search/Incremental/Observation machine with
//!    `FineGrainedOptimize`.
//!
//! The physics is solved once (strategy-3 numeric engine); each strategy's
//! tree/timing bookkeeping replays the shared trajectory — the three paper
//! runs evolve numerically identical systems and differ only in
//! decomposition management (see DESIGN.md §2).
//!
//! Paper scale: 1M bodies, 2000 steps, per-step ≈ 0.8–5 s. Reproduction
//! scale: 100k bodies, 500 steps (override: `fig8_dynamic_strategies
//! [steps] [bodies]`). The trajectory engine runs at reduced expansion
//! order with a pinned small S — that is the *real-host* optimum for
//! producing the positions, and the strategy trackers time the solves on
//! the virtual node at full fidelity independently.
//!
//! Output: per-step total time (Fig 8) and S value (Fig 9) for each
//! strategy, then the Table II summary.

use afmm::{FmmParams, GravitySim, HeteroNode, LbConfig, RunSummary, Strategy, StrategyTracker};
use bench::print_tsv;
use fmm_math::GravityKernel;

fn main() {
    let mut args = bench::cli::Args::parse("fig8_dynamic_strategies", "[steps] [bodies]");
    let steps = args.opt_usize_or_exit("steps", 500);
    let n = args.opt_usize_or_exit("bodies", 100_000);
    args.finish_or_exit();

    let g = 1.0;
    let setup = nbody::expanding_plummer(n, g, 47);
    let domain = Some((setup.domain_center, setup.domain_half_width));
    let node = HeteroNode::system_a(10, 4);
    let params = FmmParams::default();

    // The paper's 0.15 s search threshold is 15–20% of its ~1 s steps;
    // scale it to this run's step time.
    let probe = {
        let mut t = StrategyTracker::new(
            GravityKernel::default(),
            params,
            node.clone(),
            Strategy::Full,
            LbConfig::default(),
            &setup.bodies.pos,
            domain,
        );
        t.step(&setup.bodies.pos)
            .expect("probe step failed")
            .compute()
    };
    let cfg = LbConfig {
        eps_switch_s: 0.15 * probe,
        ..Default::default()
    };

    // The warm cloud blows out to several times its radius and falls back;
    // size dt so the run covers the expansion and the onset of recollapse
    // (a few free-fall times).
    let t_ff = std::f64::consts::FRAC_PI_2 * (1.0 / (2.0 * g * n as f64)).sqrt();
    let dt = 10.0 * t_ff / steps as f64;

    // Trajectory generation: cheap but physically adequate (order 2, looser
    // MAC), with S pinned near the real host's sweet spot and Enforce_S
    // keeping leaves bounded through the collapse.
    let traj_params = FmmParams {
        order: 2,
        mac: octree::Mac::new(0.7),
        ..params
    };
    let traj_cfg = LbConfig {
        s_min: 48,
        s_max: 96,
        ..cfg
    };
    let mut dynamics = GravitySim::new(
        setup.bodies.clone(),
        g,
        dt,
        0.05,
        traj_params,
        node.clone(),
        Strategy::EnforceOnly,
        traj_cfg,
        domain,
    );
    let mk = |strategy| {
        StrategyTracker::new(
            GravityKernel::default(),
            params,
            node.clone(),
            strategy,
            cfg,
            &setup.bodies.pos,
            domain,
        )
    };
    let mut t1 = mk(Strategy::StaticS);
    let mut t2 = mk(Strategy::EnforceOnly);
    let mut t3 = mk(Strategy::Full);

    let mut rows = Vec::new();
    for step in 0..steps {
        let r1 = t1
            .step(dynamics.positions())
            .expect("strategy-1 step failed");
        let r2 = t2
            .step(dynamics.positions())
            .expect("strategy-2 step failed");
        let r3 = t3
            .step(dynamics.positions())
            .expect("strategy-3 step failed");
        // Half-mass radius: tracks the collapse/rebound of the cloud.
        let mut radii: Vec<f64> = dynamics
            .positions()
            .iter()
            .map(|p| (*p - setup.domain_center).norm())
            .collect();
        radii.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let r_half = radii[radii.len() / 2];
        rows.push(vec![
            step.to_string(),
            format!("{:.6}", r1.total()),
            format!("{:.6}", r2.total()),
            format!("{:.6}", r3.total()),
            r1.s.to_string(),
            r2.s.to_string(),
            r3.s.to_string(),
            r3.state.name().to_string(),
            format!("{r_half:.3}"),
            r1.p2p_interactions.to_string(),
            r3.p2p_interactions.to_string(),
        ]);
        dynamics.step().expect("trajectory step failed");
    }
    print_tsv(
        &format!(
            "Figs 8+9: per-step total time and S for strategies 1/2/3 \
             (collapsing Plummer N={n}, {steps} steps, dt={dt:.2e}, 10 cores + 4 GPUs)"
        ),
        &[
            "step", "total1_s", "total2_s", "total3_s", "S1", "S2", "S3", "state3", "r_half",
            "p2p1", "p2p3",
        ],
        &rows,
    );

    // ---- Table II ----
    let summaries = [t1.summary(), t2.summary(), t3.summary()];
    let mean3 = summaries[2].mean_total_per_step;
    let mut rows = Vec::new();
    for (i, s) in summaries.iter().enumerate() {
        rows.push(vec![
            (i + 1).to_string(),
            format!("{:.3}", s.total_compute),
            format!("{:.3}", s.total_lb),
            format!("{:.3}%", 100.0 * s.lb_fraction()),
            format!("{:.2}", s.mean_total_per_step / mean3),
        ]);
    }
    print_tsv(
        "Table II: strategy summary (paper: LB% = 0.02 / 0.11 / 1.88, relative cost per step \
         = 3.91 / 1.51 / 1.00)",
        &[
            "strategy",
            "total_compute_s",
            "total_LB_s",
            "LB_pct_of_compute",
            "rel_cost_per_step",
        ],
        &rows,
    );

    // ---- §IX.A scalars ----
    let s2_mean = RunSummary::from_records(t2.records()).mean_total_per_step;
    let above = t3.records().iter().filter(|r| r.total() > s2_mean).count();
    println!(
        "# strategy 3: max LB in one step = {:.4}s (paper: 0.52s); mean compute/step = {:.4}s; \
         {above}/{steps} steps above strategy-2 mean (paper: 34/2000)",
        summaries[2].max_lb_step,
        summaries[2].total_compute / steps as f64,
    );
}
