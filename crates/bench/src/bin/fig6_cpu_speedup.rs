//! **Fig 6** — CPU speedup of the OpenMP-task far-field phase as a function
//! of core count on Test System B (4 × 8-core Nehalem-EX, no GPUs), for a
//! Plummer distribution with a deep, highly non-uniform octree.
//!
//! The paper reports near-linear scaling with a *small superlinear* band up
//! to 16 cores (extra per-socket L3) and diminishing returns toward 32
//! cores (memory-system saturation). Paper scale: 10M bodies, tree depth
//! 16; reproduction scale: 200k bodies (op counts scale linearly, and the
//! task DAG's parallel slack at fixed S is scale-free).

use bench::{default_flops, fmt_s, print_tsv, time_tree};
use fmm_math::GravityKernel;
use octree::{build_adaptive, BuildParams, TreeStats};

fn main() {
    bench::cli::no_args("fig6_cpu_speedup");
    let n = 200_000;
    let bodies = nbody::plummer(n, 1.0, 1.0, 44);
    let flops = default_flops(&GravityKernel::default());
    let s = 64;
    let tree = build_adaptive(&bodies.pos, BuildParams::with_s(s));
    let stats = TreeStats::gather(&tree);

    let serial = time_tree(&tree, &flops, &afmm::HeteroNode::system_b(1))
        .0
        .t_cpu;
    let mut rows = Vec::new();
    for cores in [1usize, 2, 4, 8, 12, 16, 20, 24, 28, 32] {
        let t = time_tree(&tree, &flops, &afmm::HeteroNode::system_b(cores))
            .0
            .t_cpu;
        rows.push(vec![
            cores.to_string(),
            fmt_s(t),
            format!("{:.2}", serial / t),
            format!("{:.3}", serial / t / cores as f64),
        ]);
    }
    print_tsv(
        &format!(
            "Fig 6: CPU speedup vs cores (Plummer N={n}, S={s}, depth={}, min leaf level={}) on \
             Test System B",
            stats.depth, stats.min_leaf_level
        ),
        &["cores", "t_cpu_s", "speedup", "efficiency"],
        &rows,
    );
}
