//! Virtual-node ablations of the design choices DESIGN.md calls out:
//!
//! 1. **GPU partition policy** — the paper's interaction-count walk vs a
//!    naive equal-node-count split, across distributions and device counts;
//! 2. **MAC θ** — accuracy/cost trade of the dual traversal;
//! 3. **Prediction accuracy** — predicted vs realized times across S;
//! 4. **Collapse/PushDown vs full rebuild** — modeled maintenance cost of
//!    the incremental operations against a from-scratch rebuild.

use afmm::{lbtime, CostModel, FmmEngine, FmmParams, HeteroNode};
use bench::{default_flops, fmt_s, print_tsv};
use fmm_math::GravityKernel;
use gpu_sim::partition_by_node_count;
use octree::{build_adaptive, BuildParams, Mac};

fn main() {
    bench::cli::no_args("ablation_report");
    partition_ablation();
    mac_ablation();
    prediction_ablation();
    maintenance_ablation();
}

fn partition_ablation() {
    let flops = default_flops(&GravityKernel::default());
    let mut rows = Vec::new();
    // "knotted": a diffuse background with a tight, massive knot — the
    // knot's leaves carry enormous interaction counts and sit contiguously
    // in Morton order, the worst case for an equal-node-count split.
    let knotted = {
        let mut b = nbody::uniform_cube(80_000, 1.0, 66);
        let knot = nbody::plummer(20_000, 0.004, 1.0, 67);
        for i in 0..knot.len() {
            b.push(knot.pos[i] + geom::Vec3::splat(0.5), knot.vel[i], 1.0);
        }
        b
    };
    for (name, bodies) in [
        ("plummer", nbody::plummer(100_000, 1.0, 1.0, 61)),
        ("uniform", nbody::uniform_cube(100_000, 1.0, 62)),
        (
            "two_clusters",
            nbody::two_clusters(100_000, 0.5, 1.0, 6.0, 0.0, 63),
        ),
        ("knotted", knotted),
    ] {
        let tree = build_adaptive(&bodies.pos, BuildParams::with_s(128));
        let lists = octree::dual_traversal(&tree, Mac::default());
        let jobs = afmm::build_gpu_jobs(&tree, &lists);
        for gpus in [2usize, 4] {
            let sys = gpu_sim::GpuSystem::homogeneous(gpus, gpu_sim::GpuSpec::default())
                .expect("positive device count");
            let smart = bench::gpu_time_or_zero(&sys.execute(&jobs).unwrap());
            let naive = bench::gpu_time_or_zero(
                &sys.execute_with_partition(&jobs, partition_by_node_count(jobs.len(), gpus))
                    .unwrap(),
            );
            rows.push(vec![
                name.to_string(),
                gpus.to_string(),
                fmt_s(smart),
                fmt_s(naive),
                format!("{:.3}", naive / smart),
            ]);
        }
        let _ = flops;
    }
    print_tsv(
        "Ablation 1: GPU kernel time — interaction-count partition (paper) vs equal-node-count",
        &[
            "distribution",
            "gpus",
            "t_interactions",
            "t_node_count",
            "naive/smart",
        ],
        &rows,
    );
}

fn mac_ablation() {
    let bodies = nbody::plummer(50_000, 1.0, 1.0, 64);
    let node = HeteroNode::system_a(10, 4);
    let flops = default_flops(&GravityKernel::default());
    let tree = build_adaptive(&bodies.pos, BuildParams::with_s(128));
    let mut rows = Vec::new();
    for theta in [0.3f64, 0.45, 0.6, 0.75, 0.9] {
        let lists = octree::dual_traversal(&tree, Mac::new(theta));
        let counts = octree::count_ops(&tree, &lists);
        let timing = afmm::time_step(&tree, &lists, &flops, &node).unwrap();
        rows.push(vec![
            format!("{theta}"),
            counts.m2l_ops.to_string(),
            counts.p2p_interactions.to_string(),
            fmt_s(timing.t_cpu),
            fmt_s(timing.t_gpu),
        ]);
    }
    print_tsv(
        "Ablation 2: MAC theta sweep (stricter = more P2P, more accurate)",
        &["theta", "m2l_ops", "p2p_pairs", "t_cpu_s", "t_gpu_s"],
        &rows,
    );
}

fn prediction_ablation() {
    let bodies = nbody::plummer(100_000, 1.0, 1.0, 65);
    let node = HeteroNode::system_a(10, 4);
    let mut engine = FmmEngine::new(
        GravityKernel::default(),
        FmmParams::default(),
        &bodies.pos,
        128,
    );
    let flops = default_flops(&GravityKernel::default());
    // Observe once at S=128, then predict trees at other S without
    // re-observing — the regime the paper's FGO relies on.
    let counts = engine.refresh_lists();
    let timing = afmm::time_step(engine.tree(), engine.lists(), &flops, &node).unwrap();
    let mut model = CostModel::new();
    model.observe(&counts, &timing, &flops, &node);
    let mut rows = Vec::new();
    for s in [64usize, 96, 128, 192, 256, 512] {
        engine.rebuild(&bodies.pos, s);
        let c = engine.refresh_lists();
        let real = afmm::time_step(engine.tree(), engine.lists(), &flops, &node).unwrap();
        let pred = model.predict(&c, &node);
        rows.push(vec![
            s.to_string(),
            fmt_s(real.t_cpu),
            fmt_s(pred.t_cpu),
            fmt_s(real.t_gpu),
            fmt_s(pred.t_gpu),
            format!(
                "{:+.1}%",
                100.0 * (pred.compute() - real.compute()) / real.compute()
            ),
        ]);
    }
    print_tsv(
        "Ablation 3: cost-model prediction vs realized times (observed once at S=128)",
        &[
            "S",
            "cpu_real",
            "cpu_pred",
            "gpu_real",
            "gpu_pred",
            "compute_err",
        ],
        &rows,
    );
}

fn maintenance_ablation() {
    let node = HeteroNode::system_a(10, 4);
    let mut rows = Vec::new();
    for n in [20_000usize, 100_000, 1_000_000] {
        rows.push(vec![
            n.to_string(),
            fmt_s(lbtime::rebuild(&node, n)),
            fmt_s(lbtime::rebin(&node, n)),
            fmt_s(lbtime::enforce(&node, n / 50, n / 2000)),
            fmt_s(lbtime::modify(&node, 32)),
        ]);
    }
    print_tsv(
        "Ablation 4: modeled maintenance costs — incremental ops vs full rebuild",
        &["bodies", "rebuild_s", "rebin_s", "enforce_s", "modify32_s"],
        &rows,
    );
}
