//! **Fig 4** — the *Uniform Gap*: with a fixed-depth (uniform) decomposition
//! the octree depth is `ceil(log8(N/S))`, so sweeping S produces a small
//! number of discrete cost regimes with large jumps where a whole level is
//! added or removed — "small changes in S may yield large discontinuities",
//! making the uniform FMM hard to load balance. Contrast with Fig 3.
//!
//! Workload: uniform distribution (the gap's worst case), 10 cores + 4 GPUs.

use bench::{default_flops, fmt_s, print_tsv, s_grid, time_tree};
use fmm_math::GravityKernel;
use octree::build_uniform;

fn main() {
    bench::cli::no_args("fig4_uniform_gap");
    let n = 50_000usize;
    let bodies = nbody::uniform_cube(n, 1.0, 43);
    let node = afmm::HeteroNode::system_a(10, 4);
    let flops = default_flops(&GravityKernel::default());

    let mut rows = Vec::new();
    for s in s_grid(8, 4096, 6) {
        // The uniform FMM's rule: subdivide until the *expected* leaf
        // population drops to S.
        let depth = ((n as f64 / s as f64).log2() / 3.0).ceil().max(0.0) as u16;
        let tree = build_uniform(&bodies.pos, depth, 1e-6);
        let (timing, counts, _) = time_tree(&tree, &flops, &node);
        rows.push(vec![
            s.to_string(),
            depth.to_string(),
            fmt_s(timing.t_cpu),
            fmt_s(timing.t_gpu),
            fmt_s(timing.compute()),
            counts.p2p_interactions.to_string(),
        ]);
    }
    print_tsv(
        &format!(
            "Fig 4: uniform-decomposition cost vs S (uniform N={n}, 10 cores, 4 GPUs) — \
             discrete regimes, jumps at level changes"
        ),
        &["S", "depth", "t_cpu_s", "t_gpu_s", "compute_s", "p2p_pairs"],
        &rows,
    );
}
