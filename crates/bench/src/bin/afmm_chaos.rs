//! **afmm-chaos** — the chaos soak runner: hundreds of seeded fault +
//! corruption scenarios thrown at a supervised tracker, gated on two
//! properties the resilience layer promises:
//!
//! * **no wrong answers** — every scenario that completes produces a final
//!   field within FMM accuracy of a direct-sum reference (corrupted state
//!   is caught by the audits before it reaches a result);
//! * **bounded recovery** — after any disturbance the supervisor returns
//!   the run to clean (`RecoveryAction::None`) steps within
//!   `RECOVERY_BOUND` supervised steps.
//!
//! Each scenario is one [`ChaosPlan`] generated from its seed: the fault
//! half (dropouts, slowdowns, CPU load, timing noise — including multi-
//! event storms) is installed as the tracker's [`FaultSchedule`]; the
//! corruption half (NaN bodies, plan truncation, stale epochs, mid-run
//! kill-and-restore) is injected behind the engine's back via
//! [`afmm::chaos::inject`]. Node shape and body count vary with the seed so
//! the soak also covers CPU-only and 4-GPU configurations.
//!
//! ```text
//! afmm-chaos [--smoke] [scenarios] [steps] [bodies]
//! ```
//!
//! `--smoke` is the CI profile (12 scenarios, short runs); the default full
//! soak runs 200. Scenario 0 records a telemetry trace to
//! `BENCH_chaos_trace.jsonl` for `afmm-trace validate`; the report goes to
//! `BENCH_chaos.json` (both via `$BENCH_OUT_DIR`). Exit codes: 0 = all
//! gates hold, 1 = gate failure, 2 = usage.

use afmm::chaos::{inject, ChaosPlan};
use afmm::{
    FmmParams, HeteroNode, LbConfig, RecoveryAction, Strategy, StrategyTracker, Supervisor,
    SupervisorConfig,
};
use fmm_math::GravityKernel;
use geom::Vec3;
use nbody::plummer;

/// A disturbance must be healed within this many supervised steps.
const RECOVERY_BOUND: usize = 5;
/// Final-field relative error above this is a wrong answer (order-6
/// cartesian expansions sit near 2e-5; an unaudited corrupted plan is
/// orders of magnitude off or NaN).
const FIELD_TOL: f64 = 1e-3;
/// Direct-sum reference targets per scenario.
const PROBES: usize = 24;

struct Outcome {
    seed: u64,
    devices: usize,
    bodies: usize,
    events: usize,
    corruptions: usize,
    completed: bool,
    /// Longest run of consecutive steps that needed a recovery rung.
    max_recovery_streak: usize,
    field_err: f64,
    retries: u64,
    rebuilds: u64,
    cpu_fallbacks: u64,
    restores: u64,
    audit_failures: u64,
    panics: u64,
    note: String,
}

impl Outcome {
    fn wrong_answer(&self) -> bool {
        self.completed && !(self.field_err < FIELD_TOL)
    }

    fn recovery_bounded(&self) -> bool {
        self.max_recovery_streak <= RECOVERY_BOUND
    }
}

/// Deterministic slow contraction: positions are a pure function of the
/// step index, so a restore that rewinds the run replays the exact same
/// trajectory.
fn trajectory(base: &[Vec3], step: usize) -> Vec<Vec3> {
    let f = 0.997_f64.powi(step as i32);
    base.iter().map(|p| *p * f).collect()
}

/// Node shape per seed: mostly the paper's 2-GPU System A, with 1-GPU,
/// 4-GPU and CPU-only configurations mixed in.
fn devices_for(seed: u64) -> usize {
    [2, 1, 4, 2, 0][(seed % 5) as usize]
}

fn run_scenario(seed: u64, steps: usize, base_bodies: usize, trace: bool) -> Outcome {
    let devices = devices_for(seed);
    let n = base_bodies + 97 * (seed % 5) as usize;
    let b = plummer(n, 1.0, 1.0, 7000 + seed);
    let plan = ChaosPlan::generate(seed, steps, devices, n);

    let node = HeteroNode::system_a(10, devices);
    let cfg = LbConfig {
        eps_switch_s: 2e-3,
        ..Default::default()
    };
    let kernel = GravityKernel::default();
    let mut tracker = if trace {
        let rec = telemetry::Recorder::enabled();
        let path = bench::out_path("BENCH_chaos_trace.jsonl");
        match telemetry::JsonlSink::create(&path) {
            Ok(sink) => rec.set_sink(sink),
            Err(e) => eprintln!("# trace sink unavailable ({e}); events kept in-memory only"),
        }
        StrategyTracker::with_telemetry(
            kernel,
            FmmParams::default(),
            node,
            Strategy::Full,
            cfg,
            &b.pos,
            None,
            rec,
        )
    } else {
        StrategyTracker::new(
            kernel,
            FmmParams::default(),
            node,
            Strategy::Full,
            cfg,
            &b.pos,
            None,
        )
    };
    tracker.set_fault_schedule(plan.fault_schedule());
    let mut sup = Supervisor::new(
        tracker,
        SupervisorConfig {
            max_retries: 1,
            audit_every: 1,
            checkpoint_every: 8,
        },
    );

    // Corruption events fire once each (a restore rewinds the step index,
    // and re-killing on every replay of the same step would never finish).
    let mut fired = vec![false; plan.events.len()];
    let mut streak = 0usize;
    let mut max_streak = 0usize;
    let mut completed = true;
    let mut note = String::new();
    let mut last_pos = trajectory(&b.pos, 0);
    let mut iters = 0usize;
    let iter_cap = steps * 6 + 20;

    while sup.step_index() < steps {
        iters += 1;
        if iters > iter_cap {
            completed = false;
            note = format!("did not reach step {steps} within {iter_cap} iterations");
            break;
        }
        let idx = sup.step_index();
        let mut pos = trajectory(&b.pos, idx);
        for (i, tc) in plan.events.iter().enumerate() {
            if tc.step == idx && tc.event.is_corruption() && !fired[i] {
                fired[i] = true;
                // A KillRestore rewinds the step index and replaces `pos`
                // with the checkpoint's positions, which match it.
                inject(&tc.event, &mut sup, &mut pos);
            }
        }
        match sup.step(&pos) {
            Ok((_, RecoveryAction::None)) => {
                streak = 0;
                last_pos = pos;
            }
            Ok(_) => {
                streak += 1;
                max_streak = max_streak.max(streak);
                last_pos = pos;
            }
            Err(e) => {
                completed = false;
                note = format!("step {idx}: {e}");
                break;
            }
        }
    }

    // Correctness probe: the supervised engine's field at the last stepped
    // positions vs a direct sum at a subsample of targets.
    let field_err = if completed {
        let sol = sup.tracker_mut().engine_mut().solve(&last_pos, &b.mass);
        let stride = (n / PROBES).max(1);
        // Direct sum at a subsample of targets (self term excluded, G = 1,
        // no softening — the GravityKernel defaults the engine solves with).
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for i in (0..n).step_by(stride) {
            let x = last_pos[i];
            let mut acc = Vec3::ZERO;
            for (j, (&y, &m)) in last_pos.iter().zip(&b.mass).enumerate() {
                if j == i {
                    continue;
                }
                let d = y - x;
                let r2 = d.norm_sq();
                acc += d * (m / (r2 * r2.sqrt()));
            }
            num += (sol.field[i] - acc).norm_sq();
            den += acc.norm_sq();
        }
        (num / den.max(f64::MIN_POSITIVE)).sqrt()
    } else {
        f64::NAN
    };

    let r = sup.report();
    Outcome {
        seed,
        devices,
        bodies: n,
        events: plan.events.len(),
        corruptions: plan
            .events
            .iter()
            .filter(|t| t.event.is_corruption())
            .count(),
        completed,
        max_recovery_streak: max_streak,
        field_err,
        retries: r.retries,
        rebuilds: r.rebuilds,
        cpu_fallbacks: r.cpu_fallbacks,
        restores: r.restores,
        audit_failures: r.audit_failures,
        panics: r.panics_contained,
        note,
    }
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6e}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let smoke = raw.iter().any(|a| a == "--smoke");
    let rest: Vec<String> = raw.into_iter().filter(|a| a != "--smoke").collect();
    let mut args =
        bench::cli::Args::from_vec("afmm-chaos", "[--smoke] [scenarios] [steps] [bodies]", rest);
    let (def_scenarios, def_steps, def_bodies) = if smoke {
        (12, 40, 1000)
    } else {
        (200, 60, 2000)
    };
    let scenarios = args.opt_usize_or_exit("scenarios", def_scenarios);
    let steps = args.opt_usize_or_exit("steps", def_steps);
    let bodies = args.opt_usize_or_exit("bodies", def_bodies);
    args.finish_or_exit();

    println!(
        "# afmm-chaos: {scenarios} scenarios x {steps} steps, ~{bodies} bodies \
         ({} profile)",
        if smoke { "smoke" } else { "full" }
    );

    let mut outcomes = Vec::with_capacity(scenarios);
    for seed in 0..scenarios as u64 {
        let out = run_scenario(seed, steps, bodies, seed == 0);
        if !out.completed || out.wrong_answer() || !out.recovery_bounded() {
            eprintln!(
                "# seed {}: completed={} field_err={} max_streak={} {}",
                out.seed,
                out.completed,
                json_f64(out.field_err),
                out.max_recovery_streak,
                out.note
            );
        }
        outcomes.push(out);
    }

    let incomplete = outcomes.iter().filter(|o| !o.completed).count();
    let wrong = outcomes.iter().filter(|o| o.wrong_answer()).count();
    let unbounded = outcomes.iter().filter(|o| !o.recovery_bounded()).count();
    let recovered = outcomes
        .iter()
        .filter(|o| o.retries + o.rebuilds + o.cpu_fallbacks + o.restores > 0)
        .count();
    let max_streak = outcomes
        .iter()
        .map(|o| o.max_recovery_streak)
        .max()
        .unwrap_or(0);
    let worst_err = outcomes
        .iter()
        .filter(|o| o.completed)
        .map(|o| o.field_err)
        .fold(0.0f64, f64::max);

    let rows: Vec<String> = outcomes
        .iter()
        .map(|o| {
            format!(
                concat!(
                    "    {{\"seed\": {}, \"devices\": {}, \"bodies\": {}, ",
                    "\"events\": {}, \"corruptions\": {}, \"completed\": {}, ",
                    "\"max_recovery_streak\": {}, \"field_err\": {}, ",
                    "\"retries\": {}, \"rebuilds\": {}, \"cpu_fallbacks\": {}, ",
                    "\"restores\": {}, \"audit_failures\": {}, \"panics\": {}}}"
                ),
                o.seed,
                o.devices,
                o.bodies,
                o.events,
                o.corruptions,
                o.completed,
                o.max_recovery_streak,
                json_f64(o.field_err),
                o.retries,
                o.rebuilds,
                o.cpu_fallbacks,
                o.restores,
                o.audit_failures,
                o.panics,
            )
        })
        .collect();
    let doc = format!(
        "{{\n  \"config\": {{\"scenarios\": {scenarios}, \"steps\": {steps}, \
         \"bodies\": {bodies}, \"smoke\": {smoke}, \"recovery_bound\": {RECOVERY_BOUND}, \
         \"field_tol\": {FIELD_TOL:e}}},\n  \
         \"summary\": {{\"incomplete\": {incomplete}, \"wrong_answers\": {wrong}, \
         \"recovery_unbounded\": {unbounded}, \"recovered_scenarios\": {recovered}, \
         \"max_recovery_streak\": {max_streak}, \"worst_field_err\": {}}},\n  \
         \"scenarios\": [\n{}\n  ]\n}}\n",
        json_f64(worst_err),
        rows.join(",\n"),
    );
    let path = bench::out_path("BENCH_chaos.json");
    if let Err(e) = std::fs::write(&path, &doc) {
        eprintln!("# FAIL: write {}: {e}", path.display());
        std::process::exit(2);
    }

    println!(
        "# {} scenarios: {recovered} exercised a recovery rung, \
         max recovery streak {max_streak} (bound {RECOVERY_BOUND}), \
         worst field error {} (tol {FIELD_TOL:e})",
        outcomes.len(),
        json_f64(worst_err),
    );
    println!("# report: {}", path.display());

    let mut failed = false;
    if incomplete > 0 {
        eprintln!("# GATE FAIL: {incomplete} scenario(s) did not complete");
        failed = true;
    }
    if wrong > 0 {
        eprintln!("# GATE FAIL: {wrong} scenario(s) completed with a wrong answer");
        failed = true;
    }
    if unbounded > 0 {
        eprintln!(
            "# GATE FAIL: {unbounded} scenario(s) exceeded the {RECOVERY_BOUND}-step \
             recovery bound"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("# all gates hold");
}
