//! **Telemetry audit** (no paper figure — observability validation): replay
//! the paper's dynamic-distribution workload with the full telemetry stack
//! enabled and report
//!
//! 1. the *overhead* of the instrumentation: a numeric N-body solve timed
//!    with telemetry disabled (the default — the recorder is a `None`
//!    branch) vs enabled with a live ring buffer;
//! 2. the *cost-model audit*: the per-step prediction-vs-actual relative
//!    error of `CostModel::predict` over the run, once the model has
//!    observed (`is_observed()`);
//! 3. the balancer's *flight record*: every `LbState` transition with its
//!    cause, and the `Enforce_S` / FGO activity counters;
//! 4. the per-phase span histograms (P2M/M2M/M2L/L2L/L2P/P2P).
//!
//! Output: `BENCH_telemetry.json` (in `$BENCH_OUT_DIR` when set, CWD
//! otherwise; echoed to stdout) and the raw event trace in
//! `BENCH_telemetry_trace.jsonl` alongside it.
//! Exit code 1 when the observed median relative prediction error exceeds
//! 25% — the CI gate on cost-model fidelity.
//!
//! Override scale: `telemetry_report [steps] [bodies] [overhead_bodies]`.

use afmm::{FmmEngine, FmmParams, HeteroNode, LbConfig, Strategy, StrategyTracker};
use fmm_math::GravityKernel;
use std::time::Instant;
use telemetry::{push_json_f64, JsonlSink, Recorder, Value};

/// Mean wall time of `reps` numeric solves on a fresh engine holding `rec`.
fn time_solves(pos: &[geom::Vec3], mass: &[f64], rec: Option<Recorder>, reps: usize) -> f64 {
    let mut engine = FmmEngine::new(GravityKernel::default(), FmmParams::default(), pos, 96);
    if let Some(rec) = rec {
        engine.set_recorder(rec);
    }
    // Warm-up solve: first call pays tree/plan setup for both variants.
    std::hint::black_box(engine.solve(pos, mass));
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(engine.solve(pos, mass));
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn jf(x: f64) -> String {
    let mut s = String::new();
    push_json_f64(&mut s, x);
    s
}

fn main() {
    let mut args =
        bench::cli::Args::parse("telemetry_report", "[steps] [bodies] [overhead_bodies]");
    let steps = args.opt_usize_or_exit("steps", 60);
    let n = args.opt_usize_or_exit("bodies", 20_000);
    let n_over = args.opt_usize_or_exit("overhead_bodies", 60_000);
    args.finish_or_exit();

    // ---- 1. Overhead A/B on the numeric solve ----
    // `t_base` carries no recorder at all and `t_off` a disabled one; a
    // disabled `Recorder` is a branch on `None`, so their difference is the
    // measurement noise floor — the "≤1% disabled overhead" demonstration.
    let b = nbody::plummer(n_over, 1.0, 1.0, 911);
    let reps = 3;
    let t_base = time_solves(&b.pos, &b.mass, None, reps);
    let t_off = time_solves(&b.pos, &b.mass, Some(Recorder::disabled()), reps);
    let t_on = time_solves(&b.pos, &b.mass, Some(Recorder::enabled()), reps);
    let off_overhead = t_off / t_base - 1.0;
    let on_overhead = t_on / t_base - 1.0;
    eprintln!(
        "# solve N={n_over}: baseline {t_base:.4}s, disabled {t_off:.4}s ({:+.2}%), \
         enabled {t_on:.4}s ({:+.2}%)",
        100.0 * off_overhead,
        100.0 * on_overhead
    );

    // ---- 2+3+4. Instrumented dynamic run ----
    let setup = nbody::collapsing_plummer(n, 1.0, 912);
    let rec = Recorder::enabled();
    let trace_path = bench::out_path("BENCH_telemetry_trace.jsonl");
    match JsonlSink::create(&trace_path) {
        Ok(sink) => rec.set_sink(sink),
        Err(e) => eprintln!("# trace sink unavailable ({e}); events kept in-memory only"),
    }
    let mut tracker = StrategyTracker::with_telemetry(
        GravityKernel::default(),
        FmmParams::default(),
        HeteroNode::system_a(10, 4),
        Strategy::Full,
        LbConfig {
            eps_switch_s: 2e-3,
            ..Default::default()
        },
        &setup.bodies.pos,
        Some((setup.domain_center, setup.domain_half_width)),
        rec.clone(),
    );
    // The cloud contracts toward an off-center clump — the decomposition-
    // invalidating migration of the paper's dynamic experiment (Fig 8).
    let clump = geom::Vec3::new(
        0.4 * setup.domain_half_width,
        0.4 * setup.domain_half_width,
        0.4 * setup.domain_half_width,
    );
    let mut pos = setup.bodies.pos.clone();
    for step in 0..steps {
        if let Err(e) = tracker.step(&pos) {
            eprintln!("# FAIL: tracker step {step} failed: {e}");
            std::process::exit(1);
        }
        if step < steps / 2 {
            for p in &mut pos {
                *p = *p + (clump - *p) * 0.05;
            }
        }
    }
    rec.flush();

    let stats = tracker.audits().stats();
    let transitions = rec.events_named("lb.transition");
    let timeline: Vec<String> = transitions
        .iter()
        .map(|e| {
            let s = |k: &str| match e.field(k) {
                Some(Value::Str(v)) => v.clone(),
                _ => String::new(),
            };
            let sv = match e.field("s") {
                Some(Value::U64(v)) => *v,
                _ => 0,
            };
            format!(
                "    {{\"step\": {}, \"from\": \"{}\", \"to\": \"{}\", \
                 \"cause\": \"{}\", \"s\": {sv}}}",
                e.step,
                s("from"),
                s("to"),
                s("cause"),
            )
        })
        .collect();

    let metrics = rec.metrics();
    let phase_json: Vec<String> = ["p2m", "m2m", "m2l", "l2l", "l2p", "p2p"]
        .iter()
        .filter_map(|ph| {
            let h = metrics.histogram(&format!("phase.{ph}"))?;
            Some(format!(
                "    \"{ph}\": {{\"count\": {}, \"mean_s\": {}, \"p50_s\": {}, \"p99_s\": {}}}",
                h.count,
                jf(h.mean),
                jf(h.p50),
                jf(h.p99)
            ))
        })
        .collect();

    let doc = format!(
        "{{\n  \"config\": {{\"steps\": {steps}, \"bodies\": {n}, \
         \"overhead_bodies\": {n_over}, \"solve_reps\": {reps}}},\n  \
         \"overhead\": {{\"solve_baseline_s\": {}, \"solve_disabled_s\": {}, \
         \"solve_enabled_s\": {}, \"disabled_overhead_frac\": {}, \
         \"enabled_overhead_frac\": {}}},\n  \
         \"audit\": {},\n  \
         \"balancer\": {{\"transitions\": {}, \"enforces\": {}, \
         \"fgo_batches\": {}, \"plan_patches\": {}, \"plan_rebuilds\": {}}},\n  \
         \"transitions\": [\n{}\n  ],\n  \"phases\": {{\n{}\n  }}\n}}\n",
        jf(t_base),
        jf(t_off),
        jf(t_on),
        jf(off_overhead),
        jf(on_overhead),
        stats.to_json(),
        transitions.len(),
        rec.events_named("lb.enforce").len(),
        rec.events_named("lb.fgo_batch").len(),
        metrics.counter("plan.patch.edit").unwrap_or(0),
        metrics.counter("plan.rebuild").unwrap_or(0),
        timeline.join(",\n"),
        phase_json.join(",\n"),
    );
    let out = bench::out_path("BENCH_telemetry.json");
    if let Err(e) = std::fs::write(&out, &doc) {
        eprintln!("# FAIL: write {}: {e}", out.display());
        std::process::exit(1);
    }
    print!("{doc}");

    // ---- CI gate: cost-model fidelity ----
    if stats.count > 0 && stats.median > 0.25 {
        eprintln!(
            "# FAIL: median prediction error {:.1}% exceeds the 25% gate over {} audited steps",
            100.0 * stats.median,
            stats.count
        );
        std::process::exit(1);
    }
    eprintln!(
        "# prediction audit: {} steps, median error {:.2}%, p90 {:.2}%, balancer acted on {}",
        stats.count,
        100.0 * stats.median,
        100.0 * stats.p90,
        stats.acted
    );
}
