//! **Table I** — GPU scaling on a fixed workload: the S that minimizes the
//! total runtime with 10 CPU cores and 1 GPU is chosen, then the same
//! problem (same tree) is run with 1–4 GPUs. The paper measures speedups
//! 1.00 / 1.97 / 2.95 / 3.92, i.e. the interaction-count partition keeps
//! the devices near-perfectly balanced.
//!
//! Paper scale: 10M bodies; reproduction scale: 200k.

use afmm::HeteroNode;
use bench::{default_flops, fmt_s, print_tsv, s_grid, time_tree};
use fmm_math::GravityKernel;
use octree::{build_adaptive, BuildParams};

fn main() {
    bench::cli::no_args("table1_gpu_scaling");
    let n = 200_000;
    let bodies = nbody::plummer(n, 1.0, 1.0, 45);
    let flops = default_flops(&GravityKernel::default());

    // Find the S that minimizes compute time on 10C + 1G.
    let base = HeteroNode::system_a(10, 1);
    let mut best = (0usize, f64::INFINITY);
    for s in s_grid(16, 2048, 4) {
        let tree = build_adaptive(&bodies.pos, BuildParams::with_s(s));
        let t = time_tree(&tree, &flops, &base).0.compute();
        if t < best.1 {
            best = (s, t);
        }
    }
    let (s_star, _) = best;
    let tree = build_adaptive(&bodies.pos, BuildParams::with_s(s_star));

    let t1 = time_tree(&tree, &flops, &HeteroNode::system_a(10, 1))
        .0
        .t_gpu;
    let mut rows = Vec::new();
    for gpus in 1..=4usize {
        let timing = time_tree(&tree, &flops, &HeteroNode::system_a(10, gpus)).0;
        rows.push(vec![
            gpus.to_string(),
            fmt_s(timing.t_gpu),
            format!("{:.2}", t1 / timing.t_gpu),
        ]);
    }
    print_tsv(
        &format!(
            "Table I: GPU scaling for a fixed workload (Plummer N={n}, S*={s_star}); \
             paper speedups: 1.00 / 1.97 / 2.95 / 3.92"
        ),
        &["gpus", "t_gpu_s", "speedup"],
        &rows,
    );
}
