//! **Plan-layer economics** (no paper figure — engineering validation): how
//! much cheaper is patching a live [`octree::IncrementalLists`] through a
//! single Collapse/PushDown than re-deriving the interaction lists and op
//! counts from scratch, across the S range the balancer sweeps?
//!
//! Thin wrapper over [`bench::harness::measure_plan_economy`] — the same
//! measurement the perf-lab's `plan_patch_vs_rebuild` scenario runs at one
//! fixed S, swept here over the balancer's S range for the table. The
//! perf-lab (`afmm-perf run`) is what gates regressions; this bin keeps the
//! historical `BENCH_plan.json` artifact and its S-sweep shape.
//!
//! Output: `BENCH_plan.json` (in `$BENCH_OUT_DIR` when set, CWD otherwise;
//! also echoed to stdout). Override scale:
//! `plan_patch_vs_rebuild [bodies] [edits_per_s]`.

use bench::harness::measure_plan_economy;
use octree::{build_adaptive, BuildParams, Mac};

struct Row {
    s: usize,
    rebuild_us: f64,
    patch_us_per_edit: f64,
    edits: usize,
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let mut args = bench::cli::Args::parse("plan_patch_vs_rebuild", "[bodies] [edits_per_s]");
    let n = args.opt_usize_or_exit("bodies", 120_000);
    let edits_per_s = args.opt_usize_or_exit("edits_per_s", 48);
    args.finish_or_exit();

    let b = nbody::plummer(n, 1.0, 1.0, 777);
    let mac = Mac::default();
    let s_values = [64usize, 128, 256, 512, 1024];
    let reps = 3;

    let mut rows = Vec::new();
    for &s in &s_values {
        let mut tree = build_adaptive(&b.pos, BuildParams::with_s(s));
        // Average `reps` measurements on the same tree; every collapse is
        // reverted by its push-down, so the passes are identical work.
        let (mut rebuild_us, mut patch_us, mut edits) = (0.0, 0.0, 0);
        for _ in 0..reps {
            let e = measure_plan_economy(&mut tree, mac, edits_per_s);
            rebuild_us += e.rebuild_us / reps as f64;
            patch_us += e.patch_us_per_edit / reps as f64;
            edits = e.edits;
        }
        rows.push(Row {
            s,
            rebuild_us,
            patch_us_per_edit: patch_us,
            edits,
        });
    }

    let steps: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"s\": {}, \"rebuild_us\": {}, \"patch_us_per_edit\": {}, \
                 \"edits\": {}, \"speedup\": {}}}",
                r.s,
                json_f64(r.rebuild_us),
                json_f64(r.patch_us_per_edit),
                r.edits,
                json_f64(r.rebuild_us / r.patch_us_per_edit),
            )
        })
        .collect();
    let doc = format!(
        "{{\n  \"config\": {{\"bodies\": {n}, \"mac_theta\": {}, \"edits_per_s\": \
         {edits_per_s}, \"rebuild_reps\": {reps}}},\n  \"steps\": [\n{}\n  ]\n}}\n",
        json_f64(mac.theta),
        steps.join(",\n"),
    );

    let path = bench::out_path("BENCH_plan.json");
    std::fs::write(&path, &doc).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    print!("{doc}");

    let worst = rows
        .iter()
        .map(|r| r.rebuild_us / r.patch_us_per_edit)
        .fold(f64::INFINITY, f64::min);
    eprintln!("# worst-case patch speedup over the S sweep: {worst:.1}x");
}
