//! **Plan-layer economics** (no paper figure — engineering validation): how
//! much cheaper is patching a live [`IncrementalLists`] through a single
//! Collapse/PushDown than re-deriving the interaction lists and op counts
//! from scratch, across the S range the balancer sweeps?
//!
//! For each S the harness builds the tree once, times the full
//! `dual_traversal` + `count_ops` pass (the cost every tree edit used to pay),
//! then times a batch of plan-routed collapse/push-down pairs on twig nodes —
//! the same single-node edits `Enforce_S` and `FineGrainedOptimize` issue.
//!
//! Output: `BENCH_plan.json` in the working directory (also echoed to
//! stdout). Override scale: `plan_patch_vs_rebuild [bodies] [edits_per_s]`.

use octree::{
    build_adaptive, count_ops, dual_traversal, BuildParams, IncrementalLists, Mac, NodeId, Octree,
};
use std::time::Instant;

/// Internal non-root nodes whose visible children are all leaves — the edit
/// sites a capacity sweep actually touches, and whose hidden children let
/// `push_down` revert the collapse exactly.
fn twigs(tree: &Octree, limit: usize) -> Vec<NodeId> {
    tree.visible_nodes()
        .into_iter()
        .filter(|&id| {
            id != Octree::ROOT
                && !tree.node(id).is_leaf()
                && tree.visible_children(id).all(|c| tree.node(c).is_leaf())
        })
        .take(limit)
        .collect()
}

struct Row {
    s: usize,
    rebuild_us: f64,
    patch_us_per_edit: f64,
    edits: usize,
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(120_000);
    let edits_per_s: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(48);

    let b = nbody::plummer(n, 1.0, 1.0, 777);
    let mac = Mac::default();
    let s_values = [64usize, 128, 256, 512, 1024];
    let reps = 3;

    let mut rows = Vec::new();
    for &s in &s_values {
        let mut tree = build_adaptive(&b.pos, BuildParams::with_s(s));

        // Baseline: the full re-traversal + recount a tree edit costs
        // without the plan layer.
        let t0 = Instant::now();
        for _ in 0..reps {
            let lists = dual_traversal(&tree, mac);
            let counts = count_ops(&tree, &lists);
            std::hint::black_box((lists, counts));
        }
        let rebuild_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;

        // Patched: collapse + reverting push-down, each a single-node edit
        // routed through the live plan.
        let victims = twigs(&tree, edits_per_s);
        let mut plan = IncrementalLists::build(&tree, mac);
        let t0 = Instant::now();
        let mut applied = 0usize;
        for &id in &victims {
            applied += usize::from(plan.apply_collapse(&mut tree, id));
            applied += usize::from(plan.apply_push_down(&mut tree, id));
        }
        let patch_us_per_edit = t0.elapsed().as_secs_f64() * 1e6 / applied.max(1) as f64;
        assert_eq!(applied, 2 * victims.len(), "every twig edit must apply");

        rows.push(Row {
            s,
            rebuild_us,
            patch_us_per_edit,
            edits: applied,
        });
    }

    let steps: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"s\": {}, \"rebuild_us\": {}, \"patch_us_per_edit\": {}, \
                 \"edits\": {}, \"speedup\": {}}}",
                r.s,
                json_f64(r.rebuild_us),
                json_f64(r.patch_us_per_edit),
                r.edits,
                json_f64(r.rebuild_us / r.patch_us_per_edit),
            )
        })
        .collect();
    let doc = format!(
        "{{\n  \"config\": {{\"bodies\": {n}, \"mac_theta\": {}, \"edits_per_s\": \
         {edits_per_s}, \"rebuild_reps\": {reps}}},\n  \"steps\": [\n{}\n  ]\n}}\n",
        json_f64(mac.theta),
        steps.join(",\n"),
    );

    std::fs::write("BENCH_plan.json", &doc).expect("write BENCH_plan.json");
    print!("{doc}");

    let worst = rows
        .iter()
        .map(|r| r.rebuild_us / r.patch_us_per_edit)
        .fold(f64::INFINITY, f64::min);
    eprintln!("# worst-case patch speedup over the S sweep: {worst:.1}x");
}
