//! **Resilience experiment** (no paper figure — robustness extension): the
//! Fig-8-style strategy comparison re-run under injected faults. A static
//! Plummer workload is timed for `steps` steps; halfway through, one fault
//! class fires (GPU dropout, GPU slowdown, external CPU load, or timing
//! noise) and we watch whether each strategy's balancer re-converges.
//!
//! For every scenario × strategy the report gives:
//!
//! * `steady_before` — mean compute over the window just before the fault;
//! * `steady_after` — mean compute over the final 10 steps;
//! * `regression_frac` — `steady_after / steady_before - 1`;
//! * `time_to_recover` — steps after the fault until compute stays within
//!   `1.5 × steady_before` for 3 consecutive steps (`null` = never, i.e.
//!   the regression is unbounded for the purposes of the run).
//!
//! The headline contrast: after a GPU dropout the Full strategy re-enters
//! Search (warm-started) and posts a finite `time_to_recover`, while the
//! no-op StaticS balancer keeps its stale decomposition and never gets back
//! under the bar.
//!
//! Output: a single JSON document (hand-rolled — no serde in the
//! container), written to `BENCH_fault_scenarios.json` via
//! [`bench::out_path`] (honours `$BENCH_OUT_DIR`) and echoed to stdout.
//! Override scale: `fault_scenarios [steps] [bodies]`.

use afmm::{
    FaultEvent, FaultSchedule, FmmParams, HeteroNode, LbConfig, Strategy, StrategyTracker,
    TimedFault,
};
use fmm_math::GravityKernel;

/// One strategy's run through a scenario, reduced to the report metrics.
struct StrategyOutcome {
    strategy: &'static str,
    steady_before: f64,
    steady_after: f64,
    regression_frac: f64,
    time_to_recover: Option<usize>,
    total_lb: f64,
    panicked: bool,
    /// `anomaly.*` events the online detector emitted over the run.
    anomalies: usize,
    /// Step of the first anomaly — for faults, how fast it was attributed.
    first_anomaly_step: Option<usize>,
}

struct Scenario {
    name: &'static str,
    description: &'static str,
    faults: Vec<TimedFault>,
}

fn scenarios(fault_step: usize) -> Vec<Scenario> {
    vec![
        Scenario {
            name: "baseline",
            description: "no fault; reference steady state",
            faults: vec![],
        },
        Scenario {
            name: "gpu_dropout",
            description: "device 1 of 2 drops out mid-run",
            faults: vec![TimedFault {
                step: fault_step,
                event: FaultEvent::GpuDropout { device: 1 },
            }],
        },
        Scenario {
            name: "gpu_slowdown",
            description: "device 0 throttles to 1/3 throughput",
            faults: vec![TimedFault {
                step: fault_step,
                event: FaultEvent::GpuSlowdown {
                    device: 0,
                    factor: 3.0,
                },
            }],
        },
        Scenario {
            name: "cpu_load",
            description: "external job inflates measured CPU time 2.5x",
            faults: vec![TimedFault {
                step: fault_step,
                event: FaultEvent::ExternalCpuLoad { factor: 2.5 },
            }],
        },
        Scenario {
            name: "timing_noise",
            description: "lognormal measurement jitter, sigma = 0.08",
            faults: vec![TimedFault {
                step: fault_step,
                event: FaultEvent::TimingNoise { sigma: 0.08 },
            }],
        },
    ]
}

/// Run one tracker through the scenario and reduce the series.
#[allow(clippy::too_many_arguments)]
fn run_strategy(
    strategy: Strategy,
    label: &'static str,
    faults: &[TimedFault],
    pos: &[geom::Vec3],
    node: &HeteroNode,
    cfg: &LbConfig,
    steps: usize,
    fault_step: usize,
) -> StrategyOutcome {
    // Telemetry on: the online anomaly detector watches every run, so the
    // report can show each fault being flagged (and the baseline staying
    // silent). Proven bit-identical to a recorder-less run in tests.
    let mut tracker = StrategyTracker::with_telemetry(
        GravityKernel::default(),
        FmmParams::default(),
        node.clone(),
        strategy,
        *cfg,
        pos,
        None,
        telemetry::Recorder::enabled(),
    );
    let mut schedule = FaultSchedule::new();
    for f in faults {
        schedule.push(f.step, f.event);
    }
    tracker.set_fault_schedule(schedule);

    let mut computes = Vec::with_capacity(steps);
    let mut total_lb = 0.0;
    let mut panicked = false;
    for _ in 0..steps {
        // A fault scenario must degrade service, not abort the run.
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| tracker.step(pos))) {
            Ok(Ok(rec)) => {
                computes.push(rec.compute());
                total_lb += rec.t_lb;
            }
            Ok(Err(e)) => {
                eprintln!("# {label}: step error: {e}");
                panicked = true;
                break;
            }
            Err(_) => {
                eprintln!("# {label}: PANIC during step");
                panicked = true;
                break;
            }
        }
    }

    let mean = |w: &[f64]| w.iter().sum::<f64>() / w.len().max(1) as f64;
    let pre_lo = fault_step.saturating_sub(15);
    let steady_before = mean(&computes[pre_lo..fault_step.min(computes.len())]);
    let tail = computes.len().saturating_sub(10);
    let steady_after = mean(&computes[tail..]);

    // First post-fault step from which compute stays under 1.5x the
    // pre-fault steady state for 3 consecutive steps.
    let bar = 1.5 * steady_before;
    let mut time_to_recover = None;
    'outer: for i in fault_step..computes.len() {
        if i + 3 > computes.len() {
            break;
        }
        for &c in &computes[i..i + 3] {
            if c > bar {
                continue 'outer;
            }
        }
        time_to_recover = Some(i - fault_step);
        break;
    }

    StrategyOutcome {
        strategy: label,
        steady_before,
        steady_after,
        regression_frac: steady_after / steady_before - 1.0,
        time_to_recover,
        total_lb,
        panicked,
        anomalies: tracker.anomalies().len(),
        first_anomaly_step: tracker.anomalies().first().map(|(step, _)| *step),
    }
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6e}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let mut args = bench::cli::Args::parse("fault_scenarios", "[steps] [bodies]");
    let steps = args.opt_usize_or_exit("steps", 120);
    let n = args.opt_usize_or_exit("bodies", 8000);
    args.finish_or_exit();
    let fault_step = steps / 2;

    let b = nbody::plummer(n, 1.0, 1.0, 9001);
    let node = HeteroNode::system_a(10, 2);
    let cfg = LbConfig {
        eps_switch_s: 2e-3,
        ..Default::default()
    };

    let mut scenario_blobs = Vec::new();
    for sc in scenarios(fault_step) {
        let mut strategy_blobs = Vec::new();
        for (strategy, label) in [(Strategy::Full, "full"), (Strategy::StaticS, "static_s")] {
            let out = run_strategy(
                strategy, label, &sc.faults, &b.pos, &node, &cfg, steps, fault_step,
            );
            let ttr = out
                .time_to_recover
                .map_or("null".to_string(), |t| t.to_string());
            let first_anom = out
                .first_anomaly_step
                .map_or("null".to_string(), |s| s.to_string());
            strategy_blobs.push(format!(
                concat!(
                    "      {{\"strategy\": \"{}\", \"steady_before\": {}, ",
                    "\"steady_after\": {}, \"regression_frac\": {}, ",
                    "\"time_to_recover\": {}, \"total_lb\": {}, \"panicked\": {}, ",
                    "\"anomalies\": {}, \"first_anomaly_step\": {}}}"
                ),
                out.strategy,
                json_f64(out.steady_before),
                json_f64(out.steady_after),
                json_f64(out.regression_frac),
                ttr,
                json_f64(out.total_lb),
                out.panicked,
                out.anomalies,
                first_anom,
            ));
        }
        scenario_blobs.push(format!(
            "    {{\"name\": \"{}\", \"description\": \"{}\", \"strategies\": [\n{}\n    ]}}",
            sc.name,
            sc.description,
            strategy_blobs.join(",\n"),
        ));
    }

    let doc = format!(
        "{{\n  \"config\": {{\"steps\": {steps}, \"bodies\": {n}, \
         \"fault_step\": {fault_step}, \"node\": \"system_a(10, 2)\"}},\n  \
         \"scenarios\": [\n{}\n  ]\n}}\n",
        scenario_blobs.join(",\n"),
    );
    let path = bench::out_path("BENCH_fault_scenarios.json");
    if let Err(e) = std::fs::write(&path, &doc) {
        eprintln!("# FAIL: write {}: {e}", path.display());
        std::process::exit(2);
    }
    print!("{doc}");
    eprintln!("# report: {}", path.display());
}
