//! **Fig 10** — value of `FineGrainedOptimize` on a *uniform, static*
//! workload: the regularized-Stokeslet problem, whose M2L is ≈4× the
//! gravity M2L (so the uniform gap of Fig 4 costs real time), run twice —
//! with and without fine-grained optimization — and reported as the
//! per-step time ratio (no-FGO / FGO). The paper sees ≈3% advantage after
//! the ~15-step search phase.
//!
//! Paper scale: 10M sources, 200 steps; reproduction: 50k sources
//! (override: `fig10_finegrained [steps] [bodies]`).

use afmm::{FmmParams, HeteroNode, LbConfig, Strategy, StrategyTracker};
use bench::print_tsv;
use fmm_math::StokesletKernel;
use geom::Vec3;
use rand::prelude::*;
use rand::rngs::StdRng;

fn main() {
    let mut args = bench::cli::Args::parse("fig10_finegrained", "[steps] [bodies]");
    let steps = args.opt_usize_or_exit("steps", 200);
    let n = args.opt_usize_or_exit("bodies", 50_000);
    args.finish_or_exit();

    let bodies = nbody::uniform_cube(n, 1.0, 48);
    let node = HeteroNode::system_a(10, 4);
    let params = FmmParams::default();
    let kernel = StokesletKernel::new(1e-3, 1.0);

    let probe = {
        let mut t = StrategyTracker::new(
            kernel,
            params,
            node.clone(),
            Strategy::Full,
            LbConfig::default(),
            &bodies.pos,
            None,
        );
        t.step(&bodies.pos).expect("probe step failed").compute()
    };
    let base = LbConfig {
        eps_switch_s: 0.15 * probe,
        ..Default::default()
    };
    let cfg_fgo = LbConfig {
        use_fgo: true,
        ..base
    };
    let cfg_nofgo = LbConfig {
        use_fgo: false,
        ..base
    };

    let mk = |cfg| {
        StrategyTracker::new(
            kernel,
            params,
            node.clone(),
            Strategy::Full,
            cfg,
            &bodies.pos,
            None,
        )
    };
    let mut with_fgo = mk(cfg_fgo);
    let mut without_fgo = mk(cfg_nofgo);

    // Static workload with slow ambient drift (the Stokes points creep with
    // the flow; here a deterministic low-amplitude random walk).
    let mut rng = StdRng::seed_from_u64(49);
    let mut pos = bodies.pos.clone();
    let mut rows = Vec::new();
    let (mut sum_fgo, mut sum_nofgo) = (0.0, 0.0);
    for step in 0..steps {
        let a = with_fgo.step(&pos).expect("FGO tracker step failed");
        let b = without_fgo.step(&pos).expect("no-FGO tracker step failed");
        if step >= 15 {
            sum_fgo += a.total();
            sum_nofgo += b.total();
        }
        rows.push(vec![
            step.to_string(),
            format!("{:.6}", a.total()),
            format!("{:.6}", b.total()),
            format!("{:.4}", b.total() / a.total()),
            a.s.to_string(),
            b.s.to_string(),
        ]);
        for p in &mut pos {
            *p += Vec3::new(
                rng.random_range(-1e-3..1e-3),
                rng.random_range(-1e-3..1e-3),
                rng.random_range(-1e-3..1e-3),
            );
        }
    }
    print_tsv(
        &format!(
            "Fig 10: per-step total-time ratio without/with FineGrainedOptimize \
             (uniform Stokeslet N={n}, {steps} steps, 10 cores + 4 GPUs)"
        ),
        &[
            "step",
            "total_fgo_s",
            "total_nofgo_s",
            "ratio_nofgo_over_fgo",
            "S_fgo",
            "S_nofgo",
        ],
        &rows,
    );
    println!(
        "# steady-state (steps 15+): mean ratio = {:.4} (paper: ~1.03)",
        sum_nofgo / sum_fgo
    );
}
