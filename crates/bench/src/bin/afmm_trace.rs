//! **afmm-trace** — the offline trace toolchain: read a telemetry JSONL
//! trace back and export, summarize, validate, or diff it.
//!
//! ```text
//! afmm-trace export   <trace.jsonl> [-o out.json]   Chrome trace_event JSON
//! afmm-trace summary  <trace.jsonl>                 event counts + timeline
//! afmm-trace validate <trace.jsonl> [--audit-tol X] [--phase-tol X]
//!                                                   replay invariant check
//! afmm-trace diff     <a.jsonl> <b.jsonl>           step-aligned comparison
//! ```
//!
//! Exit codes: 0 = ok, 1 = invariant violation / diff mismatch, 2 = usage,
//! I/O, or parse error. The exported file loads in Perfetto or
//! `chrome://tracing`, with one track per FMM phase, one per GPU device,
//! and instant events for the balancer flight record.

use std::collections::BTreeMap;
use std::process::ExitCode;

use afmm::{diff_traces, validate_trace_report, ValidateOptions};
use telemetry::{ChromeTraceExporter, EventRecord, Value};

const USAGE: &str = "usage: afmm-trace <export|summary|validate|diff> <trace.jsonl> [...]
  export   <trace.jsonl> [-o out.json]    write Chrome trace_event JSON
  summary  <trace.jsonl>                  print event counts and LB timeline
  validate <trace.jsonl> [--audit-tol X] [--phase-tol X]
                                          check replay invariants; --phase-tol
                                          overrides the trace's recorded
                                          phase-reconciliation tolerance
  diff     <a.jsonl> <b.jsonl>            step-aligned trajectory comparison";

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("afmm-trace: {msg}");
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Vec<EventRecord>, String> {
    telemetry::read_trace(path).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return fail(USAGE);
    };
    match cmd.as_str() {
        "export" => cmd_export(&args[1..]),
        "summary" => cmd_summary(&args[1..]),
        "validate" => cmd_validate(&args[1..]),
        "diff" => cmd_diff(&args[1..]),
        other => fail(format!("unknown subcommand \"{other}\"\n{USAGE}")),
    }
}

fn cmd_export(args: &[String]) -> ExitCode {
    let mut input = None;
    let mut output = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--output" => match it.next() {
                Some(p) => output = Some(p.clone()),
                None => return fail("-o requires a path"),
            },
            _ if input.is_none() => input = Some(a.clone()),
            _ => return fail(format!("unexpected argument \"{a}\"\n{USAGE}")),
        }
    }
    let Some(input) = input else {
        return fail(USAGE);
    };
    let records = match load(&input) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    let json = ChromeTraceExporter::export(&records);
    debug_assert!(telemetry::json_syntax_ok(&json));
    // Default output goes through `bench::out_path` (honoring
    // `$BENCH_OUT_DIR`) so CI runs land artifacts in the scratch dir
    // instead of the working tree; `-o` still overrides verbatim.
    let out_path = output.map(std::path::PathBuf::from).unwrap_or_else(|| {
        let stem = std::path::Path::new(&input)
            .file_name()
            .map(|f| f.to_string_lossy().into_owned())
            .unwrap_or_else(|| input.clone());
        bench::out_path(&format!("{}.chrome.json", stem.trim_end_matches(".jsonl")))
    });
    if let Err(e) = std::fs::write(&out_path, &json) {
        return fail(format!("write {}: {e}", out_path.display()));
    }
    eprintln!(
        "# exported {} records from {input} to {} ({} bytes); open in Perfetto \
         or chrome://tracing",
        records.len(),
        out_path.display(),
        json.len()
    );
    ExitCode::SUCCESS
}

fn cmd_summary(args: &[String]) -> ExitCode {
    let [input] = args else {
        return fail(USAGE);
    };
    let records = match load(input) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    let steps = records.iter().filter(|r| r.name == "step.record").count();
    let mut by_name: BTreeMap<&str, usize> = BTreeMap::new();
    for r in &records {
        *by_name.entry(r.name).or_default() += 1;
    }
    println!("trace: {input}");
    println!("records: {}  steps: {steps}", records.len());
    println!("events by name:");
    for (name, n) in &by_name {
        println!("  {name:<24} {n}");
    }
    let transitions: Vec<&EventRecord> = records
        .iter()
        .filter(|r| r.name == "lb.transition")
        .collect();
    if !transitions.is_empty() {
        println!("balancer timeline:");
        for t in transitions {
            let get = |k: &str| match t.field(k) {
                Some(Value::Str(s)) => s.clone(),
                Some(Value::U64(v)) => v.to_string(),
                _ => "?".into(),
            };
            println!(
                "  step {:>4}: {} -> {} ({}, S={})",
                t.step,
                get("from"),
                get("to"),
                get("cause"),
                get("s")
            );
        }
    }
    let anomalies = records
        .iter()
        .filter(|r| r.name.starts_with("anomaly."))
        .count();
    println!("anomalies: {anomalies}");
    ExitCode::SUCCESS
}

fn cmd_validate(args: &[String]) -> ExitCode {
    let mut input = None;
    let mut opts = ValidateOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--audit-tol" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t > 0.0 => opts.audit_tolerance = t,
                _ => return fail("--audit-tol requires a positive number"),
            },
            "--phase-tol" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t > 0.0 => opts.phase_tolerance = Some(t),
                _ => return fail("--phase-tol requires a positive number"),
            },
            _ if input.is_none() => input = Some(a.clone()),
            _ => return fail(format!("unexpected argument \"{a}\"\n{USAGE}")),
        }
    }
    let Some(input) = input else {
        return fail(USAGE);
    };
    let records = match load(&input) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    let report = validate_trace_report(&records, &opts);
    if report.reconciled_steps > 0 {
        eprintln!(
            "# phase reconciliation: max residual {:.3e} (tolerance {:.3e}) at step {} over {} step(s)",
            report.max_phase_residual,
            report.phase_tolerance,
            report.max_phase_residual_step.unwrap_or(0),
            report.reconciled_steps
        );
    }
    if report.violations.is_empty() {
        let steps = records.iter().filter(|r| r.name == "step.record").count();
        eprintln!(
            "# {input}: OK — {} records, {steps} steps, all replay invariants hold",
            records.len()
        );
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "# {input}: {} invariant violation(s)",
        report.violations.len()
    );
    for v in &report.violations {
        println!("{v}");
    }
    ExitCode::from(1)
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let [a, b] = args else {
        return fail(USAGE);
    };
    let (ra, rb) = match (load(a), load(b)) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(e), _) | (_, Err(e)) => return fail(e),
    };
    let diff = diff_traces(&ra, &rb);
    println!(
        "a: {} steps  b: {} steps  max compute-time ratio: {:.3}",
        diff.steps_a, diff.steps_b, diff.max_time_ratio
    );
    if diff.is_match() {
        println!("trajectories match (same S and state at every aligned step)");
        return ExitCode::SUCCESS;
    }
    println!("{} mismatch(es):", diff.mismatches.len());
    for m in &diff.mismatches {
        println!("  {m}");
    }
    ExitCode::from(1)
}
