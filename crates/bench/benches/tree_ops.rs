//! Real-machine benchmarks of the adaptive-decomposition machinery: build,
//! re-bin, Enforce_S, Collapse/PushDown, and the dual-tree traversal — the
//! operations whose *modeled* costs feed the paper's LB-time accounting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use octree::{build_adaptive, count_ops, dual_traversal, BuildParams, Mac, Octree};
use std::hint::black_box;

fn plummer(n: usize) -> Vec<geom::Vec3> {
    nbody::plummer(n, 1.0, 1.0, 11).pos
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_build");
    g.sample_size(20);
    for n in [10_000usize, 50_000] {
        let pos = plummer(n);
        g.bench_with_input(BenchmarkId::new("adaptive_s64", n), &n, |b, _| {
            b.iter(|| black_box(build_adaptive(&pos, BuildParams::with_s(64))))
        });
    }
    g.finish();
}

fn bench_rebin(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_rebin");
    g.sample_size(20);
    for n in [10_000usize, 50_000] {
        let mut pos = plummer(n);
        let tree = build_adaptive(&pos, BuildParams::with_s(64));
        for p in &mut pos {
            *p *= 0.999;
        }
        g.bench_with_input(BenchmarkId::new("after_small_motion", n), &n, |b, _| {
            b.iter_batched(
                || tree.clone(),
                |mut t| {
                    t.rebin(&pos);
                    black_box(t)
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_enforce_and_modify(c: &mut Criterion) {
    let mut g = c.benchmark_group("tree_modify");
    g.sample_size(20);
    let mut pos = plummer(20_000);
    let tree = build_adaptive(&pos, BuildParams::with_s(64));
    // Concentrate bodies so Enforce_S has real work.
    for p in &mut pos {
        *p = *p * 0.4 + geom::Vec3::splat(0.5);
    }
    let mut moved = tree.clone();
    moved.rebin(&pos);
    g.bench_function("enforce_s_after_contraction", |b| {
        b.iter_batched(
            || moved.clone(),
            |mut t| {
                black_box(t.enforce_s());
                t
            },
            criterion::BatchSize::LargeInput,
        )
    });
    // The paper's claim that Collapse is "just a flag": collapse+reclaim of
    // a batch must be orders of magnitude cheaper than a full rebuild.
    let internals: Vec<_> = tree
        .visible_nodes()
        .into_iter()
        .filter(|&id| {
            id != Octree::ROOT
                && !tree.node(id).is_leaf()
                && tree.visible_children(id).all(|c| tree.node(c).is_leaf())
        })
        .take(32)
        .collect();
    g.bench_function("collapse_pushdown_batch32", |b| {
        b.iter_batched(
            || tree.clone(),
            |mut t| {
                for &id in &internals {
                    t.collapse(id);
                }
                for &id in &internals {
                    t.push_down(id);
                }
                black_box(t)
            },
            criterion::BatchSize::LargeInput,
        )
    });
    let p0 = plummer(20_000);
    g.bench_function("full_rebuild_20k", |b| {
        b.iter(|| black_box(build_adaptive(&p0, BuildParams::with_s(64))))
    });
    g.finish();
}

fn bench_traversal(c: &mut Criterion) {
    let mut g = c.benchmark_group("traversal");
    g.sample_size(20);
    for n in [10_000usize, 50_000] {
        let pos = plummer(n);
        let tree = build_adaptive(&pos, BuildParams::with_s(64));
        g.bench_with_input(BenchmarkId::new("dual_theta06", n), &n, |b, _| {
            b.iter(|| black_box(dual_traversal(&tree, Mac::new(0.6))))
        });
        let lists = dual_traversal(&tree, Mac::new(0.6));
        g.bench_with_input(BenchmarkId::new("count_ops", n), &n, |b, _| {
            b.iter(|| black_box(count_ops(&tree, &lists)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_rebin,
    bench_enforce_and_modify,
    bench_traversal
);
criterion_main!(benches);
