//! End-to-end numeric solve benchmarks: the real-host cost of one full AFMM
//! solve (gather → traverse → upsweep → downsweep → near field → scatter)
//! for both kernels, across problem sizes and leaf capacities.

use afmm::{FmmEngine, FmmParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmm_math::{GravityKernel, StokesletKernel};
use octree::Mac;
use std::hint::black_box;

fn bench_gravity_solve(c: &mut Criterion) {
    let mut g = c.benchmark_group("solve_gravity");
    g.sample_size(10);
    for n in [5_000usize, 20_000] {
        let b = nbody::plummer(n, 1.0, 1.0, 21);
        let params = FmmParams {
            order: 4,
            mac: Mac::new(0.6),
            max_level: 21,
        };
        let mut engine = FmmEngine::new(GravityKernel::default(), params, &b.pos, 48);
        g.bench_with_input(BenchmarkId::new("plummer_s48_p4", n), &n, |bch, _| {
            bch.iter(|| black_box(engine.solve(&b.pos, &b.mass)))
        });
    }
    g.finish();
}

fn bench_gravity_solve_vs_s(c: &mut Criterion) {
    let mut g = c.benchmark_group("solve_gravity_vs_s");
    g.sample_size(10);
    let n = 10_000usize;
    let b = nbody::plummer(n, 1.0, 1.0, 22);
    for s in [16usize, 64, 256] {
        let params = FmmParams {
            order: 4,
            mac: Mac::new(0.6),
            max_level: 21,
        };
        let mut engine = FmmEngine::new(GravityKernel::default(), params, &b.pos, s);
        g.bench_with_input(BenchmarkId::new("s", s), &s, |bch, _| {
            bch.iter(|| black_box(engine.solve(&b.pos, &b.mass)))
        });
    }
    g.finish();
}

fn bench_stokes_solve(c: &mut Criterion) {
    let mut g = c.benchmark_group("solve_stokeslet");
    g.sample_size(10);
    let n = 5_000usize;
    let b = nbody::uniform_cube(n, 1.0, 23);
    let f = nbody::random_unit_forces(n, 24);
    let params = FmmParams {
        order: 4,
        mac: Mac::new(0.6),
        max_level: 21,
    };
    let mut engine = FmmEngine::new(StokesletKernel::new(1e-3, 1.0), params, &b.pos, 48);
    g.bench_function("uniform_s48_p4_5k", |bch| {
        bch.iter(|| black_box(engine.solve(&b.pos, &f)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_gravity_solve,
    bench_gravity_solve_vs_s,
    bench_stokes_solve
);
criterion_main!(benches);
