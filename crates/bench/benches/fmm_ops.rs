//! Micro-benchmarks of the six FMM operations — the real-machine analogue
//! of the per-operation cost coefficients the paper's load balancer
//! observes. One Criterion group per operation, parameterized by expansion
//! order (gravity) plus the 7-channel Stokeslet variants whose M2L the
//! paper's Fig 10 leans on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmm_math::{DerivScratch, ExpansionOps, GravityKernel, Kernel, StokesletKernel};
use geom::Vec3;
use std::hint::black_box;

fn cluster(n: usize) -> (Vec<Vec3>, Vec<f64>) {
    let b = nbody::uniform_cube(n, 0.5, 7);
    (b.pos, b.mass)
}

fn bench_p2m(c: &mut Criterion) {
    let mut g = c.benchmark_group("p2m");
    let (pos, mass) = cluster(64);
    for order in [4usize, 6, 8] {
        let ops = ExpansionOps::new(order);
        let kernel = GravityKernel::default();
        let mut m = vec![0.0; ops.nterms()];
        let mut pow = Vec::new();
        g.bench_with_input(BenchmarkId::new("gravity", order), &order, |b, _| {
            b.iter(|| {
                m.iter_mut().for_each(|v| *v = 0.0);
                kernel.p2m(&ops, Vec3::ZERO, &pos, &mass, &mut m, &mut pow);
                black_box(&m);
            })
        });
    }
    g.finish();
}

fn bench_translations(c: &mut Criterion) {
    let mut g = c.benchmark_group("translations");
    for order in [4usize, 6, 8] {
        let ops = ExpansionOps::new(order);
        let nt = ops.nterms();
        let src = vec![0.5; nt];
        let t = Vec3::new(0.25, -0.25, 0.25);
        let mut dst = vec![0.0; nt];
        let mut pow = Vec::new();
        g.bench_with_input(BenchmarkId::new("m2m", order), &order, |b, _| {
            b.iter(|| {
                ops.m2m(&src, t, &mut dst, 1, &mut pow);
                black_box(&dst);
            })
        });
        let mut ds = DerivScratch::default();
        let mut tens = Vec::new();
        let r = Vec3::new(3.0, 1.0, 0.5);
        g.bench_with_input(BenchmarkId::new("m2l", order), &order, |b, _| {
            b.iter(|| {
                ops.m2l(&src, r, &mut dst, 1, &mut ds, &mut tens);
                black_box(&dst);
            })
        });
        g.bench_with_input(BenchmarkId::new("l2l", order), &order, |b, _| {
            b.iter(|| {
                ops.l2l(&src, t, &mut dst, 1, &mut pow);
                black_box(&dst);
            })
        });
    }
    // The 7-channel Stokeslet M2L shares one derivative tensor; the paper
    // relies on its cost being ~4x (not 7x) the single-channel gravity M2L.
    let ops = ExpansionOps::new(6);
    let nt = ops.nterms();
    let src = vec![0.5; 7 * nt];
    let mut dst = vec![0.0; 7 * nt];
    let mut ds = DerivScratch::default();
    let mut tens = Vec::new();
    g.bench_function("m2l/stokeslet_7ch_p6", |b| {
        b.iter(|| {
            ops.m2l(
                &src,
                Vec3::new(3.0, 1.0, 0.5),
                &mut dst,
                7,
                &mut ds,
                &mut tens,
            );
            black_box(&dst);
        })
    });
    g.finish();
}

fn bench_l2p(c: &mut Criterion) {
    let mut g = c.benchmark_group("l2p");
    let (pos, _) = cluster(64);
    for order in [4usize, 6] {
        let ops = ExpansionOps::new(order);
        let kernel = GravityKernel::default();
        let l = vec![0.1; ops.nterms()];
        let mut pot = vec![0.0; pos.len()];
        let mut out = vec![Vec3::ZERO; pos.len()];
        let mut pow = Vec::new();
        g.bench_with_input(BenchmarkId::new("gravity", order), &order, |b, _| {
            b.iter(|| {
                kernel.l2p(&ops, Vec3::ZERO, &l, &pos, &mut pot, &mut out, &mut pow);
                black_box(&out);
            })
        });
    }
    g.finish();
}

fn bench_p2p(c: &mut Criterion) {
    let mut g = c.benchmark_group("p2p");
    for n in [32usize, 128, 512] {
        let (pos, mass) = cluster(n);
        let gravity = GravityKernel::new(1e-3);
        let mut pot = vec![0.0; n];
        let mut out = vec![Vec3::ZERO; n];
        g.bench_with_input(BenchmarkId::new("gravity_self", n), &n, |b, _| {
            b.iter(|| {
                gravity.p2p(&pos, &mut pot, &mut out, &pos, &mass, true);
                black_box(&out);
            })
        });
        let stokes = StokesletKernel::new(1e-3, 1.0);
        let f = nbody::random_unit_forces(n, 9);
        g.bench_with_input(BenchmarkId::new("stokeslet_self", n), &n, |b, _| {
            b.iter(|| {
                stokes.p2p(&pos, &mut pot, &mut out, &pos, &f, true);
                black_box(&out);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_p2m, bench_translations, bench_l2p, bench_p2p);
criterion_main!(benches);
