//! Ablation benchmarks for the design choices DESIGN.md calls out. Criterion
//! measures the *host* cost of the machinery; the companion binary
//! `ablation_report` measures the *virtual-node* consequences (kernel
//! makespans, prediction accuracy).

use afmm::{CostModel, FmmEngine, FmmParams, HeteroNode};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmm_math::{GravityKernel, Kernel};
use gpu_sim::{partition_by_interactions, partition_by_node_count, P2pJob};
use octree::{build_adaptive, dual_traversal, BuildParams, Mac};
use std::hint::black_box;

/// Partitioning itself must be cheap: the paper's walk is a single pass.
fn bench_partition(c: &mut Criterion) {
    let mut g = c.benchmark_group("gpu_partition");
    let jobs: Vec<P2pJob> = (0..5000)
        .map(|i| P2pJob::new(32 + i % 200, vec![64; 20 + i % 10]))
        .collect();
    let weights: Vec<u64> = jobs.iter().map(P2pJob::interactions).collect();
    g.bench_function("interaction_walk_5k", |b| {
        b.iter(|| black_box(partition_by_interactions(&weights, 4)))
    });
    g.bench_function("node_count_5k", |b| {
        b.iter(|| black_box(partition_by_node_count(weights.len(), 4)))
    });
    g.finish();
}

/// MAC strictness trades traversal size for accuracy: host-side cost of the
/// dual traversal across theta.
fn bench_mac_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("mac_theta");
    g.sample_size(15);
    let pos = nbody::plummer(20_000, 1.0, 1.0, 31).pos;
    let tree = build_adaptive(&pos, BuildParams::with_s(48));
    for theta in [0.3f64, 0.6, 0.9] {
        g.bench_with_input(
            BenchmarkId::new("dual_traversal", format!("{theta}")),
            &theta,
            |b, &t| b.iter(|| black_box(dual_traversal(&tree, Mac::new(t)))),
        );
    }
    g.finish();
}

/// Cost of one prediction pass (the paper's "without having to perform a
/// full FMM solve" claim rests on this being much cheaper than a solve).
fn bench_prediction_pass(c: &mut Criterion) {
    let mut g = c.benchmark_group("prediction");
    g.sample_size(15);
    let b = nbody::plummer(20_000, 1.0, 1.0, 32);
    let node = HeteroNode::system_a(10, 2);
    let mut engine = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &b.pos, 64);
    let counts = engine.refresh_lists();
    let flops = engine.kernel.op_flops(engine.expansion_ops());
    let timing = afmm::time_step(engine.tree(), engine.lists(), &flops, &node).unwrap();
    let mut model = CostModel::new();
    model.observe(&counts, &timing, &flops, &node);
    g.bench_function("refresh_and_predict_20k", |bch| {
        bch.iter(|| {
            let c = engine.refresh_lists();
            black_box(model.predict(&c, &node))
        })
    });
    g.bench_function("full_numeric_solve_20k", |bch| {
        bch.iter(|| black_box(engine.solve(&b.pos, &b.mass)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_partition,
    bench_mac_sweep,
    bench_prediction_pass
);
criterion_main!(benches);
