//! Integration tests for the perf ledger: trend-detection properties on
//! synthetic series, byte-stable persistence, `compare --against-ledger`
//! equivalence with a plain compare, and the `afmm-perf` exit-code
//! contract driven through the real binary.

use bench::harness::json::obj;
use bench::harness::{
    compare, synthesize_baseline, trend_rows, BenchReport, CompareConfig, Json, Ledger,
    LedgerEntry, Metric, Scenario, Verdict, SCHEMA_VERSION,
};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::process::Command;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("afmm-ledger-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A deterministic report with one scenario and one gated wall metric at
/// `wall` seconds (plus an informational one that must never gate).
fn synthetic_report(commit: &str, wall: f64) -> BenchReport {
    BenchReport {
        schema_version: SCHEMA_VERSION,
        host: obj(vec![
            ("os", Json::Str("linux".into())),
            ("arch", Json::Str("x86_64".into())),
            ("cpus", Json::Num(16.0)),
        ]),
        commit: commit.to_string(),
        config: obj(vec![("mode", Json::Str("quick".into()))]),
        scenarios: vec![Scenario {
            name: "solve_step".to_string(),
            params: obj(vec![("n", Json::Num(4096.0)), ("s", Json::Num(64.0))]),
            metrics: vec![
                Metric::wall(
                    "wall_s",
                    "s",
                    vec![wall, wall * 1.02, wall * 0.98, wall * 1.01],
                    9,
                ),
                Metric::wall("overhead", "frac", vec![wall * 0.01], 9).informational(),
            ],
            snapshot: Json::Obj(Vec::new()),
        }],
    }
}

fn entries_with_walls(walls: &[f64]) -> Vec<LedgerEntry> {
    walls
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            LedgerEntry::from_report(&synthetic_report(&format!("c{i:03}"), w), i as u64)
        })
        .collect()
}

/// Deterministic jitter in [-amp, +amp] from a tiny LCG.
fn jittered(center: f64, amp: f64, n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            center * (1.0 + amp * (2.0 * u - 1.0))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// A 2× step injected into an otherwise quiet 10-entry series is
    /// flagged as a gated regression, confirmed within 2 post-step
    /// entries, wherever the step lands and whatever the jitter seed.
    #[test]
    fn injected_step_is_flagged(seed in 0u64..1000, step_at in 6usize..9) {
        let mut walls = jittered(1.0, 0.03, 10, seed);
        for w in walls.iter_mut().skip(step_at) {
            *w *= 2.0;
        }
        let entries = entries_with_walls(&walls);
        let series: Vec<&LedgerEntry> = entries.iter().collect();
        let rows = trend_rows(&series, &telemetry::TrendConfig::default());
        let wall = rows.iter().find(|r| r.metric == "wall_s").unwrap();
        prop_assert_eq!(wall.report.kind, telemetry::TrendKind::Step);
        prop_assert!(wall.regression);
        let at = wall.report.at.unwrap();
        prop_assert!(
            at >= step_at && at < step_at + 2,
            "step at {} detected at {}", step_at, at
        );
        // The informational metric stepped identically but must not gate.
        let info = rows.iter().find(|r| r.metric == "overhead").unwrap();
        prop_assert!(!info.regression);
    }

    /// Pure ±5% noise never produces a step or drift verdict: zero false
    /// positives over 40 independent jittered series.
    #[test]
    fn pure_noise_has_no_false_positives(seed in 0u64..1_000_000) {
        let walls = jittered(1.0, 0.05, 10, seed);
        let entries = entries_with_walls(&walls);
        let series: Vec<&LedgerEntry> = entries.iter().collect();
        let rows = trend_rows(&series, &telemetry::TrendConfig::default());
        for r in rows {
            prop_assert!(!r.regression, "{}/{} flagged on noise", r.scenario, r.metric);
            prop_assert!(
                !matches!(r.report.kind, telemetry::TrendKind::Step | telemetry::TrendKind::Drift),
                "{}/{} classified {:?} on noise", r.scenario, r.metric, r.report.kind
            );
        }
    }
}

#[test]
fn appended_file_round_trips_byte_stable() {
    let dir = temp_dir("bytes");
    let path = dir.join("ledger.jsonl");
    for (i, e) in entries_with_walls(&[0.5, 0.75, 1.25]).iter().enumerate() {
        Ledger::append(&path, e).unwrap();
        let _ = i;
    }
    let text = std::fs::read_to_string(&path).unwrap();
    let (ledger, warnings) = Ledger::load(&path).unwrap();
    assert!(warnings.is_empty(), "{warnings:?}");
    let rewritten: String = ledger.entries.iter().map(|e| e.to_json() + "\n").collect();
    assert_eq!(rewritten, text, "read → re-serialize must be byte-stable");
    let _ = std::fs::remove_dir_all(&dir);
}

/// With exactly the baseline entry in the ledger, `--against-ledger 1`
/// must reproduce a plain compare against that baseline report: same
/// verdicts, same deltas, same thresholds.
#[test]
fn against_ledger_k1_reproduces_plain_compare() {
    let baseline = synthetic_report("base", 1.0);
    for new_wall in [1.0, 1.4, 3.0] {
        let new = synthetic_report("head", new_wall);
        let plain = compare(&baseline, &new, &CompareConfig::default());
        let entry = LedgerEntry::from_report(&baseline, 1);
        let series = [&entry];
        let synthesized = synthesize_baseline(&series, 1).unwrap();
        let via_ledger = compare(&synthesized, &new, &CompareConfig::default());
        assert_eq!(plain.rows.len(), via_ledger.rows.len());
        for (p, l) in plain.rows.iter().zip(&via_ledger.rows) {
            assert_eq!(p.verdict, l.verdict, "{}/{}", p.scenario, p.metric);
            assert_eq!(p.rel_delta, l.rel_delta, "{}/{}", p.scenario, p.metric);
            assert_eq!(p.threshold, l.threshold, "{}/{}", p.scenario, p.metric);
            assert_eq!(p.old_median, l.old_median, "{}/{}", p.scenario, p.metric);
        }
        assert_eq!(plain.regressions(), via_ledger.regressions());
        if new_wall >= 3.0 {
            assert!(plain.regressions() > 0, "3× must regress the gate");
        }
    }
}

#[test]
fn rolling_baseline_is_robust_to_one_outlier() {
    // One lucky 0.5× run in the window must not drag the rolling median
    // enough to fail a steady-state head run.
    let entries = entries_with_walls(&[1.0, 0.5, 1.02, 0.98, 1.01]);
    let series: Vec<&LedgerEntry> = entries.iter().collect();
    let baseline = synthesize_baseline(&series, 5).unwrap();
    let head = synthetic_report("head", 1.0);
    let result = compare(&baseline, &head, &CompareConfig::default());
    assert_eq!(result.regressions(), 0, "{}", result.render());
    assert!(result
        .rows
        .iter()
        .any(|r| r.metric == "wall_s" && r.verdict == Verdict::Unchanged));
}

// ---- binary-level exit-code contract ----

fn afmm_perf(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_afmm-perf"))
        .args(args)
        .output()
        .expect("spawn afmm-perf");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn write_report(path: &Path, report: &BenchReport) {
    std::fs::write(path, report.to_json()).unwrap();
}

#[test]
fn binary_exit_code_contract() {
    let dir = temp_dir("bin");
    let ledger = dir.join("ledger.jsonl");
    let ledger_s = ledger.to_str().unwrap();
    let calib = dir.join("calibration.jsonl");
    let calib_s = calib.to_str().unwrap();
    let report_path = dir.join("r.json");
    write_report(&report_path, &synthetic_report("c000", 1.0));
    let report_s = report_path.to_str().unwrap();

    // Usage and I/O errors → 2.
    assert_eq!(afmm_perf(&[]).0, 2);
    assert_eq!(afmm_perf(&["frobnicate"]).0, 2);
    assert_eq!(afmm_perf(&["record"]).0, 2);
    assert_eq!(afmm_perf(&["record", "/nonexistent/report.json"]).0, 2);
    assert_eq!(
        afmm_perf(&["compare", "--against-ledger", "0", report_s]).0,
        2
    );
    assert_eq!(afmm_perf(&["trend", "--bogus-flag"]).0, 2);
    // Against-ledger with an empty ledger: no history to gate on → 2.
    assert_eq!(
        afmm_perf(&[
            "compare",
            "--against-ledger",
            "1",
            report_s,
            "--ledger",
            ledger_s
        ])
        .0,
        2
    );

    // Record a quiet series, then a confirmed 2× step.
    for (i, wall) in [1.0, 1.01, 0.99, 1.0, 1.02, 0.98, 1.0, 1.01, 2.0, 2.02]
        .iter()
        .enumerate()
    {
        let p = dir.join(format!("r{i}.json"));
        write_report(&p, &synthetic_report(&format!("c{i:03}"), *wall));
        let (code, _, err) = afmm_perf(&[
            "record",
            p.to_str().unwrap(),
            "--ledger",
            ledger_s,
            "--calibration",
            calib_s,
            "--time",
            &format!("{}", 1_700_000_000 + i as u64 * 86_400),
        ]);
        assert_eq!(code, 0, "record #{i} failed:\n{err}");
    }

    // History over the recorded series → 0, and it shows the series.
    let (code, out, err) = afmm_perf(&[
        "history",
        "--ledger",
        ledger_s,
        "--host",
        "linux-x86_64-16c",
        "--quick",
    ]);
    assert_eq!(code, 0, "{err}");
    assert!(out.contains("solve_step/wall_s"), "{out}");
    assert!(out.contains("10 entries"), "{out}");

    // Trend sees the confirmed gated step → 1, and names it.
    let (code, out, err) = afmm_perf(&[
        "trend",
        "--ledger",
        ledger_s,
        "--host",
        "linux-x86_64-16c",
        "--quick",
    ]);
    assert_eq!(code, 1, "stdout:\n{out}\nstderr:\n{err}");
    assert!(out.contains("REGRESSED"), "{out}");
    assert!(err.contains("FAIL"), "{err}");

    // A head run at the stepped level vs the last entry alone → unchanged
    // (K=1 reproduces plain compare against that run).
    let head = dir.join("head.json");
    write_report(&head, &synthetic_report("head", 2.01));
    let (code, _, err) = afmm_perf(&[
        "compare",
        "--against-ledger",
        "1",
        head.to_str().unwrap(),
        "--ledger",
        ledger_s,
    ]);
    assert_eq!(code, 0, "{err}");

    // The same head vs the rolling median of all 10 (≈1.0) → regression.
    let (code, out, err) = afmm_perf(&[
        "compare",
        "--against-ledger",
        "10",
        head.to_str().unwrap(),
        "--ledger",
        ledger_s,
    ]);
    assert_eq!(code, 1, "stdout:\n{out}\nstderr:\n{err}");
    assert!(out.contains("REGRESSED"), "{out}");

    // Trend on a host with no entries → 0 (nothing to gate).
    let (code, _, err) = afmm_perf(&["trend", "--ledger", ledger_s, "--host", "nohost-0c"]);
    assert_eq!(code, 0, "{err}");

    // Calibration dump → 0. The synthetic reports carry no cost-model
    // snapshot, so the store stayed empty but readable.
    let (code, out, _) = afmm_perf(&["calibration", "--calibration", calib_s]);
    assert_eq!(code, 0);
    assert!(out.contains("0 cells"), "{out}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// One real smoke-suite pass through the binary: run → record twice →
/// against-ledger compare of the same report must be clean, and the
/// calibration store must hold the realized solve_step cell.
#[test]
fn binary_smoke_suite_end_to_end() {
    let dir = temp_dir("e2e");
    let report = dir.join("r.json");
    let report_s = report.to_str().unwrap();
    let ledger = dir.join("ledger.jsonl");
    let ledger_s = ledger.to_str().unwrap();
    let calib = dir.join("calibration.jsonl");
    let calib_s = calib.to_str().unwrap();

    let (code, _, err) = afmm_perf(&["run", "--smoke", "-o", report_s]);
    assert_eq!(code, 0, "{err}");

    for t in ["1700000000", "1700086400"] {
        let (code, _, err) = afmm_perf(&[
            "record",
            report_s,
            "--ledger",
            ledger_s,
            "--calibration",
            calib_s,
            "--time",
            t,
        ]);
        assert_eq!(code, 0, "{err}");
        assert!(err.contains("calibration cell"), "{err}");
    }

    let (code, out, err) = afmm_perf(&[
        "compare",
        "--against-ledger",
        "2",
        report_s,
        "--ledger",
        ledger_s,
    ]);
    assert_eq!(code, 0, "stdout:\n{out}\nstderr:\n{err}");
    assert!(
        err.contains("baseline synthesized from the last 2"),
        "{err}"
    );
    assert!(!out.contains("REGRESSED"), "{out}");

    let (code, out, _) = afmm_perf(&["calibration", "--calibration", calib_s]);
    assert_eq!(code, 0);
    assert!(out.contains("1 cell"), "{out}");
    assert!(out.contains("c_m2l"), "{out}");
    assert!(out.contains("2 runs"), "{out}");

    let _ = std::fs::remove_dir_all(&dir);
}
