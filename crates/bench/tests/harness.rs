//! End-to-end tests of the perf-lab: comparator behavior on synthetic
//! reports with known regressions / improvements / pure noise, the
//! self-comparison invariant, and one real (smoke-sized) suite run with
//! populated snapshots.

use bench::harness::{
    compare, summarize, BenchReport, CompareConfig, Json, Metric, Scenario, SuiteConfig, Verdict,
    SCHEMA_VERSION,
};
use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

/// A one-scenario report whose single wall metric has the given samples.
fn report_with(samples: Vec<f64>) -> BenchReport {
    BenchReport {
        schema_version: SCHEMA_VERSION,
        host: BenchReport::current_host(),
        commit: "test".to_string(),
        config: Json::Obj(vec![("mode".to_string(), Json::Str("test".to_string()))]),
        scenarios: vec![Scenario {
            name: "synthetic".to_string(),
            params: Json::Obj(vec![("n".to_string(), Json::Num(1000.0))]),
            metrics: vec![Metric::wall("wall_s", "s", samples, 11)],
            snapshot: Json::Obj(Vec::new()),
        }],
    }
}

/// `reps` samples around `center` with ±`jitter` relative uniform noise.
fn noisy_samples(center: f64, jitter: f64, reps: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..reps)
        .map(|_| center * (1.0 + rng.random_range(-jitter..jitter)))
        .collect()
}

#[test]
fn injected_2x_slowdown_regresses() {
    let old = report_with(noisy_samples(1.0, 0.03, 7, 1));
    let new = report_with(noisy_samples(2.2, 0.03, 7, 2));
    let result = compare(&old, &new, &CompareConfig::default());
    assert_eq!(result.regressions(), 1, "{}", result.render());
    let row = &result.rows[0];
    assert_eq!(row.verdict, Verdict::Regressed);
    assert!(row.rel_delta > 1.0, "delta {}", row.rel_delta);
}

#[test]
fn injected_2x_speedup_improves() {
    let old = report_with(noisy_samples(1.0, 0.03, 7, 3));
    let new = report_with(noisy_samples(0.45, 0.03, 7, 4));
    let result = compare(&old, &new, &CompareConfig::default());
    assert_eq!(result.regressions(), 0, "{}", result.render());
    assert_eq!(result.improvements(), 1, "{}", result.render());
}

/// Pure measurement noise must never fail the gate: rerun the same
/// "benchmark" many times with fresh jitter and count false positives.
#[test]
fn pure_noise_false_positive_rate_is_zero() {
    let old = report_with(noisy_samples(1.0, 0.05, 7, 100));
    for seed in 0..40 {
        let new = report_with(noisy_samples(1.0, 0.05, 7, 200 + seed));
        let result = compare(&old, &new, &CompareConfig::default());
        assert_eq!(
            result.regressions(),
            0,
            "false positive at seed {seed}:\n{}",
            result.render()
        );
    }
}

#[test]
fn informational_metrics_never_gate() {
    let mut old = report_with(noisy_samples(1.0, 0.01, 7, 5));
    let mut new = report_with(noisy_samples(3.0, 0.01, 7, 6));
    for r in [&mut old, &mut new] {
        let m = &mut r.scenarios[0].metrics[0];
        m.gate = false;
    }
    let result = compare(&old, &new, &CompareConfig::default());
    assert_eq!(result.regressions(), 0, "{}", result.render());
    // Still *reported* as regressed — just not gated.
    assert_eq!(result.rows[0].verdict, Verdict::Regressed);
}

#[test]
fn params_mismatch_skips_instead_of_gating() {
    let old = report_with(noisy_samples(1.0, 0.01, 7, 7));
    let mut new = report_with(noisy_samples(9.0, 0.01, 7, 8));
    new.scenarios[0].params = Json::Obj(vec![("n".to_string(), Json::Num(2000.0))]);
    let result = compare(&old, &new, &CompareConfig::default());
    assert_eq!(result.regressions(), 0, "{}", result.render());
    assert!(result.rows.iter().all(|r| r.verdict == Verdict::Skipped));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Self-comparison is always clean: identical reports can never
    /// regress (or improve), whatever the sample values.
    #[test]
    fn self_compare_is_always_unchanged(
        samples in prop::collection::vec(1e-9f64..1e6, 1..12)
    ) {
        let r = report_with(samples);
        let result = compare(&r, &r, &CompareConfig::default());
        prop_assert_eq!(result.regressions(), 0);
        prop_assert_eq!(result.improvements(), 0);
        for row in &result.rows {
            prop_assert_eq!(row.verdict, Verdict::Unchanged);
        }
    }
}

/// One real end-to-end suite run at smoke sizes: every scenario produces
/// stats and a populated snapshot, the report survives a JSON round trip,
/// and both the round-tripped and the doctored variants gate correctly.
#[test]
fn smoke_suite_runs_and_gates() {
    let cfg = SuiteConfig::smoke();
    let report = bench::harness::run_suite(&cfg, &mut |_| {});
    assert!(
        report.scenarios.len() >= 5,
        "expected >=5 scenarios, got {}",
        report.scenarios.len()
    );
    for sc in &report.scenarios {
        assert!(!sc.metrics.is_empty(), "{} has no metrics", sc.name);
        for m in &sc.metrics {
            assert!(
                m.stats.median.is_finite() && m.stats.ci_lo <= m.stats.ci_hi,
                "{}/{} has bad stats {:?}",
                sc.name,
                m.name,
                m.stats
            );
        }
        let snap = sc.snapshot.as_obj().expect("snapshot is an object");
        assert!(!snap.is_empty(), "{} has an empty snapshot", sc.name);
        assert!(
            sc.params.get("n").and_then(Json::as_u64).is_some(),
            "{} params lack n",
            sc.name
        );
    }
    // Structural snapshot spot checks on the core scenario.
    let solve = report.scenario("solve_step").unwrap();
    let tree = solve.snapshot.get("tree").expect("tree snapshot");
    assert!(tree.get("levels").and_then(Json::as_arr).is_some());
    assert!(tree.get("leaf_occupancy").and_then(Json::as_arr).is_some());
    let plan = solve.snapshot.get("plan").expect("plan snapshot");
    assert!(plan.get("op_counts").is_some());
    assert!(solve.snapshot.get("gpu").is_some());
    assert!(solve.snapshot.get("cost_model").is_some());

    // Round trip.
    let text = report.to_json();
    assert!(telemetry::json_syntax_ok(text.trim_end()));
    let back = BenchReport::from_json(&text).unwrap();
    assert_eq!(back.scenarios.len(), report.scenarios.len());

    // Self-gate: a report never regresses against itself.
    let self_cmp = compare(&report, &back, &CompareConfig::default());
    assert_eq!(self_cmp.regressions(), 0, "{}", self_cmp.render());

    // Injected slowdown: double every gated wall metric of one scenario.
    let mut slow = back.clone();
    let sc = &mut slow.scenarios[0];
    for m in &mut sc.metrics {
        if m.gate {
            for s in &mut m.samples {
                *s *= 2.5;
            }
            m.stats = summarize(&m.samples, 11);
        }
    }
    let gated = compare(&report, &slow, &CompareConfig::default());
    assert!(gated.regressions() > 0, "{}", gated.render());
}

/// `out_path` honors `BENCH_OUT_DIR`. One test owns the env var (env is
/// process-global; splitting this across tests would race).
#[test]
fn out_path_routes_through_bench_out_dir() {
    // Unset: bare filename in CWD.
    std::env::remove_var("BENCH_OUT_DIR");
    assert_eq!(
        bench::out_path("BENCH_x.json"),
        std::path::PathBuf::from("BENCH_x.json")
    );

    let dir = std::env::temp_dir().join("afmm_bench_out_test");
    std::env::set_var("BENCH_OUT_DIR", &dir);
    let p = bench::out_path("BENCH_x.json");
    std::env::remove_var("BENCH_OUT_DIR");
    assert_eq!(p, dir.join("BENCH_x.json"));
    assert!(dir.is_dir(), "out_path must create the directory");
    std::fs::remove_dir_all(&dir).ok();
}
