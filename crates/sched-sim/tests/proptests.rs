//! Property tests of the virtual-node scheduler: Graham bounds, work
//! conservation, monotonicity in cores/rate, and determinism on random DAGs.

use proptest::prelude::*;
use sched_sim::{critical_path, simulate, MemoryModel, SimConfig, TaskGraph};

/// Random DAG: each task depends on a subset of strictly earlier tasks.
fn arb_dag() -> impl Strategy<Value = TaskGraph> {
    prop::collection::vec(
        (
            0.01f64..20.0,
            prop::collection::vec(any::<prop::sample::Index>(), 0..3),
        ),
        1..150,
    )
    .prop_map(|specs| {
        let mut g = TaskGraph::new();
        let mut ids = Vec::new();
        for (cost, deps) in specs {
            let d: Vec<_> = if ids.is_empty() {
                Vec::new()
            } else {
                let mut d: Vec<u32> = deps.iter().map(|ix| ids[ix.index(ids.len())]).collect();
                d.sort_unstable();
                d.dedup();
                d
            };
            ids.push(g.add(cost, d));
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn graham_bounds_on_random_dags(g in arb_dag(), cores in 1usize..32) {
        let r = simulate(&g, &SimConfig::ideal(cores, 1.0));
        let span = critical_path(&g);
        let work = g.total_work();
        prop_assert!(r.makespan + 1e-9 >= span);
        prop_assert!(r.makespan + 1e-9 >= work / cores as f64);
        prop_assert!(r.makespan <= span + work / cores as f64 + 1e-9);
        prop_assert_eq!(r.tasks_executed, g.len());
    }

    /// Total busy time equals total work (nothing lost, nothing invented).
    #[test]
    fn busy_time_conserves_work(g in arb_dag(), cores in 1usize..16) {
        let r = simulate(&g, &SimConfig::ideal(cores, 1.0));
        let busy: f64 = r.busy.iter().sum();
        prop_assert!((busy - g.total_work()).abs() <= 1e-9 * g.total_work().max(1.0));
    }

    /// One core serializes: makespan is exactly the total work.
    #[test]
    fn single_core_serializes(g in arb_dag()) {
        let r = simulate(&g, &SimConfig::ideal(1, 1.0));
        prop_assert!((r.makespan - g.total_work()).abs() <= 1e-9 * g.total_work().max(1.0));
    }

    /// Doubling the core rate halves the makespan exactly (ideal memory).
    #[test]
    fn rate_scaling_is_exact(g in arb_dag(), cores in 1usize..8, rate in 0.5f64..8.0) {
        let slow = simulate(&g, &SimConfig::ideal(cores, rate));
        let fast = simulate(&g, &SimConfig::ideal(cores, 2.0 * rate));
        prop_assert!((slow.makespan - 2.0 * fast.makespan).abs() <= 1e-9 * slow.makespan.max(1e-12));
    }

    #[test]
    fn deterministic_on_random_dags(g in arb_dag(), cores in 1usize..12) {
        let cfg = SimConfig {
            cores,
            rate: 3.0,
            task_overhead: 1e-6,
            memory: MemoryModel::nehalem_ex(),
        };
        let a = simulate(&g, &cfg);
        let b = simulate(&g, &cfg);
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.busy, b.busy);
    }

    /// Utilization is a proper fraction and hits ~1 for embarrassingly
    /// parallel work that divides evenly.
    #[test]
    fn utilization_bounds(g in arb_dag(), cores in 1usize..16) {
        let r = simulate(&g, &SimConfig::ideal(cores, 1.0));
        let u = r.utilization();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "utilization {u}");
    }

    /// Memory-model rate factors are positive and the bandwidth term is
    /// non-increasing in the core count.
    #[test]
    fn memory_model_sane(k in 1usize..256) {
        let m = MemoryModel::nehalem_ex();
        let f = m.rate_factor(k);
        prop_assert!(f > 0.0 && f.is_finite());
        // Past saturation, adding cores never raises the per-core rate
        // within one socket (cache term only jumps at socket boundaries).
        if k > 1 && k % 8 != 1 {
            prop_assert!(m.rate_factor(k) <= m.rate_factor(k - 1) + 1e-12);
        }
    }
}
