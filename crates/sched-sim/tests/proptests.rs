//! Property tests of the virtual-node schedulers: Graham bounds, work
//! conservation, monotonicity in cores/rate, and determinism on random DAGs —
//! for both the barrier-style id-greedy executor (`simulate`) and the
//! dependency-driven list scheduler (`schedule`).

use proptest::prelude::*;
use sched_sim::{critical_path, schedule, simulate, DagConfig, MemoryModel, SimConfig, TaskGraph};

/// Random DAG: each task depends on a subset of strictly earlier tasks.
fn arb_dag() -> impl Strategy<Value = TaskGraph> {
    prop::collection::vec(
        (
            0.01f64..20.0,
            prop::collection::vec(any::<prop::sample::Index>(), 0..3),
        ),
        1..150,
    )
    .prop_map(|specs| {
        let mut g = TaskGraph::new();
        let mut ids = Vec::new();
        for (cost, deps) in specs {
            let d: Vec<_> = if ids.is_empty() {
                Vec::new()
            } else {
                let mut d: Vec<u32> = deps.iter().map(|ix| ids[ix.index(ids.len())]).collect();
                d.sort_unstable();
                d.dedup();
                d
            };
            ids.push(g.add(cost, d));
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn graham_bounds_on_random_dags(g in arb_dag(), cores in 1usize..32) {
        let r = simulate(&g, &SimConfig::ideal(cores, 1.0));
        let span = critical_path(&g);
        let work = g.total_work();
        prop_assert!(r.makespan + 1e-9 >= span);
        prop_assert!(r.makespan + 1e-9 >= work / cores as f64);
        prop_assert!(r.makespan <= span + work / cores as f64 + 1e-9);
        prop_assert_eq!(r.tasks_executed, g.len());
    }

    /// Total busy time equals total work (nothing lost, nothing invented).
    #[test]
    fn busy_time_conserves_work(g in arb_dag(), cores in 1usize..16) {
        let r = simulate(&g, &SimConfig::ideal(cores, 1.0));
        let busy: f64 = r.busy.iter().sum();
        prop_assert!((busy - g.total_work()).abs() <= 1e-9 * g.total_work().max(1.0));
    }

    /// One core serializes: makespan is exactly the total work.
    #[test]
    fn single_core_serializes(g in arb_dag()) {
        let r = simulate(&g, &SimConfig::ideal(1, 1.0));
        prop_assert!((r.makespan - g.total_work()).abs() <= 1e-9 * g.total_work().max(1.0));
    }

    /// Doubling the core rate halves the makespan exactly (ideal memory).
    #[test]
    fn rate_scaling_is_exact(g in arb_dag(), cores in 1usize..8, rate in 0.5f64..8.0) {
        let slow = simulate(&g, &SimConfig::ideal(cores, rate));
        let fast = simulate(&g, &SimConfig::ideal(cores, 2.0 * rate));
        prop_assert!((slow.makespan - 2.0 * fast.makespan).abs() <= 1e-9 * slow.makespan.max(1e-12));
    }

    #[test]
    fn deterministic_on_random_dags(g in arb_dag(), cores in 1usize..12) {
        let cfg = SimConfig {
            cores,
            rate: 3.0,
            task_overhead: 1e-6,
            memory: MemoryModel::nehalem_ex(),
        };
        let a = simulate(&g, &cfg);
        let b = simulate(&g, &cfg);
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.busy, b.busy);
    }

    /// Utilization is a proper fraction and hits ~1 for embarrassingly
    /// parallel work that divides evenly.
    #[test]
    fn utilization_bounds(g in arb_dag(), cores in 1usize..16) {
        let r = simulate(&g, &SimConfig::ideal(cores, 1.0));
        let u = r.utilization();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "utilization {u}");
    }

    /// The DAG executor obeys the same Graham bounds as the barrier one:
    /// priorities change *which* ready task runs, never the greedy
    /// guarantee that no core idles while work is ready.
    #[test]
    fn dag_graham_bounds_on_random_dags(g in arb_dag(), cores in 1usize..32) {
        let r = schedule(&g, &DagConfig::cpu_only(SimConfig::ideal(cores, 1.0)));
        let span = critical_path(&g);
        let work = g.total_work();
        prop_assert!(r.makespan + 1e-9 >= span);
        prop_assert!(r.makespan + 1e-9 >= work / cores as f64);
        prop_assert!(r.makespan <= span + work / cores as f64 + 1e-9);
        prop_assert_eq!(r.tasks_executed, g.len());
    }

    /// On a serialized (chain-dependency) graph both executors produce the
    /// identical makespan: with only one ready task at a time, priority
    /// order is irrelevant and both run the chain back to back.
    #[test]
    fn dag_equals_barrier_on_chains(
        costs in prop::collection::vec(0.01f64..20.0, 1..100),
        cores in 1usize..16,
    ) {
        let mut g = TaskGraph::new();
        let mut prev = None;
        for c in costs {
            let deps = prev.map(|p| vec![p]).unwrap_or_default();
            prev = Some(g.add(c, deps));
        }
        let cfg = SimConfig {
            cores,
            rate: 2.0,
            task_overhead: 1e-6,
            memory: MemoryModel::nehalem_ex(),
        };
        let bar = simulate(&g, &cfg);
        let dag = schedule(&g, &DagConfig::cpu_only(cfg));
        prop_assert_eq!(bar.makespan, dag.makespan);
    }

    /// Deterministic under priority ties: equal-cost independent tasks have
    /// identical bottom levels, and the stable TaskId tie-break must yield
    /// the same per-task start/finish times on every run.
    #[test]
    fn dag_deterministic_under_ties(
        n in 1usize..80,
        cost in 0.5f64..5.0,
        cores in 1usize..8,
    ) {
        let mut g = TaskGraph::new();
        for _ in 0..n {
            g.add(cost, vec![]);
        }
        let cfg = DagConfig::cpu_only(SimConfig::ideal(cores, 1.0));
        let a = schedule(&g, &cfg);
        let b = schedule(&g, &cfg);
        prop_assert_eq!(&a.start, &b.start);
        prop_assert_eq!(&a.finish, &b.finish);
        prop_assert_eq!(a.makespan, b.makespan);
        // Ties broken by id: starts are non-decreasing in TaskId.
        for w in a.start.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn dag_deterministic_on_random_dags(g in arb_dag(), cores in 1usize..12) {
        let cfg = DagConfig {
            cpu: SimConfig {
                cores,
                rate: 3.0,
                task_overhead: 1e-6,
                memory: MemoryModel::nehalem_ex(),
            },
            gpu_lanes: 0,
        };
        let a = schedule(&g, &cfg);
        let b = schedule(&g, &cfg);
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(&a.busy, &b.busy);
        prop_assert_eq!(&a.finish, &b.finish);
    }

    /// Per-task completion times are internally consistent: the makespan is
    /// exactly the latest finish, and a pure-CPU graph has no GPU span.
    #[test]
    fn dag_completion_times_consistent(g in arb_dag(), cores in 1usize..16) {
        let r = schedule(&g, &DagConfig::cpu_only(SimConfig::ideal(cores, 1.0)));
        let max_finish = r.finish.iter().copied().fold(0.0, f64::max);
        prop_assert!((r.makespan - max_finish).abs() <= 1e-12);
        prop_assert_eq!(r.cpu_makespan, r.makespan); // pure-CPU graph
        prop_assert_eq!(r.gpu_makespan, 0.0);
    }

    /// Memory-model rate factors are positive and the bandwidth term is
    /// non-increasing in the core count.
    #[test]
    fn memory_model_sane(k in 1usize..256) {
        let m = MemoryModel::nehalem_ex();
        let f = m.rate_factor(k);
        prop_assert!(f > 0.0 && f.is_finite());
        // Past saturation, adding cores never raises the per-core rate
        // within one socket (cache term only jumps at socket boundaries).
        if k > 1 && k % 8 != 1 {
            prop_assert!(m.rate_factor(k) <= m.rate_factor(k - 1) + 1e-12);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The list scheduler is never worse than the barrier-style id-greedy
    /// executor on the same graph. `schedule` guarantees this by
    /// construction: it dispatches both by bottom-level priority and in
    /// plain id order (the barrier executor's order) and keeps the better
    /// schedule, so Graham list-scheduling anomalies cannot surface.
    #[test]
    fn dag_never_worse_than_barrier(g in arb_dag(), cores in 1usize..16) {
        let cfg = SimConfig::ideal(cores, 1.0);
        let bar = simulate(&g, &cfg);
        let dag = schedule(&g, &DagConfig::cpu_only(cfg));
        prop_assert!(
            dag.makespan <= bar.makespan + 1e-9 * bar.makespan.max(1.0),
            "dag {} > barrier {}", dag.makespan, bar.makespan
        );
    }
}
