use std::fmt;

/// Index of a task within a [`TaskGraph`].
pub type TaskId = u32;

/// Which resource pool a task occupies while it runs.
///
/// `Cpu` tasks cost flops and run on any of the node's virtual cores at the
/// configured effective rate. `Gpu(d)` tasks are *pre-timed* device kernels:
/// their cost is already in seconds and they are pinned to device lane `d`
/// (a kernel simulated for device 3 cannot run on device 1 — per-device
/// slowdown and partition are baked into its duration).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Lane {
    #[default]
    Cpu,
    Gpu(u16),
}

/// A unit of schedulable work: `cost` units of single-core work (flops for
/// [`Lane::Cpu`], seconds for [`Lane::Gpu`]) that may only start once all
/// `deps` have completed.
#[derive(Clone, Debug)]
pub struct Task {
    pub cost: f64,
    pub deps: Vec<TaskId>,
    pub lane: Lane,
}

/// A rejected [`TaskGraph::try_add`]: the task description could not be part
/// of a well-formed DAG.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphError {
    /// Cost was NaN, infinite, or negative.
    BadCost { id: TaskId, cost: f64 },
    /// A dependency referred to a task not yet added (forward edge — would
    /// make cycles representable).
    ForwardDep { id: TaskId, dep: TaskId },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::BadCost { id, cost } => {
                write!(f, "task {id}: cost {cost} is not finite and >= 0")
            }
            GraphError::ForwardDep { id, dep } => {
                write!(f, "task {id}: dependency {dep} does not precede it")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A dependency DAG of tasks. Dependencies must point at already-added
/// tasks, which makes cycles unrepresentable by construction — and that
/// invariant is *enforced* (release mode included): a malformed task is
/// rejected by [`TaskGraph::try_add`] and panics in [`TaskGraph::add`]
/// rather than silently mis-scheduling.
#[derive(Clone, Debug, Default)]
pub struct TaskGraph {
    pub(crate) tasks: Vec<Task>,
    /// Number of [`Lane::Gpu`] tasks (so the schedulers can cheaply tell a
    /// pure-CPU graph from a mixed one).
    pub(crate) gpu_tasks: usize,
    /// Highest GPU lane index referenced, if any.
    pub(crate) max_gpu_lane: Option<u16>,
}

impl TaskGraph {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        TaskGraph {
            tasks: Vec::with_capacity(n),
            gpu_tasks: 0,
            max_gpu_lane: None,
        }
    }

    /// Validated insertion: every dependency must be a previously returned
    /// id and the cost must be finite and non-negative. These are real
    /// checks, active in `--release` builds.
    pub fn try_add(
        &mut self,
        lane: Lane,
        cost: f64,
        deps: Vec<TaskId>,
    ) -> Result<TaskId, GraphError> {
        let id = self.tasks.len() as TaskId;
        if !(cost >= 0.0 && cost.is_finite()) {
            return Err(GraphError::BadCost { id, cost });
        }
        if let Some(&dep) = deps.iter().find(|&&d| d >= id) {
            return Err(GraphError::ForwardDep { id, dep });
        }
        if let Lane::Gpu(d) = lane {
            self.gpu_tasks += 1;
            self.max_gpu_lane = Some(self.max_gpu_lane.map_or(d, |m| m.max(d)));
        }
        self.tasks.push(Task { cost, deps, lane });
        Ok(id)
    }

    /// Add a CPU task; panics (also in release) when the task is malformed.
    /// Use [`TaskGraph::try_add`] to handle the error gracefully.
    pub fn add(&mut self, cost: f64, deps: Vec<TaskId>) -> TaskId {
        match self.try_add(Lane::Cpu, cost, deps) {
            Ok(id) => id,
            Err(e) => panic!("TaskGraph::add: {e}"),
        }
    }

    /// Add a device-lane task (`cost` in seconds); panics when malformed.
    pub fn add_gpu(&mut self, device: u16, cost: f64, deps: Vec<TaskId>) -> TaskId {
        match self.try_add(Lane::Gpu(device), cost, deps) {
            Ok(id) => id,
            Err(e) => panic!("TaskGraph::add_gpu: {e}"),
        }
    }

    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of device-lane tasks in the graph.
    pub fn gpu_task_count(&self) -> usize {
        self.gpu_tasks
    }

    /// Minimum number of GPU lanes a schedule of this graph requires
    /// (`max referenced lane + 1`, or 0 for a pure-CPU graph).
    pub fn required_gpu_lanes(&self) -> usize {
        self.max_gpu_lane.map_or(0, |m| m as usize + 1)
    }

    /// Sum of all **CPU** task costs (the work term of Graham's bound).
    /// GPU-lane tasks are excluded: their costs are seconds, not flops.
    pub fn total_work(&self) -> f64 {
        self.tasks
            .iter()
            .filter(|t| t.lane == Lane::Cpu)
            .map(|t| t.cost)
            .sum()
    }
}

/// Length of the longest dependency chain weighted by cost (the span term of
/// Graham's bound): a lower bound on any schedule's makespan, independent of
/// core count. Meaningful for pure-CPU graphs (uniform cost units).
pub fn critical_path(graph: &TaskGraph) -> f64 {
    let mut finish = vec![0.0f64; graph.tasks.len()];
    for (i, t) in graph.tasks.iter().enumerate() {
        let start = t
            .deps
            .iter()
            .map(|&d| finish[d as usize])
            .fold(0.0, f64::max);
        finish[i] = start + t.cost;
    }
    finish.iter().copied().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_path_of_chain_is_total() {
        let mut g = TaskGraph::new();
        let mut prev = None;
        for _ in 0..10 {
            let deps = prev.map(|p| vec![p]).unwrap_or_default();
            prev = Some(g.add(2.0, deps));
        }
        assert_eq!(critical_path(&g), 20.0);
        assert_eq!(g.total_work(), 20.0);
    }

    #[test]
    fn critical_path_of_independent_is_max() {
        let mut g = TaskGraph::new();
        for c in [1.0, 5.0, 3.0] {
            g.add(c, vec![]);
        }
        assert_eq!(critical_path(&g), 5.0);
        assert_eq!(g.total_work(), 9.0);
    }

    #[test]
    fn diamond_critical_path() {
        let mut g = TaskGraph::new();
        let a = g.add(1.0, vec![]);
        let b = g.add(4.0, vec![a]);
        let c = g.add(2.0, vec![a]);
        let _d = g.add(1.0, vec![b, c]);
        assert_eq!(critical_path(&g), 6.0); // a -> b -> d
    }

    #[test]
    fn empty_graph() {
        let g = TaskGraph::new();
        assert_eq!(critical_path(&g), 0.0);
        assert_eq!(g.total_work(), 0.0);
    }

    #[test]
    fn try_add_rejects_malformed_tasks() {
        let mut g = TaskGraph::new();
        let a = g.try_add(Lane::Cpu, 1.0, vec![]).unwrap();
        assert!(matches!(
            g.try_add(Lane::Cpu, f64::NAN, vec![]),
            Err(GraphError::BadCost { id: 1, .. })
        ));
        assert!(matches!(
            g.try_add(Lane::Cpu, -1.0, vec![]),
            Err(GraphError::BadCost { id: 1, .. })
        ));
        assert!(matches!(
            g.try_add(Lane::Cpu, 1.0, vec![a, 7]),
            Err(GraphError::ForwardDep { id: 1, dep: 7 })
        ));
        // A task may not depend on itself (its own id is a forward dep).
        assert!(matches!(
            g.try_add(Lane::Cpu, 1.0, vec![1]),
            Err(GraphError::ForwardDep { id: 1, dep: 1 })
        ));
        // The graph is unchanged by rejected inserts.
        assert_eq!(g.len(), 1);
    }

    #[test]
    #[should_panic(expected = "TaskGraph::add")]
    fn add_panics_on_forward_dep_in_release_too() {
        let mut g = TaskGraph::new();
        g.add(1.0, vec![3]);
    }

    #[test]
    fn gpu_lane_bookkeeping() {
        let mut g = TaskGraph::new();
        g.add(1.0, vec![]);
        assert_eq!(g.gpu_task_count(), 0);
        assert_eq!(g.required_gpu_lanes(), 0);
        g.add_gpu(2, 0.5, vec![]);
        g.add_gpu(0, 0.25, vec![]);
        assert_eq!(g.gpu_task_count(), 2);
        assert_eq!(g.required_gpu_lanes(), 3);
        // GPU seconds stay out of the flop-work total.
        assert_eq!(g.total_work(), 1.0);
    }
}
