/// Index of a task within a [`TaskGraph`].
pub type TaskId = u32;

/// A unit of schedulable work: `cost` units of single-core work that may
/// only start once all `deps` have completed.
#[derive(Clone, Debug)]
pub struct Task {
    pub cost: f64,
    pub deps: Vec<TaskId>,
}

/// A dependency DAG of tasks. Dependencies must point at already-added
/// tasks, which makes cycles unrepresentable by construction.
#[derive(Clone, Debug, Default)]
pub struct TaskGraph {
    pub(crate) tasks: Vec<Task>,
}

impl TaskGraph {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        TaskGraph {
            tasks: Vec::with_capacity(n),
        }
    }

    /// Add a task; every dependency must be a previously returned id.
    pub fn add(&mut self, cost: f64, deps: Vec<TaskId>) -> TaskId {
        let id = self.tasks.len() as TaskId;
        debug_assert!(
            cost >= 0.0 && cost.is_finite(),
            "task cost must be finite and >= 0"
        );
        debug_assert!(deps.iter().all(|&d| d < id), "deps must precede the task");
        self.tasks.push(Task { cost, deps });
        id
    }

    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Sum of all task costs (the work term of Graham's bound).
    pub fn total_work(&self) -> f64 {
        self.tasks.iter().map(|t| t.cost).sum()
    }
}

/// Length of the longest dependency chain weighted by cost (the span term of
/// Graham's bound): a lower bound on any schedule's makespan, independent of
/// core count.
pub fn critical_path(graph: &TaskGraph) -> f64 {
    let mut finish = vec![0.0f64; graph.tasks.len()];
    for (i, t) in graph.tasks.iter().enumerate() {
        let start = t
            .deps
            .iter()
            .map(|&d| finish[d as usize])
            .fold(0.0, f64::max);
        finish[i] = start + t.cost;
    }
    finish.iter().copied().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_path_of_chain_is_total() {
        let mut g = TaskGraph::new();
        let mut prev = None;
        for _ in 0..10 {
            let deps = prev.map(|p| vec![p]).unwrap_or_default();
            prev = Some(g.add(2.0, deps));
        }
        assert_eq!(critical_path(&g), 20.0);
        assert_eq!(g.total_work(), 20.0);
    }

    #[test]
    fn critical_path_of_independent_is_max() {
        let mut g = TaskGraph::new();
        for c in [1.0, 5.0, 3.0] {
            g.add(c, vec![]);
        }
        assert_eq!(critical_path(&g), 5.0);
        assert_eq!(g.total_work(), 9.0);
    }

    #[test]
    fn diamond_critical_path() {
        let mut g = TaskGraph::new();
        let a = g.add(1.0, vec![]);
        let b = g.add(4.0, vec![a]);
        let c = g.add(2.0, vec![a]);
        let _d = g.add(1.0, vec![b, c]);
        assert_eq!(critical_path(&g), 6.0); // a -> b -> d
    }

    #[test]
    fn empty_graph() {
        let g = TaskGraph::new();
        assert_eq!(critical_path(&g), 0.0);
        assert_eq!(g.total_work(), 0.0);
    }
}
