use crate::graph::{TaskGraph, TaskId};
use crate::memory::MemoryModel;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Configuration of the virtual multi-core node.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Number of virtual cores.
    pub cores: usize,
    /// Work units (flops) per second per core when one core is active.
    pub rate: f64,
    /// Fixed per-task scheduling overhead in seconds (spawn + steal cost of
    /// the task runtime). The paper reports this is negligible for ICC's
    /// OpenMP tasking; keep it small but nonzero so pathological graphs of
    /// millions of tiny tasks are penalized realistically.
    pub task_overhead: f64,
    /// Second-order memory-system scaling effects.
    pub memory: MemoryModel,
}

impl SimConfig {
    /// A node with `cores` ideal cores at `rate` flops/s and no overhead.
    pub fn ideal(cores: usize, rate: f64) -> Self {
        SimConfig {
            cores,
            rate,
            task_overhead: 0.0,
            memory: MemoryModel::ideal(),
        }
    }
}

/// Outcome of simulating a task graph on the virtual node.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Wall-clock seconds from first task start to last task completion.
    pub makespan: f64,
    /// Busy seconds accumulated per core.
    pub busy: Vec<f64>,
    /// Number of tasks executed (= graph size).
    pub tasks_executed: usize,
}

impl SimResult {
    /// Mean core utilization in [0, 1].
    pub fn utilization(&self) -> f64 {
        if self.makespan <= 0.0 || self.busy.is_empty() {
            return 0.0;
        }
        let total: f64 = self.busy.iter().sum();
        total / (self.makespan * self.busy.len() as f64)
    }
}

/// Totally ordered f64 for use in heaps. All simulated times are finite.
#[derive(Clone, Copy, PartialEq)]
struct Time(f64);

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("simulated times are finite")
    }
}

/// Simulate a greedy list scheduler (the textbook model of a work-stealing
/// task runtime) executing `graph` on the virtual node described by `cfg`.
///
/// A task becomes *ready* when all dependencies have completed; whenever a
/// core is idle and a task is ready, the lowest-id ready task starts on the
/// lowest-id idle core. Greedy scheduling is within a factor of 2 of optimal
/// (Graham) and is what OpenMP-task / rayon runtimes approximate in practice.
///
/// Each task occupies its core for `cfg.task_overhead + cost / (rate · m(k))`
/// seconds, where `m(k)` is the [`MemoryModel`] rate factor at `cfg.cores`
/// active cores.
///
/// Fully deterministic: same graph + same config ⇒ same result.
pub fn simulate(graph: &TaskGraph, cfg: &SimConfig) -> SimResult {
    assert!(cfg.cores >= 1, "node must have at least one core");
    assert!(cfg.rate > 0.0, "core rate must be positive");
    assert!(
        graph.gpu_task_count() == 0,
        "the barrier executor is CPU-only; use sched_sim::schedule for \
         graphs with GPU-lane tasks"
    );
    let n = graph.tasks.len();
    let eff_rate = cfg.rate * cfg.memory.rate_factor(cfg.cores);

    // Dependency bookkeeping: remaining-dep counts and reverse adjacency.
    let mut indeg = vec![0u32; n];
    let mut children: Vec<Vec<TaskId>> = vec![Vec::new(); n];
    for (i, t) in graph.tasks.iter().enumerate() {
        indeg[i] = t.deps.len() as u32;
        for &d in &t.deps {
            children[d as usize].push(i as TaskId);
        }
    }

    // Ready tasks, lowest id first.
    let mut ready: BinaryHeap<Reverse<TaskId>> = (0..n)
        .filter(|&i| indeg[i] == 0)
        .map(|i| Reverse(i as TaskId))
        .collect();

    // Idle cores (lowest id first) and busy cores keyed by completion time.
    let mut idle: BinaryHeap<Reverse<u32>> = (0..cfg.cores as u32).map(Reverse).collect();
    let mut running: BinaryHeap<Reverse<(Time, u32, TaskId)>> = BinaryHeap::new();

    let mut busy = vec![0.0f64; cfg.cores];
    let mut now = 0.0f64;
    let mut makespan = 0.0f64;
    let mut executed = 0usize;

    loop {
        // Start every ready task we have an idle core for.
        while !ready.is_empty() && !idle.is_empty() {
            let Reverse(task) = ready.pop().unwrap();
            let Reverse(core) = idle.pop().unwrap();
            let dur = cfg.task_overhead + graph.tasks[task as usize].cost / eff_rate;
            busy[core as usize] += dur;
            running.push(Reverse((Time(now + dur), core, task)));
        }
        // Nothing running: either done, or the graph had a cycle (impossible
        // by construction of TaskGraph).
        let Some(Reverse((Time(t), core, task))) = running.pop() else {
            break;
        };
        now = t;
        makespan = makespan.max(now);
        executed += 1;
        idle.push(Reverse(core));
        for &c in &children[task as usize] {
            indeg[c as usize] -= 1;
            if indeg[c as usize] == 0 {
                ready.push(Reverse(c));
            }
        }
        // Drain every other completion at the same instant so their
        // successors become ready before we refill cores.
        while let Some(&Reverse((Time(t2), _, _))) = running.peek() {
            if t2 > now {
                break;
            }
            let Reverse((_, core2, task2)) = running.pop().unwrap();
            executed += 1;
            idle.push(Reverse(core2));
            for &c in &children[task2 as usize] {
                indeg[c as usize] -= 1;
                if indeg[c as usize] == 0 {
                    ready.push(Reverse(c));
                }
            }
        }
    }

    debug_assert_eq!(executed, n, "all tasks must run exactly once");
    SimResult {
        makespan,
        busy,
        tasks_executed: executed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::critical_path;

    fn chain(n: usize, cost: f64) -> TaskGraph {
        let mut g = TaskGraph::new();
        let mut prev: Option<TaskId> = None;
        for _ in 0..n {
            let deps = prev.map(|p| vec![p]).unwrap_or_default();
            prev = Some(g.add(cost, deps));
        }
        g
    }

    fn independent(costs: &[f64]) -> TaskGraph {
        let mut g = TaskGraph::new();
        for &c in costs {
            g.add(c, vec![]);
        }
        g
    }

    #[test]
    fn chain_is_serial_on_any_core_count() {
        let g = chain(50, 2.0);
        for cores in [1, 4, 32] {
            let r = simulate(&g, &SimConfig::ideal(cores, 1.0));
            assert!(
                (r.makespan - 100.0).abs() < 1e-9,
                "cores={cores}: {}",
                r.makespan
            );
        }
    }

    #[test]
    fn independent_tasks_divide_over_cores() {
        let g = independent(&vec![1.0; 64]);
        let r1 = simulate(&g, &SimConfig::ideal(1, 1.0));
        let r8 = simulate(&g, &SimConfig::ideal(8, 1.0));
        assert!((r1.makespan - 64.0).abs() < 1e-9);
        assert!((r8.makespan - 8.0).abs() < 1e-9);
        assert!((r8.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn graham_bounds_hold() {
        // A moderately irregular random-ish DAG (deterministic construction).
        let mut g = TaskGraph::new();
        let mut ids = Vec::new();
        for i in 0..200usize {
            let deps = if i < 3 {
                vec![]
            } else {
                vec![ids[i / 2], ids[i / 3]]
            };
            ids.push(g.add(((i * 7919) % 13 + 1) as f64, deps));
        }
        let work = g.total_work();
        let span = critical_path(&g);
        for cores in [1usize, 2, 4, 16] {
            let r = simulate(&g, &SimConfig::ideal(cores, 1.0));
            let lower = span.max(work / cores as f64);
            let upper = span + work / cores as f64;
            assert!(
                r.makespan >= lower - 1e-9,
                "cores={cores}: below lower bound"
            );
            assert!(
                r.makespan <= upper + 1e-9,
                "cores={cores}: above Graham bound"
            );
        }
    }

    #[test]
    fn rate_scales_time_inversely() {
        let g = independent(&[10.0; 16]);
        let slow = simulate(&g, &SimConfig::ideal(4, 1.0));
        let fast = simulate(&g, &SimConfig::ideal(4, 10.0));
        assert!((slow.makespan / fast.makespan - 10.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_adds_per_task() {
        let g = independent(&[1.0; 8]);
        let base = SimConfig::ideal(1, 1.0);
        let with = SimConfig {
            task_overhead: 0.5,
            ..base
        };
        let r0 = simulate(&g, &base);
        let r1 = simulate(&g, &with);
        assert!((r1.makespan - r0.makespan - 8.0 * 0.5).abs() < 1e-9);
    }

    #[test]
    fn memory_model_slows_wide_runs() {
        let g = independent(&vec![1.0; 128]);
        let ideal = simulate(&g, &SimConfig::ideal(32, 1.0));
        let real = simulate(
            &g,
            &SimConfig {
                cores: 32,
                rate: 1.0,
                task_overhead: 0.0,
                memory: MemoryModel::nehalem_ex(),
            },
        );
        assert!(
            real.makespan > ideal.makespan,
            "saturation must slow 32-core runs"
        );
    }

    #[test]
    fn deterministic() {
        let mut g = TaskGraph::new();
        let mut ids: Vec<TaskId> = Vec::new();
        for i in 0..500usize {
            let deps = if i == 0 {
                vec![]
            } else {
                vec![ids[i * 31 % i]]
            };
            ids.push(g.add((i % 5 + 1) as f64, deps));
        }
        let cfg = SimConfig::ideal(6, 3.0);
        let a = simulate(&g, &cfg);
        let b = simulate(&g, &cfg);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.busy, b.busy);
    }

    #[test]
    fn empty_graph_is_instant() {
        let g = TaskGraph::new();
        let r = simulate(&g, &SimConfig::ideal(4, 1.0));
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.tasks_executed, 0);
        assert_eq!(r.utilization(), 0.0);
    }

    #[test]
    fn fork_join_uses_parallelism() {
        // root -> 16 parallel children -> join
        let mut g = TaskGraph::new();
        let root = g.add(1.0, vec![]);
        let kids: Vec<_> = (0..16).map(|_| g.add(4.0, vec![root])).collect();
        g.add(1.0, kids.clone());
        let r1 = simulate(&g, &SimConfig::ideal(1, 1.0));
        let r4 = simulate(&g, &SimConfig::ideal(4, 1.0));
        let r16 = simulate(&g, &SimConfig::ideal(16, 1.0));
        assert!((r1.makespan - (1.0 + 64.0 + 1.0)).abs() < 1e-9);
        assert!((r4.makespan - (1.0 + 16.0 + 1.0)).abs() < 1e-9);
        assert!((r16.makespan - (1.0 + 4.0 + 1.0)).abs() < 1e-9);
    }
}
