//! The dependency-driven list scheduler: critical-path (bottom-level)
//! priorities, a GPU resource lane per device, and a per-task
//! completion-time report.
//!
//! [`crate::simulate`] models the paper's phase-barriered OpenMP runtime: a
//! greedy scheduler that starts the lowest-id ready task. This module is the
//! data-driven executor of Ltaief & Yokota (arXiv:1203.0889) and Agullo et
//! al. (arXiv:1206.0115): tasks become ready the moment their *individual*
//! dependencies drain, the dispatcher picks the ready task with the longest
//! remaining critical path (its *bottom level*), and pre-timed GPU kernels
//! occupy their device lane concurrently with CPU tasks — so M2L overlaps
//! P2P and the downward sweep starts before the upward sweep finishes.
//!
//! Fully deterministic: priorities tie-break on [`TaskId`] (lowest wins),
//! so the same graph + config always produces the same schedule.

use crate::graph::{Lane, TaskGraph, TaskId};
use crate::sim::SimConfig;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Configuration of the dependency-driven executor: the CPU side is the
/// same virtual node [`crate::simulate`] uses; `gpu_lanes` is the number of
/// device lanes available for [`Lane::Gpu`] tasks.
#[derive(Clone, Copy, Debug)]
pub struct DagConfig {
    pub cpu: SimConfig,
    pub gpu_lanes: usize,
}

impl DagConfig {
    /// A CPU-only executor (graphs with GPU tasks are rejected).
    pub fn cpu_only(cpu: SimConfig) -> Self {
        DagConfig { cpu, gpu_lanes: 0 }
    }
}

/// Which of the dual anomaly-guard passes produced the kept schedule
/// (Graham's anomalies: the "smarter" bottom-level order can pack worse
/// than plain id order, so [`schedule`] runs both and keeps the better).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedPass {
    /// Bottom-level (critical-path) priorities won (or tied).
    #[default]
    ByLevel,
    /// The plain task-id oracle order packed strictly better.
    ById,
}

impl SchedPass {
    /// Stable lowercase label for telemetry fields.
    pub fn label(self) -> &'static str {
        match self {
            SchedPass::ByLevel => "by_level",
            SchedPass::ById => "by_id",
        }
    }
}

/// Outcome of one dependency-driven schedule: the pipelined makespan plus
/// the per-task completion times the phase telemetry aggregates.
#[derive(Clone, Debug)]
pub struct DagResult {
    /// Wall-clock seconds from first task start to last task completion,
    /// over *all* lanes (CPU cores and GPU devices together).
    pub makespan: f64,
    /// Latest CPU-task completion (0 when the graph has no CPU tasks).
    pub cpu_makespan: f64,
    /// Latest GPU-task completion (0 when the graph has no GPU tasks).
    pub gpu_makespan: f64,
    /// Busy seconds accumulated per CPU core.
    pub busy: Vec<f64>,
    /// Busy seconds accumulated per GPU lane.
    pub gpu_busy: Vec<f64>,
    /// Per-task start time, indexed by [`TaskId`].
    pub start: Vec<f64>,
    /// Per-task completion time, indexed by [`TaskId`].
    pub finish: Vec<f64>,
    /// Per-task ready time (instant the last dependency completed; 0 for
    /// roots), indexed by [`TaskId`]. `start - ready` is how long the task
    /// waited on a resource rather than on its dependencies.
    pub ready: Vec<f64>,
    /// Execution slot per task: `< cores` is a CPU core index, `>= cores`
    /// is `cores + GPU lane index`. Indexed by [`TaskId`].
    pub slot: Vec<u32>,
    /// Number of CPU cores the schedule ran on (decodes [`DagResult::slot`]).
    pub cores: usize,
    /// Which anomaly-guard pass produced this schedule.
    pub pass: SchedPass,
    /// Number of tasks executed (= graph size).
    pub tasks_executed: usize,
}

impl DagResult {
    /// Mean CPU-core utilization in [0, 1] over the CPU makespan.
    pub fn cpu_utilization(&self) -> f64 {
        if self.cpu_makespan <= 0.0 || self.busy.is_empty() {
            return 0.0;
        }
        let total: f64 = self.busy.iter().sum();
        total / (self.cpu_makespan * self.busy.len() as f64)
    }

    /// Utilization of GPU lane `device` in [0, 1] over the *overall*
    /// makespan — the fraction of the step the device spent computing
    /// rather than waiting on the pipeline. 0 for unknown lanes.
    pub fn lane_utilization(&self, device: usize) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        match self.gpu_busy.get(device) {
            Some(&b) => b / self.makespan,
            None => 0.0,
        }
    }
}

/// Totally ordered f64 for heap keys. All simulated times are finite
/// (task costs are validated by [`TaskGraph::try_add`]).
#[derive(Clone, Copy, PartialEq)]
struct Time(f64);

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("simulated times are finite")
    }
}

/// Per-task durations in seconds on the given config: CPU costs convert
/// through the effective core rate (memory model at `cores` active cores)
/// plus the per-task overhead; GPU costs are already seconds.
fn durations(graph: &TaskGraph, cfg: &DagConfig) -> Vec<f64> {
    let eff_rate = cfg.cpu.rate * cfg.cpu.memory.rate_factor(cfg.cpu.cores);
    graph
        .tasks
        .iter()
        .map(|t| match t.lane {
            Lane::Cpu => cfg.cpu.task_overhead + t.cost / eff_rate,
            Lane::Gpu(_) => t.cost,
        })
        .collect()
}

/// Bottom level of every task: its own duration plus the longest downward
/// chain of dependent durations — the classic critical-path-to-exit list
/// priority. Computed in one reverse pass (dependencies always precede
/// their task, so successors always follow it).
pub fn bottom_levels(graph: &TaskGraph, cfg: &DagConfig) -> Vec<f64> {
    let dur = durations(graph, cfg);
    let n = graph.tasks.len();
    // level[i] = dur[i] + max over successors s of level[s]. Dependencies
    // always precede their task, so iterating ids in reverse visits every
    // successor before the tasks it depends on.
    let mut level = dur.clone();
    for i in (0..n).rev() {
        for &d in &graph.tasks[i].deps {
            let cand = dur[d as usize] + level[i];
            if cand > level[d as usize] {
                level[d as usize] = cand;
            }
        }
    }
    level
}

/// Execute `graph` on the virtual node with dependency-driven list
/// scheduling.
///
/// * **Ready tracking** — a task enters the ready queue the instant its
///   last dependency completes; there are no phase barriers.
/// * **Priority** — ready CPU tasks dispatch highest [`bottom_levels`]
///   first; ties break on lowest [`TaskId`] (deterministic).
/// * **GPU lanes** — a [`Lane::Gpu`]`(d)` task occupies lane `d` for its
///   pre-timed duration, concurrently with whatever the cores are doing;
///   per-lane ready tasks also dispatch by bottom-level priority.
/// * **Anomaly guard** — greedy list scheduling is not monotone in its
///   priority order (Graham's anomalies: a "smarter" order can pack
///   worse), so the dispatcher also evaluates the oracle's plain
///   task-id order and keeps whichever schedule finishes first. The
///   data-driven executor therefore never loses to the barrier executor
///   on the same graph, by construction.
///
/// Panics if the graph references a GPU lane `>= cfg.gpu_lanes` — callers
/// derive both from the same device roster, so a mismatch is a bug.
pub fn schedule(graph: &TaskGraph, cfg: &DagConfig) -> DagResult {
    assert!(cfg.cpu.cores >= 1, "node must have at least one core");
    assert!(cfg.cpu.rate > 0.0, "core rate must be positive");
    assert!(
        graph.required_gpu_lanes() <= cfg.gpu_lanes,
        "graph references GPU lane {} but only {} lanes exist",
        graph.required_gpu_lanes().saturating_sub(1),
        cfg.gpu_lanes,
    );
    let by_level = run_list(graph, cfg, &bottom_levels(graph, cfg));
    // Oracle order: uniform priorities reduce the ready heaps to pure
    // lowest-TaskId dispatch — exactly `simulate`'s order on CPU tasks.
    let by_id = run_list(graph, cfg, &vec![0.0; graph.tasks.len()]);
    if by_id.makespan < by_level.makespan {
        DagResult {
            pass: SchedPass::ById,
            ..by_id
        }
    } else {
        by_level
    }
}

/// One deterministic list-scheduling pass under the given priorities
/// (higher dispatches first, ties prefer the smaller [`TaskId`]).
fn run_list(graph: &TaskGraph, cfg: &DagConfig, prio: &[f64]) -> DagResult {
    let n = graph.tasks.len();
    let dur = durations(graph, cfg);

    let mut indeg = vec![0u32; n];
    let mut children: Vec<Vec<TaskId>> = vec![Vec::new(); n];
    for (i, t) in graph.tasks.iter().enumerate() {
        indeg[i] = t.deps.len() as u32;
        for &d in &t.deps {
            children[d as usize].push(i as TaskId);
        }
    }

    // Ready queues: max-heap on (bottom level, lowest id). `Reverse(id)`
    // makes equal priorities prefer the smaller TaskId.
    type ReadyHeap = BinaryHeap<(Time, Reverse<TaskId>)>;
    let mut ready_cpu: ReadyHeap = BinaryHeap::new();
    let mut ready_gpu: Vec<ReadyHeap> = vec![BinaryHeap::new(); cfg.gpu_lanes];
    let push_ready = |t: TaskId, rc: &mut ReadyHeap, rg: &mut [ReadyHeap]| {
        let key = (Time(prio[t as usize]), Reverse(t));
        match graph.tasks[t as usize].lane {
            Lane::Cpu => rc.push(key),
            Lane::Gpu(d) => rg[d as usize].push(key),
        }
    };
    for (i, &deg) in indeg.iter().enumerate() {
        if deg == 0 {
            push_ready(i as TaskId, &mut ready_cpu, &mut ready_gpu);
        }
    }

    // Resources: idle CPU cores (lowest id first) and per-device lanes.
    let mut idle_cores: BinaryHeap<Reverse<u32>> = (0..cfg.cpu.cores as u32).map(Reverse).collect();
    let mut lane_idle = vec![true; cfg.gpu_lanes];
    // Running tasks keyed by completion time; the slot id disambiguates
    // (< cores = core index, >= cores = cores + lane index).
    let mut running: BinaryHeap<Reverse<(Time, u32, TaskId)>> = BinaryHeap::new();

    let mut busy = vec![0.0f64; cfg.cpu.cores];
    let mut gpu_busy = vec![0.0f64; cfg.gpu_lanes];
    let mut start = vec![0.0f64; n];
    let mut finish = vec![0.0f64; n];
    // Roots are ready at t=0; everything else stamps the instant its last
    // dependency drains (inside `complete`).
    let mut ready = vec![0.0f64; n];
    let mut slot_of = vec![0u32; n];
    let mut now = 0.0f64;
    let mut cpu_makespan = 0.0f64;
    let mut gpu_makespan = 0.0f64;
    let mut executed = 0usize;

    let complete = |slot: u32,
                    task: TaskId,
                    now: f64,
                    executed: &mut usize,
                    idle_cores: &mut BinaryHeap<Reverse<u32>>,
                    lane_idle: &mut [bool],
                    indeg: &mut [u32],
                    ready: &mut [f64],
                    rc: &mut ReadyHeap,
                    rg: &mut [ReadyHeap]| {
        *executed += 1;
        if (slot as usize) < cfg.cpu.cores {
            idle_cores.push(Reverse(slot));
        } else {
            lane_idle[slot as usize - cfg.cpu.cores] = true;
        }
        for &c in &children[task as usize] {
            indeg[c as usize] -= 1;
            if indeg[c as usize] == 0 {
                ready[c as usize] = now;
                let key = (Time(prio[c as usize]), Reverse(c));
                match graph.tasks[c as usize].lane {
                    Lane::Cpu => rc.push(key),
                    Lane::Gpu(d) => rg[d as usize].push(key),
                }
            }
        }
    };

    loop {
        // Dispatch: fill idle CPU cores by priority, and give every idle
        // GPU lane its highest-priority ready kernel.
        while !ready_cpu.is_empty() && !idle_cores.is_empty() {
            let (_, Reverse(task)) = ready_cpu.pop().unwrap();
            let Reverse(core) = idle_cores.pop().unwrap();
            let d = dur[task as usize];
            busy[core as usize] += d;
            start[task as usize] = now;
            finish[task as usize] = now + d;
            slot_of[task as usize] = core;
            cpu_makespan = cpu_makespan.max(now + d);
            running.push(Reverse((Time(now + d), core, task)));
        }
        for lane in 0..cfg.gpu_lanes {
            if lane_idle[lane] {
                if let Some((_, Reverse(task))) = ready_gpu[lane].pop() {
                    lane_idle[lane] = false;
                    let d = dur[task as usize];
                    gpu_busy[lane] += d;
                    start[task as usize] = now;
                    finish[task as usize] = now + d;
                    slot_of[task as usize] = (cfg.cpu.cores + lane) as u32;
                    gpu_makespan = gpu_makespan.max(now + d);
                    running.push(Reverse((
                        Time(now + d),
                        (cfg.cpu.cores + lane) as u32,
                        task,
                    )));
                }
            }
        }
        let Some(Reverse((Time(t), slot, task))) = running.pop() else {
            break;
        };
        now = t;
        complete(
            slot,
            task,
            now,
            &mut executed,
            &mut idle_cores,
            &mut lane_idle,
            &mut indeg,
            &mut ready,
            &mut ready_cpu,
            &mut ready_gpu,
        );
        // Drain every other completion at the same instant so their
        // successors become ready before we refill the resources.
        while let Some(&Reverse((Time(t2), _, _))) = running.peek() {
            if t2 > now {
                break;
            }
            let Reverse((_, slot2, task2)) = running.pop().unwrap();
            complete(
                slot2,
                task2,
                now,
                &mut executed,
                &mut idle_cores,
                &mut lane_idle,
                &mut indeg,
                &mut ready,
                &mut ready_cpu,
                &mut ready_gpu,
            );
        }
    }

    assert_eq!(executed, n, "all tasks must run exactly once");
    DagResult {
        makespan: cpu_makespan.max(gpu_makespan),
        cpu_makespan,
        gpu_makespan,
        busy,
        gpu_busy,
        start,
        finish,
        ready,
        slot: slot_of,
        cores: cfg.cpu.cores,
        pass: SchedPass::ByLevel,
        tasks_executed: executed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::critical_path;
    use crate::sim::simulate;

    fn cpu(cores: usize) -> DagConfig {
        DagConfig::cpu_only(SimConfig::ideal(cores, 1.0))
    }

    #[test]
    fn chain_matches_barrier_executor_exactly() {
        let mut g = TaskGraph::new();
        let mut prev = None;
        for i in 0..20 {
            let deps = prev.map(|p| vec![p]).unwrap_or_default();
            prev = Some(g.add((i % 4 + 1) as f64, deps));
        }
        for cores in [1usize, 4, 16] {
            let cfg = cpu(cores);
            let dag = schedule(&g, &cfg);
            let bar = simulate(&g, &cfg.cpu);
            assert_eq!(dag.makespan, bar.makespan, "cores={cores}");
            assert_eq!(dag.tasks_executed, g.len());
        }
    }

    #[test]
    fn priority_prefers_long_chains() {
        // One long chain (5+5+5) and three short independent tasks on two
        // cores. The bottom-level dispatcher starts the chain immediately;
        // lowest-id-first would too here, so craft ids so the chain comes
        // *last* — priority must still pick it first.
        let mut g = TaskGraph::new();
        for _ in 0..3 {
            g.add(5.0, vec![]);
        }
        let a = g.add(5.0, vec![]);
        let b = g.add(5.0, vec![a]);
        g.add(5.0, vec![b]);
        let r = schedule(&g, &cpu(2));
        // Chain (15) on one core, three shorts (15) on the other: 15 total.
        assert!((r.makespan - 15.0).abs() < 1e-9, "makespan {}", r.makespan);
        // The id-order barrier executor starts the shorts first: the chain
        // then finishes at 5 + 15 = 20.
        let bar = simulate(&g, &SimConfig::ideal(2, 1.0));
        assert!((bar.makespan - 20.0).abs() < 1e-9);
    }

    #[test]
    fn ties_break_by_task_id() {
        // Four identical ready tasks, one core: execution order must be id
        // order, reflected in strictly increasing start times by id.
        let mut g = TaskGraph::new();
        for _ in 0..4 {
            g.add(2.0, vec![]);
        }
        let r = schedule(&g, &cpu(1));
        for i in 0..4 {
            assert!((r.start[i] - 2.0 * i as f64).abs() < 1e-12);
        }
        let again = schedule(&g, &cpu(1));
        assert_eq!(r.start, again.start);
        assert_eq!(r.finish, again.finish);
    }

    #[test]
    fn completion_times_are_consistent() {
        let mut g = TaskGraph::new();
        let a = g.add(3.0, vec![]);
        let b = g.add(1.0, vec![a]);
        let c = g.add(2.0, vec![a]);
        let d = g.add(1.0, vec![b, c]);
        let r = schedule(&g, &cpu(2));
        // Starts respect dependencies, finishes are start + duration.
        for (i, t) in [(b, a), (c, a), (d, b), (d, c)] {
            assert!(r.start[i as usize] >= r.finish[t as usize] - 1e-12);
        }
        assert_eq!(r.makespan, r.finish.iter().copied().fold(0.0, f64::max));
        assert!((r.finish[d as usize] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn gpu_lane_overlaps_cpu_work() {
        // 4s of CPU work on one core, plus a 3s kernel on each of two
        // lanes: everything overlaps, makespan = max(4, 3).
        let mut g = TaskGraph::new();
        for _ in 0..4 {
            g.add(1.0, vec![]);
        }
        g.add_gpu(0, 3.0, vec![]);
        g.add_gpu(1, 3.0, vec![]);
        let r = schedule(
            &g,
            &DagConfig {
                cpu: SimConfig::ideal(1, 1.0),
                gpu_lanes: 2,
            },
        );
        assert!((r.cpu_makespan - 4.0).abs() < 1e-9);
        assert!((r.gpu_makespan - 3.0).abs() < 1e-9);
        assert!((r.makespan - 4.0).abs() < 1e-9);
        assert_eq!(r.gpu_busy, vec![3.0, 3.0]);
    }

    #[test]
    fn gpu_lane_serializes_same_device() {
        // Two kernels pinned to the same lane run back to back even with
        // another lane idle: per-device partition is baked into the costs.
        let mut g = TaskGraph::new();
        g.add_gpu(0, 2.0, vec![]);
        g.add_gpu(0, 2.0, vec![]);
        let r = schedule(
            &g,
            &DagConfig {
                cpu: SimConfig::ideal(1, 1.0),
                gpu_lanes: 2,
            },
        );
        assert!((r.gpu_makespan - 4.0).abs() < 1e-9);
        assert_eq!(r.gpu_busy[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "GPU lane")]
    fn missing_lane_is_rejected() {
        let mut g = TaskGraph::new();
        g.add_gpu(3, 1.0, vec![]);
        schedule(&g, &DagConfig::cpu_only(SimConfig::ideal(1, 1.0)));
    }

    #[test]
    fn graham_bounds_still_hold() {
        let mut g = TaskGraph::new();
        let mut ids = Vec::new();
        for i in 0..300usize {
            let deps = if i < 4 {
                vec![]
            } else {
                vec![ids[i / 2], ids[i / 5]]
            };
            ids.push(g.add(((i * 7919) % 17 + 1) as f64, deps));
        }
        let work = g.total_work();
        let span = critical_path(&g);
        for cores in [1usize, 3, 8, 32] {
            let r = schedule(&g, &cpu(cores));
            assert!(r.makespan + 1e-9 >= span.max(work / cores as f64));
            assert!(r.makespan <= span + work / cores as f64 + 1e-9);
        }
    }

    #[test]
    fn empty_graph_is_instant() {
        let g = TaskGraph::new();
        let r = schedule(&g, &cpu(4));
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.tasks_executed, 0);
        assert_eq!(r.cpu_utilization(), 0.0);
    }

    #[test]
    fn busy_conserves_work() {
        let mut g = TaskGraph::new();
        let mut ids: Vec<TaskId> = Vec::new();
        for i in 0..200usize {
            let deps = if i == 0 {
                vec![]
            } else {
                vec![ids[i * 13 % i]]
            };
            ids.push(g.add((i % 7 + 1) as f64, deps));
        }
        let r = schedule(&g, &cpu(5));
        let busy: f64 = r.busy.iter().sum();
        assert!((busy - g.total_work()).abs() < 1e-9 * g.total_work());
    }
}
