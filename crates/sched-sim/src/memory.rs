/// Second-order scaling effects of a real multi-socket node.
///
/// The paper's Fig. 6 shows two departures from ideal scaling on its 4×8-core
/// Nehalem-EX system: *slightly superlinear* speedup up to 16 cores (each
/// engaged socket contributes extra L3, letting multipole expansions be
/// reused) and *diminishing* speedup toward 32 cores (memory-system
/// saturation). This model captures both with a per-core rate multiplier:
///
/// ```text
/// rate(k) = cache(k) · bandwidth(k)
/// cache(k)     = 1 + cache_bonus · (sockets(k) − 1)
/// bandwidth(k) = 1 / (1 + ((k − 1) / bandwidth_cores)^3)
/// ```
///
/// The cubic knee keeps the bandwidth term near 1 through the mid-range
/// (where the cache bonus makes aggregate scaling superlinear) and bites
/// hard past `bandwidth_cores`, reproducing the paper's "speedup diminishes;
/// we conjecture saturation of the memory system" at 32 cores.
#[derive(Clone, Copy, Debug)]
pub struct MemoryModel {
    /// Fractional per-core speed gain per additional engaged socket.
    pub cache_bonus: f64,
    /// Cores per socket of the virtual node.
    pub cores_per_socket: usize,
    /// Soft knee (in cores) of memory-bandwidth saturation.
    pub bandwidth_cores: f64,
}

impl MemoryModel {
    /// No cache bonus, no bandwidth limit: ideal scaling.
    pub fn ideal() -> Self {
        MemoryModel {
            cache_bonus: 0.0,
            cores_per_socket: usize::MAX,
            bandwidth_cores: f64::INFINITY,
        }
    }

    /// Parameters tuned to the shape of the paper's Test System B
    /// (4 × Intel X7560, 8 cores each): mildly superlinear through 16 cores,
    /// ~29× at 32 cores.
    pub fn nehalem_ex() -> Self {
        MemoryModel {
            cache_bonus: 0.07,
            cores_per_socket: 8,
            bandwidth_cores: 45.0,
        }
    }

    /// Per-core execution-rate multiplier when `k` cores are active.
    pub fn rate_factor(&self, k: usize) -> f64 {
        assert!(k >= 1);
        let sockets = k.div_ceil(self.cores_per_socket.max(1)).max(1);
        let cache = 1.0 + self.cache_bonus * (sockets - 1) as f64;
        let x = (k as f64 - 1.0) / self.bandwidth_cores;
        let bandwidth = 1.0 / (1.0 + x * x * x);
        cache * bandwidth
    }
}

impl Default for MemoryModel {
    fn default() -> Self {
        MemoryModel::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_flat() {
        let m = MemoryModel::ideal();
        for k in [1, 2, 8, 32, 128] {
            assert!((m.rate_factor(k) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn nehalem_shape_matches_paper() {
        let m = MemoryModel::nehalem_ex();
        // Superlinear band: aggregate rate at 16 cores beats 16x one core.
        let agg16 = 16.0 * m.rate_factor(16);
        let agg1 = m.rate_factor(1);
        assert!(agg16 > 16.0 * agg1, "expected superlinear at 16 cores");
        // Diminishing: 32 cores clearly below 32x, but still above 16 cores.
        let agg32 = 32.0 * m.rate_factor(32);
        assert!(agg32 < 30.0 * agg1);
        assert!(agg32 > agg16);
    }

    #[test]
    fn rate_decreases_past_knee() {
        let m = MemoryModel::nehalem_ex();
        assert!(m.rate_factor(64) < m.rate_factor(8));
    }
}
