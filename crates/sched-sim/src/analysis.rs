//! Schedule analytics: where did the makespan go?
//!
//! [`crate::schedule`] reports *what* the schedule was (per-task start /
//! finish / slot); this module explains *why* it was that long. Three
//! instruments, all derived purely from the recorded schedule:
//!
//! * **Per-lane stats** ([`LaneStats`]) — busy seconds, utilization over
//!   the makespan, and an idle-gap census (count, total, max, and a
//!   4-bucket histogram by gap size relative to the makespan) for every
//!   CPU core and GPU lane.
//! * **Realized critical path** ([`SchedAnalysis::crit_path`]) — the actual
//!   chain of abutting task executions that determined the makespan,
//!   extracted by walking back from the last-finishing task. At each hop
//!   the blocker is either a *dependency* (the task started the instant it
//!   became ready, so its latest-finishing predecessor is the blocker) or a
//!   *resource* (the task waited ready while its slot was occupied, so the
//!   slot's previous occupant is the blocker — the scheduler is non-delay,
//!   so that occupant finished exactly when this task started). Either way
//!   the blocker's finish equals the current task's start, so the chain's
//!   durations telescope to exactly the makespan — the reconciliation
//!   invariant `afmm-sched explain` checks to 1e-9.
//! * **Bottleneck attribution** — the critical path's duration split by
//!   lane (CPU vs each GPU device) and by blocking cause: dependency-bound
//!   time is irreducible chain latency, resource-bound time on CPU slots is
//!   dispatch starvation (more cores would shrink it), resource-bound time
//!   on a GPU lane is device serialization (a different partition would).

use crate::dag::DagResult;
use crate::graph::{TaskGraph, TaskId};

/// Why a critical-path task could not have started any earlier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HopBound {
    /// First task of the chain: started at t = 0 (or the walk stopped).
    Start,
    /// Started the instant it became ready — blocked by its
    /// latest-finishing dependency.
    Dependency,
    /// Sat ready while its slot was busy — blocked by the previous task
    /// on the same core / GPU lane.
    Resource,
}

impl HopBound {
    /// Stable lowercase label for telemetry fields and CLI tables.
    pub fn label(self) -> &'static str {
        match self {
            HopBound::Start => "start",
            HopBound::Dependency => "dep",
            HopBound::Resource => "res",
        }
    }
}

/// One link of the realized critical path, in execution order.
#[derive(Clone, Copy, Debug)]
pub struct CritTask {
    pub task: TaskId,
    /// Execution slot (`< cores` = core index, else `cores + lane`).
    pub slot: u32,
    pub start: f64,
    pub finish: f64,
    pub bound: HopBound,
}

impl CritTask {
    pub fn duration(&self) -> f64 {
        self.finish - self.start
    }
}

/// Idle-gap histogram bucket edges, as fractions of the makespan:
/// `< 0.1%`, `0.1–1%`, `1–10%`, `>= 10%`.
pub const GAP_BUCKETS: usize = 4;

/// Occupancy census of one execution slot over the schedule's makespan.
/// Gaps include the leading idle stretch before the slot's first task and
/// the trailing one after its last.
#[derive(Clone, Debug)]
pub struct LaneStats {
    /// Slot index (`< cores` = CPU core, else GPU lane `slot - cores`).
    pub slot: u32,
    pub is_gpu: bool,
    /// Busy seconds accumulated on this slot.
    pub busy: f64,
    /// `busy / makespan` in [0, 1].
    pub utilization: f64,
    /// Number of tasks the slot executed.
    pub tasks: usize,
    /// Idle gaps of positive length (including leading/trailing).
    pub idle_gaps: usize,
    pub idle_total: f64,
    pub idle_max: f64,
    /// Gap-size histogram over `gap / makespan` (see [`GAP_BUCKETS`]).
    pub gap_hist: [usize; GAP_BUCKETS],
}

/// The full X-ray of one schedule. All fractions are over the critical
/// path's own duration sum, so each family sums to 1.0 (on a non-empty
/// schedule): `crit_cpu_frac + crit_gpu_frac` and
/// `dependency_frac + resource_cpu_frac + resource_gpu_frac`.
#[derive(Clone, Debug)]
pub struct SchedAnalysis {
    pub makespan: f64,
    /// One entry per slot: `cores` CPU entries then one per GPU lane.
    pub lanes: Vec<LaneStats>,
    /// Realized critical path, earliest task first.
    pub crit_path: Vec<CritTask>,
    /// Sum of critical-path durations; equals `makespan` up to float
    /// rounding whenever `crit_truncated` is false.
    pub crit_sum: f64,
    /// Defensive flag: the backward walk hit its iteration bound without
    /// reaching t = 0 (cannot happen for schedules produced by
    /// [`crate::schedule`]; reconciliation will flag it if it does).
    pub crit_truncated: bool,
    /// `1 - Σ busy / (slots × makespan)`: overall fraction of slot-time
    /// spent idle.
    pub lane_idle_frac: f64,
    /// Fraction of the makespan during which at least one CPU core *and*
    /// at least one GPU lane were simultaneously busy — the paper's
    /// heterogeneous pipelining, measured.
    pub pipeline_overlap: f64,
    /// Critical-path time spent executing on CPU slots / `crit_sum`.
    pub crit_cpu_frac: f64,
    /// Critical-path time spent executing on GPU lanes / `crit_sum`.
    pub crit_gpu_frac: f64,
    /// Per-slot critical-path fractions (same indexing as `lanes`).
    pub crit_slot_frac: Vec<f64>,
    /// Dependency-bound (plus chain-start) critical-path time / `crit_sum`.
    pub dependency_frac: f64,
    /// Resource-bound time on CPU slots: dispatch starvation.
    pub resource_cpu_frac: f64,
    /// Resource-bound time on GPU lanes: device serialization.
    pub resource_gpu_frac: f64,
}

/// Human-readable slot name: `core3` or `gpu1`.
pub fn slot_label(slot: u32, cores: usize) -> String {
    if (slot as usize) < cores {
        format!("core{slot}")
    } else {
        format!("gpu{}", slot as usize - cores)
    }
}

/// Analyze a schedule produced by [`crate::schedule`] on `graph`.
pub fn analyze(graph: &TaskGraph, res: &DagResult) -> SchedAnalysis {
    let n = graph.len();
    let cores = res.cores;
    let nslots = cores + res.gpu_busy.len();
    let makespan = res.makespan;

    // Per-slot task lists in execution order. Slots never run two tasks at
    // once, so (start, finish, id) is a total execution order per slot.
    let mut by_slot: Vec<Vec<TaskId>> = vec![Vec::new(); nslots];
    for t in 0..n {
        by_slot[res.slot[t] as usize].push(t as TaskId);
    }
    for list in &mut by_slot {
        list.sort_by(|&a, &b| {
            let ka = (res.start[a as usize], res.finish[a as usize], a);
            let kb = (res.start[b as usize], res.finish[b as usize], b);
            ka.partial_cmp(&kb).expect("schedule times are finite")
        });
    }
    let mut pos = vec![0usize; n];
    for list in &by_slot {
        for (p, &t) in list.iter().enumerate() {
            pos[t as usize] = p;
        }
    }

    let lanes = lane_stats(res, &by_slot, makespan);
    let lane_idle_frac = if makespan > 0.0 && nslots > 0 {
        let total: f64 = res.busy.iter().chain(res.gpu_busy.iter()).sum();
        (1.0 - total / (makespan * nslots as f64)).max(0.0)
    } else {
        0.0
    };
    let pipeline_overlap = pipeline_overlap(res, makespan);

    let (crit_path, crit_truncated) = extract_critical_path(graph, res, &by_slot, &pos);
    let crit_sum: f64 = crit_path.iter().map(|c| c.duration()).sum();

    // Attribution: split the path's duration by executing lane and by
    // blocking cause, normalized by the path's own sum so the fractions
    // close to 1.0 by construction.
    let denom = if crit_sum > 0.0 { crit_sum } else { 1.0 };
    let mut cpu_s = 0.0;
    let mut gpu_s = 0.0;
    let mut dep_s = 0.0;
    let mut res_cpu_s = 0.0;
    let mut res_gpu_s = 0.0;
    let mut slot_s = vec![0.0f64; nslots];
    for c in &crit_path {
        let d = c.duration();
        let on_cpu = (c.slot as usize) < cores;
        if on_cpu {
            cpu_s += d;
        } else {
            gpu_s += d;
        }
        slot_s[c.slot as usize] += d;
        match c.bound {
            HopBound::Start | HopBound::Dependency => dep_s += d,
            HopBound::Resource => {
                if on_cpu {
                    res_cpu_s += d;
                } else {
                    res_gpu_s += d;
                }
            }
        }
    }

    SchedAnalysis {
        makespan,
        lanes,
        crit_path,
        crit_sum,
        crit_truncated,
        lane_idle_frac,
        pipeline_overlap,
        crit_cpu_frac: cpu_s / denom,
        crit_gpu_frac: gpu_s / denom,
        crit_slot_frac: slot_s.iter().map(|&s| s / denom).collect(),
        dependency_frac: dep_s / denom,
        resource_cpu_frac: res_cpu_s / denom,
        resource_gpu_frac: res_gpu_s / denom,
    }
}

/// Walk back from the makespan-defining task. Returns the path in
/// execution order plus the defensive truncation flag.
fn extract_critical_path(
    graph: &TaskGraph,
    res: &DagResult,
    by_slot: &[Vec<TaskId>],
    pos: &[usize],
) -> (Vec<CritTask>, bool) {
    let n = graph.len();
    if n == 0 || res.makespan <= 0.0 {
        return (Vec::new(), false);
    }
    // Makespan-defining task: latest finish, lowest id on ties.
    let mut cur: TaskId = 0;
    for t in 1..n {
        if res.finish[t] > res.finish[cur as usize] {
            cur = t as TaskId;
        }
    }

    let mut path: Vec<CritTask> = Vec::new();
    let mut truncated = false;
    loop {
        if path.len() > n {
            truncated = true;
            break;
        }
        let i = cur as usize;
        let (bound, next) = if res.start[i] > res.ready[i] {
            // Waited on its slot: the blocker is the slot's previous
            // occupant (non-delay schedule ⇒ it finished at start[i]).
            let p = pos[i];
            if p == 0 {
                (HopBound::Start, None) // unreachable for our scheduler
            } else {
                (
                    HopBound::Resource,
                    Some(by_slot[res.slot[i] as usize][p - 1]),
                )
            }
        } else if !graph.tasks[i].deps.is_empty() {
            // Started the instant it became ready: the blocker is the
            // latest-finishing dependency (finish == ready == start).
            let pred = graph.tasks[i]
                .deps
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    // max finish, lowest id on ties
                    res.finish[b as usize]
                        .partial_cmp(&res.finish[a as usize])
                        .expect("schedule times are finite")
                        .then(a.cmp(&b))
                })
                .expect("deps checked non-empty");
            (HopBound::Dependency, Some(pred))
        } else {
            (HopBound::Start, None)
        };
        path.push(CritTask {
            task: cur,
            slot: res.slot[i],
            start: res.start[i],
            finish: res.finish[i],
            bound,
        });
        match next {
            Some(p) => cur = p,
            None => break,
        }
    }
    path.reverse();
    (path, truncated)
}

fn lane_stats(res: &DagResult, by_slot: &[Vec<TaskId>], makespan: f64) -> Vec<LaneStats> {
    let cores = res.cores;
    by_slot
        .iter()
        .enumerate()
        .map(|(slot, list)| {
            let is_gpu = slot >= cores;
            let busy = if is_gpu {
                res.gpu_busy[slot - cores]
            } else {
                res.busy[slot]
            };
            let mut gaps = 0usize;
            let mut total = 0.0f64;
            let mut max = 0.0f64;
            let mut hist = [0usize; GAP_BUCKETS];
            let mut record = |gap: f64| {
                if gap > 0.0 {
                    gaps += 1;
                    total += gap;
                    max = max.max(gap);
                    hist[gap_bucket(gap, makespan)] += 1;
                }
            };
            let mut cursor = 0.0f64;
            for &t in list {
                record(res.start[t as usize] - cursor);
                cursor = res.finish[t as usize];
            }
            record(makespan - cursor);
            LaneStats {
                slot: slot as u32,
                is_gpu,
                busy,
                utilization: if makespan > 0.0 { busy / makespan } else { 0.0 },
                tasks: list.len(),
                idle_gaps: gaps,
                idle_total: total,
                idle_max: max,
                gap_hist: hist,
            }
        })
        .collect()
}

fn gap_bucket(gap: f64, makespan: f64) -> usize {
    let frac = if makespan > 0.0 { gap / makespan } else { 1.0 };
    if frac < 1e-3 {
        0
    } else if frac < 1e-2 {
        1
    } else if frac < 1e-1 {
        2
    } else {
        3
    }
}

/// Fraction of the makespan with ≥1 CPU core and ≥1 GPU lane busy at once.
fn pipeline_overlap(res: &DagResult, makespan: f64) -> f64 {
    if makespan <= 0.0 || res.gpu_busy.is_empty() {
        return 0.0;
    }
    let cores = res.cores;
    let collect = |want_gpu: bool| -> Vec<(f64, f64)> {
        let iv: Vec<(f64, f64)> = (0..res.slot.len())
            .filter(|&t| ((res.slot[t] as usize) >= cores) == want_gpu)
            .map(|t| (res.start[t], res.finish[t]))
            .collect();
        union_intervals(iv)
    };
    let cpu_iv = collect(false);
    let gpu_iv = collect(true);
    intersect_len(&cpu_iv, &gpu_iv) / makespan
}

/// Merge possibly-overlapping intervals into a sorted disjoint union.
fn union_intervals(mut iv: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    iv.retain(|&(s, f)| f > s);
    iv.sort_by(|a, b| a.partial_cmp(b).expect("schedule times are finite"));
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(iv.len());
    for (s, f) in iv {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(f),
            _ => out.push((s, f)),
        }
    }
    out
}

/// Total length of the intersection of two disjoint sorted interval lists.
fn intersect_len(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
    let (mut i, mut j) = (0usize, 0usize);
    let mut len = 0.0f64;
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            len += hi - lo;
        }
        if a[i].1 < b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    len
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{bottom_levels, schedule, DagConfig};
    use crate::sim::SimConfig;
    use proptest::prelude::*;

    fn cpu(cores: usize) -> DagConfig {
        DagConfig::cpu_only(SimConfig::ideal(cores, 1.0))
    }

    fn het(cores: usize, lanes: usize) -> DagConfig {
        DagConfig {
            cpu: SimConfig::ideal(cores, 1.0),
            gpu_lanes: lanes,
        }
    }

    fn assert_reconciles(a: &SchedAnalysis) {
        assert!(!a.crit_truncated);
        assert!(
            (a.crit_sum - a.makespan).abs() <= 1e-9 * a.makespan.max(1.0),
            "crit_sum {} vs makespan {}",
            a.crit_sum,
            a.makespan
        );
        if !a.crit_path.is_empty() {
            let lane_sum = a.crit_cpu_frac + a.crit_gpu_frac;
            let cause_sum = a.dependency_frac + a.resource_cpu_frac + a.resource_gpu_frac;
            assert!((lane_sum - 1.0).abs() < 1e-9, "lane fractions {lane_sum}");
            assert!(
                (cause_sum - 1.0).abs() < 1e-9,
                "cause fractions {cause_sum}"
            );
            let slot_sum: f64 = a.crit_slot_frac.iter().sum();
            assert!((slot_sum - 1.0).abs() < 1e-9, "slot fractions {slot_sum}");
        }
        // Every consecutive pair abuts: pred finish == succ start.
        for w in a.crit_path.windows(2) {
            assert_eq!(w[0].finish, w[1].start);
        }
        if let Some(first) = a.crit_path.first() {
            assert_eq!(first.start, 0.0);
            assert_eq!(first.bound, HopBound::Start);
        }
    }

    #[test]
    fn chain_critical_path_is_whole_chain() {
        // 5-task chain of cost 2 on 4 cores: every hop dependency-bound.
        let mut g = TaskGraph::new();
        let mut prev = None;
        for _ in 0..5 {
            let deps = prev.map(|p| vec![p]).unwrap_or_default();
            prev = Some(g.add(2.0, deps));
        }
        let cfg = cpu(4);
        let bl = bottom_levels(&g, &cfg);
        // Exact bottom levels of a cost-2 chain: 10, 8, 6, 4, 2.
        assert_eq!(bl, vec![10.0, 8.0, 6.0, 4.0, 2.0]);
        let r = schedule(&g, &cfg);
        let a = analyze(&g, &r);
        assert_eq!(a.makespan, 10.0);
        assert_eq!(a.crit_path.len(), 5);
        assert_eq!(
            a.crit_path.iter().map(|c| c.task).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        for c in &a.crit_path[1..] {
            assert_eq!(c.bound, HopBound::Dependency);
        }
        assert_eq!(a.dependency_frac, 1.0);
        assert_eq!(a.crit_cpu_frac, 1.0);
        assert_eq!(a.pipeline_overlap, 0.0);
        // One core is busy the whole time, three fully idle.
        assert!((a.lane_idle_frac - 0.75).abs() < 1e-12);
        assert_reconciles(&a);
    }

    #[test]
    fn diamond_picks_heavy_arm() {
        // a(1) -> {b(4), c(2)} -> d(1) on 2 cores: path a,b,d = 6.
        let mut g = TaskGraph::new();
        let a = g.add(1.0, vec![]);
        let b = g.add(4.0, vec![a]);
        let c = g.add(2.0, vec![a]);
        let d = g.add(1.0, vec![b, c]);
        let r = schedule(&g, &cpu(2));
        assert_eq!(r.makespan, 6.0);
        let an = analyze(&g, &r);
        assert_eq!(
            an.crit_path.iter().map(|t| t.task).collect::<Vec<_>>(),
            vec![a, b, d]
        );
        assert_eq!(an.crit_path[1].bound, HopBound::Dependency);
        assert_eq!(an.crit_path[2].bound, HopBound::Dependency);
        // ready-time bookkeeping: d became ready when b finished (t = 5).
        assert_eq!(r.ready[d as usize], 5.0);
        assert_eq!(r.ready[c as usize], 1.0);
        assert_reconciles(&an);
    }

    #[test]
    fn fork_join_on_one_core_is_resource_bound() {
        // root(1) -> 3 × branch(2) -> join(1) on ONE core: the branches
        // serialize, so the path crosses two resource-bound hops.
        let mut g = TaskGraph::new();
        let root = g.add(1.0, vec![]);
        let branches: Vec<TaskId> = (0..3).map(|_| g.add(2.0, vec![root])).collect();
        let join = g.add(1.0, branches.clone());
        let r = schedule(&g, &cpu(1));
        assert_eq!(r.makespan, 8.0);
        let a = analyze(&g, &r);
        // Path: root, b0, b1, b2, join — b1 and b2 resource-bound.
        assert_eq!(a.crit_path.len(), 5);
        assert_eq!(
            a.crit_path.iter().map(|t| t.bound).collect::<Vec<_>>(),
            vec![
                HopBound::Start,
                HopBound::Dependency,
                HopBound::Resource,
                HopBound::Resource,
                HopBound::Dependency,
            ]
        );
        // 4s resource-bound (starvation) of an 8s makespan.
        assert!((a.resource_cpu_frac - 0.5).abs() < 1e-12);
        assert_eq!(a.resource_gpu_frac, 0.0);
        // ready-times: every branch ready at 1.0 even though two waited.
        for &b in &branches {
            assert_eq!(r.ready[b as usize], 1.0);
        }
        assert_eq!(r.ready[join as usize], 7.0);
        assert_reconciles(&a);
    }

    #[test]
    fn gpu_lane_contention_is_serialization() {
        // Two 3s kernels pinned to lane 0 behind a 1s CPU root, plus a 2s
        // CPU tail after the kernels: path = root, k0, k1, tail = 8, with
        // k1 resource-bound on the lane.
        let mut g = TaskGraph::new();
        let root = g.add(1.0, vec![]);
        let k0 = g.add_gpu(0, 3.0, vec![root]);
        let k1 = g.add_gpu(0, 3.0, vec![root]);
        let tail = g.add(2.0, vec![k0, k1]);
        // Independent 5s CPU task on the second core, overlapping kernels.
        g.add(5.0, vec![]);
        let r = schedule(&g, &het(2, 2));
        assert_eq!(r.makespan, 9.0);
        let a = analyze(&g, &r);
        assert_eq!(
            a.crit_path.iter().map(|t| t.task).collect::<Vec<_>>(),
            vec![root, k0, k1, tail]
        );
        assert_eq!(a.crit_path[2].bound, HopBound::Resource);
        // 3s of the 9s path is GPU-lane serialization; 6s on GPU total.
        assert!((a.resource_gpu_frac - 3.0 / 9.0).abs() < 1e-12);
        assert!((a.crit_gpu_frac - 6.0 / 9.0).abs() < 1e-12);
        // Lane utilization: lane 0 busy 6 of 9, lane 1 idle.
        assert!((r.lane_utilization(0) - 6.0 / 9.0).abs() < 1e-12);
        assert_eq!(r.lane_utilization(1), 0.0);
        assert_eq!(r.lane_utilization(7), 0.0);
        // Overlap: CPU busy [0,5)∪[7,9), GPU busy [1,7) ⇒ overlap [1,5).
        assert!((a.pipeline_overlap - 4.0 / 9.0).abs() < 1e-12);
        assert_reconciles(&a);
    }

    #[test]
    fn empty_graph_analysis_is_zero() {
        let g = TaskGraph::new();
        let r = schedule(&g, &het(2, 1));
        let a = analyze(&g, &r);
        assert!(a.crit_path.is_empty());
        assert_eq!(a.crit_sum, 0.0);
        assert_eq!(a.lane_idle_frac, 0.0);
        assert_eq!(a.pipeline_overlap, 0.0);
        assert_eq!(a.lanes.len(), 3);
    }

    #[test]
    fn idle_gaps_are_counted() {
        // Core 1 runs a 1s task, then idles until the 5s chain on core 0
        // finishes: exactly one trailing gap of 4s on core 1.
        let mut g = TaskGraph::new();
        let a0 = g.add(5.0, vec![]);
        g.add(1.0, vec![]);
        g.add(1.0, vec![a0]); // keeps core 0 busy to 6s
        let r = schedule(&g, &cpu(2));
        let an = analyze(&g, &r);
        let lane1 = &an.lanes[1];
        assert_eq!(lane1.tasks, 1);
        assert_eq!(lane1.idle_gaps, 1);
        assert!((lane1.idle_total - 5.0).abs() < 1e-12);
        assert!((lane1.idle_max - 5.0).abs() < 1e-12);
        assert_eq!(lane1.gap_hist[3], 1); // 5/6 of makespan ⇒ top bucket
        assert!((lane1.utilization - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn slot_labels() {
        assert_eq!(slot_label(0, 4), "core0");
        assert_eq!(slot_label(3, 4), "core3");
        assert_eq!(slot_label(4, 4), "gpu0");
        assert_eq!(slot_label(6, 4), "gpu2");
    }

    #[test]
    fn interval_helpers() {
        let u = union_intervals(vec![(3.0, 4.0), (0.0, 1.0), (0.5, 2.0), (4.0, 5.0)]);
        assert_eq!(u, vec![(0.0, 2.0), (3.0, 5.0)]);
        let v = union_intervals(vec![(1.0, 1.0)]);
        assert!(v.is_empty());
        let len = intersect_len(&[(0.0, 2.0), (3.0, 5.0)], &[(1.0, 4.0)]);
        assert!((len - 2.0).abs() < 1e-12);
    }

    /// Random layered DAGs with mixed CPU/GPU tasks: the extracted path
    /// must always telescope to the makespan, the fractions must close,
    /// and the per-lane busy census must match the scheduler's own.
    fn arb_graph() -> impl Strategy<Value = (TaskGraph, usize, usize)> {
        (
            2usize..6, // cores
            0usize..4, // gpu lanes
            prop::collection::vec((0u8..41, 0u8..5, any::<u32>()), 1..60),
        )
            .prop_map(|(cores, lanes, specs)| {
                let mut g = TaskGraph::new();
                for (i, &(cost, ndeps, pick)) in specs.iter().enumerate() {
                    let deps: Vec<TaskId> = (0..ndeps as usize)
                        .filter(|_| i > 0)
                        .map(|k| ((pick as usize + k * 7) % i) as TaskId)
                        .collect();
                    let mut deps = deps;
                    deps.sort_unstable();
                    deps.dedup();
                    if lanes > 0 && pick % 3 == 0 {
                        g.add_gpu((pick as usize % lanes) as u16, cost as f64 * 0.125, deps);
                    } else {
                        g.add(cost as f64, deps);
                    }
                }
                (g, cores, lanes)
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]
        #[test]
        fn critical_path_sum_equals_makespan((g, cores, lanes) in arb_graph()) {
            let r = schedule(&g, &het(cores, lanes));
            let a = analyze(&g, &r);
            assert_reconciles(&a);
            // Lane census consistency with the scheduler's busy counters.
            for ls in &a.lanes {
                let from_sched = if ls.is_gpu {
                    r.gpu_busy[ls.slot as usize - cores]
                } else {
                    r.busy[ls.slot as usize]
                };
                prop_assert!((ls.busy - from_sched).abs() < 1e-9);
                prop_assert!(
                    ls.idle_total + ls.busy <= a.makespan + 1e-9,
                    "lane {} overfull", ls.slot
                );
            }
        }
    }
}
