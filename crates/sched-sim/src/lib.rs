//! Deterministic simulator of an OpenMP-style task scheduler on a virtual
//! multi-core node.
//!
//! The paper runs its far-field (expansion) work as recursively spawned
//! OpenMP tasks over the adaptive octree and reports CPU scaling on a
//! 32-core machine. This machine has one core, so the reproduction models
//! CPU time instead of measuring it: the AFMM builds the *real* task DAG
//! (real per-task costs derived from real operation counts), and this crate
//! computes the makespan of that DAG on `k` virtual cores with an
//! event-driven greedy scheduler — the textbook model of a work-stealing
//! runtime — plus a [`MemoryModel`] capturing the two second-order effects
//! the paper observes (slight superlinearity from extra per-socket L3, and
//! saturation of memory bandwidth at high core counts).
//!
//! Everything is deterministic: same graph + same config ⇒ same makespan.

mod analysis;
mod dag;
mod graph;
mod memory;
mod sim;

pub use analysis::{
    analyze, slot_label, CritTask, HopBound, LaneStats, SchedAnalysis, GAP_BUCKETS,
};
pub use dag::{bottom_levels, schedule, DagConfig, DagResult, SchedPass};
pub use graph::{critical_path, GraphError, Lane, Task, TaskGraph, TaskId};
pub use memory::MemoryModel;
pub use sim::{simulate, SimConfig, SimResult};
