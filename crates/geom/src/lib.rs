//! Small 3D geometry primitives shared by the AFMM crates.
//!
//! This crate is dependency-free and holds the vocabulary types used across
//! the workspace: [`Vec3`], [`Aabb`], and Morton (Z-order) encoding used by
//! the adaptive octree.

mod aabb;
mod morton;
mod vec3;

pub use aabb::Aabb;
pub use morton::{morton_decode, morton_encode, octant_of, MAX_MORTON_LEVEL};
pub use vec3::Vec3;
