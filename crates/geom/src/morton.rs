use crate::Vec3;

/// Deepest level representable by a 64-bit Morton code (21 bits per axis).
pub const MAX_MORTON_LEVEL: u32 = 21;

/// Spread the low 21 bits of `v` so there are two zero bits between
/// consecutive payload bits (the classic "part by 2" bit trick).
#[inline]
fn part_by_2(v: u64) -> u64 {
    let mut x = v & 0x1f_ffff; // 21 bits
    x = (x | (x << 32)) & 0x1f00000000ffff;
    x = (x | (x << 16)) & 0x1f0000ff0000ff;
    x = (x | (x << 8)) & 0x100f00f00f00f00f;
    x = (x | (x << 4)) & 0x10c30c30c30c30c3;
    x = (x | (x << 2)) & 0x1249249249249249;
    x
}

/// Inverse of [`part_by_2`].
#[inline]
fn compact_by_2(v: u64) -> u64 {
    let mut x = v & 0x1249249249249249;
    x = (x | (x >> 2)) & 0x10c30c30c30c30c3;
    x = (x | (x >> 4)) & 0x100f00f00f00f00f;
    x = (x | (x >> 8)) & 0x1f0000ff0000ff;
    x = (x | (x >> 16)) & 0x1f00000000ffff;
    x = (x | (x >> 32)) & 0x1f_ffff;
    x
}

/// Interleave three 21-bit cell coordinates into a 63-bit Morton code
/// (x lowest). Coordinates beyond 21 bits are truncated.
#[inline]
pub fn morton_encode(ix: u64, iy: u64, iz: u64) -> u64 {
    part_by_2(ix) | (part_by_2(iy) << 1) | (part_by_2(iz) << 2)
}

/// Recover the three cell coordinates from a Morton code.
#[inline]
pub fn morton_decode(code: u64) -> (u64, u64, u64) {
    (
        compact_by_2(code),
        compact_by_2(code >> 1),
        compact_by_2(code >> 2),
    )
}

/// Which of the eight child octants of the cube centered at `center` does
/// point `p` fall into? Bit 0 = x-high, bit 1 = y-high, bit 2 = z-high —
/// the same convention as Morton interleaving, so a path of octants down
/// the tree concatenates into a Morton prefix.
#[inline]
pub fn octant_of(center: Vec3, p: Vec3) -> usize {
    ((p.x >= center.x) as usize)
        | (((p.y >= center.y) as usize) << 1)
        | (((p.z >= center.z) as usize) << 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_small() {
        for x in 0..8u64 {
            for y in 0..8u64 {
                for z in 0..8u64 {
                    let c = morton_encode(x, y, z);
                    assert_eq!(morton_decode(c), (x, y, z));
                }
            }
        }
    }

    #[test]
    fn encode_decode_roundtrip_large() {
        let max = (1u64 << MAX_MORTON_LEVEL) - 1;
        for &(x, y, z) in &[(max, 0, max), (12345, 991123, max), (max, max, max)] {
            assert_eq!(morton_decode(morton_encode(x, y, z)), (x, y, z));
        }
    }

    #[test]
    fn morton_orders_by_octant_first() {
        // The highest interleaved bits come from the highest coordinate bits,
        // so codes sort by top-level octant before anything else.
        let lo = morton_encode(0, 0, 0);
        let hi = morton_encode(1 << 20, 0, 0); // x-high top-level octant
        let inner = morton_encode((1 << 20) - 1, (1 << 20) - 1, (1 << 20) - 1);
        assert!(lo < hi);
        assert!(inner < hi);
    }

    #[test]
    fn octant_convention() {
        let c = Vec3::ZERO;
        assert_eq!(octant_of(c, Vec3::new(-1.0, -1.0, -1.0)), 0);
        assert_eq!(octant_of(c, Vec3::new(1.0, -1.0, -1.0)), 1);
        assert_eq!(octant_of(c, Vec3::new(-1.0, 1.0, -1.0)), 2);
        assert_eq!(octant_of(c, Vec3::new(-1.0, -1.0, 1.0)), 4);
        assert_eq!(octant_of(c, Vec3::new(1.0, 1.0, 1.0)), 7);
        // Boundary points go to the "high" side (>=).
        assert_eq!(octant_of(c, Vec3::ZERO), 7);
    }
}
