use crate::Vec3;

/// An axis-aligned bounding box, stored as `min`/`max` corners.
///
/// The adaptive octree uses *cubes* (equal extents) for its cells; [`Aabb`]
/// provides the generic box plus [`Aabb::cube_containing`] which inflates a
/// box of points into the smallest enclosing cube, the root cell of a
/// decomposition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb {
    pub min: Vec3,
    pub max: Vec3,
}

impl Aabb {
    /// An "empty" box that absorbs any point via [`Aabb::grow`].
    pub const EMPTY: Aabb = Aabb {
        min: Vec3::splat(f64::INFINITY),
        max: Vec3::splat(f64::NEG_INFINITY),
    };

    #[inline]
    pub fn new(min: Vec3, max: Vec3) -> Self {
        Aabb { min, max }
    }

    /// Box spanning all points in `pts`; `EMPTY` for an empty slice.
    pub fn from_points(pts: &[Vec3]) -> Self {
        pts.iter().fold(Aabb::EMPTY, |b, &p| b.grow(p))
    }

    /// Smallest box containing `self` and `p`.
    #[inline]
    pub fn grow(self, p: Vec3) -> Aabb {
        Aabb::new(self.min.min(p), self.max.max(p))
    }

    /// Smallest box containing both boxes.
    #[inline]
    pub fn union(self, o: Aabb) -> Aabb {
        Aabb::new(self.min.min(o.min), self.max.max(o.max))
    }

    #[inline]
    pub fn center(self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Per-axis extents (`max - min`).
    #[inline]
    pub fn extents(self) -> Vec3 {
        self.max - self.min
    }

    /// True when `min <= max` on every axis (EMPTY is not valid).
    #[inline]
    pub fn is_valid(self) -> bool {
        self.min.x <= self.max.x && self.min.y <= self.max.y && self.min.z <= self.max.z
    }

    /// Closed-interval containment test.
    #[inline]
    pub fn contains(self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// The smallest axis-aligned *cube* that contains every point, centered
    /// on the points' bounding-box center and padded by `pad` (relative to
    /// the half-width) so points sitting exactly on the surface stay strictly
    /// inside after floating-point subdivision.
    ///
    /// Returns `(center, half_width)`. Degenerate inputs (all points equal)
    /// get a tiny positive half-width so subdivision remains well defined.
    pub fn cube_containing(pts: &[Vec3], pad: f64) -> (Vec3, f64) {
        let b = Aabb::from_points(pts);
        if !b.is_valid() {
            return (Vec3::ZERO, 1.0);
        }
        let c = b.center();
        let hw = (b.extents() * 0.5).max_component();
        let hw = if hw > 0.0 { hw * (1.0 + pad) } else { 1e-12 };
        (c, hw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_points_and_contains() {
        let pts = [
            Vec3::new(-1.0, 0.0, 2.0),
            Vec3::new(3.0, -2.0, 0.5),
            Vec3::new(0.0, 1.0, 1.0),
        ];
        let b = Aabb::from_points(&pts);
        assert_eq!(b.min, Vec3::new(-1.0, -2.0, 0.5));
        assert_eq!(b.max, Vec3::new(3.0, 1.0, 2.0));
        for p in pts {
            assert!(b.contains(p));
        }
        assert!(!b.contains(Vec3::new(10.0, 0.0, 0.0)));
    }

    #[test]
    fn empty_is_invalid_and_grows() {
        assert!(!Aabb::EMPTY.is_valid());
        let b = Aabb::EMPTY.grow(Vec3::ONE);
        assert!(b.is_valid());
        assert_eq!(b.min, Vec3::ONE);
        assert_eq!(b.max, Vec3::ONE);
    }

    #[test]
    fn union_covers_both() {
        let a = Aabb::new(Vec3::ZERO, Vec3::ONE);
        let b = Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0));
        let u = a.union(b);
        assert!(u.contains(Vec3::ZERO));
        assert!(u.contains(Vec3::splat(3.0)));
    }

    #[test]
    fn cube_contains_all_points() {
        let pts = [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(4.0, 1.0, 1.0),
            Vec3::new(2.0, -3.0, 0.0),
        ];
        let (c, hw) = Aabb::cube_containing(&pts, 1e-9);
        for p in pts {
            let d = p - c;
            assert!(d.x.abs() <= hw && d.y.abs() <= hw && d.z.abs() <= hw);
        }
        // Cube, so half-width is half of the largest extent (padded).
        assert!(hw >= 2.0);
    }

    #[test]
    fn cube_degenerate_point_cloud() {
        let pts = [Vec3::ONE; 5];
        let (c, hw) = Aabb::cube_containing(&pts, 0.0);
        assert_eq!(c, Vec3::ONE);
        assert!(hw > 0.0);
    }

    #[test]
    fn cube_empty_slice_defaults() {
        let (c, hw) = Aabb::cube_containing(&[], 0.0);
        assert_eq!(c, Vec3::ZERO);
        assert_eq!(hw, 1.0);
    }
}
