use std::iter::Sum;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// A 3-component double-precision vector.
///
/// The workhorse value type for positions, velocities, accelerations and
/// force densities. All operations are `#[inline]` and the layout is a plain
/// `[f64; 3]` so slices of `Vec3` can be reinterpreted cheaply by callers
/// that want flat storage.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// All three components set to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3::new(v, v, v)
    }

    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Euclidean distance to `o`.
    #[inline]
    pub fn dist(self, o: Vec3) -> f64 {
        (self - o).norm()
    }

    #[inline]
    pub fn dist_sq(self, o: Vec3) -> f64 {
        (self - o).norm_sq()
    }

    /// Unit vector in the same direction; `None` for the zero vector.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n > 0.0 {
            Some(self / n)
        } else {
            None
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Largest component.
    #[inline]
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// True when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    #[inline]
    pub fn from_array(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, s: f64) {
        *self = *self * s;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, s: f64) {
        *self = *self / s;
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_basics() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, -5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, -3.0, 9.0));
        assert_eq!(a - b, Vec3::new(-3.0, 7.0, -3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(b / 2.0, Vec3::new(2.0, -2.5, 3.0));
    }

    #[test]
    fn dot_and_cross() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(z), x);
        assert_eq!(z.cross(x), y);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(Vec3::new(1.0, 2.0, 3.0).dot(Vec3::new(4.0, 5.0, 6.0)), 32.0);
    }

    #[test]
    fn norms_and_distance() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(Vec3::ZERO.dist(v), 5.0);
        let u = v.normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-15);
        assert!(Vec3::ZERO.normalized().is_none());
    }

    #[test]
    fn component_ops() {
        let a = Vec3::new(1.0, 5.0, 3.0);
        let b = Vec3::new(2.0, 4.0, 9.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 9.0));
        assert_eq!(a.max_component(), 5.0);
        assert_eq!(a[0], 1.0);
        assert_eq!(a[1], 5.0);
        assert_eq!(a[2], 3.0);
    }

    #[test]
    fn sum_of_vectors() {
        let vs = [Vec3::new(1.0, 0.0, 2.0), Vec3::new(-1.0, 3.0, 0.0)];
        let s: Vec3 = vs.iter().copied().sum();
        assert_eq!(s, Vec3::new(0.0, 3.0, 2.0));
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }
}
