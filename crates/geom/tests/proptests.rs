//! Property tests for the geometry primitives.

use geom::{morton_decode, morton_encode, octant_of, Aabb, Vec3, MAX_MORTON_LEVEL};
use proptest::prelude::*;

fn arb_vec3() -> impl Strategy<Value = Vec3> {
    (-1e6f64..1e6, -1e6f64..1e6, -1e6f64..1e6).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #[test]
    fn morton_roundtrip(x in 0u64..(1 << MAX_MORTON_LEVEL), y in 0u64..(1 << MAX_MORTON_LEVEL), z in 0u64..(1 << MAX_MORTON_LEVEL)) {
        prop_assert_eq!(morton_decode(morton_encode(x, y, z)), (x, y, z));
    }

    /// Morton codes sort by top-level octant first: the high octant bits
    /// dominate the comparison.
    #[test]
    fn morton_orders_by_coarse_octant(
        a in (0u64..(1 << MAX_MORTON_LEVEL), 0u64..(1 << MAX_MORTON_LEVEL), 0u64..(1 << MAX_MORTON_LEVEL)),
        b in (0u64..(1 << MAX_MORTON_LEVEL), 0u64..(1 << MAX_MORTON_LEVEL), 0u64..(1 << MAX_MORTON_LEVEL)),
    ) {
        let top = |v: u64| v >> (MAX_MORTON_LEVEL - 1);
        let oct_a = top(a.0) | (top(a.1) << 1) | (top(a.2) << 2);
        let oct_b = top(b.0) | (top(b.1) << 1) | (top(b.2) << 2);
        let ca = morton_encode(a.0, a.1, a.2);
        let cb = morton_encode(b.0, b.1, b.2);
        if oct_a != oct_b {
            prop_assert_eq!(ca < cb, oct_a < oct_b);
        }
    }

    #[test]
    fn vector_algebra_identities(a in arb_vec3(), b in arb_vec3(), s in -100f64..100.0) {
        // Distributivity and scaling.
        let lhs = (a + b) * s;
        let rhs = a * s + b * s;
        prop_assert!((lhs - rhs).norm() <= 1e-9 * (lhs.norm() + 1.0));
        // Cross product is antisymmetric and orthogonal to both arguments.
        let c = a.cross(b);
        prop_assert!((c + b.cross(a)).norm() <= 1e-9 * (c.norm() + 1.0));
        let scale = a.norm() * b.norm();
        if scale > 1e-6 {
            prop_assert!(c.dot(a).abs() <= 1e-6 * scale * (a.norm() + 1.0));
            prop_assert!(c.dot(b).abs() <= 1e-6 * scale * (b.norm() + 1.0));
        }
        // Cauchy–Schwarz.
        prop_assert!(a.dot(b).abs() <= a.norm() * b.norm() * (1.0 + 1e-12) + 1e-12);
    }

    #[test]
    fn cube_containing_contains_all(pts in prop::collection::vec(arb_vec3(), 1..100)) {
        let (c, hw) = Aabb::cube_containing(&pts, 1e-9);
        for p in &pts {
            let d = *p - c;
            prop_assert!(d.x.abs() <= hw * (1.0 + 1e-9));
            prop_assert!(d.y.abs() <= hw * (1.0 + 1e-9));
            prop_assert!(d.z.abs() <= hw * (1.0 + 1e-9));
        }
        prop_assert!(hw > 0.0);
    }

    #[test]
    fn aabb_union_contains_both(pts1 in prop::collection::vec(arb_vec3(), 1..20), pts2 in prop::collection::vec(arb_vec3(), 1..20)) {
        let a = Aabb::from_points(&pts1);
        let b = Aabb::from_points(&pts2);
        let u = a.union(b);
        for p in pts1.iter().chain(&pts2) {
            prop_assert!(u.contains(*p));
        }
    }

    /// The octant convention is consistent with Morton interleaving: moving
    /// a point across the center plane flips exactly that octant bit.
    #[test]
    fn octant_bit_convention(c in arb_vec3(), off in (1e-3f64..1e3, 1e-3f64..1e3, 1e-3f64..1e3)) {
        let p = c + Vec3::new(off.0, off.1, off.2);
        prop_assert_eq!(octant_of(c, p), 7);
        let q = c - Vec3::new(off.0, off.1, off.2);
        prop_assert_eq!(octant_of(c, q), 0);
        let mixed = c + Vec3::new(off.0, -off.1, off.2);
        prop_assert_eq!(octant_of(c, mixed), 0b101);
    }
}
