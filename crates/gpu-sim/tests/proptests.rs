//! Property tests of the simulated GPU system: timing model monotonicity,
//! efficiency bounds, partition coverage, and device-count scaling.

use gpu_sim::{partition_by_interactions, GpuSpec, GpuSystem, P2pJob, SimGpu};
use proptest::prelude::*;

fn arb_jobs(max: usize) -> impl Strategy<Value = Vec<P2pJob>> {
    prop::collection::vec(
        (1usize..400, prop::collection::vec(1usize..300, 1..12))
            .prop_map(|(t, s)| P2pJob::new(t, s)),
        1..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Kernel time never decreases when a job is added.
    #[test]
    fn kernel_time_monotone_in_jobs(jobs in arb_jobs(40), extra in arb_jobs(4)) {
        let gpu = SimGpu::new(GpuSpec::default());
        let t0 = gpu.run_kernel(&jobs).elapsed_s;
        let mut more = jobs.clone();
        more.extend(extra);
        let t1 = gpu.run_kernel(&more).elapsed_s;
        prop_assert!(t1 + 1e-15 >= t0);
    }

    /// Efficiency is a proper fraction, and occupied work is at least the
    /// useful work.
    #[test]
    fn efficiency_bounds(jobs in arb_jobs(40)) {
        let r = SimGpu::new(GpuSpec::default()).run_kernel(&jobs);
        prop_assert!(r.occupied_pairs >= r.useful_pairs);
        let e = r.efficiency();
        prop_assert!(e > 0.0 && e <= 1.0, "efficiency {e}");
        let expect: u64 = jobs.iter().map(P2pJob::interactions).sum();
        prop_assert_eq!(r.useful_pairs, expect);
    }

    /// Kernel time is bounded below by the total useful work over all SM
    /// thread slots, and above by serializing every block on one SM.
    #[test]
    fn kernel_time_bounds(jobs in arb_jobs(30)) {
        let spec = GpuSpec::default();
        let gpu = SimGpu::new(spec);
        let r = gpu.run_kernel(&jobs);
        if r.blocks == 0 {
            return Ok(());
        }
        let elapsed = r.elapsed_s - spec.launch_overhead_s;
        // Lower bound: occupied thread-steps spread perfectly over all SMs.
        let lower = r.occupied_pairs as f64 * spec.pair_cycles
            / (spec.sms as f64 * spec.block_size as f64)
            / spec.clock_hz;
        prop_assert!(elapsed >= lower * 0.999, "elapsed {elapsed} < lower {lower}");
        // Upper bound: one SM runs everything serially (with tile loads).
        let serial: f64 = jobs
            .iter()
            .filter(|j| j.targets > 0 && j.total_sources() > 0)
            .map(|j| {
                let blocks = j.targets.div_ceil(spec.block_size) as f64;
                let cyc: f64 = j
                    .source_counts
                    .iter()
                    .map(|&n| {
                        n.div_ceil(spec.block_size) as f64 * spec.tile_load_cycles
                            + n as f64 * spec.pair_cycles
                    })
                    .sum();
                blocks * cyc
            })
            .sum::<f64>()
            / spec.clock_hz;
        prop_assert!(elapsed <= serial * 1.001 + 1e-15, "elapsed {elapsed} > serial {serial}");
    }

    /// Adding GPUs is never a *large* regression. (Strict monotonicity is
    /// false for the paper's single-pass walk — shifting share boundaries
    /// can strand one straggler job — but any regression is bounded by the
    /// scheduling-anomaly factor.)
    #[test]
    fn more_gpus_bounded_regression(jobs in arb_jobs(40), n in 1usize..4) {
        let time = |gpus: usize, jobs: &[P2pJob]| {
            GpuSystem::homogeneous(gpus, GpuSpec::default())
                .unwrap()
                .execute(jobs)
                .unwrap()
                .gpu_time()
                .unwrap()
        };
        let t_1 = time(1, &jobs);
        let t_m = time(n + 1, &jobs);
        prop_assert!(t_m <= 1.5 * t_1 + 1e-12, "1->{} gpus: {t_1} -> {t_m}", n + 1);
        // And with enough uniform work, scaling genuinely helps.
        let big: Vec<P2pJob> = (0..256).map(|_| P2pJob::new(128, vec![256; 8])).collect();
        let b1 = time(1, &big);
        let b4 = time(4, &big);
        prop_assert!(b4 < 0.35 * b1, "b1 {b1} b4 {b4}");
    }

    /// System-level totals are partition-invariant: useful pairs add up the
    /// same however jobs are split.
    #[test]
    fn totals_partition_invariant(jobs in arb_jobs(40), n in 1usize..6) {
        let sys = GpuSystem::homogeneous(n, GpuSpec::default()).unwrap();
        let t = sys.execute(&jobs).unwrap();
        let expect: u64 = jobs.iter().map(P2pJob::interactions).sum();
        prop_assert_eq!(t.total_pairs(), expect);
    }

    /// The partition walk never assigns out of order and never skips.
    #[test]
    fn partition_walk_correct(weights in prop::collection::vec(0u64..100_000, 0..300), n in 1usize..9) {
        let groups = partition_by_interactions(&weights, n);
        let flat: Vec<usize> = groups.concat();
        prop_assert_eq!(flat, (0..weights.len()).collect::<Vec<_>>());
    }
}

proptest! {
    /// With equal shares the weighted walk reduces exactly to the paper's.
    #[test]
    fn weighted_with_equal_shares_is_plain(
        weights in prop::collection::vec(0u64..10_000, 0..200),
        n in 1usize..6,
    ) {
        let plain = partition_by_interactions(&weights, n);
        let weighted =
            gpu_sim::partition_by_interactions_weighted(&weights, &vec![1.0; n]);
        prop_assert_eq!(plain, weighted);
    }

    /// The weighted walk covers every item exactly once in order.
    #[test]
    fn weighted_partition_covers(
        weights in prop::collection::vec(0u64..10_000, 0..200),
        shares in prop::collection::vec(0.1f64..10.0, 1..6),
    ) {
        let groups = gpu_sim::partition_by_interactions_weighted(&weights, &shares);
        prop_assert_eq!(groups.len(), shares.len());
        let flat: Vec<usize> = groups.concat();
        prop_assert_eq!(flat, (0..weights.len()).collect::<Vec<_>>());
    }
}
