/// Architectural parameters of one simulated GPU.
///
/// The defaults model a Fermi-class Tesla C2050 running the paper's
/// all-pairs P2P kernel. Only ratios matter for the reproduced figures; the
/// absolute rates are calibrated so that one GPU is roughly 30–60× a single
/// 2010-era CPU core on P2P work, matching the heterogeneous balance the
/// paper reports.
#[derive(Clone, Copy, Debug)]
pub struct GpuSpec {
    /// Number of streaming multiprocessors (block slots).
    pub sms: usize,
    /// Threads per block; one target body per thread.
    pub block_size: usize,
    /// SIMT width. Blocks are padded to whole warps.
    pub warp_size: usize,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Cycles for one thread to process one loaded source body.
    pub pair_cycles: f64,
    /// Cycles to cooperatively load one tile of `block_size` sources into
    /// shared memory (amortized latency + sync).
    pub tile_load_cycles: f64,
    /// Fixed host-side kernel launch overhead in seconds.
    pub launch_overhead_s: f64,
    /// Cycles per flop of offloaded *expansion* arithmetic (P2M/L2P):
    /// recurrence-heavy, scatter-writing code runs the GPU far below its
    /// streaming all-pairs efficiency.
    pub expansion_cycles_per_flop: f64,
}

impl GpuSpec {
    /// A Tesla C2050-like device (14 SMs, 1.15 GHz), ECC on, single
    /// precision — the paper's Test System A accelerator.
    pub fn tesla_c2050() -> Self {
        GpuSpec {
            sms: 14,
            block_size: 128,
            warp_size: 32,
            clock_hz: 1.15e9,
            pair_cycles: 200.0,
            tile_load_cycles: 200.0,
            launch_overhead_s: 20e-6,
            expansion_cycles_per_flop: 16.0,
        }
    }

    /// Peak useful throughput in body-body interactions per second, reached
    /// only when every thread of every block is a real target.
    pub fn peak_pairs_per_sec(&self) -> f64 {
        self.sms as f64 * self.block_size as f64 / self.pair_cycles * self.clock_hz
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        GpuSpec::tesla_c2050()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c2050_throughput_in_plausible_band() {
        let s = GpuSpec::tesla_c2050();
        let p = s.peak_pairs_per_sec();
        // Mid-10^10 pairs/s: the regime of published Fermi all-pairs codes.
        assert!(p > 1e10 && p < 1e11, "peak {p}");
    }
}
