//! Simulated CUDA-like accelerators for the AFMM's near-field (P2P) work.
//!
//! The paper runs all-pairs P2P kernels on 1–4 Tesla C2050 GPUs; this
//! machine has none, so the reproduction executes the *physics* on the host
//! (exactly — see the `afmm` crate) while this crate models the *clock* of
//! the paper's execution scheme faithfully:
//!
//! * one thread per target body, blocks of `block_size` threads
//!   ([`GpuSpec::block_size`]), as many blocks as needed per target node;
//! * source bodies loaded cooperatively in tiles, then marched through in
//!   lock step (the Nyland–Harris–Prins all-pairs scheme the paper adapts);
//! * threads in a partially filled block idle but still occupy the block —
//!   the efficiency loss for "small target nodes which have a large number
//!   of sources" the paper calls out;
//! * blocks scheduled greedily over SM slots; kernel time is the SM
//!   makespan (the simulated `cudaEventElapsedTime`);
//! * a multi-GPU [`GpuSystem`] with the paper's interaction-count walk
//!   partition, where GPU time is the **maximum** kernel time over devices.
//!
//! Everything is deterministic: same jobs + same spec ⇒ same times.

mod device;
mod error;
mod faults;
mod partition;
mod spec;
mod system;

pub use device::{ExpansionJob, KernelReport, P2pJob, SimGpu};
pub use error::Error;
pub use faults::{FaultEvent, FaultSchedule, TimedFault};
pub use partition::{
    partition_by_interactions, partition_by_interactions_weighted, partition_by_node_count,
};
pub use spec::GpuSpec;
pub use system::{DeviceStatus, GpuSystem, KernelTiming};
