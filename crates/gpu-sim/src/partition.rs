/// The paper's multi-GPU work division: walk the target-node list in order,
/// accumulating `Interactions(t)`; once the running count for the current
/// GPU meets or exceeds `total / n_gpus`, start filling the next GPU.
///
/// Every target node goes to exactly one GPU ("there is no target node whose
/// calculations are spread out over more than one GPU"). Returns `n_gpus`
/// groups of indices into `weights`; trailing groups may be empty when there
/// are fewer nodes than GPUs.
pub fn partition_by_interactions(weights: &[u64], n_gpus: usize) -> Vec<Vec<usize>> {
    assert!(n_gpus >= 1);
    let mut groups = vec![Vec::new(); n_gpus];
    if weights.is_empty() {
        return groups;
    }
    let total: u64 = weights.iter().sum();
    let share = total.div_ceil(n_gpus as u64).max(1);
    let mut g = 0usize;
    let mut acc = 0u64;
    for (i, &w) in weights.iter().enumerate() {
        groups[g].push(i);
        acc += w;
        if acc >= share && g + 1 < n_gpus {
            g += 1;
            acc = 0;
        }
    }
    groups
}

/// Extension of the paper's walk to *heterogeneous* device mixes: device
/// `i` with relative speed `shares[i]` is filled until it holds
/// `total · shares[i] / Σ shares` interactions, then the walk moves on.
/// With equal shares this reduces exactly to [`partition_by_interactions`].
pub fn partition_by_interactions_weighted(weights: &[u64], shares: &[f64]) -> Vec<Vec<usize>> {
    let n = shares.len();
    assert!(n >= 1);
    assert!(shares.iter().all(|&s| s > 0.0 && s.is_finite()));
    let mut groups = vec![Vec::new(); n];
    if weights.is_empty() {
        return groups;
    }
    let total: u64 = weights.iter().sum();
    let share_sum: f64 = shares.iter().sum();
    let mut g = 0usize;
    let mut acc = 0u64;
    let mut quota = (total as f64 * shares[0] / share_sum).ceil().max(1.0) as u64;
    for (i, &w) in weights.iter().enumerate() {
        groups[g].push(i);
        acc += w;
        if acc >= quota && g + 1 < n {
            g += 1;
            acc = 0;
            quota = (total as f64 * shares[g] / share_sum).ceil().max(1.0) as u64;
        }
    }
    groups
}

/// Naive baseline for the ablation bench: split the target-node list into
/// `n_gpus` contiguous groups of (nearly) equal *node count*, ignoring how
/// much work each node carries.
pub fn partition_by_node_count(n_items: usize, n_gpus: usize) -> Vec<Vec<usize>> {
    assert!(n_gpus >= 1);
    let mut groups = vec![Vec::new(); n_gpus];
    let base = n_items / n_gpus;
    let extra = n_items % n_gpus;
    let mut i = 0usize;
    for (g, group) in groups.iter_mut().enumerate() {
        let len = base + usize::from(g < extra);
        group.extend(i..i + len);
        i += len;
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers_exactly_once(groups: &[Vec<usize>], n: usize) {
        let mut seen = vec![false; n];
        for g in groups {
            for &i in g {
                assert!(!seen[i], "item {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some item unassigned");
    }

    #[test]
    fn interaction_partition_covers_all_items() {
        let w: Vec<u64> = (0..57).map(|i| (i * 37 % 100 + 1) as u64).collect();
        for n in [1usize, 2, 3, 4, 8] {
            let groups = partition_by_interactions(&w, n);
            assert_eq!(groups.len(), n);
            covers_exactly_once(&groups, w.len());
        }
    }

    #[test]
    fn uniform_weights_split_evenly() {
        let w = vec![10u64; 40];
        let groups = partition_by_interactions(&w, 4);
        for g in &groups {
            assert_eq!(g.len(), 10, "{groups:?}");
        }
    }

    #[test]
    fn imbalance_bounded_by_one_item() {
        // Each group's weight exceeds the ideal share by at most the weight
        // of its last (straddling) item — the guarantee of the paper's walk.
        let w: Vec<u64> = (0..200).map(|i| (i * 7919 % 500 + 1) as u64).collect();
        let n = 4;
        let total: u64 = w.iter().sum();
        let share = total.div_ceil(n as u64);
        let groups = partition_by_interactions(&w, n);
        for g in &groups {
            let sum: u64 = g.iter().map(|&i| w[i]).sum();
            let max_item = g.iter().map(|&i| w[i]).max().unwrap_or(0);
            assert!(
                sum <= share + max_item,
                "group weight {sum} vs share {share}"
            );
        }
    }

    #[test]
    fn order_is_preserved() {
        let w = vec![5u64; 10];
        let groups = partition_by_interactions(&w, 3);
        let flat: Vec<usize> = groups.concat();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn one_gpu_gets_everything() {
        let w = vec![1u64, 2, 3];
        let groups = partition_by_interactions(&w, 1);
        assert_eq!(groups, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn more_gpus_than_items() {
        let w = vec![100u64, 100];
        let groups = partition_by_interactions(&w, 4);
        assert_eq!(groups.len(), 4);
        covers_exactly_once(&groups, 2);
    }

    #[test]
    fn empty_weights() {
        let groups = partition_by_interactions(&[], 3);
        assert_eq!(groups, vec![Vec::<usize>::new(); 3]);
    }

    #[test]
    fn node_count_partition_is_even() {
        let groups = partition_by_node_count(10, 3);
        assert_eq!(groups[0].len(), 4);
        assert_eq!(groups[1].len(), 3);
        assert_eq!(groups[2].len(), 3);
        covers_exactly_once(&groups, 10);
    }
}
