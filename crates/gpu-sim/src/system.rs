use crate::device::{KernelReport, P2pJob, SimGpu};
use crate::partition::partition_by_interactions;
use crate::spec::GpuSpec;

/// Timing of one multi-GPU P2P launch: one kernel per device, as in the
/// paper ("for a single FMM solve, a single kernel is launched on each
/// GPU").
#[derive(Clone, Debug)]
pub struct KernelTiming {
    /// Per-device kernel reports, index = device.
    pub per_gpu: Vec<KernelReport>,
    /// Which job indices each device executed.
    pub assignment: Vec<Vec<usize>>,
}

impl KernelTiming {
    /// The paper's **GPU Time**: the maximum of all per-device kernel times
    /// in the step.
    pub fn gpu_time(&self) -> f64 {
        self.per_gpu.iter().map(|r| r.elapsed_s).fold(0.0, f64::max)
    }

    /// Total useful interactions over all devices.
    pub fn total_pairs(&self) -> u64 {
        self.per_gpu.iter().map(|r| r.useful_pairs).sum()
    }

    /// Whole-system SIMT efficiency (useful / occupied thread work).
    pub fn efficiency(&self) -> f64 {
        let useful: u64 = self.per_gpu.iter().map(|r| r.useful_pairs).sum();
        let occ: u64 = self.per_gpu.iter().map(|r| r.occupied_pairs).sum();
        if occ == 0 {
            1.0
        } else {
            useful as f64 / occ as f64
        }
    }
}

/// A set of simulated GPUs sharing the node, executing the AFMM's direct
/// work each time step.
#[derive(Clone, Debug)]
pub struct GpuSystem {
    gpus: Vec<SimGpu>,
}

impl GpuSystem {
    /// `n` identical devices.
    pub fn homogeneous(n: usize, spec: GpuSpec) -> Self {
        assert!(n >= 1, "system needs at least one GPU");
        GpuSystem { gpus: vec![SimGpu::new(spec); n] }
    }

    /// A mixed-device system (extension beyond the paper, which assumes
    /// identical GPUs). [`GpuSystem::execute_weighted`] partitions work in
    /// proportion to each device's peak throughput.
    pub fn heterogeneous(specs: Vec<GpuSpec>) -> Self {
        assert!(!specs.is_empty(), "system needs at least one GPU");
        GpuSystem { gpus: specs.into_iter().map(SimGpu::new).collect() }
    }

    /// Partition `jobs` by the speed-weighted walk (each device's share is
    /// proportional to its peak pair throughput) and run one kernel per
    /// device. On a homogeneous system this is identical to
    /// [`GpuSystem::execute`].
    pub fn execute_weighted(&self, jobs: &[P2pJob]) -> KernelTiming {
        let weights: Vec<u64> = jobs.iter().map(P2pJob::interactions).collect();
        let shares: Vec<f64> = self.gpus.iter().map(|g| g.spec.peak_pairs_per_sec()).collect();
        let assignment =
            crate::partition::partition_by_interactions_weighted(&weights, &shares);
        self.execute_with_partition(jobs, assignment)
    }

    pub fn num_gpus(&self) -> usize {
        self.gpus.len()
    }

    pub fn spec(&self, i: usize) -> &GpuSpec {
        &self.gpus[i].spec
    }

    /// Partition `jobs` by the paper's interaction-count walk and run one
    /// kernel per device.
    pub fn execute(&self, jobs: &[P2pJob]) -> KernelTiming {
        let weights: Vec<u64> = jobs.iter().map(P2pJob::interactions).collect();
        let assignment = partition_by_interactions(&weights, self.gpus.len());
        self.execute_with_partition(jobs, assignment)
    }

    /// Partition offloaded expansion jobs by body count (the analogue of
    /// the interaction walk) and run one expansion kernel per device.
    pub fn execute_expansions(&self, jobs: &[crate::device::ExpansionJob]) -> KernelTiming {
        let weights: Vec<u64> = jobs.iter().map(|j| j.bodies as u64).collect();
        let assignment = partition_by_interactions(&weights, self.gpus.len());
        let per_gpu = self
            .gpus
            .iter()
            .zip(&assignment)
            .map(|(gpu, idxs)| {
                let mine: Vec<_> = idxs.iter().map(|&i| jobs[i]).collect();
                gpu.run_expansion_kernel(&mine)
            })
            .collect();
        KernelTiming { per_gpu, assignment }
    }

    /// Run one kernel per device with a caller-provided partition (used by
    /// the partitioning ablation). `assignment.len()` must equal the device
    /// count.
    pub fn execute_with_partition(
        &self,
        jobs: &[P2pJob],
        assignment: Vec<Vec<usize>>,
    ) -> KernelTiming {
        assert_eq!(assignment.len(), self.gpus.len());
        let per_gpu = self
            .gpus
            .iter()
            .zip(&assignment)
            .map(|(gpu, idxs)| {
                let mine: Vec<P2pJob> = idxs.iter().map(|&i| jobs[i].clone()).collect();
                gpu.run_kernel(&mine)
            })
            .collect();
        KernelTiming { per_gpu, assignment }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A workload with many similar jobs — the regime of the paper's
    /// Table I GPU-scaling measurement.
    fn plummer_like_jobs(n: usize) -> Vec<P2pJob> {
        (0..n)
            .map(|i| {
                let t = 60 + (i * 131) % 80;
                let srcs = vec![64 + (i * 17) % 70; 20 + i % 9];
                P2pJob::new(t, srcs)
            })
            .collect()
    }

    #[test]
    fn gpu_scaling_matches_table1_shape() {
        // Paper Table I: speedups ≈ 1.00, 1.97, 2.95, 3.92 for 1..4 GPUs on
        // a fixed workload.
        let jobs = plummer_like_jobs(4000);
        let t1 = GpuSystem::homogeneous(1, GpuSpec::default()).execute(&jobs).gpu_time();
        for (n, expect) in [(2usize, 1.97), (3, 2.95), (4, 3.92)] {
            let tn = GpuSystem::homogeneous(n, GpuSpec::default()).execute(&jobs).gpu_time();
            let speedup = t1 / tn;
            assert!(
                (speedup - expect).abs() < 0.25,
                "{n} GPUs: speedup {speedup:.2}, paper {expect}"
            );
        }
    }

    #[test]
    fn gpu_time_is_max_over_devices() {
        let jobs = plummer_like_jobs(100);
        let timing = GpuSystem::homogeneous(3, GpuSpec::default()).execute(&jobs);
        let max = timing.per_gpu.iter().map(|r| r.elapsed_s).fold(0.0, f64::max);
        assert_eq!(timing.gpu_time(), max);
    }

    #[test]
    fn all_jobs_executed_exactly_once() {
        let jobs = plummer_like_jobs(57);
        let timing = GpuSystem::homogeneous(4, GpuSpec::default()).execute(&jobs);
        let mut seen = vec![false; jobs.len()];
        for g in &timing.assignment {
            for &i in g {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        let expect: u64 = jobs.iter().map(P2pJob::interactions).sum();
        assert_eq!(timing.total_pairs(), expect);
    }

    #[test]
    fn interaction_partition_beats_node_count_on_skew() {
        use crate::partition::partition_by_node_count;
        // Heavily skewed: early nodes tiny, late nodes huge. Node-count
        // partition puts all the weight on the last GPU.
        let mut jobs = vec![P2pJob::new(4, vec![16]); 60];
        jobs.extend((0..20).map(|_| P2pJob::new(128, vec![512; 30])));
        let sys = GpuSystem::homogeneous(4, GpuSpec::default());
        let smart = sys.execute(&jobs).gpu_time();
        let naive = sys
            .execute_with_partition(&jobs, partition_by_node_count(jobs.len(), 4))
            .gpu_time();
        assert!(
            naive > 1.5 * smart,
            "naive {naive} should be much worse than smart {smart}"
        );
    }

    #[test]
    fn efficiency_reflects_leaf_sizes() {
        let spec = GpuSpec::default();
        let sys = GpuSystem::homogeneous(2, spec);
        // Full blocks everywhere.
        let good: Vec<P2pJob> = (0..50).map(|_| P2pJob::new(spec.block_size, vec![512])).collect();
        // Tiny targets, huge source streams.
        let bad: Vec<P2pJob> = (0..50).map(|_| P2pJob::new(3, vec![512; 10])).collect();
        assert_eq!(sys.execute(&good).efficiency(), 1.0);
        assert!(sys.execute(&bad).efficiency() < 0.2);
    }

    #[test]
    fn deterministic() {
        let jobs = plummer_like_jobs(333);
        let sys = GpuSystem::homogeneous(4, GpuSpec::default());
        let a = sys.execute(&jobs);
        let b = sys.execute(&jobs);
        assert_eq!(a.gpu_time(), b.gpu_time());
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn empty_workload() {
        let sys = GpuSystem::homogeneous(2, GpuSpec::default());
        let timing = sys.execute(&[]);
        assert_eq!(timing.gpu_time(), 0.0);
        assert_eq!(timing.total_pairs(), 0);
    }

    #[test]
    fn weighted_equals_plain_on_homogeneous_system() {
        let jobs = plummer_like_jobs(200);
        let sys = GpuSystem::homogeneous(3, GpuSpec::default());
        let a = sys.execute(&jobs);
        let b = sys.execute_weighted(&jobs);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.gpu_time(), b.gpu_time());
    }

    #[test]
    fn weighted_partition_balances_mixed_devices() {
        // One full-speed C2050 and one half-clock device: the weighted walk
        // must beat the equal-share walk.
        let fast = GpuSpec::default();
        let slow = GpuSpec { clock_hz: fast.clock_hz / 2.0, ..fast };
        let sys = GpuSystem::heterogeneous(vec![fast, slow]);
        let jobs = plummer_like_jobs(600);
        let equal = sys.execute(&jobs).gpu_time();
        let weighted = sys.execute_weighted(&jobs).gpu_time();
        assert!(
            weighted < 0.85 * equal,
            "weighted {weighted} should clearly beat equal-share {equal}"
        );
        // And the fast device must carry roughly 2/3 of the interactions.
        let t = sys.execute_weighted(&jobs);
        let w0: u64 = t.per_gpu[0].useful_pairs;
        let w1: u64 = t.per_gpu[1].useful_pairs;
        let frac = w0 as f64 / (w0 + w1) as f64;
        assert!((0.55..0.8).contains(&frac), "fast-device share {frac}");
    }

    #[test]
    fn expansion_kernels_scale_with_devices() {
        use crate::device::ExpansionJob;
        let jobs: Vec<ExpansionJob> = (0..200)
            .map(|i| ExpansionJob { bodies: 64 + i % 128, cycles_per_body: 50_000.0 })
            .collect();
        let t1 = GpuSystem::homogeneous(1, GpuSpec::default())
            .execute_expansions(&jobs)
            .gpu_time();
        let t4 = GpuSystem::homogeneous(4, GpuSpec::default())
            .execute_expansions(&jobs)
            .gpu_time();
        assert!(t4 < 0.4 * t1, "expansion offload must scale: {t1} -> {t4}");
    }
}
