use crate::device::{KernelReport, P2pJob, SimGpu};
use crate::error::Error;
use crate::faults::FaultEvent;
use crate::partition::{partition_by_interactions, partition_by_interactions_weighted};
use crate::spec::GpuSpec;

/// Timing of one multi-GPU P2P launch: one kernel per device, as in the
/// paper ("for a single FMM solve, a single kernel is launched on each
/// GPU").
#[derive(Clone, Debug)]
pub struct KernelTiming {
    /// Per-device kernel reports, index = device. Offline devices keep a
    /// zeroed report so the index stays aligned with the system.
    pub per_gpu: Vec<KernelReport>,
    /// Which job indices each device executed.
    pub assignment: Vec<Vec<usize>>,
}

impl KernelTiming {
    /// The paper's **GPU Time**: the maximum of all per-device kernel times
    /// in the step. `None` when the timing covers no devices at all — an
    /// empty `per_gpu` means "no measurement", which is different from a
    /// measured 0-second launch.
    pub fn gpu_time(&self) -> Option<f64> {
        if self.per_gpu.is_empty() {
            return None;
        }
        Some(self.per_gpu.iter().map(|r| r.elapsed_s).fold(0.0, f64::max))
    }

    /// Total useful interactions over all devices.
    pub fn total_pairs(&self) -> u64 {
        self.per_gpu.iter().map(|r| r.useful_pairs).sum()
    }

    /// Whole-system SIMT efficiency (useful / occupied thread work).
    /// `None` when the timing covers no devices; an empty *launch* on real
    /// devices is defined as fully efficient (`Some(1.0)`), matching
    /// [`KernelReport::efficiency`].
    pub fn efficiency(&self) -> Option<f64> {
        if self.per_gpu.is_empty() {
            return None;
        }
        let useful: u64 = self.per_gpu.iter().map(|r| r.useful_pairs).sum();
        let occ: u64 = self.per_gpu.iter().map(|r| r.occupied_pairs).sum();
        if occ == 0 {
            Some(1.0)
        } else {
            Some(useful as f64 / occ as f64)
        }
    }

    /// Load imbalance of the launch: max over mean elapsed time across the
    /// devices that received work. `1.0` = perfectly balanced; `None` when
    /// no device did any work (nothing to compare).
    pub fn imbalance(&self) -> Option<f64> {
        let busy: Vec<f64> = self
            .per_gpu
            .iter()
            .filter(|r| r.useful_pairs > 0)
            .map(|r| r.elapsed_s)
            .collect();
        if busy.is_empty() {
            return None;
        }
        let mean = busy.iter().sum::<f64>() / busy.len() as f64;
        if mean <= 0.0 {
            return Some(1.0);
        }
        let max = busy.iter().fold(0.0f64, |a, &b| a.max(b));
        Some(max / mean)
    }

    /// Publish this launch into a telemetry recorder: `gpu.time` /
    /// `gpu.imbalance` / `gpu.efficiency` gauges, a `gpu.device_util`
    /// histogram (per busy device, elapsed / makespan), and a
    /// `gpu.launches` counter. A disabled recorder makes this free.
    pub fn record_metrics(&self, rec: &telemetry::Recorder) {
        if !rec.is_enabled() {
            return;
        }
        rec.counter_add("gpu.launches", 1);
        let Some(makespan) = self.gpu_time() else {
            return;
        };
        rec.gauge_set("gpu.time", makespan);
        if let Some(e) = self.efficiency() {
            rec.gauge_set("gpu.efficiency", e);
        }
        if let Some(im) = self.imbalance() {
            rec.gauge_set("gpu.imbalance", im);
        }
        if makespan > 0.0 {
            for (device, r) in self
                .per_gpu
                .iter()
                .enumerate()
                .filter(|(_, r)| r.useful_pairs > 0)
            {
                rec.hist_record("gpu.device_util", r.elapsed_s / makespan);
                // Per-device launch event: the trace exporter turns these
                // into one Chrome timeline track per GPU.
                rec.event(
                    "gpu.util",
                    vec![
                        ("device", telemetry::Value::U64(device as u64)),
                        ("elapsed_s", telemetry::Value::F64(r.elapsed_s)),
                        ("util", telemetry::Value::F64(r.elapsed_s / makespan)),
                        ("pairs", telemetry::Value::U64(r.useful_pairs)),
                    ],
                );
            }
        }
    }
}

/// Health of one device, driven by [`FaultEvent`]s.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceStatus {
    /// Whether the device accepts work.
    pub online: bool,
    /// Multiplier on kernel time (`>= 1.0`; `1.0` = nominal speed).
    pub slowdown: f64,
}

impl Default for DeviceStatus {
    fn default() -> Self {
        DeviceStatus {
            online: true,
            slowdown: 1.0,
        }
    }
}

/// A set of simulated GPUs sharing the node, executing the AFMM's direct
/// work each time step. Devices can degrade or drop out at runtime via
/// [`GpuSystem::apply_event`]; work is then partitioned across the online
/// devices only, weighted by their effective (slowdown-adjusted) speed.
#[derive(Clone, Debug)]
pub struct GpuSystem {
    gpus: Vec<SimGpu>,
    status: Vec<DeviceStatus>,
}

impl GpuSystem {
    /// `n` identical devices.
    pub fn homogeneous(n: usize, spec: GpuSpec) -> Result<Self, Error> {
        if n == 0 {
            return Err(Error::NoGpus);
        }
        Ok(GpuSystem {
            gpus: vec![SimGpu::new(spec); n],
            status: vec![DeviceStatus::default(); n],
        })
    }

    /// A mixed-device system (extension beyond the paper, which assumes
    /// identical GPUs). [`GpuSystem::execute_weighted`] partitions work in
    /// proportion to each device's peak throughput.
    pub fn heterogeneous(specs: Vec<GpuSpec>) -> Result<Self, Error> {
        if specs.is_empty() {
            return Err(Error::NoGpus);
        }
        let status = vec![DeviceStatus::default(); specs.len()];
        Ok(GpuSystem {
            gpus: specs.into_iter().map(SimGpu::new).collect(),
            status,
        })
    }

    pub fn num_gpus(&self) -> usize {
        self.gpus.len()
    }

    /// Devices currently accepting work.
    pub fn num_online(&self) -> usize {
        self.status.iter().filter(|s| s.online).count()
    }

    pub fn is_online(&self, i: usize) -> bool {
        self.status.get(i).is_some_and(|s| s.online)
    }

    pub fn status(&self, i: usize) -> Option<&DeviceStatus> {
        self.status.get(i)
    }

    /// Per-device health, index = device — the piece of GPU state a
    /// checkpoint must carry (specs are configuration, health is state).
    pub fn statuses(&self) -> &[DeviceStatus] {
        &self.status
    }

    /// Restore a saved health vector onto this system, validating shape and
    /// values so a tampered checkpoint cannot smuggle in an impossible
    /// status (e.g. a negative slowdown).
    pub fn restore_statuses(&mut self, saved: &[DeviceStatus]) -> Result<(), Error> {
        if saved.len() != self.status.len() {
            return Err(Error::StatusCountMismatch {
                expected: self.status.len(),
                got: saved.len(),
            });
        }
        for s in saved {
            if !s.slowdown.is_finite() || s.slowdown < 1.0 {
                return Err(Error::BadFactor { factor: s.slowdown });
            }
        }
        self.status.copy_from_slice(saved);
        Ok(())
    }

    pub fn spec(&self, i: usize) -> &GpuSpec {
        &self.gpus[i].spec
    }

    /// Apply one fault event. Host-side events (`ExternalCpuLoad`,
    /// `TimingNoise`) are validated but not stored here — they belong to
    /// the CPU timing model — so the return distinguishes them: `Ok(true)`
    /// means GPU state changed, `Ok(false)` means the event is host-side.
    pub fn apply_event(&mut self, event: &FaultEvent) -> Result<bool, Error> {
        let check_device = |device: usize, count: usize| {
            if device >= count {
                Err(Error::DeviceOutOfRange { device, count })
            } else {
                Ok(())
            }
        };
        match *event {
            FaultEvent::GpuSlowdown { device, factor } => {
                check_device(device, self.gpus.len())?;
                if !factor.is_finite() || factor < 1.0 {
                    return Err(Error::BadFactor { factor });
                }
                self.status[device].slowdown = factor;
                Ok(true)
            }
            FaultEvent::GpuDropout { device } => {
                check_device(device, self.gpus.len())?;
                self.status[device].online = false;
                Ok(true)
            }
            FaultEvent::GpuRecover { device } => {
                check_device(device, self.gpus.len())?;
                self.status[device] = DeviceStatus::default();
                Ok(true)
            }
            FaultEvent::ExternalCpuLoad { factor } => {
                if !factor.is_finite() || factor < 1.0 {
                    return Err(Error::BadFactor { factor });
                }
                Ok(false)
            }
            FaultEvent::TimingNoise { sigma } => {
                if !sigma.is_finite() || sigma < 0.0 {
                    return Err(Error::BadFactor { factor: sigma });
                }
                Ok(false)
            }
        }
    }

    fn online_indices(&self) -> Vec<usize> {
        (0..self.gpus.len())
            .filter(|&i| self.status[i].online)
            .collect()
    }

    /// Partition `jobs` by the paper's interaction-count walk across the
    /// *online* devices and run one kernel per device. When online devices
    /// are unevenly slowed, the walk is weighted by `1 / slowdown` so a
    /// throttled device receives proportionally less work.
    pub fn execute(&self, jobs: &[P2pJob]) -> Result<KernelTiming, Error> {
        let online = self.checked_online(jobs.is_empty())?;
        let weights: Vec<u64> = jobs.iter().map(P2pJob::interactions).collect();
        let assignment = if self.uniform_slowdown(&online) {
            partition_by_interactions(&weights, online.len().max(1))
        } else {
            let shares: Vec<f64> = online
                .iter()
                .map(|&i| 1.0 / self.status[i].slowdown)
                .collect();
            partition_by_interactions_weighted(&weights, &shares)
        };
        Ok(self.run_scattered(jobs, &online, assignment))
    }

    /// Partition `jobs` by the speed-weighted walk (each online device's
    /// share is proportional to its effective pair throughput — peak
    /// divided by slowdown) and run one kernel per device. On a nominal
    /// homogeneous system this is identical to [`GpuSystem::execute`].
    pub fn execute_weighted(&self, jobs: &[P2pJob]) -> Result<KernelTiming, Error> {
        let online = self.checked_online(jobs.is_empty())?;
        let weights: Vec<u64> = jobs.iter().map(P2pJob::interactions).collect();
        let shares: Vec<f64> = online
            .iter()
            .map(|&i| self.gpus[i].spec.peak_pairs_per_sec() / self.status[i].slowdown)
            .collect();
        let assignment = if online.is_empty() {
            vec![]
        } else {
            partition_by_interactions_weighted(&weights, &shares)
        };
        Ok(self.run_scattered(jobs, &online, assignment))
    }

    /// Partition offloaded expansion jobs by body count (the analogue of
    /// the interaction walk) across the online devices and run one
    /// expansion kernel per device.
    pub fn execute_expansions(
        &self,
        jobs: &[crate::device::ExpansionJob],
    ) -> Result<KernelTiming, Error> {
        let online = self.checked_online(jobs.is_empty())?;
        let weights: Vec<u64> = jobs.iter().map(|j| j.bodies as u64).collect();
        let online_assignment = if self.uniform_slowdown(&online) {
            partition_by_interactions(&weights, online.len().max(1))
        } else {
            let shares: Vec<f64> = online
                .iter()
                .map(|&i| 1.0 / self.status[i].slowdown)
                .collect();
            partition_by_interactions_weighted(&weights, &shares)
        };
        let mut assignment = vec![Vec::new(); self.gpus.len()];
        for (slot, idxs) in online.iter().zip(online_assignment) {
            assignment[*slot] = idxs;
        }
        let per_gpu = self
            .gpus
            .iter()
            .zip(&assignment)
            .enumerate()
            .map(|(d, (gpu, idxs))| {
                let mine: Vec<_> = idxs.iter().map(|&i| jobs[i]).collect();
                let mut r = gpu.run_expansion_kernel(&mine);
                r.elapsed_s *= self.status[d].slowdown;
                r
            })
            .collect();
        Ok(KernelTiming {
            per_gpu,
            assignment,
        })
    }

    /// Run one kernel per device with a caller-provided partition (used by
    /// the partitioning ablation). `assignment.len()` must equal the device
    /// count, and no offline device may receive work.
    pub fn execute_with_partition(
        &self,
        jobs: &[P2pJob],
        assignment: Vec<Vec<usize>>,
    ) -> Result<KernelTiming, Error> {
        if assignment.len() != self.gpus.len() {
            return Err(Error::PartitionMismatch {
                expected: self.gpus.len(),
                got: assignment.len(),
            });
        }
        for (d, idxs) in assignment.iter().enumerate() {
            if !idxs.is_empty() && !self.status[d].online {
                return Err(Error::OfflineDeviceAssigned { device: d });
            }
        }
        Ok(self.run_full(jobs, assignment))
    }

    /// `Err(NoOnlineGpus)` when there is real work but nothing to run it
    /// on; otherwise the online device list (possibly empty for an empty
    /// launch).
    fn checked_online(&self, jobs_empty: bool) -> Result<Vec<usize>, Error> {
        let online = self.online_indices();
        if online.is_empty() && !jobs_empty {
            return Err(Error::NoOnlineGpus);
        }
        Ok(online)
    }

    fn uniform_slowdown(&self, online: &[usize]) -> bool {
        online
            .windows(2)
            .all(|w| self.status[w[0]].slowdown == self.status[w[1]].slowdown)
    }

    /// Scatter an online-indexed assignment back to full device indexing
    /// and run it.
    fn run_scattered(
        &self,
        jobs: &[P2pJob],
        online: &[usize],
        online_assignment: Vec<Vec<usize>>,
    ) -> KernelTiming {
        let mut assignment = vec![Vec::new(); self.gpus.len()];
        for (slot, idxs) in online.iter().zip(online_assignment) {
            assignment[*slot] = idxs;
        }
        self.run_full(jobs, assignment)
    }

    fn run_full(&self, jobs: &[P2pJob], assignment: Vec<Vec<usize>>) -> KernelTiming {
        let per_gpu = self
            .gpus
            .iter()
            .zip(&assignment)
            .enumerate()
            .map(|(d, (gpu, idxs))| {
                let mine: Vec<P2pJob> = idxs.iter().map(|&i| jobs[i].clone()).collect();
                let mut r = gpu.run_kernel(&mine);
                r.elapsed_s *= self.status[d].slowdown;
                r
            })
            .collect();
        KernelTiming {
            per_gpu,
            assignment,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A workload with many similar jobs — the regime of the paper's
    /// Table I GPU-scaling measurement.
    fn plummer_like_jobs(n: usize) -> Vec<P2pJob> {
        (0..n)
            .map(|i| {
                let t = 60 + (i * 131) % 80;
                let srcs = vec![64 + (i * 17) % 70; 20 + i % 9];
                P2pJob::new(t, srcs)
            })
            .collect()
    }

    fn homog(n: usize) -> GpuSystem {
        GpuSystem::homogeneous(n, GpuSpec::default()).unwrap()
    }

    #[test]
    fn gpu_scaling_matches_table1_shape() {
        // Paper Table I: speedups ≈ 1.00, 1.97, 2.95, 3.92 for 1..4 GPUs on
        // a fixed workload.
        let jobs = plummer_like_jobs(4000);
        let t1 = homog(1).execute(&jobs).unwrap().gpu_time().unwrap();
        for (n, expect) in [(2usize, 1.97), (3, 2.95), (4, 3.92)] {
            let tn = homog(n).execute(&jobs).unwrap().gpu_time().unwrap();
            let speedup = t1 / tn;
            assert!(
                (speedup - expect).abs() < 0.25,
                "{n} GPUs: speedup {speedup:.2}, paper {expect}"
            );
        }
    }

    #[test]
    fn gpu_time_is_max_over_devices() {
        let jobs = plummer_like_jobs(100);
        let timing = homog(3).execute(&jobs).unwrap();
        let max = timing
            .per_gpu
            .iter()
            .map(|r| r.elapsed_s)
            .fold(0.0, f64::max);
        assert_eq!(timing.gpu_time(), Some(max));
    }

    #[test]
    fn all_jobs_executed_exactly_once() {
        let jobs = plummer_like_jobs(57);
        let timing = homog(4).execute(&jobs).unwrap();
        let mut seen = vec![false; jobs.len()];
        for g in &timing.assignment {
            for &i in g {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        let expect: u64 = jobs.iter().map(P2pJob::interactions).sum();
        assert_eq!(timing.total_pairs(), expect);
    }

    #[test]
    fn interaction_partition_beats_node_count_on_skew() {
        use crate::partition::partition_by_node_count;
        // Heavily skewed: early nodes tiny, late nodes huge. Node-count
        // partition puts all the weight on the last GPU.
        let mut jobs = vec![P2pJob::new(4, vec![16]); 60];
        jobs.extend((0..20).map(|_| P2pJob::new(128, vec![512; 30])));
        let sys = homog(4);
        let smart = sys.execute(&jobs).unwrap().gpu_time().unwrap();
        let naive = sys
            .execute_with_partition(&jobs, partition_by_node_count(jobs.len(), 4))
            .unwrap()
            .gpu_time()
            .unwrap();
        assert!(
            naive > 1.5 * smart,
            "naive {naive} should be much worse than smart {smart}"
        );
    }

    #[test]
    fn efficiency_reflects_leaf_sizes() {
        let spec = GpuSpec::default();
        let sys = GpuSystem::homogeneous(2, spec).unwrap();
        // Full blocks everywhere.
        let good: Vec<P2pJob> = (0..50)
            .map(|_| P2pJob::new(spec.block_size, vec![512]))
            .collect();
        // Tiny targets, huge source streams.
        let bad: Vec<P2pJob> = (0..50).map(|_| P2pJob::new(3, vec![512; 10])).collect();
        assert_eq!(sys.execute(&good).unwrap().efficiency(), Some(1.0));
        assert!(sys.execute(&bad).unwrap().efficiency().unwrap() < 0.2);
    }

    #[test]
    fn deterministic() {
        let jobs = plummer_like_jobs(333);
        let sys = homog(4);
        let a = sys.execute(&jobs).unwrap();
        let b = sys.execute(&jobs).unwrap();
        assert_eq!(a.gpu_time(), b.gpu_time());
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn empty_workload() {
        let sys = homog(2);
        let timing = sys.execute(&[]).unwrap();
        // No work is a measured 0-second launch, not a missing measurement.
        assert_eq!(timing.gpu_time(), Some(0.0));
        assert_eq!(timing.total_pairs(), 0);
    }

    #[test]
    fn empty_timing_has_no_gpu_time() {
        let t = KernelTiming {
            per_gpu: vec![],
            assignment: vec![],
        };
        assert_eq!(t.gpu_time(), None);
        assert_eq!(t.efficiency(), None);
        assert_eq!(t.imbalance(), None);
    }

    #[test]
    fn imbalance_is_max_over_mean_of_busy_devices() {
        let jobs = plummer_like_jobs(400);
        let timing = homog(2).execute(&jobs).unwrap();
        let im = timing.imbalance().unwrap();
        assert!(im >= 1.0 && im < 1.5, "balanced walk, imbalance {im}");
        // Force everything onto one device: the idle one must not count.
        let sys = homog(2);
        let skew = sys
            .execute_with_partition(&jobs, vec![(0..jobs.len()).collect(), vec![]])
            .unwrap();
        assert_eq!(skew.imbalance(), Some(1.0));
    }

    #[test]
    fn record_metrics_publishes_launch() {
        let rec = telemetry::Recorder::enabled();
        let jobs = plummer_like_jobs(300);
        let timing = homog(3).execute(&jobs).unwrap();
        timing.record_metrics(&rec);
        let m = rec.metrics();
        assert_eq!(m.counter("gpu.launches"), Some(1));
        assert_eq!(m.gauge("gpu.time"), timing.gpu_time());
        assert_eq!(m.gauge("gpu.imbalance"), timing.imbalance());
        assert_eq!(m.histogram("gpu.device_util").unwrap().count, 3);
        // Disabled recorder: free no-op.
        timing.record_metrics(&telemetry::Recorder::disabled());
    }

    #[test]
    fn zero_devices_is_an_error() {
        assert_eq!(
            GpuSystem::homogeneous(0, GpuSpec::default()).unwrap_err(),
            Error::NoGpus
        );
        assert_eq!(GpuSystem::heterogeneous(vec![]).unwrap_err(), Error::NoGpus);
    }

    #[test]
    fn weighted_equals_plain_on_homogeneous_system() {
        let jobs = plummer_like_jobs(200);
        let sys = homog(3);
        let a = sys.execute(&jobs).unwrap();
        let b = sys.execute_weighted(&jobs).unwrap();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.gpu_time(), b.gpu_time());
    }

    #[test]
    fn weighted_partition_balances_mixed_devices() {
        // One full-speed C2050 and one half-clock device: the weighted walk
        // must beat the equal-share walk.
        let fast = GpuSpec::default();
        let slow = GpuSpec {
            clock_hz: fast.clock_hz / 2.0,
            ..fast
        };
        let sys = GpuSystem::heterogeneous(vec![fast, slow]).unwrap();
        let jobs = plummer_like_jobs(600);
        let equal = sys.execute(&jobs).unwrap().gpu_time().unwrap();
        let weighted = sys.execute_weighted(&jobs).unwrap().gpu_time().unwrap();
        assert!(
            weighted < 0.85 * equal,
            "weighted {weighted} should clearly beat equal-share {equal}"
        );
        // And the fast device must carry roughly 2/3 of the interactions.
        let t = sys.execute_weighted(&jobs).unwrap();
        let w0: u64 = t.per_gpu[0].useful_pairs;
        let w1: u64 = t.per_gpu[1].useful_pairs;
        let frac = w0 as f64 / (w0 + w1) as f64;
        assert!((0.55..0.8).contains(&frac), "fast-device share {frac}");
    }

    #[test]
    fn expansion_kernels_scale_with_devices() {
        use crate::device::ExpansionJob;
        let jobs: Vec<ExpansionJob> = (0..200)
            .map(|i| ExpansionJob {
                bodies: 64 + i % 128,
                cycles_per_body: 50_000.0,
            })
            .collect();
        let t1 = homog(1)
            .execute_expansions(&jobs)
            .unwrap()
            .gpu_time()
            .unwrap();
        let t4 = homog(4)
            .execute_expansions(&jobs)
            .unwrap()
            .gpu_time()
            .unwrap();
        assert!(t4 < 0.4 * t1, "expansion offload must scale: {t1} -> {t4}");
    }

    // ---- fault handling ----

    #[test]
    fn dropout_reroutes_work_to_survivors() {
        let jobs = plummer_like_jobs(400);
        let mut sys = homog(2);
        let before = sys.execute(&jobs).unwrap();
        sys.apply_event(&FaultEvent::GpuDropout { device: 1 })
            .unwrap();
        assert_eq!(sys.num_online(), 1);
        assert!(!sys.is_online(1));
        let after = sys.execute(&jobs).unwrap();
        // Device 1 idles; device 0 carries everything and takes about twice
        // as long.
        assert!(after.assignment[1].is_empty());
        assert_eq!(after.per_gpu[1].useful_pairs, 0);
        assert_eq!(after.total_pairs(), before.total_pairs());
        let ratio = after.gpu_time().unwrap() / before.gpu_time().unwrap();
        assert!(ratio > 1.5, "survivor should slow down, ratio {ratio}");
    }

    #[test]
    fn recover_restores_original_behaviour() {
        let jobs = plummer_like_jobs(400);
        let mut sys = homog(2);
        let before = sys.execute(&jobs).unwrap();
        sys.apply_event(&FaultEvent::GpuDropout { device: 0 })
            .unwrap();
        sys.apply_event(&FaultEvent::GpuRecover { device: 0 })
            .unwrap();
        let after = sys.execute(&jobs).unwrap();
        assert_eq!(before.assignment, after.assignment);
        assert_eq!(before.gpu_time(), after.gpu_time());
    }

    #[test]
    fn slowdown_scales_kernel_time_and_rebalances() {
        let jobs = plummer_like_jobs(600);
        let mut sys = homog(2);
        let nominal = sys.execute(&jobs).unwrap();
        sys.apply_event(&FaultEvent::GpuSlowdown {
            device: 1,
            factor: 3.0,
        })
        .unwrap();
        let slowed = sys.execute(&jobs).unwrap();
        // The walk shifts work toward the healthy device...
        assert!(slowed.per_gpu[0].useful_pairs > nominal.per_gpu[0].useful_pairs);
        // ...and the makespan still degrades, but far less than 3×.
        let ratio = slowed.gpu_time().unwrap() / nominal.gpu_time().unwrap();
        assert!(ratio > 1.05 && ratio < 2.5, "ratio {ratio}");
        // Clearing the slowdown restores nominal behaviour.
        sys.apply_event(&FaultEvent::GpuSlowdown {
            device: 1,
            factor: 1.0,
        })
        .unwrap();
        assert_eq!(sys.execute(&jobs).unwrap().gpu_time(), nominal.gpu_time());
    }

    #[test]
    fn all_devices_lost_errors_on_real_work_only() {
        let mut sys = homog(2);
        sys.apply_event(&FaultEvent::GpuDropout { device: 0 })
            .unwrap();
        sys.apply_event(&FaultEvent::GpuDropout { device: 1 })
            .unwrap();
        let jobs = plummer_like_jobs(10);
        assert_eq!(sys.execute(&jobs).unwrap_err(), Error::NoOnlineGpus);
        assert_eq!(
            sys.execute_weighted(&jobs).unwrap_err(),
            Error::NoOnlineGpus
        );
        // An empty launch is still well-defined.
        assert_eq!(sys.execute(&[]).unwrap().gpu_time(), Some(0.0));
    }

    #[test]
    fn apply_event_validates_inputs() {
        let mut sys = homog(2);
        assert_eq!(
            sys.apply_event(&FaultEvent::GpuDropout { device: 5 })
                .unwrap_err(),
            Error::DeviceOutOfRange {
                device: 5,
                count: 2
            }
        );
        assert!(matches!(
            sys.apply_event(&FaultEvent::GpuSlowdown {
                device: 0,
                factor: 0.5
            }),
            Err(Error::BadFactor { .. })
        ));
        assert!(matches!(
            sys.apply_event(&FaultEvent::GpuSlowdown {
                device: 0,
                factor: f64::NAN
            }),
            Err(Error::BadFactor { .. })
        ));
        assert!(matches!(
            sys.apply_event(&FaultEvent::TimingNoise { sigma: -0.1 }),
            Err(Error::BadFactor { .. })
        ));
        // Host-side events are validated but leave GPU state untouched.
        assert!(!sys
            .apply_event(&FaultEvent::ExternalCpuLoad { factor: 2.0 })
            .unwrap());
        assert_eq!(sys.num_online(), 2);
        assert_eq!(sys.status(0).unwrap().slowdown, 1.0);
    }

    #[test]
    fn partition_to_offline_device_is_rejected() {
        let jobs = plummer_like_jobs(20);
        let mut sys = homog(2);
        sys.apply_event(&FaultEvent::GpuDropout { device: 1 })
            .unwrap();
        let bad = vec![vec![0], (1..jobs.len()).collect()];
        assert_eq!(
            sys.execute_with_partition(&jobs, bad).unwrap_err(),
            Error::OfflineDeviceAssigned { device: 1 }
        );
        let wrong_len = vec![vec![0]];
        assert_eq!(
            sys.execute_with_partition(&jobs, wrong_len).unwrap_err(),
            Error::PartitionMismatch {
                expected: 2,
                got: 1
            }
        );
    }
}
