//! Fault injection for the virtual heterogeneous node.
//!
//! The paper motivates *dynamic* load balancing with exactly these
//! disturbances: "the GPUs may be shared by other processes", clock
//! throttling, and external CPU load that shifts the CPU/GPU crossover.
//! A [`FaultSchedule`] scripts such disturbances at specific time steps so
//! the balancer's recovery behaviour can be measured deterministically.
//!
//! GPU-side events ([`FaultEvent::GpuSlowdown`], [`FaultEvent::GpuDropout`],
//! [`FaultEvent::GpuRecover`]) are applied to the
//! [`GpuSystem`](crate::GpuSystem) via
//! [`GpuSystem::apply_event`](crate::GpuSystem::apply_event); host-side
//! events ([`FaultEvent::ExternalCpuLoad`], [`FaultEvent::TimingNoise`])
//! are interpreted by the driver that owns the CPU timing model.

use crate::error::Error;

/// One disturbance to the virtual node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// Device `device` runs `factor`× slower than nominal from now on
    /// (e.g. a co-tenant process or thermal throttling). `factor >= 1.0`;
    /// `1.0` restores nominal speed.
    GpuSlowdown { device: usize, factor: f64 },
    /// Device `device` stops accepting work (driver crash, ECC retirement,
    /// preemption by another job).
    GpuDropout { device: usize },
    /// Device `device` comes back online at nominal speed.
    GpuRecover { device: usize },
    /// The host CPU is shared with an external process: measured CPU time
    /// is multiplied by `factor` (`>= 1.0`; `1.0` clears the load).
    ExternalCpuLoad { factor: f64 },
    /// Multiplicative measurement jitter: each observed time is scaled by
    /// `exp(sigma * z)` with `z` standard normal (`sigma >= 0.0`; `0.0`
    /// turns noise off). Models timer granularity and OS scheduling noise.
    TimingNoise { sigma: f64 },
}

impl FaultEvent {
    /// Whether the event targets the GPU system (as opposed to the host).
    pub fn is_gpu_event(&self) -> bool {
        matches!(
            self,
            FaultEvent::GpuSlowdown { .. }
                | FaultEvent::GpuDropout { .. }
                | FaultEvent::GpuRecover { .. }
        )
    }
}

/// A [`FaultEvent`] scheduled for a specific simulation step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimedFault {
    pub step: usize,
    pub event: FaultEvent,
}

/// A script of timed disturbances, kept sorted by step (stable within a
/// step, so events added for the same step fire in insertion order).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<TimedFault>,
}

impl FaultSchedule {
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Add an event at `step`.
    pub fn push(&mut self, step: usize, event: FaultEvent) {
        let at = self.events.partition_point(|e| e.step <= step);
        self.events.insert(at, TimedFault { step, event });
    }

    /// Builder-style [`FaultSchedule::push`].
    pub fn with(mut self, step: usize, event: FaultEvent) -> Self {
        self.push(step, event);
        self
    }

    /// Validating constructor: accept a raw fault script and reject ill-formed
    /// ones with a structured [`Error`] instead of letting them silently
    /// misbehave at run time. Rejected shapes:
    ///
    /// * events out of step order ([`Error::OutOfOrderFaults`]) — a raw
    ///   script is a literal timeline, so order is meaning;
    /// * a second [`FaultEvent::GpuDropout`] for a device whose previous
    ///   dropout window is still open ([`Error::OverlappingFaultWindow`]);
    /// * a [`FaultEvent::GpuRecover`] for a device with no open window
    ///   ([`Error::UnmatchedRecover`]);
    /// * non-finite or out-of-range factors / sigmas ([`Error::BadFactor`]),
    ///   caught here instead of mid-run.
    ///
    /// A window left open at the end of the script is fine — permanent
    /// dropout is a legitimate scenario.
    pub fn try_with(events: Vec<TimedFault>) -> Result<Self, Error> {
        for w in events.windows(2) {
            if w[1].step < w[0].step {
                return Err(Error::OutOfOrderFaults {
                    step: w[1].step,
                    after: w[0].step,
                });
            }
        }
        let mut down: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        for tf in &events {
            match tf.event {
                FaultEvent::GpuDropout { device } => {
                    if !down.insert(device) {
                        return Err(Error::OverlappingFaultWindow {
                            device,
                            step: tf.step,
                        });
                    }
                }
                FaultEvent::GpuRecover { device } => {
                    if !down.remove(&device) {
                        return Err(Error::UnmatchedRecover {
                            device,
                            step: tf.step,
                        });
                    }
                }
                FaultEvent::GpuSlowdown { factor, .. } => {
                    if !factor.is_finite() || factor < 1.0 {
                        return Err(Error::BadFactor { factor });
                    }
                }
                FaultEvent::ExternalCpuLoad { factor } => {
                    if !factor.is_finite() || factor < 1.0 {
                        return Err(Error::BadFactor { factor });
                    }
                }
                FaultEvent::TimingNoise { sigma } => {
                    if !sigma.is_finite() || sigma < 0.0 {
                        return Err(Error::BadFactor { factor: sigma });
                    }
                }
            }
        }
        Ok(FaultSchedule { events })
    }

    /// Run [`FaultSchedule::try_with`]'s checks on an already-built schedule.
    pub fn validate(&self) -> Result<(), Error> {
        FaultSchedule::try_with(self.events.clone()).map(|_| ())
    }

    /// All events scheduled for exactly `step`, in insertion order.
    pub fn events_at(&self, step: usize) -> impl Iterator<Item = &FaultEvent> {
        let lo = self.events.partition_point(|e| e.step < step);
        let hi = self.events.partition_point(|e| e.step <= step);
        self.events[lo..hi].iter().map(|e| &e.event)
    }

    /// The full sorted script.
    pub fn events(&self) -> &[TimedFault] {
        &self.events
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Last scheduled step, if any.
    pub fn max_step(&self) -> Option<usize> {
        self.events.last().map(|e| e.step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_sorts_by_step_and_keeps_insertion_order_within_a_step() {
        let s = FaultSchedule::new()
            .with(10, FaultEvent::GpuDropout { device: 1 })
            .with(3, FaultEvent::TimingNoise { sigma: 0.05 })
            .with(10, FaultEvent::ExternalCpuLoad { factor: 2.0 });
        let steps: Vec<usize> = s.events().iter().map(|e| e.step).collect();
        assert_eq!(steps, vec![3, 10, 10]);
        let at10: Vec<&FaultEvent> = s.events_at(10).collect();
        assert_eq!(
            at10,
            vec![
                &FaultEvent::GpuDropout { device: 1 },
                &FaultEvent::ExternalCpuLoad { factor: 2.0 }
            ]
        );
        assert_eq!(s.events_at(4).count(), 0);
        assert_eq!(s.max_step(), Some(10));
    }

    #[test]
    fn try_with_accepts_well_formed_scripts() {
        let s = FaultSchedule::try_with(vec![
            TimedFault {
                step: 3,
                event: FaultEvent::GpuDropout { device: 0 },
            },
            TimedFault {
                step: 8,
                event: FaultEvent::GpuRecover { device: 0 },
            },
            TimedFault {
                step: 8,
                event: FaultEvent::GpuDropout { device: 1 },
            },
        ])
        .unwrap();
        assert_eq!(s.len(), 3);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn try_with_rejects_overlapping_windows() {
        let err = FaultSchedule::try_with(vec![
            TimedFault {
                step: 3,
                event: FaultEvent::GpuDropout { device: 0 },
            },
            TimedFault {
                step: 5,
                event: FaultEvent::GpuDropout { device: 0 },
            },
        ])
        .unwrap_err();
        assert_eq!(err, Error::OverlappingFaultWindow { device: 0, step: 5 });
    }

    #[test]
    fn try_with_rejects_unmatched_recover_and_disorder() {
        let err = FaultSchedule::try_with(vec![TimedFault {
            step: 4,
            event: FaultEvent::GpuRecover { device: 2 },
        }])
        .unwrap_err();
        assert_eq!(err, Error::UnmatchedRecover { device: 2, step: 4 });

        let err = FaultSchedule::try_with(vec![
            TimedFault {
                step: 9,
                event: FaultEvent::TimingNoise { sigma: 0.1 },
            },
            TimedFault {
                step: 2,
                event: FaultEvent::TimingNoise { sigma: 0.1 },
            },
        ])
        .unwrap_err();
        assert_eq!(err, Error::OutOfOrderFaults { step: 2, after: 9 });
    }

    #[test]
    fn try_with_rejects_bad_factors_up_front() {
        for ev in [
            FaultEvent::GpuSlowdown {
                device: 0,
                factor: 0.5,
            },
            FaultEvent::ExternalCpuLoad { factor: f64::NAN },
            FaultEvent::TimingNoise { sigma: -0.1 },
        ] {
            let err = FaultSchedule::try_with(vec![TimedFault { step: 1, event: ev }]).unwrap_err();
            assert!(matches!(err, Error::BadFactor { .. }), "{ev:?}");
        }
    }

    #[test]
    fn gpu_event_classification() {
        assert!(FaultEvent::GpuSlowdown {
            device: 0,
            factor: 2.0
        }
        .is_gpu_event());
        assert!(FaultEvent::GpuRecover { device: 0 }.is_gpu_event());
        assert!(!FaultEvent::ExternalCpuLoad { factor: 2.0 }.is_gpu_event());
        assert!(!FaultEvent::TimingNoise { sigma: 0.1 }.is_gpu_event());
    }
}
