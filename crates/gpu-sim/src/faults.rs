//! Fault injection for the virtual heterogeneous node.
//!
//! The paper motivates *dynamic* load balancing with exactly these
//! disturbances: "the GPUs may be shared by other processes", clock
//! throttling, and external CPU load that shifts the CPU/GPU crossover.
//! A [`FaultSchedule`] scripts such disturbances at specific time steps so
//! the balancer's recovery behaviour can be measured deterministically.
//!
//! GPU-side events ([`FaultEvent::GpuSlowdown`], [`FaultEvent::GpuDropout`],
//! [`FaultEvent::GpuRecover`]) are applied to the
//! [`GpuSystem`](crate::GpuSystem) via
//! [`GpuSystem::apply_event`](crate::GpuSystem::apply_event); host-side
//! events ([`FaultEvent::ExternalCpuLoad`], [`FaultEvent::TimingNoise`])
//! are interpreted by the driver that owns the CPU timing model.

/// One disturbance to the virtual node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// Device `device` runs `factor`× slower than nominal from now on
    /// (e.g. a co-tenant process or thermal throttling). `factor >= 1.0`;
    /// `1.0` restores nominal speed.
    GpuSlowdown { device: usize, factor: f64 },
    /// Device `device` stops accepting work (driver crash, ECC retirement,
    /// preemption by another job).
    GpuDropout { device: usize },
    /// Device `device` comes back online at nominal speed.
    GpuRecover { device: usize },
    /// The host CPU is shared with an external process: measured CPU time
    /// is multiplied by `factor` (`>= 1.0`; `1.0` clears the load).
    ExternalCpuLoad { factor: f64 },
    /// Multiplicative measurement jitter: each observed time is scaled by
    /// `exp(sigma * z)` with `z` standard normal (`sigma >= 0.0`; `0.0`
    /// turns noise off). Models timer granularity and OS scheduling noise.
    TimingNoise { sigma: f64 },
}

impl FaultEvent {
    /// Whether the event targets the GPU system (as opposed to the host).
    pub fn is_gpu_event(&self) -> bool {
        matches!(
            self,
            FaultEvent::GpuSlowdown { .. }
                | FaultEvent::GpuDropout { .. }
                | FaultEvent::GpuRecover { .. }
        )
    }
}

/// A [`FaultEvent`] scheduled for a specific simulation step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimedFault {
    pub step: usize,
    pub event: FaultEvent,
}

/// A script of timed disturbances, kept sorted by step (stable within a
/// step, so events added for the same step fire in insertion order).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<TimedFault>,
}

impl FaultSchedule {
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Add an event at `step`.
    pub fn push(&mut self, step: usize, event: FaultEvent) {
        let at = self.events.partition_point(|e| e.step <= step);
        self.events.insert(at, TimedFault { step, event });
    }

    /// Builder-style [`FaultSchedule::push`].
    pub fn with(mut self, step: usize, event: FaultEvent) -> Self {
        self.push(step, event);
        self
    }

    /// All events scheduled for exactly `step`, in insertion order.
    pub fn events_at(&self, step: usize) -> impl Iterator<Item = &FaultEvent> {
        let lo = self.events.partition_point(|e| e.step < step);
        let hi = self.events.partition_point(|e| e.step <= step);
        self.events[lo..hi].iter().map(|e| &e.event)
    }

    /// The full sorted script.
    pub fn events(&self) -> &[TimedFault] {
        &self.events
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Last scheduled step, if any.
    pub fn max_step(&self) -> Option<usize> {
        self.events.last().map(|e| e.step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_sorts_by_step_and_keeps_insertion_order_within_a_step() {
        let s = FaultSchedule::new()
            .with(10, FaultEvent::GpuDropout { device: 1 })
            .with(3, FaultEvent::TimingNoise { sigma: 0.05 })
            .with(10, FaultEvent::ExternalCpuLoad { factor: 2.0 });
        let steps: Vec<usize> = s.events().iter().map(|e| e.step).collect();
        assert_eq!(steps, vec![3, 10, 10]);
        let at10: Vec<&FaultEvent> = s.events_at(10).collect();
        assert_eq!(
            at10,
            vec![
                &FaultEvent::GpuDropout { device: 1 },
                &FaultEvent::ExternalCpuLoad { factor: 2.0 }
            ]
        );
        assert_eq!(s.events_at(4).count(), 0);
        assert_eq!(s.max_step(), Some(10));
    }

    #[test]
    fn gpu_event_classification() {
        assert!(FaultEvent::GpuSlowdown {
            device: 0,
            factor: 2.0
        }
        .is_gpu_event());
        assert!(FaultEvent::GpuRecover { device: 0 }.is_gpu_event());
        assert!(!FaultEvent::ExternalCpuLoad { factor: 2.0 }.is_gpu_event());
        assert!(!FaultEvent::TimingNoise { sigma: 0.1 }.is_gpu_event());
    }
}
