use std::fmt;

/// Structured failures of the simulated GPU system. These replace the
/// `assert!`-style panics of the original seed so that a driver (the AFMM
/// balancer) can observe device loss and react instead of aborting.
#[derive(Clone, Debug, PartialEq)]
pub enum Error {
    /// A system was requested with zero devices.
    NoGpus,
    /// Work was submitted but every device is offline.
    NoOnlineGpus,
    /// A fault event referenced a device index outside the system.
    DeviceOutOfRange { device: usize, count: usize },
    /// A slowdown / load factor was non-finite or below 1.0, or a noise
    /// sigma was negative or non-finite.
    BadFactor { factor: f64 },
    /// An explicit partition had the wrong number of device groups.
    PartitionMismatch { expected: usize, got: usize },
    /// An explicit partition assigned work to an offline device.
    OfflineDeviceAssigned { device: usize },
    /// A fault schedule opened a new dropout window for a device that is
    /// already inside one (dropout before the matching recover).
    OverlappingFaultWindow { device: usize, step: usize },
    /// A fault schedule recovered a device that had no open dropout window.
    UnmatchedRecover { device: usize, step: usize },
    /// A fault script handed to a validating constructor was not sorted by
    /// step.
    OutOfOrderFaults { step: usize, after: usize },
    /// A saved device-status vector does not match the system it is being
    /// restored onto.
    StatusCountMismatch { expected: usize, got: usize },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NoGpus => write!(f, "GPU system needs at least one device"),
            Error::NoOnlineGpus => {
                write!(f, "work submitted but no GPU is online")
            }
            Error::DeviceOutOfRange { device, count } => {
                write!(f, "device {device} out of range (system has {count})")
            }
            Error::BadFactor { factor } => {
                write!(
                    f,
                    "fault factor {factor} is not a finite value in its valid range"
                )
            }
            Error::PartitionMismatch { expected, got } => {
                write!(
                    f,
                    "partition has {got} groups, system has {expected} devices"
                )
            }
            Error::OfflineDeviceAssigned { device } => {
                write!(f, "partition assigns work to offline device {device}")
            }
            Error::OverlappingFaultWindow { device, step } => {
                write!(
                    f,
                    "device {device} dropped out again at step {step} while already offline"
                )
            }
            Error::UnmatchedRecover { device, step } => {
                write!(
                    f,
                    "device {device} recovered at step {step} without an open dropout window"
                )
            }
            Error::OutOfOrderFaults { step, after } => {
                write!(
                    f,
                    "fault at step {step} scheduled after one at step {after}"
                )
            }
            Error::StatusCountMismatch { expected, got } => {
                write!(
                    f,
                    "device status restore got {got} entries, system has {expected} devices"
                )
            }
        }
    }
}

impl std::error::Error for Error {}
