use crate::spec::GpuSpec;

/// The near-field work of one target leaf node: `targets` bodies, each of
/// which must interact with every body of every source node in its
/// interaction list. `source_counts[i]` is the body count of the i-th source
/// node (sources are loaded tile-wise per node, as in the paper's Fig. 5).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct P2pJob {
    pub targets: usize,
    pub source_counts: Vec<usize>,
}

impl P2pJob {
    pub fn new(targets: usize, source_counts: Vec<usize>) -> Self {
        P2pJob {
            targets,
            source_counts,
        }
    }

    /// Total source bodies across the interaction list.
    pub fn total_sources(&self) -> usize {
        self.source_counts.iter().sum()
    }

    /// Useful body-body interactions: `targets × total_sources` — the
    /// paper's `Interactions(t)`.
    pub fn interactions(&self) -> u64 {
        self.targets as u64 * self.total_sources() as u64
    }
}

/// Per-leaf expansion work offloaded to the GPU — the paper's proposed
/// extension ("the way forward in such an unbalanced situation is to move
/// additional work to the GPU... the P2M expansion formation and L2P
/// expansion evaluation"). One thread per body; each thread runs
/// `cycles_per_body` cycles of expansion arithmetic.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ExpansionJob {
    pub bodies: usize,
    pub cycles_per_body: f64,
}

/// One simulated GPU.
#[derive(Clone, Debug, Default)]
pub struct SimGpu {
    pub spec: GpuSpec,
}

/// Per-kernel execution report of one device.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelReport {
    /// Simulated kernel time in seconds (SM makespan + launch overhead).
    pub elapsed_s: f64,
    /// Useful interactions performed.
    pub useful_pairs: u64,
    /// Thread-slots × source-steps actually occupied, counting idle threads
    /// of partial blocks. `useful_pairs / occupied_pairs` is the SIMT
    /// efficiency of the kernel.
    pub occupied_pairs: u64,
    /// Blocks issued.
    pub blocks: usize,
}

impl KernelReport {
    /// Fraction of thread work that was useful, in (0, 1]. 1.0 when every
    /// block was exactly full. Defined as 1.0 for an empty kernel.
    pub fn efficiency(&self) -> f64 {
        if self.occupied_pairs == 0 {
            1.0
        } else {
            self.useful_pairs as f64 / self.occupied_pairs as f64
        }
    }
}

impl SimGpu {
    pub fn new(spec: GpuSpec) -> Self {
        SimGpu { spec }
    }

    /// Cycles one block of this job spends marching through all sources.
    ///
    /// Every block of the job — full or partial — walks the same source
    /// stream: per source node, tiles of `block_size` are loaded
    /// cooperatively, then each thread serially processes the loaded bodies.
    fn block_cycles(&self, job: &P2pJob) -> f64 {
        let bs = self.spec.block_size;
        let mut cycles = 0.0;
        for &n in &job.source_counts {
            if n == 0 {
                continue;
            }
            let tiles = n.div_ceil(bs) as f64;
            cycles += tiles * self.spec.tile_load_cycles + n as f64 * self.spec.pair_cycles;
        }
        cycles
    }

    /// Execute a kernel covering `jobs` and report its simulated timing.
    ///
    /// Blocks are created per job (one thread per target body, padded to
    /// whole warps) and dispatched greedily to the least-loaded SM slot in
    /// issue order — the hardware's block scheduler. Kernel time is the
    /// maximum SM load plus the fixed launch overhead.
    pub fn run_kernel(&self, jobs: &[P2pJob]) -> KernelReport {
        let bs = self.spec.block_size;
        let ws = self.spec.warp_size.max(1);
        let mut sm_load = vec![0.0f64; self.spec.sms.max(1)];
        let mut useful = 0u64;
        let mut occupied = 0u64;
        let mut blocks = 0usize;

        for job in jobs {
            if job.targets == 0 {
                continue;
            }
            let nsrc = job.total_sources() as u64;
            if nsrc == 0 {
                continue;
            }
            let cyc = self.block_cycles(job);
            let full_blocks = job.targets / bs;
            let rem = job.targets % bs;
            useful += job.targets as u64 * nsrc;
            // Full blocks occupy bs threads; the partial block occupies its
            // targets padded up to whole warps, and its idle threads step
            // through the same source stream doing nothing.
            occupied += full_blocks as u64 * bs as u64 * nsrc;
            let mut nblocks = full_blocks;
            if rem > 0 {
                nblocks += 1;
                let padded = rem.div_ceil(ws) * ws;
                occupied += padded as u64 * nsrc;
            }
            blocks += nblocks;
            for _ in 0..nblocks {
                // Least-loaded slot; ties broken by lowest index for
                // determinism.
                let (slot, _) = sm_load
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(a.0.cmp(&b.0)))
                    .expect("at least one SM");
                sm_load[slot] += cyc;
            }
        }

        let max_cycles = sm_load.iter().copied().fold(0.0, f64::max);
        let elapsed = if blocks == 0 {
            0.0
        } else {
            max_cycles / self.spec.clock_hz + self.spec.launch_overhead_s
        };
        KernelReport {
            elapsed_s: elapsed,
            useful_pairs: useful,
            occupied_pairs: occupied,
            blocks,
        }
    }

    /// Execute a kernel of offloaded expansion work (one thread per body).
    /// `useful_pairs`/`occupied_pairs` count body-slots here, so
    /// [`KernelReport::efficiency`] reports warp occupancy as usual.
    pub fn run_expansion_kernel(&self, jobs: &[ExpansionJob]) -> KernelReport {
        let bs = self.spec.block_size;
        let ws = self.spec.warp_size.max(1);
        let mut sm_load = vec![0.0f64; self.spec.sms.max(1)];
        let mut useful = 0u64;
        let mut occupied = 0u64;
        let mut blocks = 0usize;
        for job in jobs {
            if job.bodies == 0 || job.cycles_per_body <= 0.0 {
                continue;
            }
            useful += job.bodies as u64;
            let full_blocks = job.bodies / bs;
            let rem = job.bodies % bs;
            occupied += full_blocks as u64 * bs as u64;
            let mut nblocks = full_blocks;
            if rem > 0 {
                nblocks += 1;
                occupied += (rem.div_ceil(ws) * ws) as u64;
            }
            blocks += nblocks;
            for _ in 0..nblocks {
                let (slot, _) = sm_load
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(a.0.cmp(&b.0)))
                    .expect("at least one SM");
                sm_load[slot] += job.cycles_per_body;
            }
        }
        let max_cycles = sm_load.iter().copied().fold(0.0, f64::max);
        let elapsed = if blocks == 0 {
            0.0
        } else {
            max_cycles / self.spec.clock_hz + self.spec.launch_overhead_s
        };
        KernelReport {
            elapsed_s: elapsed,
            useful_pairs: useful,
            occupied_pairs: occupied,
            blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> SimGpu {
        SimGpu::new(GpuSpec::tesla_c2050())
    }

    #[test]
    fn empty_kernel_is_instant_and_efficient() {
        let r = gpu().run_kernel(&[]);
        assert_eq!(r.elapsed_s, 0.0);
        assert_eq!(r.efficiency(), 1.0);
        let r2 = gpu().run_kernel(&[P2pJob::new(0, vec![128]), P2pJob::new(64, vec![])]);
        assert_eq!(r2.elapsed_s, 0.0);
        assert_eq!(r2.blocks, 0);
    }

    #[test]
    fn time_scales_with_sources() {
        let g = gpu();
        let t1 = g.run_kernel(&[P2pJob::new(128, vec![1024])]).elapsed_s;
        let t4 = g.run_kernel(&[P2pJob::new(128, vec![4096])]).elapsed_s;
        let ratio = (t4 - g.spec.launch_overhead_s) / (t1 - g.spec.launch_overhead_s);
        assert!((ratio - 4.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn full_blocks_are_fully_efficient() {
        let g = gpu();
        let r = g.run_kernel(&[P2pJob::new(256, vec![512])]); // 2 full blocks
        assert_eq!(r.blocks, 2);
        assert_eq!(r.efficiency(), 1.0);
    }

    #[test]
    fn small_targets_with_many_sources_waste_threads() {
        // The paper's warning case: a tiny target node interacting with a
        // large source stream has terrible SIMT efficiency.
        let g = gpu();
        let r = g.run_kernel(&[P2pJob::new(3, vec![10_000])]);
        assert!(r.efficiency() < 0.2, "efficiency {}", r.efficiency());
        // ... and takes as long as a 32-target (one-warp) job would.
        let r32 = g.run_kernel(&[P2pJob::new(32, vec![10_000])]);
        assert_eq!(r.elapsed_s, r32.elapsed_s);
    }

    #[test]
    fn partial_block_time_equals_full_block_time() {
        let g = gpu();
        let t_partial = g.run_kernel(&[P2pJob::new(1, vec![2048])]).elapsed_s;
        let t_full = g
            .run_kernel(&[P2pJob::new(g.spec.block_size, vec![2048])])
            .elapsed_s;
        assert_eq!(t_partial, t_full);
    }

    #[test]
    fn many_blocks_fill_all_sms() {
        let g = gpu();
        // 28 identical one-block jobs on 14 SMs: exactly two rounds.
        let jobs: Vec<_> = (0..28).map(|_| P2pJob::new(128, vec![1000])).collect();
        let one = g.run_kernel(&jobs[..1]).elapsed_s - g.spec.launch_overhead_s;
        let all = g.run_kernel(&jobs).elapsed_s - g.spec.launch_overhead_s;
        assert!((all / one - 2.0).abs() < 1e-9);
    }

    #[test]
    fn tile_loads_charged_per_source_node() {
        // Same total sources split across many nodes costs more (more tile
        // loads of partial tiles).
        let g = gpu();
        let lumped = g.run_kernel(&[P2pJob::new(128, vec![4096])]).elapsed_s;
        let split = g.run_kernel(&[P2pJob::new(128, vec![16; 256])]).elapsed_s;
        assert!(split > lumped);
    }

    #[test]
    fn deterministic() {
        let g = gpu();
        let jobs: Vec<_> = (1..40)
            .map(|i| P2pJob::new(i * 7 % 200 + 1, vec![i * 31 % 900 + 1]))
            .collect();
        let a = g.run_kernel(&jobs);
        let b = g.run_kernel(&jobs);
        assert_eq!(a.elapsed_s, b.elapsed_s);
        assert_eq!(a.useful_pairs, b.useful_pairs);
    }

    #[test]
    fn interactions_formula() {
        let j = P2pJob::new(10, vec![5, 7, 3]);
        assert_eq!(j.total_sources(), 15);
        assert_eq!(j.interactions(), 150);
    }
}
