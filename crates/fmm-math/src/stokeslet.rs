use crate::expansion::ExpansionOps;
use crate::kernel::Kernel;
use crate::powers::power_series;
use geom::Vec3;

/// Number of harmonic channels in the Stokeslet decomposition.
pub const STOKESLET_CHANNELS: usize = 7;

/// The regularized Stokeslet kernel of Cortez et al. (method of regularized
/// Stokeslets), used by the paper's immersed-boundary fluid problem.
///
/// Direct (P2P) form, with `d = x − y`, `r = |d|`, blob parameter ε:
///
/// ```text
/// u(x) = 1/(8πμ) Σ_s [ f_s (r² + 2ε²) + (f_s·d) d ] / (r² + ε²)^{3/2}
/// ```
///
/// Far field: the singular Stokeslet `S_ij = δ_ij/r + d_i d_j/r³` decomposes
/// into seven harmonic 1/r-type potentials —
///
/// ```text
/// u_i(x) = 1/(8πμ) [ C_i(x) + x_i · D(x) − E_i(x) ]
///   C_i = Σ_s f_i / r              (3 charge channels, strengths f_i)
///   D   = Σ_s f·d / r³             (1 dipole channel, moment f)
///   E_i = Σ_s y_i (f·d) / r³       (3 dipole channels, moment f weighted
///                                   by the absolute source coordinate y_i)
/// ```
///
/// so M2M/M2L/L2L reuse the kernel-independent cartesian machinery and one
/// shared derivative tensor per M2L pair. The far field drops the O(ε²/r³)
/// regularization terms — exact in the ε → 0 limit and negligible whenever
/// ε is small against cell separations (the regime the method is used in).
#[derive(Clone, Copy, Debug)]
pub struct StokesletKernel {
    /// Blob/regularization parameter ε.
    pub epsilon: f64,
    /// Dynamic viscosity μ.
    pub mu: f64,
}

impl StokesletKernel {
    pub fn new(epsilon: f64, mu: f64) -> Self {
        assert!(epsilon >= 0.0 && mu > 0.0);
        StokesletKernel { epsilon, mu }
    }

    #[inline]
    fn prefactor(&self) -> f64 {
        1.0 / (8.0 * std::f64::consts::PI * self.mu)
    }
}

impl Default for StokesletKernel {
    fn default() -> Self {
        StokesletKernel {
            epsilon: 1e-3,
            mu: 1.0,
        }
    }
}

impl Kernel for StokesletKernel {
    fn channels(&self) -> usize {
        STOKESLET_CHANNELS
    }

    fn strength_dim(&self) -> usize {
        3
    }

    fn name(&self) -> &'static str {
        "stokeslet"
    }

    fn p2m(
        &self,
        ops: &ExpansionOps,
        center: Vec3,
        pos: &[Vec3],
        strength: &[f64],
        m: &mut [f64],
        pow_scratch: &mut Vec<f64>,
    ) {
        let nt = ops.nterms();
        debug_assert_eq!(m.len(), STOKESLET_CHANNELS * nt);
        debug_assert_eq!(strength.len(), 3 * pos.len());
        let set = ops.set();
        pow_scratch.resize(nt, 0.0);
        for (s, &y) in pos.iter().enumerate() {
            let f = Vec3::new(strength[3 * s], strength[3 * s + 1], strength[3 * s + 2]);
            power_series(y - center, set, pow_scratch);
            for (a, (ai, aj, ak)) in set.iter() {
                let pw = pow_scratch[a];
                // Charge channels C_i: plain moments with strength f_i.
                m[a] += f.x * pw;
                m[nt + a] += f.y * pw;
                m[2 * nt + a] += f.z * pw;
                // Dipole moment contribution Σ_d f_d (y−c)^{α−e_d}/(α−e_d)!.
                let mut dip = 0.0;
                if ai > 0 {
                    dip += f.x * pow_scratch[set.idx(ai - 1, aj, ak)];
                }
                if aj > 0 {
                    dip += f.y * pow_scratch[set.idx(ai, aj - 1, ak)];
                }
                if ak > 0 {
                    dip += f.z * pow_scratch[set.idx(ai, aj, ak - 1)];
                }
                m[3 * nt + a] += dip;
                // Coordinate-weighted dipole channels E_i.
                m[4 * nt + a] += y.x * dip;
                m[5 * nt + a] += y.y * dip;
                m[6 * nt + a] += y.z * dip;
            }
        }
    }

    fn l2p(
        &self,
        ops: &ExpansionOps,
        center: Vec3,
        l: &[f64],
        pos: &[Vec3],
        _pot: &mut [f64],
        out: &mut [Vec3],
        pow_scratch: &mut Vec<f64>,
    ) {
        let nt = ops.nterms();
        debug_assert_eq!(l.len(), STOKESLET_CHANNELS * nt);
        let set = ops.set();
        let pref = self.prefactor();
        pow_scratch.resize(nt, 0.0);
        for (i, &x) in pos.iter().enumerate() {
            power_series(x - center, set, pow_scratch);
            let mut ch = [0.0f64; STOKESLET_CHANNELS];
            for b in 0..nt {
                let pw = pow_scratch[b];
                for (c, v) in ch.iter_mut().enumerate() {
                    *v += l[c * nt + b] * pw;
                }
            }
            let u = Vec3::new(
                ch[0] + x.x * ch[3] - ch[4],
                ch[1] + x.y * ch[3] - ch[5],
                ch[2] + x.z * ch[3] - ch[6],
            );
            out[i] += u * pref;
        }
    }

    fn p2p(
        &self,
        tpos: &[Vec3],
        _tpot: &mut [f64],
        tout: &mut [Vec3],
        spos: &[Vec3],
        sstr: &[f64],
        self_interaction: bool,
    ) {
        debug_assert_eq!(sstr.len(), 3 * spos.len());
        if self_interaction {
            debug_assert_eq!(tpos.len(), spos.len());
        }
        let e2 = self.epsilon * self.epsilon;
        let pref = self.prefactor();
        for (i, &x) in tpos.iter().enumerate() {
            let mut u = Vec3::ZERO;
            for (j, &y) in spos.iter().enumerate() {
                if self_interaction && i == j {
                    // The regularized Stokeslet is finite at r = 0 but the
                    // self term is handled by the regularization itself;
                    // include it (standard in the method) unless ε = 0.
                    if e2 == 0.0 {
                        continue;
                    }
                }
                let f = Vec3::new(sstr[3 * j], sstr[3 * j + 1], sstr[3 * j + 2]);
                let d = x - y;
                let r2 = d.norm_sq();
                let re2 = r2 + e2;
                let inv = 1.0 / (re2 * re2.sqrt());
                u += (f * (r2 + 2.0 * e2) + d * f.dot(d)) * inv;
            }
            tout[i] += u * pref;
        }
    }

    fn p2p_flops_per_pair(&self) -> f64 {
        // ~3 sub, 5 r², 2 add, sqrt+div ≈ 8, dot 5, 2×(3 mul + 3 fma) ≈ 12,
        // scale+add 6 → ≈ 41; noticeably heavier than gravity.
        41.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::DerivScratch;

    fn cluster() -> (Vec<Vec3>, Vec<f64>) {
        let pos = vec![
            Vec3::new(0.1, 0.2, -0.1),
            Vec3::new(-0.2, 0.1, 0.15),
            Vec3::new(0.05, -0.25, 0.2),
        ];
        // Force vectors, one per source.
        let f = vec![1.0, 0.5, -0.2, -0.3, 1.2, 0.4, 0.2, -0.7, 0.9];
        (pos, f)
    }

    #[test]
    fn singular_limit_matches_oseen_tensor() {
        // With ε = 0 the P2P must equal the classical Oseen tensor.
        let k = StokesletKernel::new(0.0, 1.0);
        let x = Vec3::new(1.0, 2.0, 2.0); // r = 3
        let f = Vec3::new(0.0, 0.0, 1.0);
        let mut pot = [0.0];
        let mut u = [Vec3::ZERO];
        k.p2p(
            &[x],
            &mut pot,
            &mut u,
            &[Vec3::ZERO],
            &[f.x, f.y, f.z],
            false,
        );
        let r = 3.0f64;
        let pref = 1.0 / (8.0 * std::f64::consts::PI);
        let expect = Vec3::new(
            pref * (x.x * x.z) / r.powi(3),
            pref * (x.y * x.z) / r.powi(3),
            pref * (1.0 / r + x.z * x.z / r.powi(3)),
        );
        assert!((u[0] - expect).norm() < 1e-15, "{:?} vs {expect:?}", u[0]);
    }

    #[test]
    fn regularization_finite_at_origin() {
        let k = StokesletKernel::new(0.1, 1.0);
        let f = [1.0, 0.0, 0.0];
        let mut pot = [0.0];
        let mut u = [Vec3::ZERO];
        k.p2p(&[Vec3::ZERO], &mut pot, &mut u, &[Vec3::ZERO], &f, false);
        assert!(u[0].is_finite());
        // u = f·2ε²/ε³/(8πμ) = 2/(8πμε)
        let expect = 2.0 / (8.0 * std::f64::consts::PI * 0.1);
        assert!((u[0].x - expect).abs() < 1e-12);
    }

    #[test]
    fn expansion_path_converges_to_direct() {
        let k = StokesletKernel::new(1e-4, 1.0);
        let (spos, f) = cluster();
        let tpos = vec![Vec3::new(4.0, 0.3, -0.2), Vec3::new(4.3, -0.4, 0.2)];

        let mut derr_last = f64::INFINITY;
        for p in [2usize, 4, 6, 8] {
            let ops = ExpansionOps::new(p);
            let nt = ops.nterms();
            let mut pow = Vec::new();
            let mut m = vec![0.0; STOKESLET_CHANNELS * nt];
            k.p2m(&ops, Vec3::ZERO, &spos, &f, &mut m, &mut pow);

            let lc = Vec3::new(4.1, 0.0, 0.0);
            let mut l = vec![0.0; STOKESLET_CHANNELS * nt];
            let mut ds = DerivScratch::default();
            let mut tens = Vec::new();
            ops.m2l(&m, lc, &mut l, STOKESLET_CHANNELS, &mut ds, &mut tens);

            let mut pot = vec![0.0; tpos.len()];
            let mut u = vec![Vec3::ZERO; tpos.len()];
            k.l2p(&ops, lc, &l, &tpos, &mut pot, &mut u, &mut pow);

            let mut dpot = vec![0.0; tpos.len()];
            let mut du = vec![Vec3::ZERO; tpos.len()];
            k.p2p(&tpos, &mut dpot, &mut du, &spos, &f, false);

            let err: f64 = (0..tpos.len())
                .map(|i| (u[i] - du[i]).norm() / du[i].norm())
                .fold(0.0, f64::max);
            assert!(err < derr_last, "p={p}: err {err} !< {derr_last}");
            derr_last = err;
        }
        assert!(derr_last < 1e-6, "p=8 velocity error {derr_last}");
    }

    #[test]
    fn m2m_preserves_stokes_far_field() {
        let k = StokesletKernel::new(1e-4, 1.0);
        let (spos, f) = cluster();
        let tpos = vec![Vec3::new(-5.0, 1.0, 2.0)];
        let ops = ExpansionOps::new(8);
        let nt = ops.nterms();

        let child_c = Vec3::new(0.0, 0.05, 0.05);
        let parent_c = Vec3::new(0.25, 0.25, 0.25);
        let mut pow = Vec::new();
        let mut mc = vec![0.0; STOKESLET_CHANNELS * nt];
        k.p2m(&ops, child_c, &spos, &f, &mut mc, &mut pow);
        let mut mp = vec![0.0; STOKESLET_CHANNELS * nt];
        ops.m2m(
            &mc,
            child_c - parent_c,
            &mut mp,
            STOKESLET_CHANNELS,
            &mut pow,
        );

        // M2L from parent, evaluate at target.
        let lc = tpos[0] + Vec3::new(-0.05, 0.02, 0.0);
        let mut l = vec![0.0; STOKESLET_CHANNELS * nt];
        let mut ds = DerivScratch::default();
        let mut tens = Vec::new();
        ops.m2l(
            &mp,
            lc - parent_c,
            &mut l,
            STOKESLET_CHANNELS,
            &mut ds,
            &mut tens,
        );
        let mut pot = vec![0.0];
        let mut u = vec![Vec3::ZERO];
        k.l2p(&ops, lc, &l, &tpos, &mut pot, &mut u, &mut pow);

        let mut dpot = vec![0.0];
        let mut du = vec![Vec3::ZERO];
        k.p2p(&tpos, &mut dpot, &mut du, &spos, &f, false);
        let err = (u[0] - du[0]).norm() / du[0].norm();
        assert!(err < 1e-5, "M2M path error {err}");
    }

    #[test]
    fn m2l_cost_ratio_vs_gravity_matches_paper_regime() {
        // Paper §IX.B: Stokes M2L ≈ 4× gravity M2L. With a shared tensor the
        // flop model should land in the 3–7× band.
        let ops = ExpansionOps::new(6);
        let ratio = ops.m2l_flops(STOKESLET_CHANNELS) / ops.m2l_flops(1);
        assert!((3.0..7.0).contains(&ratio), "M2L flop ratio {ratio}");
    }
}
