use crate::multiindex::MultiIndexSet;
use geom::Vec3;

/// Fill `out[idx] = dx^α / α!` for every multi-index `α` in `set`.
///
/// This is the shared building block of P2M (moments of a point source),
/// M2M/L2L (binomial translation weights) and L2P (Taylor monomials at the
/// evaluation point). Computed by a one-term recurrence
/// `v_α = v_{α−e_d} · dx_d / α_d`, so the whole table costs two flops per
/// entry.
#[inline]
pub fn power_series(dx: Vec3, set: &MultiIndexSet, out: &mut [f64]) {
    debug_assert_eq!(out.len(), set.len());
    out[0] = 1.0;
    let d = [dx.x, dx.y, dx.z];
    for idx in 1..set.len() {
        // peel() picks the first axis with a nonzero exponent.
        let (axis, lower) = set.peel(idx).expect("nonzero index peels");
        let (i, j, k) = set.tuple(idx);
        let e = [i, j, k][axis] as f64;
        out[idx] = out[lower] * d[axis] / e;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_direct_evaluation() {
        let set = MultiIndexSet::new(6);
        let dx = Vec3::new(0.3, -1.7, 2.2);
        let mut out = vec![0.0; set.len()];
        power_series(dx, &set, &mut out);
        for (idx, (i, j, k)) in set.iter() {
            let direct = dx.x.powi(i as i32)
                * dx.y.powi(j as i32)
                * dx.z.powi(k as i32)
                * set.inv_factorial(idx);
            assert!(
                (out[idx] - direct).abs() <= 1e-12 * direct.abs().max(1.0),
                "mismatch at ({i},{j},{k}): {} vs {}",
                out[idx],
                direct
            );
        }
    }

    #[test]
    fn zero_vector_gives_delta() {
        let set = MultiIndexSet::new(4);
        let mut out = vec![0.0; set.len()];
        power_series(Vec3::ZERO, &set, &mut out);
        assert_eq!(out[0], 1.0);
        for idx in 1..set.len() {
            assert_eq!(out[idx], 0.0);
        }
    }

    #[test]
    fn exponential_identity() {
        // Σ_α dx^α/α! over *all* orders = exp(x)exp(y)exp(z); the truncated
        // sum must approach it as p grows.
        let dx = Vec3::new(0.1, 0.2, -0.15);
        let exact = (dx.x + dx.y + dx.z).exp();
        let mut last_err = f64::INFINITY;
        for p in [2usize, 4, 8] {
            let set = MultiIndexSet::new(p);
            let mut out = vec![0.0; set.len()];
            power_series(dx, &set, &mut out);
            let sum: f64 = out.iter().sum();
            let err = (sum - exact).abs();
            assert!(err < last_err, "error must shrink with order");
            last_err = err;
        }
        assert!(last_err < 1e-9);
    }
}
