use crate::expansion::ExpansionOps;
use crate::kernel::Kernel;
use crate::powers::power_series;
use geom::Vec3;

/// The Newtonian gravity / Coulomb kernel `1/r` (one harmonic channel).
///
/// Conventions: for sources of mass `m_s` at `y_s`, the kernel computes per
/// target `x`
///
/// * potential `φ(x) = Σ_s m_s / |x − y_s|` (softened in P2P), and
/// * field `a(x) = ∇φ(x) = Σ_s m_s (y_s − x) / |x − y_s|³`,
///
/// i.e. the *attractive* acceleration direction; callers multiply by the
/// gravitational constant G. `softening` (Plummer softening ε) regularizes
/// close encounters in the direct part only — the far field expands the
/// unsoftened kernel, which is exact for well-separated cells when ε is
/// small compared to cell distances.
#[derive(Clone, Copy, Debug)]
pub struct GravityKernel {
    pub softening: f64,
}

impl GravityKernel {
    pub fn new(softening: f64) -> Self {
        assert!(softening >= 0.0);
        GravityKernel { softening }
    }
}

impl Default for GravityKernel {
    fn default() -> Self {
        GravityKernel { softening: 0.0 }
    }
}

impl Kernel for GravityKernel {
    fn channels(&self) -> usize {
        1
    }

    fn strength_dim(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "gravity"
    }

    fn p2m(
        &self,
        ops: &ExpansionOps,
        center: Vec3,
        pos: &[Vec3],
        strength: &[f64],
        m: &mut [f64],
        pow_scratch: &mut Vec<f64>,
    ) {
        let nt = ops.nterms();
        debug_assert_eq!(m.len(), nt);
        debug_assert_eq!(strength.len(), pos.len());
        pow_scratch.resize(nt, 0.0);
        for (y, &q) in pos.iter().zip(strength) {
            power_series(*y - center, ops.set(), pow_scratch);
            for i in 0..nt {
                m[i] += q * pow_scratch[i];
            }
        }
    }

    fn l2p(
        &self,
        ops: &ExpansionOps,
        center: Vec3,
        l: &[f64],
        pos: &[Vec3],
        pot: &mut [f64],
        out: &mut [Vec3],
        pow_scratch: &mut Vec<f64>,
    ) {
        let nt = ops.nterms();
        debug_assert_eq!(l.len(), nt);
        let set = ops.set();
        pow_scratch.resize(nt, 0.0);
        for (i, &x) in pos.iter().enumerate() {
            power_series(x - center, set, pow_scratch);
            let mut phi = 0.0;
            let mut grad = Vec3::ZERO;
            for (b, (bi, bj, bk)) in set.iter() {
                let v = l[b];
                phi += v * pow_scratch[b];
                // ∂_d φ = Σ_{β >= e_d} L_β (x−c)^{β−e_d}/(β−e_d)!
                //       = Σ_γ L_{γ+e_d} (x−c)^γ/γ!  — accumulate by peeling.
                if bi > 0 {
                    grad.x += v * pow_scratch[set.idx(bi - 1, bj, bk)];
                }
                if bj > 0 {
                    grad.y += v * pow_scratch[set.idx(bi, bj - 1, bk)];
                }
                if bk > 0 {
                    grad.z += v * pow_scratch[set.idx(bi, bj, bk - 1)];
                }
            }
            pot[i] += phi;
            out[i] += grad;
        }
    }

    fn p2p(
        &self,
        tpos: &[Vec3],
        tpot: &mut [f64],
        tout: &mut [Vec3],
        spos: &[Vec3],
        sstr: &[f64],
        self_interaction: bool,
    ) {
        debug_assert_eq!(spos.len(), sstr.len());
        if self_interaction {
            debug_assert_eq!(tpos.len(), spos.len());
        }
        let eps2 = self.softening * self.softening;
        for (i, &x) in tpos.iter().enumerate() {
            let mut phi = 0.0;
            let mut acc = Vec3::ZERO;
            for (j, (&y, &q)) in spos.iter().zip(sstr).enumerate() {
                if self_interaction && i == j {
                    continue;
                }
                let d = y - x;
                let r2 = d.norm_sq() + eps2;
                let inv_r = 1.0 / r2.sqrt();
                let inv_r3 = inv_r / r2;
                phi += q * inv_r;
                acc += d * (q * inv_r3);
            }
            tpot[i] += phi;
            tout[i] += acc;
        }
    }

    fn p2p_flops_per_pair(&self) -> f64 {
        // 3 sub + 5 r² + sqrt(≈4) + div(≈4) + 1 + 6 fma + 2 ≈ 25
        25.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::DerivScratch;

    fn cluster() -> (Vec<Vec3>, Vec<f64>) {
        let pos = vec![
            Vec3::new(0.1, 0.2, -0.1),
            Vec3::new(-0.2, 0.1, 0.15),
            Vec3::new(0.05, -0.25, 0.2),
            Vec3::new(-0.15, 0.0, -0.1),
        ];
        let mass = vec![1.0, 2.0, 0.5, 1.25];
        (pos, mass)
    }

    #[test]
    fn p2p_matches_closed_form_pair() {
        let k = GravityKernel::default();
        let t = [Vec3::ZERO];
        let s = [Vec3::new(2.0, 0.0, 0.0)];
        let q = [3.0];
        let mut pot = [0.0];
        let mut acc = [Vec3::ZERO];
        k.p2p(&t, &mut pot, &mut acc, &s, &q, false);
        assert!((pot[0] - 1.5).abs() < 1e-15);
        // attractive: points from target toward source (+x)
        assert!((acc[0].x - 3.0 / 4.0).abs() < 1e-15);
        assert_eq!(acc[0].y, 0.0);
    }

    #[test]
    fn p2p_self_interaction_skips_diagonal() {
        let k = GravityKernel::default();
        let (pos, mass) = cluster();
        let mut pot = vec![0.0; pos.len()];
        let mut acc = vec![Vec3::ZERO; pos.len()];
        k.p2p(&pos, &mut pot, &mut acc, &pos, &mass, true);
        assert!(pot.iter().all(|p| p.is_finite()));
        assert!(acc.iter().all(|a| a.is_finite()));
        // Newton's third law: Σ m_i a_i = 0 for internal forces.
        let net: Vec3 = pos.iter().enumerate().map(|(i, _)| acc[i] * mass[i]).sum();
        assert!(net.norm() < 1e-12, "net internal force {net:?}");
    }

    #[test]
    fn softening_bounds_close_encounters() {
        let k = GravityKernel::new(0.1);
        let t = [Vec3::ZERO];
        let s = [Vec3::new(1e-12, 0.0, 0.0)];
        let q = [1.0];
        let mut pot = [0.0];
        let mut acc = [Vec3::ZERO];
        k.p2p(&t, &mut pot, &mut acc, &s, &q, false);
        assert!(pot[0] <= 10.0 + 1e-9); // 1/ε
        assert!(acc[0].norm() < 1e-9); // force → 0 at zero separation
    }

    #[test]
    fn expansion_path_matches_direct_far_field() {
        // P2M -> M2L -> L2P vs direct P2P for a well-separated target leaf.
        let k = GravityKernel::default();
        let (spos, mass) = cluster();
        let tpos = vec![Vec3::new(5.0, 0.3, -0.2), Vec3::new(5.2, -0.1, 0.1)];

        for (p, tol) in [(4usize, 1e-3), (8, 1e-6)] {
            let ops = ExpansionOps::new(p);
            let mut pow = Vec::new();
            let mut m = vec![0.0; ops.nterms()];
            k.p2m(&ops, Vec3::ZERO, &spos, &mass, &mut m, &mut pow);

            let local_center = Vec3::new(5.1, 0.1, 0.0);
            let mut l = vec![0.0; ops.nterms()];
            let mut ds = DerivScratch::default();
            let mut tens = Vec::new();
            ops.m2l(&m, local_center, &mut l, 1, &mut ds, &mut tens);

            let mut pot = vec![0.0; tpos.len()];
            let mut acc = vec![Vec3::ZERO; tpos.len()];
            k.l2p(&ops, local_center, &l, &tpos, &mut pot, &mut acc, &mut pow);

            let mut dpot = vec![0.0; tpos.len()];
            let mut dacc = vec![Vec3::ZERO; tpos.len()];
            k.p2p(&tpos, &mut dpot, &mut dacc, &spos, &mass, false);

            for i in 0..tpos.len() {
                let perr = (pot[i] - dpot[i]).abs() / dpot[i].abs();
                let aerr = (acc[i] - dacc[i]).norm() / dacc[i].norm();
                assert!(perr < tol, "p={p} potential err {perr}");
                assert!(aerr < tol * 10.0, "p={p} accel err {aerr}");
            }
        }
    }
}
