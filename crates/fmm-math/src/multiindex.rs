/// Number of 3-variable multi-indices with total order `<= p`:
/// `C(p+3, 3) = (p+1)(p+2)(p+3)/6`.
#[inline]
pub const fn nterms(p: usize) -> usize {
    (p + 1) * (p + 2) * (p + 3) / 6
}

/// An enumerated set of all 3D multi-indices `α = (i, j, k)` with
/// `|α| = i + j + k <= order`, in *graded* order (all of total order `n`
/// before any of order `n + 1`), with O(1) index/tuple lookups and
/// precomputed `1/α!`.
///
/// Every expansion buffer in the workspace is laid out in this order, so the
/// set doubles as the coefficient indexing scheme.
#[derive(Clone, Debug)]
pub struct MultiIndexSet {
    order: usize,
    tuples: Vec<(u8, u8, u8)>,
    /// Dense `(order+1)^3` lookup from `(i, j, k)` to flat index
    /// (`u32::MAX` when `i + j + k > order`).
    index: Vec<u32>,
    inv_fact: Vec<f64>,
    /// `order_start[n]` = first flat index of total order `n`;
    /// `order_start[order + 1]` = total length.
    order_start: Vec<usize>,
}

impl MultiIndexSet {
    pub fn new(order: usize) -> Self {
        assert!(order <= 30, "expansion order {order} is unreasonably large");
        let stride = order + 1;
        let mut tuples = Vec::with_capacity(nterms(order));
        let mut index = vec![u32::MAX; stride * stride * stride];
        let mut order_start = Vec::with_capacity(order + 2);
        // Factorials up to `order` fit exactly in f64 (order <= 30 < 170).
        let mut fact = vec![1.0f64; order + 1];
        for n in 1..=order {
            fact[n] = fact[n - 1] * n as f64;
        }
        let mut inv_fact = Vec::with_capacity(nterms(order));
        for n in 0..=order {
            order_start.push(tuples.len());
            for i in (0..=n).rev() {
                for j in (0..=(n - i)).rev() {
                    let k = n - i - j;
                    let idx = tuples.len() as u32;
                    tuples.push((i as u8, j as u8, k as u8));
                    index[(i * stride + j) * stride + k] = idx;
                    inv_fact.push(1.0 / (fact[i] * fact[j] * fact[k]));
                }
            }
        }
        order_start.push(tuples.len());
        debug_assert_eq!(tuples.len(), nterms(order));
        MultiIndexSet {
            order,
            tuples,
            index,
            inv_fact,
            order_start,
        }
    }

    /// Maximum total order `p`.
    #[inline]
    pub fn order(&self) -> usize {
        self.order
    }

    /// Total number of multi-indices, `nterms(order)`.
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Flat index of `(i, j, k)`; panics (debug) / garbage-guards (release)
    /// when `i + j + k > order`.
    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        let stride = self.order + 1;
        let v = self.index[(i * stride + j) * stride + k];
        debug_assert_ne!(v, u32::MAX, "multi-index ({i},{j},{k}) out of set");
        v as usize
    }

    /// `(i, j, k)` for a flat index.
    #[inline]
    pub fn tuple(&self, idx: usize) -> (usize, usize, usize) {
        let (i, j, k) = self.tuples[idx];
        (i as usize, j as usize, k as usize)
    }

    /// Total order `|α|` of a flat index.
    #[inline]
    pub fn total_order(&self, idx: usize) -> usize {
        let (i, j, k) = self.tuples[idx];
        (i + j + k) as usize
    }

    /// `1 / α!` for a flat index.
    #[inline]
    pub fn inv_factorial(&self, idx: usize) -> f64 {
        self.inv_fact[idx]
    }

    /// Range of flat indices with total order exactly `n`.
    #[inline]
    pub fn order_range(&self, n: usize) -> std::ops::Range<usize> {
        self.order_start[n]..self.order_start[n + 1]
    }

    /// Iterate `(flat_idx, (i, j, k))` in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, (usize, usize, usize))> + '_ {
        self.tuples
            .iter()
            .enumerate()
            .map(|(n, &(i, j, k))| (n, (i as usize, j as usize, k as usize)))
    }

    /// Flat index of `α - e_d` where `d` is the first axis with a nonzero
    /// exponent; `None` for `α = 0`. Used by recurrences that peel one
    /// derivative/power at a time.
    #[inline]
    pub fn peel(&self, idx: usize) -> Option<(usize, usize)> {
        let (i, j, k) = self.tuples[idx];
        if i > 0 {
            Some((0, self.idx(i as usize - 1, j as usize, k as usize)))
        } else if j > 0 {
            Some((1, self.idx(i as usize, j as usize - 1, k as usize)))
        } else if k > 0 {
            Some((2, self.idx(i as usize, j as usize, k as usize - 1)))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_formula() {
        for p in 0..10 {
            let set = MultiIndexSet::new(p);
            assert_eq!(set.len(), nterms(p));
        }
        assert_eq!(nterms(0), 1);
        assert_eq!(nterms(1), 4);
        assert_eq!(nterms(2), 10);
        assert_eq!(nterms(3), 20);
        assert_eq!(nterms(6), 84);
    }

    #[test]
    fn idx_tuple_roundtrip() {
        let set = MultiIndexSet::new(7);
        for (n, (i, j, k)) in set.iter() {
            assert_eq!(set.idx(i, j, k), n);
            assert_eq!(set.tuple(n), (i, j, k));
            assert_eq!(set.total_order(n), i + j + k);
        }
    }

    #[test]
    fn graded_ordering() {
        let set = MultiIndexSet::new(5);
        let mut last_order = 0;
        for idx in 0..set.len() {
            let n = set.total_order(idx);
            assert!(n >= last_order, "orders must be non-decreasing");
            last_order = n;
        }
        for n in 0..=5 {
            for idx in set.order_range(n) {
                assert_eq!(set.total_order(idx), n);
            }
        }
    }

    #[test]
    fn inverse_factorials() {
        let set = MultiIndexSet::new(4);
        assert_eq!(set.inv_factorial(set.idx(0, 0, 0)), 1.0);
        assert_eq!(set.inv_factorial(set.idx(2, 0, 0)), 0.5);
        assert_eq!(set.inv_factorial(set.idx(1, 1, 1)), 1.0);
        assert!((set.inv_factorial(set.idx(3, 1, 0)) - 1.0 / 6.0).abs() < 1e-15);
        assert!((set.inv_factorial(set.idx(2, 2, 0)) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn peel_reduces_order() {
        let set = MultiIndexSet::new(4);
        assert!(set.peel(0).is_none());
        for idx in 1..set.len() {
            let (d, lower) = set.peel(idx).unwrap();
            assert!(d < 3);
            assert_eq!(set.total_order(lower), set.total_order(idx) - 1);
            let (i, j, k) = set.tuple(idx);
            let mut t = [i, j, k];
            t[d] -= 1;
            assert_eq!(set.tuple(lower), (t[0], t[1], t[2]));
        }
    }

    #[test]
    fn zeroth_index_is_origin() {
        let set = MultiIndexSet::new(3);
        assert_eq!(set.tuple(0), (0, 0, 0));
        assert_eq!(set.order_range(0), 0..1);
        assert_eq!(set.order_range(1), 1..4);
    }
}
