use crate::expansion::ExpansionOps;
use geom::Vec3;

/// Flop weights of the six FMM operations for a kernel/order combination.
///
/// These seed the virtual-hardware timing model; the *observational*
/// coefficients of the paper's cost model are then derived from realized
/// (simulated or wall-clock) times, not from this table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpFlops {
    /// Per source body (P2M).
    pub p2m_per_body: f64,
    /// Per child translation (M2M).
    pub m2m: f64,
    /// Per source-target cell pair (M2L).
    pub m2l: f64,
    /// Per child translation (L2L).
    pub l2l: f64,
    /// Per target body (L2P).
    pub l2p_per_body: f64,
    /// Per body-body interaction (P2P).
    pub p2p_per_pair: f64,
}

/// An interaction kernel usable by the AFMM.
///
/// A kernel defines how point strengths map into multipole channels (P2M),
/// how local-expansion channels map back to per-body output (L2P), and the
/// direct interaction (P2P). The M2M/M2L/L2L translations are
/// kernel-independent (every channel is a harmonic 1/r-type expansion) and
/// live on [`ExpansionOps`].
///
/// Strengths are stored flat with [`Kernel::strength_dim`] values per body;
/// output is a potential-like scalar plus a [`Vec3`] per body (acceleration
/// for gravity, velocity for Stokes flow).
pub trait Kernel: Send + Sync {
    /// Number of harmonic expansion channels.
    fn channels(&self) -> usize;
    /// Scalars of strength per source body (1 = mass, 3 = force vector).
    fn strength_dim(&self) -> usize;
    fn name(&self) -> &'static str;

    /// Accumulate the multipole expansion (all channels) of the given
    /// sources about `center` into `m` (length `channels * nterms`).
    /// `pow_scratch` is a reusable `nterms` buffer.
    fn p2m(
        &self,
        ops: &ExpansionOps,
        center: Vec3,
        pos: &[Vec3],
        strength: &[f64],
        m: &mut [f64],
        pow_scratch: &mut Vec<f64>,
    );

    /// Evaluate the local expansion `l` about `center` at each target
    /// position, accumulating into `pot` and `out`.
    #[allow(clippy::too_many_arguments)]
    fn l2p(
        &self,
        ops: &ExpansionOps,
        center: Vec3,
        l: &[f64],
        pos: &[Vec3],
        pot: &mut [f64],
        out: &mut [Vec3],
        pow_scratch: &mut Vec<f64>,
    );

    /// Direct interaction of every target with every source, accumulating
    /// into `pot`/`out`. When `self_interaction` is true the slices describe
    /// the *same* bodies and the diagonal (i == j) is skipped.
    #[allow(clippy::too_many_arguments)]
    fn p2p(
        &self,
        tpos: &[Vec3],
        tpot: &mut [f64],
        tout: &mut [Vec3],
        spos: &[Vec3],
        sstr: &[f64],
        self_interaction: bool,
    );

    /// Flop weights for this kernel at the given expansion order.
    fn op_flops(&self, ops: &ExpansionOps) -> OpFlops {
        let c = self.channels();
        OpFlops {
            p2m_per_body: ops.per_body_flops(c),
            m2m: ops.translate_flops(c),
            m2l: ops.m2l_flops(c),
            l2l: ops.translate_flops(c),
            l2p_per_body: ops.per_body_flops(c),
            p2p_per_pair: self.p2p_flops_per_pair(),
        }
    }

    /// Flops of one direct body-body interaction.
    fn p2p_flops_per_pair(&self) -> f64;
}
