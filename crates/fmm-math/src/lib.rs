//! Cartesian Taylor-expansion mathematics for the adaptive fast multipole
//! method.
//!
//! The original paper uses spherical-harmonics expansions; this crate
//! implements the mathematically equivalent *cartesian* Taylor formulation of
//! order `p` (see DESIGN.md §2 for why the substitution preserves the paper's
//! behaviour): multipole coefficients are weighted moments
//! `M_α = Σ_s q_s (y_s − c)^α / α!`, local coefficients are field derivatives
//! `L_β = ∂^β Φ(c)`, and the M2L translation contracts multipole moments with
//! the derivative tensor `∂^γ (1/r)` evaluated via McMurchie–Davidson
//! recurrences.
//!
//! The six FMM operations of the paper map onto:
//!
//! | op  | function |
//! |-----|----------|
//! | P2M | [`Kernel::p2m`] |
//! | M2M | [`ExpansionOps::m2m`] (kernel-independent) |
//! | M2L | [`ExpansionOps::m2l`] (kernel-independent, shares one tensor across channels) |
//! | L2L | [`ExpansionOps::l2l`] (kernel-independent) |
//! | L2P | [`Kernel::l2p`] |
//! | P2P | [`Kernel::p2p`] |
//!
//! Two kernels are provided: Newtonian [`GravityKernel`] (1 harmonic channel)
//! and the regularized [`StokesletKernel`] of Cortez et al. (7 harmonic
//! channels via the classical charge + dipole decomposition), whose M2L cost
//! is several times the gravity cost — the property the paper exploits in its
//! Fig. 10 experiment.

mod expansion;
mod kernel;
mod laplace;
mod multiindex;
mod powers;
mod stokeslet;
mod tensor;

pub use expansion::ExpansionOps;
pub use kernel::{Kernel, OpFlops};
pub use laplace::GravityKernel;
pub use multiindex::{nterms, MultiIndexSet};
pub use powers::power_series;
pub use stokeslet::{StokesletKernel, STOKESLET_CHANNELS};
pub use tensor::{deriv_1_over_r, DerivScratch};
