use crate::multiindex::MultiIndexSet;
use geom::Vec3;

/// Reusable scratch table for [`deriv_1_over_r`]: `(order+1) × nterms`
/// auxiliary values of the McMurchie–Davidson recurrence. One per worker
/// thread is enough; allocation happens once and is reused across M2L calls.
#[derive(Clone, Debug, Default)]
pub struct DerivScratch {
    table: Vec<f64>,
}

/// Evaluate the full derivative tensor `out[γ] = ∂^γ (1/|v|)` at `v = dx`
/// for all `|γ| <= set.order()`.
///
/// Uses the McMurchie–Davidson auxiliary family
/// `R^m_0 = (−1)^m (2m−1)!! / r^{2m+1}` with the one-step recurrence
/// `R^m_{γ+e_d} = γ_d · R^{m+1}_{γ−e_d} + dx_d · R^{m+1}_γ`, which costs O(1)
/// per table entry — no symbolic polynomials, no cancellation-prone finite
/// differences. `D^γ(1/r) = R^0_γ`.
///
/// Panics in debug builds when `dx` is the zero vector (the tensor is
/// singular there); callers guarantee well-separatedness.
pub fn deriv_1_over_r(dx: Vec3, set: &MultiIndexSet, scratch: &mut DerivScratch, out: &mut [f64]) {
    let n_max = set.order();
    let nt = set.len();
    debug_assert_eq!(out.len(), nt);
    let r2 = dx.norm_sq();
    debug_assert!(r2 > 0.0, "derivative tensor evaluated at the origin");

    scratch.table.resize((n_max + 1) * nt, 0.0);
    let t = &mut scratch.table;

    // Base cases R^m_000 = (-1)^m (2m-1)!! / r^(2m+1).
    let inv_r2 = 1.0 / r2;
    let mut base = inv_r2.sqrt(); // 1/r
    let mut m_sign_dfact = 1.0; // (-1)^m (2m-1)!!
    for m in 0..=n_max {
        t[m * nt] = m_sign_dfact * base;
        m_sign_dfact *= -((2 * m + 1) as f64);
        base *= inv_r2;
    }

    let d = [dx.x, dx.y, dx.z];
    // Fill total order n from total order n-1 (at auxiliary index m+1).
    for n in 1..=n_max {
        for idx in set.order_range(n) {
            let (axis, lower) = set.peel(idx).expect("order >= 1 peels");
            let (i, j, k) = set.tuple(idx);
            let gd = [i, j, k][axis]; // exponent being incremented, >= 1
            let lower2 = if gd >= 2 {
                let mut tt = [i, j, k];
                tt[axis] -= 2;
                Some(set.idx(tt[0], tt[1], tt[2]))
            } else {
                None
            };
            for m in 0..=(n_max - n) {
                let hi = (m + 1) * nt;
                let mut v = d[axis] * t[hi + lower];
                if let Some(l2) = lower2 {
                    v += (gd - 1) as f64 * t[hi + l2];
                }
                t[m * nt + idx] = v;
            }
        }
    }
    out.copy_from_slice(&t[..nt]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor_at(dx: Vec3, p: usize) -> (MultiIndexSet, Vec<f64>) {
        let set = MultiIndexSet::new(p);
        let mut scratch = DerivScratch::default();
        let mut out = vec![0.0; set.len()];
        deriv_1_over_r(dx, &set, &mut scratch, &mut out);
        (set, out)
    }

    #[test]
    fn low_order_closed_forms() {
        let dx = Vec3::new(1.3, -0.7, 2.1);
        let (x, y, z) = (dx.x, dx.y, dx.z);
        let r = dx.norm();
        let (set, t) = tensor_at(dx, 3);
        let tol = 1e-12;

        assert!((t[set.idx(0, 0, 0)] - 1.0 / r).abs() < tol);
        assert!((t[set.idx(1, 0, 0)] - (-x / r.powi(3))).abs() < tol);
        assert!((t[set.idx(0, 1, 0)] - (-y / r.powi(3))).abs() < tol);
        assert!((t[set.idx(0, 0, 1)] - (-z / r.powi(3))).abs() < tol);
        // Second derivatives: (3 x_i x_j - δ_ij r²) / r⁵
        assert!((t[set.idx(2, 0, 0)] - (3.0 * x * x - r * r) / r.powi(5)).abs() < tol);
        assert!((t[set.idx(0, 2, 0)] - (3.0 * y * y - r * r) / r.powi(5)).abs() < tol);
        assert!((t[set.idx(1, 1, 0)] - 3.0 * x * y / r.powi(5)).abs() < tol);
        assert!((t[set.idx(1, 0, 1)] - 3.0 * x * z / r.powi(5)).abs() < tol);
        // Third derivative ∂x∂y∂z (1/r) = -15 xyz / r^7
        assert!((t[set.idx(1, 1, 1)] - (-15.0) * x * y * z / r.powi(7)).abs() < tol);
    }

    #[test]
    fn harmonicity_laplacian_vanishes() {
        // 1/r is harmonic away from the origin, so for every γ with
        // |γ| <= p-2: Σ_d ∂^(γ+2e_d)(1/r) = 0.
        let dx = Vec3::new(0.9, 1.4, -2.3);
        let p = 8;
        let (set, t) = tensor_at(dx, p);
        for (idx, (i, j, k)) in set.iter() {
            if set.total_order(idx) + 2 > p {
                continue;
            }
            let lap = t[set.idx(i + 2, j, k)] + t[set.idx(i, j + 2, k)] + t[set.idx(i, j, k + 2)];
            // Scale tolerance by the magnitude of the individual terms.
            let scale = t[set.idx(i + 2, j, k)]
                .abs()
                .max(t[set.idx(i, j + 2, k)].abs())
                .max(t[set.idx(i, j, k + 2)].abs())
                .max(1e-300);
            assert!(
                (lap / scale).abs() < 1e-10,
                "Laplacian of ∂^({i},{j},{k})(1/r) = {lap} (scale {scale})"
            );
        }
    }

    #[test]
    fn matches_finite_differences() {
        // Central finite differences of lower-order tensor entries.
        let dx = Vec3::new(1.1, -0.4, 0.8);
        let h = 1e-5;
        let p = 5;
        let (set, t) = tensor_at(dx, p);
        for (idx, (i, j, k)) in set.iter() {
            if set.total_order(idx) + 1 > p {
                continue;
            }
            for (axis, step) in [
                Vec3::new(h, 0.0, 0.0),
                Vec3::new(0.0, h, 0.0),
                Vec3::new(0.0, 0.0, h),
            ]
            .into_iter()
            .enumerate()
            {
                let (_, tp) = tensor_at(dx + step, p);
                let (_, tm) = tensor_at(dx - step, p);
                let fd = (tp[idx] - tm[idx]) / (2.0 * h);
                let mut tt = [i, j, k];
                tt[axis] += 1;
                let exact = t[set.idx(tt[0], tt[1], tt[2])];
                let scale = exact.abs().max(1.0);
                assert!(
                    (fd - exact).abs() / scale < 1e-5,
                    "∂_{axis} of ({i},{j},{k}): fd {fd} vs exact {exact}"
                );
            }
        }
    }

    #[test]
    fn homogeneity_scaling() {
        // ∂^γ(1/r) is homogeneous of degree -(|γ|+1): scaling dx by s scales
        // the entry by s^-(|γ|+1).
        let dx = Vec3::new(0.5, 0.6, -0.7);
        let s = 2.5;
        let (set, t1) = tensor_at(dx, 6);
        let (_, ts) = tensor_at(dx * s, 6);
        for idx in 0..set.len() {
            let n = set.total_order(idx) as i32;
            let expect = t1[idx] * s.powi(-(n + 1));
            assert!(
                (ts[idx] - expect).abs() <= 1e-12 * expect.abs().max(1e-12),
                "homogeneity at idx {idx}"
            );
        }
    }

    #[test]
    fn parity_under_negation() {
        // ∂^γ(1/r) at -dx = (-1)^|γ| times the value at dx.
        let dx = Vec3::new(1.0, 2.0, 3.0);
        let (set, tp) = tensor_at(dx, 6);
        let (_, tn) = tensor_at(-dx, 6);
        for idx in 0..set.len() {
            let sign = if set.total_order(idx) % 2 == 0 {
                1.0
            } else {
                -1.0
            };
            assert!(
                (tn[idx] - sign * tp[idx]).abs() <= 1e-12 * tp[idx].abs().max(1e-12),
                "parity at idx {idx}"
            );
        }
    }
}
