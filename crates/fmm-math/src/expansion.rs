use crate::multiindex::MultiIndexSet;
use crate::powers::power_series;
use crate::tensor::{deriv_1_over_r, DerivScratch};
use geom::Vec3;

/// Precomputed translation plans for expansions of a given order.
///
/// Holds the [`MultiIndexSet`] plus the flattened index triples used by the
/// kernel-independent translations:
///
/// * `sub_triples`: all `(α, β, α−β)` with `β <= α` component-wise — the
///   binomial stencil shared by M2M and L2L;
/// * `m2l_triples`: all `(α, β, α+β)` with `|α| + |β| <= p` — the
///   total-order-truncated M2L contraction (the standard cartesian-FMM
///   truncation; error stays `O((d/R)^{p+1})`).
///
/// One `ExpansionOps` is built per solver and shared read-only by all worker
/// threads; scratch buffers ([`DerivScratch`], power tables) live per thread.
#[derive(Clone, Debug)]
pub struct ExpansionOps {
    set: MultiIndexSet,
    sub_triples: Vec<(u32, u32, u32)>,
    m2l_triples: Vec<(u32, u32, u32)>,
    /// `(−1)^{|α|}` per flat index, used in the multipole-to-field formula.
    sign: Vec<f64>,
}

impl ExpansionOps {
    pub fn new(order: usize) -> Self {
        let set = MultiIndexSet::new(order);
        let mut sub_triples = Vec::new();
        let mut m2l_triples = Vec::new();
        for (a, (ai, aj, ak)) in set.iter() {
            // β <= α component-wise.
            for bi in 0..=ai {
                for bj in 0..=aj {
                    for bk in 0..=ak {
                        let b = set.idx(bi, bj, bk);
                        let diff = set.idx(ai - bi, aj - bj, ak - bk);
                        sub_triples.push((a as u32, b as u32, diff as u32));
                    }
                }
            }
            // |α| + |β| <= p.
            let na = ai + aj + ak;
            for b in 0..set.len() {
                if na + set.total_order(b) > order {
                    continue;
                }
                let (bi, bj, bk) = set.tuple(b);
                let sum = set.idx(ai + bi, aj + bj, ak + bk);
                m2l_triples.push((a as u32, b as u32, sum as u32));
            }
        }
        let sign = (0..set.len())
            .map(|i| {
                if set.total_order(i).is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();
        ExpansionOps {
            set,
            sub_triples,
            m2l_triples,
            sign,
        }
    }

    #[inline]
    pub fn set(&self) -> &MultiIndexSet {
        &self.set
    }

    /// Expansion order `p`.
    #[inline]
    pub fn order(&self) -> usize {
        self.set.order()
    }

    /// Coefficients per channel.
    #[inline]
    pub fn nterms(&self) -> usize {
        self.set.len()
    }

    /// Translate a multipole expansion from a child center to its parent:
    /// `M'_α += Σ_{β<=α} M_β · t^{α−β}/(α−β)!` with `t = c_child − c_parent`.
    /// Operates on `channels` stacked expansions (stride [`Self::nterms`]).
    /// `pow_scratch` must have `nterms` capacity.
    pub fn m2m(
        &self,
        child: &[f64],
        t: Vec3,
        parent: &mut [f64],
        channels: usize,
        pow_scratch: &mut Vec<f64>,
    ) {
        let nt = self.set.len();
        debug_assert_eq!(child.len(), channels * nt);
        debug_assert_eq!(parent.len(), channels * nt);
        pow_scratch.resize(nt, 0.0);
        power_series(t, &self.set, pow_scratch);
        for c in 0..channels {
            let src = &child[c * nt..(c + 1) * nt];
            let dst = &mut parent[c * nt..(c + 1) * nt];
            for &(a, b, diff) in &self.sub_triples {
                dst[a as usize] += src[b as usize] * pow_scratch[diff as usize];
            }
        }
    }

    /// Translate a local expansion from a parent center to a child:
    /// `L'_β += Σ_{γ>=β} L_γ · t^{γ−β}/(γ−β)!` with `t = c_child − c_parent`.
    /// (Exact Taylor shift up to the stored order.)
    pub fn l2l(
        &self,
        parent: &[f64],
        t: Vec3,
        child: &mut [f64],
        channels: usize,
        pow_scratch: &mut Vec<f64>,
    ) {
        let nt = self.set.len();
        debug_assert_eq!(parent.len(), channels * nt);
        debug_assert_eq!(child.len(), channels * nt);
        pow_scratch.resize(nt, 0.0);
        power_series(t, &self.set, pow_scratch);
        for c in 0..channels {
            let src = &parent[c * nt..(c + 1) * nt];
            let dst = &mut child[c * nt..(c + 1) * nt];
            // Same triple set as M2M with the roles of α and β swapped:
            // (γ, β, γ−β) where β <= γ.
            for &(g, b, diff) in &self.sub_triples {
                dst[b as usize] += src[g as usize] * pow_scratch[diff as usize];
            }
        }
    }

    /// Multipole-to-local: `L_β += Σ_α (−1)^{|α|} M_α · ∂^{α+β}(1/r)(r)` with
    /// `r = c_local − c_multipole`, truncated at `|α|+|β| <= p`.
    ///
    /// One derivative tensor evaluation is shared across all `channels` —
    /// which is exactly why the 7-channel Stokeslet kernel costs ~4× (not 7×)
    /// the 1-channel gravity M2L.
    pub fn m2l(
        &self,
        src_m: &[f64],
        r: Vec3,
        dst_l: &mut [f64],
        channels: usize,
        deriv_scratch: &mut DerivScratch,
        tensor_out: &mut Vec<f64>,
    ) {
        let nt = self.set.len();
        debug_assert_eq!(src_m.len(), channels * nt);
        debug_assert_eq!(dst_l.len(), channels * nt);
        tensor_out.resize(nt, 0.0);
        deriv_1_over_r(r, &self.set, deriv_scratch, tensor_out);
        for c in 0..channels {
            let src = &src_m[c * nt..(c + 1) * nt];
            let dst = &mut dst_l[c * nt..(c + 1) * nt];
            for &(a, b, sum) in &self.m2l_triples {
                dst[b as usize] +=
                    self.sign[a as usize] * src[a as usize] * tensor_out[sum as usize];
            }
        }
    }

    /// `(−1)^{|α|}` lookup (public for kernels that assemble their own
    /// field evaluations, e.g. tests).
    #[inline]
    pub fn sign(&self, idx: usize) -> f64 {
        self.sign[idx]
    }

    // ---- flop accounting (used by the observational cost model to seed
    // virtual-hardware work sizes; 2 flops per multiply-add) ----

    /// Flops for one M2M or L2L translation of `channels` expansions.
    pub fn translate_flops(&self, channels: usize) -> f64 {
        (2 * self.sub_triples.len() * channels + 2 * self.set.len()) as f64
    }

    /// Flops for one M2L: tensor evaluation (shared) plus the per-channel
    /// contraction.
    pub fn m2l_flops(&self, channels: usize) -> f64 {
        let tensor = 4 * (self.set.order() + 1) * self.set.len();
        (tensor + 3 * self.m2l_triples.len() * channels) as f64
    }

    /// Flops for P2M / L2P per body per channel-coefficient table.
    pub fn per_body_flops(&self, channels: usize) -> f64 {
        (2 * self.set.len() * (channels + 1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Evaluate the field Φ(x) = Σ_α M_α (−1)^{|α|} ∂^α(1/r)(x − c) of a
    /// multipole expansion directly (test helper).
    fn eval_multipole(ops: &ExpansionOps, m: &[f64], center: Vec3, x: Vec3) -> f64 {
        let mut scratch = DerivScratch::default();
        let mut t = vec![0.0; ops.nterms()];
        deriv_1_over_r(x - center, ops.set(), &mut scratch, &mut t);
        (0..ops.nterms()).map(|a| ops.sign(a) * m[a] * t[a]).sum()
    }

    /// Evaluate a local expansion Φ(x) = Σ_β L_β (x−c)^β/β! (test helper).
    fn eval_local(ops: &ExpansionOps, l: &[f64], center: Vec3, x: Vec3) -> f64 {
        let mut pow = vec![0.0; ops.nterms()];
        power_series(x - center, ops.set(), &mut pow);
        (0..ops.nterms()).map(|b| l[b] * pow[b]).sum()
    }

    /// P2M for unit charges (test helper): M_α = Σ q (y−c)^α/α!.
    fn p2m_charges(ops: &ExpansionOps, center: Vec3, srcs: &[(Vec3, f64)]) -> Vec<f64> {
        let mut m = vec![0.0; ops.nterms()];
        let mut pow = vec![0.0; ops.nterms()];
        for &(y, q) in srcs {
            power_series(y - center, ops.set(), &mut pow);
            for i in 0..ops.nterms() {
                m[i] += q * pow[i];
            }
        }
        m
    }

    fn direct_potential(srcs: &[(Vec3, f64)], x: Vec3) -> f64 {
        srcs.iter().map(|&(y, q)| q / (x - y).norm()).sum()
    }

    fn test_cluster() -> Vec<(Vec3, f64)> {
        vec![
            (Vec3::new(0.1, 0.2, -0.1), 1.0),
            (Vec3::new(-0.2, 0.1, 0.15), 2.0),
            (Vec3::new(0.05, -0.25, 0.2), 0.5),
            (Vec3::new(-0.1, -0.1, -0.2), 1.5),
        ]
    }

    #[test]
    fn multipole_approximates_potential() {
        let srcs = test_cluster();
        let x = Vec3::new(4.0, 3.0, 5.0);
        let exact = direct_potential(&srcs, x);
        let mut last = f64::INFINITY;
        for p in [2usize, 4, 6, 8] {
            let ops = ExpansionOps::new(p);
            let m = p2m_charges(&ops, Vec3::ZERO, &srcs);
            let phi = eval_multipole(&ops, &m, Vec3::ZERO, x);
            let err = (phi - exact).abs() / exact.abs();
            assert!(
                err < last,
                "error must shrink with p (p={p}: {err} !< {last})"
            );
            last = err;
        }
        assert!(last < 1e-8, "p=8 relative error {last}");
    }

    #[test]
    fn m2m_preserves_field() {
        let srcs = test_cluster();
        let ops = ExpansionOps::new(8);
        let child_center = Vec3::new(0.05, -0.05, 0.0);
        let parent_center = Vec3::new(0.3, 0.3, 0.3);
        let x = Vec3::new(-5.0, 4.0, 3.0);

        let m_child = p2m_charges(&ops, child_center, &srcs);
        let mut m_parent = vec![0.0; ops.nterms()];
        let mut pow = Vec::new();
        ops.m2m(
            &m_child,
            child_center - parent_center,
            &mut m_parent,
            1,
            &mut pow,
        );

        let phi_child = eval_multipole(&ops, &m_child, child_center, x);
        let phi_parent = eval_multipole(&ops, &m_parent, parent_center, x);
        // M2M is exact on the retained coefficients up to truncation of the
        // parent expansion; both should approximate the same potential.
        let exact = direct_potential(&srcs, x);
        assert!((phi_child - exact).abs() / exact.abs() < 1e-8);
        assert!((phi_parent - exact).abs() / exact.abs() < 1e-6);
    }

    #[test]
    fn m2l_then_l2l_matches_direct() {
        let srcs = test_cluster();
        let ops = ExpansionOps::new(10);
        let src_center = Vec3::ZERO;
        let local_center = Vec3::new(6.0, 0.0, 0.0);
        let child_center = Vec3::new(6.3, 0.2, -0.2);
        let x = Vec3::new(6.4, 0.3, -0.3);

        let m = p2m_charges(&ops, src_center, &srcs);
        let mut l = vec![0.0; ops.nterms()];
        let mut ds = DerivScratch::default();
        let mut tens = Vec::new();
        ops.m2l(&m, local_center - src_center, &mut l, 1, &mut ds, &mut tens);

        let exact = direct_potential(&srcs, x);
        let phi_l = eval_local(&ops, &l, local_center, x);
        assert!(
            (phi_l - exact).abs() / exact.abs() < 1e-6,
            "M2L field error: {} vs {}",
            phi_l,
            exact
        );

        let mut l_child = vec![0.0; ops.nterms()];
        let mut pow = Vec::new();
        ops.l2l(&l, child_center - local_center, &mut l_child, 1, &mut pow);
        let phi_lc = eval_local(&ops, &l_child, child_center, x);
        // L2L is an exact Taylor shift of the truncated polynomial only when
        // the shifted polynomial is re-expanded completely; with equal orders
        // the tail is dropped, so allow a slightly looser tolerance.
        assert!(
            (phi_lc - exact).abs() / exact.abs() < 1e-4,
            "L2L field error: {} vs {}",
            phi_lc,
            exact
        );
    }

    #[test]
    fn multichannel_matches_repeated_single_channel() {
        let ops = ExpansionOps::new(4);
        let nt = ops.nterms();
        let srcs = test_cluster();
        let m1 = p2m_charges(&ops, Vec3::ZERO, &srcs);
        // Two channels: the same expansion twice.
        let mut m2 = vec![0.0; 2 * nt];
        m2[..nt].copy_from_slice(&m1);
        m2[nt..].copy_from_slice(&m1);

        let t = Vec3::new(0.4, -0.3, 0.2);
        let mut out1 = vec![0.0; nt];
        let mut out2 = vec![0.0; 2 * nt];
        let mut pow = Vec::new();
        ops.m2m(&m1, t, &mut out1, 1, &mut pow);
        ops.m2m(&m2, t, &mut out2, 2, &mut pow);
        for i in 0..nt {
            assert_eq!(out1[i], out2[i]);
            assert_eq!(out1[i], out2[nt + i]);
        }

        let r = Vec3::new(5.0, 1.0, 0.5);
        let mut l1 = vec![0.0; nt];
        let mut l2 = vec![0.0; 2 * nt];
        let mut ds = DerivScratch::default();
        let mut tens = Vec::new();
        ops.m2l(&m1, r, &mut l1, 1, &mut ds, &mut tens);
        ops.m2l(&m2, r, &mut l2, 2, &mut ds, &mut tens);
        for i in 0..nt {
            assert_eq!(l1[i], l2[i]);
            assert_eq!(l1[i], l2[nt + i]);
        }
    }

    #[test]
    fn flop_counts_are_positive_and_monotone() {
        let lo = ExpansionOps::new(2);
        let hi = ExpansionOps::new(6);
        assert!(lo.m2l_flops(1) > 0.0);
        assert!(hi.m2l_flops(1) > lo.m2l_flops(1));
        assert!(hi.translate_flops(1) > lo.translate_flops(1));
        assert!(hi.m2l_flops(7) > hi.m2l_flops(1));
        // Sharing the tensor: 7 channels must cost less than 7x one channel.
        assert!(hi.m2l_flops(7) < 7.0 * hi.m2l_flops(1));
    }
}
