//! Property tests of the expansion mathematics: translation invariances,
//! convergence, and kernel identities on random configurations.

use fmm_math::{
    deriv_1_over_r, power_series, DerivScratch, ExpansionOps, GravityKernel, Kernel,
    StokesletKernel, STOKESLET_CHANNELS,
};
use geom::Vec3;
use proptest::prelude::*;

fn unit_cluster(n: usize) -> impl Strategy<Value = Vec<(Vec3, f64)>> {
    prop::collection::vec(
        ((-0.3f64..0.3, -0.3f64..0.3, -0.3f64..0.3), 0.1f64..2.0)
            .prop_map(|((x, y, z), q)| (Vec3::new(x, y, z), q)),
        1..n,
    )
}

fn far_point() -> impl Strategy<Value = Vec3> {
    // Random direction, radius in [3, 8] — safely outside the unit cluster.
    ((-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0), 3.0f64..8.0).prop_filter_map(
        "nonzero direction",
        |((x, y, z), r)| {
            let v = Vec3::new(x, y, z);
            v.normalized().map(|u| u * r)
        },
    )
}

fn eval_multipole(ops: &ExpansionOps, m: &[f64], center: Vec3, x: Vec3) -> f64 {
    let mut scratch = DerivScratch::default();
    let mut t = vec![0.0; ops.nterms()];
    deriv_1_over_r(x - center, ops.set(), &mut scratch, &mut t);
    (0..ops.nterms()).map(|a| ops.sign(a) * m[a] * t[a]).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// P2M + far evaluation approximates the true potential, and the error
    /// bound scales like (cluster radius / distance)^(p+1).
    #[test]
    fn multipole_expansion_converges(srcs in unit_cluster(12), x in far_point()) {
        let exact: f64 = srcs.iter().map(|&(y, q)| q / (x - y).norm()).sum();
        let ops = ExpansionOps::new(8);
        let kernel = GravityKernel::default();
        let pos: Vec<Vec3> = srcs.iter().map(|s| s.0).collect();
        let q: Vec<f64> = srcs.iter().map(|s| s.1).collect();
        let mut m = vec![0.0; ops.nterms()];
        let mut pow = Vec::new();
        kernel.p2m(&ops, Vec3::ZERO, &pos, &q, &mut m, &mut pow);
        let phi = eval_multipole(&ops, &m, Vec3::ZERO, x);
        // a/r <= 0.52/3, so (a/r)^9 is comfortably below 1e-5.
        prop_assert!((phi - exact).abs() <= 1e-4 * exact.abs(), "{phi} vs {exact}");
    }

    /// M2M translation: the translated expansion represents the same field.
    #[test]
    fn m2m_translation_invariance(
        srcs in unit_cluster(10),
        shift in (-0.4f64..0.4, -0.4f64..0.4, -0.4f64..0.4),
        x in far_point(),
    ) {
        let ops = ExpansionOps::new(8);
        let kernel = GravityKernel::default();
        let pos: Vec<Vec3> = srcs.iter().map(|s| s.0).collect();
        let q: Vec<f64> = srcs.iter().map(|s| s.1).collect();
        let child_center = Vec3::ZERO;
        let parent_center = Vec3::new(shift.0, shift.1, shift.2);
        let mut pow = Vec::new();
        let mut mc = vec![0.0; ops.nterms()];
        kernel.p2m(&ops, child_center, &pos, &q, &mut mc, &mut pow);
        let mut mp = vec![0.0; ops.nterms()];
        ops.m2m(&mc, child_center - parent_center, &mut mp, 1, &mut pow);
        let phi_c = eval_multipole(&ops, &mc, child_center, x);
        let phi_p = eval_multipole(&ops, &mp, parent_center, x);
        prop_assert!((phi_c - phi_p).abs() <= 2e-3 * phi_c.abs().max(1e-12),
            "child {phi_c} vs parent {phi_p}");
    }

    /// Power series identity: Σ_α dx^α/α! · (coefficients of an exponential)
    /// telescopes — concretely, the table matches direct monomials.
    #[test]
    fn power_series_matches_monomials(dx in (-2.0f64..2.0, -2.0f64..2.0, -2.0f64..2.0)) {
        let set = fmm_math::MultiIndexSet::new(6);
        let v = Vec3::new(dx.0, dx.1, dx.2);
        let mut out = vec![0.0; set.len()];
        power_series(v, &set, &mut out);
        for (idx, (i, j, k)) in set.iter() {
            let direct = v.x.powi(i as i32) * v.y.powi(j as i32) * v.z.powi(k as i32)
                * set.inv_factorial(idx);
            prop_assert!((out[idx] - direct).abs() <= 1e-10 * direct.abs().max(1e-10));
        }
    }

    /// The derivative tensor is homogeneous of degree -(|γ|+1) and flips
    /// parity under negation, for random evaluation points.
    #[test]
    fn tensor_homogeneity_and_parity(x in far_point(), s in 0.5f64..3.0) {
        let set = fmm_math::MultiIndexSet::new(5);
        let mut scratch = DerivScratch::default();
        let mut t1 = vec![0.0; set.len()];
        let mut ts = vec![0.0; set.len()];
        let mut tn = vec![0.0; set.len()];
        deriv_1_over_r(x, &set, &mut scratch, &mut t1);
        deriv_1_over_r(x * s, &set, &mut scratch, &mut ts);
        deriv_1_over_r(-x, &set, &mut scratch, &mut tn);
        for idx in 0..set.len() {
            let n = set.total_order(idx) as i32;
            let hom = t1[idx] * s.powi(-(n + 1));
            prop_assert!((ts[idx] - hom).abs() <= 1e-9 * hom.abs().max(1e-15));
            let par = if n % 2 == 0 { t1[idx] } else { -t1[idx] };
            prop_assert!((tn[idx] - par).abs() <= 1e-12 * t1[idx].abs().max(1e-15));
        }
    }

    /// Gravity P2P obeys Newton's third law for arbitrary clusters.
    #[test]
    fn gravity_p2p_newton_third_law(srcs in unit_cluster(20), eps in 0.0f64..0.1) {
        let kernel = GravityKernel::new(eps);
        let pos: Vec<Vec3> = srcs.iter().map(|s| s.0).collect();
        let q: Vec<f64> = srcs.iter().map(|s| s.1).collect();
        let mut pot = vec![0.0; pos.len()];
        let mut acc = vec![Vec3::ZERO; pos.len()];
        kernel.p2p(&pos, &mut pot, &mut acc, &pos, &q, true);
        let net: Vec3 = acc.iter().zip(&q).map(|(&a, &m)| a * m).sum();
        let scale: f64 = acc.iter().zip(&q).map(|(a, &m)| a.norm() * m).sum::<f64>().max(1e-12);
        prop_assert!(net.norm() <= 1e-9 * scale, "net {net:?} vs scale {scale}");
    }

    /// Stokeslet P2P with ε = 0 equals the singular Oseen tensor applied to
    /// the force (checked against the closed form for one pair).
    #[test]
    fn stokeslet_matches_oseen_closed_form(
        x in far_point(),
        f in (-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0),
        mu in 0.5f64..4.0,
    ) {
        let kernel = StokesletKernel::new(0.0, mu);
        let force = Vec3::new(f.0, f.1, f.2);
        let mut pot = [0.0];
        let mut u = [Vec3::ZERO];
        kernel.p2p(&[x], &mut pot, &mut u, &[Vec3::ZERO], &[force.x, force.y, force.z], false);
        let r = x.norm();
        let pref = 1.0 / (8.0 * std::f64::consts::PI * mu);
        let expect = (force / r + x * (force.dot(x) / (r * r * r))) * pref;
        prop_assert!((u[0] - expect).norm() <= 1e-12 * expect.norm().max(1e-15));
    }

    /// Stokes flow from internal forces on a closed system: net momentum
    /// flux symmetry — swapping source and target gives the transpose
    /// relation u_i(x; f at y) = u_i(y; f at x) (the Oseen tensor is
    /// symmetric in x−y up to parity).
    #[test]
    fn stokeslet_reciprocity(
        a in far_point(),
        f in (-1.0f64..1.0, -1.0f64..1.0, -1.0f64..1.0),
    ) {
        let kernel = StokesletKernel::new(0.0, 1.0);
        let force = Vec3::new(f.0, f.1, f.2);
        let fs = [force.x, force.y, force.z];
        let mut pot = [0.0];
        let mut u_ab = [Vec3::ZERO];
        kernel.p2p(&[a], &mut pot, &mut u_ab, &[Vec3::ZERO], &fs, false);
        let mut u_ba = [Vec3::ZERO];
        kernel.p2p(&[Vec3::ZERO], &mut pot, &mut u_ba, &[a], &fs, false);
        // S(d) = S(-d): the Oseen tensor is even in the separation.
        prop_assert!((u_ab[0] - u_ba[0]).norm() <= 1e-12 * u_ab[0].norm().max(1e-15));
    }

    /// The Stokeslet multichannel P2M/L2P pipeline agrees with direct
    /// summation on random well-separated configurations.
    #[test]
    fn stokeslet_expansion_pipeline(srcs in unit_cluster(8), x in far_point()) {
        let kernel = StokesletKernel::new(1e-6, 1.0);
        let pos: Vec<Vec3> = srcs.iter().map(|s| s.0).collect();
        let f: Vec<f64> = srcs.iter().flat_map(|s| [s.1, -s.1, 0.5 * s.1]).collect();
        let mut dpot = [0.0];
        let mut du = [Vec3::ZERO];
        kernel.p2p(&[x], &mut dpot, &mut du, &pos, &f, false);

        let ops = ExpansionOps::new(8);
        let nt = ops.nterms();
        let mut pow = Vec::new();
        let mut m = vec![0.0; STOKESLET_CHANNELS * nt];
        kernel.p2m(&ops, Vec3::ZERO, &pos, &f, &mut m, &mut pow);
        let lc = x * (1.0 - 0.02);
        let mut l = vec![0.0; STOKESLET_CHANNELS * nt];
        let mut ds = DerivScratch::default();
        let mut tens = Vec::new();
        ops.m2l(&m, lc, &mut l, STOKESLET_CHANNELS, &mut ds, &mut tens);
        let mut pot = [0.0];
        let mut u = [Vec3::ZERO];
        kernel.l2p(&ops, lc, &l, &[x], &mut pot, &mut u, &mut pow);
        prop_assert!((u[0] - du[0]).norm() <= 2e-3 * du[0].norm().max(1e-12),
            "{:?} vs {:?}", u[0], du[0]);
    }
}
