use geom::Vec3;

/// An immersed flexible boundary: a closed elastic ring of marker points,
/// the canonical test structure of the method of regularized Stokeslets
/// (paper §VIII.B, reference 15: Cortez et al.).
///
/// Markers are joined by linear springs of stiffness `stiffness` at rest
/// length `2πr₀/n`. Each time step the ring's elastic forces become the
/// Stokeslet strengths of a Stokes solve; markers are then advected with the
/// computed fluid velocity. Deformed rings relax back toward a circle,
/// keeping the force field time dependent.
#[derive(Clone, Debug)]
pub struct ElasticRing {
    pos: Vec<Vec3>,
    rest_length: f64,
    stiffness: f64,
}

impl ElasticRing {
    /// A circle of `n` markers of radius `radius` centered at `center` in
    /// the plane spanned by (orthonormal) `e1`, `e2`.
    pub fn in_plane(
        center: Vec3,
        radius: f64,
        n: usize,
        stiffness: f64,
        e1: Vec3,
        e2: Vec3,
    ) -> Self {
        assert!(n >= 3, "a ring needs at least three markers");
        assert!(radius > 0.0 && stiffness >= 0.0);
        debug_assert!((e1.norm() - 1.0).abs() < 1e-9 && (e2.norm() - 1.0).abs() < 1e-9);
        debug_assert!(e1.dot(e2).abs() < 1e-9);
        let pos = (0..n)
            .map(|i| {
                let th = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                center + (e1 * th.cos() + e2 * th.sin()) * radius
            })
            .collect();
        let rest_length = 2.0 * std::f64::consts::PI * radius / n as f64;
        ElasticRing {
            pos,
            rest_length,
            stiffness,
        }
    }

    /// A circle in the xy-plane.
    pub fn new(center: Vec3, radius: f64, n: usize, stiffness: f64) -> Self {
        Self::in_plane(
            center,
            radius,
            n,
            stiffness,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
        )
    }

    pub fn len(&self) -> usize {
        self.pos.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    pub fn positions(&self) -> &[Vec3] {
        &self.pos
    }

    pub fn positions_mut(&mut self) -> &mut [Vec3] {
        &mut self.pos
    }

    /// Scale the ring into an ellipse (`factor` on the first axis,
    /// `1/factor` on the second, area-preserving) about its centroid — the
    /// standard initial perturbation for relaxation experiments.
    pub fn perturb_ellipse(&mut self, factor: f64) {
        assert!(factor > 0.0);
        let c = self.centroid();
        for p in &mut self.pos {
            let d = *p - c;
            *p = c + Vec3::new(d.x * factor, d.y / factor, d.z);
        }
    }

    pub fn centroid(&self) -> Vec3 {
        self.pos.iter().copied().sum::<Vec3>() / self.pos.len() as f64
    }

    /// Elastic marker forces, flat `[f_x, f_y, f_z, ...]` — the Stokeslet
    /// strengths for the next fluid solve. Internal springs only, so the net
    /// force is zero to rounding.
    pub fn forces(&self) -> Vec<f64> {
        let n = self.pos.len();
        let mut f = vec![0.0f64; 3 * n];
        for i in 0..n {
            let j = (i + 1) % n;
            let d = self.pos[j] - self.pos[i];
            let len = d.norm();
            if len <= 0.0 {
                continue;
            }
            let pull = d * (self.stiffness * (len - self.rest_length) / len);
            f[3 * i] += pull.x;
            f[3 * i + 1] += pull.y;
            f[3 * i + 2] += pull.z;
            f[3 * j] -= pull.x;
            f[3 * j + 1] -= pull.y;
            f[3 * j + 2] -= pull.z;
        }
        f
    }

    /// Elastic (spring) energy of the current configuration.
    pub fn energy(&self) -> f64 {
        let n = self.pos.len();
        (0..n)
            .map(|i| {
                let d = self.pos[(i + 1) % n].dist(self.pos[i]) - self.rest_length;
                0.5 * self.stiffness * d * d
            })
            .sum()
    }

    /// Advect every marker with its local fluid velocity: `x += u · dt`.
    pub fn advect(&mut self, vel: &[Vec3], dt: f64) {
        assert_eq!(vel.len(), self.pos.len());
        for (p, &u) in self.pos.iter_mut().zip(vel) {
            *p += u * dt;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rest_circle_has_no_forces() {
        let r = ElasticRing::new(Vec3::ZERO, 1.0, 64, 10.0);
        let f = r.forces();
        // Rest length matches the chord only approximately (chord vs arc),
        // so forces are small but nonzero; with 64 markers the chord/arc
        // ratio is within 0.1%.
        let max: f64 = f.iter().map(|v| v.abs()).fold(0.0, f64::max);
        assert!(max < 0.02, "max rest force {max}");
        assert!((r.energy()).abs() < 1e-3);
    }

    #[test]
    fn net_force_is_zero() {
        let mut r = ElasticRing::new(Vec3::new(1.0, -2.0, 0.5), 2.0, 33, 5.0);
        r.perturb_ellipse(1.4);
        let f = r.forces();
        let net: Vec3 = (0..r.len())
            .map(|i| Vec3::new(f[3 * i], f[3 * i + 1], f[3 * i + 2]))
            .sum();
        assert!(net.norm() < 1e-12, "net {net:?}");
    }

    #[test]
    fn perturbation_raises_energy_and_relaxes_under_drag() {
        let mut r = ElasticRing::new(Vec3::ZERO, 1.0, 48, 50.0);
        let e_rest = r.energy();
        r.perturb_ellipse(1.3);
        let e0 = r.energy();
        assert!(e0 > e_rest + 1e-3);
        // Local-drag dynamics u = f/γ stand in for the Stokes solve here;
        // the spring energy must decay monotonically (overdamped).
        let gamma = 10.0;
        let dt = 0.01;
        let mut prev = e0;
        for _ in 0..1000 {
            let f = r.forces();
            let vel: Vec<Vec3> = (0..r.len())
                .map(|i| Vec3::new(f[3 * i], f[3 * i + 1], f[3 * i + 2]) / gamma)
                .collect();
            r.advect(&vel, dt);
            let e = r.energy();
            assert!(e <= prev * (1.0 + 1e-9), "energy rose {prev} -> {e}");
            prev = e;
        }
        assert!(prev < 0.2 * e0, "relaxation too slow: {prev} of {e0}");
    }

    #[test]
    fn ellipse_perturbation_preserves_centroid() {
        let c = Vec3::new(3.0, 1.0, -2.0);
        let mut r = ElasticRing::new(c, 1.5, 40, 1.0);
        r.perturb_ellipse(1.25);
        assert!((r.centroid() - c).norm() < 1e-12);
    }

    #[test]
    fn in_plane_ring_lies_in_plane() {
        let e1 = Vec3::new(0.0, 1.0, 0.0);
        let e2 = Vec3::new(0.0, 0.0, 1.0);
        let r = ElasticRing::in_plane(Vec3::ZERO, 1.0, 16, 1.0, e1, e2);
        for p in r.positions() {
            assert!(p.x.abs() < 1e-12);
            assert!((p.norm() - 1.0).abs() < 1e-12);
        }
    }
}
