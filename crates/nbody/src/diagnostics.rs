use crate::bodies::Bodies;
use geom::Vec3;

/// Kinetic/potential breakdown from [`total_energy`].
#[derive(Clone, Copy, Debug, Default)]
pub struct EnergyReport {
    pub kinetic: f64,
    pub potential: f64,
}

impl EnergyReport {
    pub fn total(&self) -> f64 {
        self.kinetic + self.potential
    }
}

/// O(n²) direct-sum gravitational accelerations (attractive, with Plummer
/// softening ε) — the validation oracle the FMM is checked against, and the
/// "all work on one core" baseline of the paper's serial measurements.
pub fn direct_gravity(bodies: &Bodies, g: f64, eps: f64) -> Vec<Vec3> {
    let n = bodies.len();
    let e2 = eps * eps;
    let mut acc = vec![Vec3::ZERO; n];
    for (i, slot) in acc.iter_mut().enumerate() {
        let xi = bodies.pos[i];
        let mut a = Vec3::ZERO;
        for j in 0..n {
            if i == j {
                continue;
            }
            let d = bodies.pos[j] - xi;
            let r2 = d.norm_sq() + e2;
            let inv_r3 = 1.0 / (r2 * r2.sqrt());
            a += d * (bodies.mass[j] * inv_r3);
        }
        *slot = a * g;
    }
    acc
}

/// Total kinetic + (softened) potential energy by direct summation.
pub fn total_energy(bodies: &Bodies, g: f64, eps: f64) -> EnergyReport {
    let n = bodies.len();
    let e2 = eps * eps;
    let kinetic: f64 = (0..n)
        .map(|i| 0.5 * bodies.mass[i] * bodies.vel[i].norm_sq())
        .sum();
    let mut potential = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let r = (bodies.pos[i] - bodies.pos[j]).norm_sq() + e2;
            potential -= g * bodies.mass[i] * bodies.mass[j] / r.sqrt();
        }
    }
    EnergyReport { kinetic, potential }
}

/// Total linear momentum.
pub fn total_momentum(bodies: &Bodies) -> Vec3 {
    bodies
        .vel
        .iter()
        .zip(&bodies.mass)
        .map(|(&v, &m)| v * m)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_body_closed_forms() {
        let mut b = Bodies::default();
        b.push(Vec3::ZERO, Vec3::ZERO, 2.0);
        b.push(Vec3::new(2.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0), 1.0);
        let acc = direct_gravity(&b, 1.0, 0.0);
        // a_0 = G m_1 / r² toward +x = 1/4.
        assert!((acc[0].x - 0.25).abs() < 1e-15);
        assert!((acc[1].x + 0.5).abs() < 1e-15);
        let e = total_energy(&b, 1.0, 0.0);
        assert!((e.kinetic - 0.5).abs() < 1e-15);
        assert!((e.potential + 1.0).abs() < 1e-15);
        assert_eq!(total_momentum(&b), Vec3::new(0.0, 1.0, 0.0));
    }

    #[test]
    fn internal_forces_conserve_momentum() {
        let b = crate::distributions::plummer(200, 1.0, 1.0, 55);
        let acc = direct_gravity(&b, 1.0, 1e-3);
        let net: Vec3 = acc.iter().zip(&b.mass).map(|(&a, &m)| a * m).sum();
        assert!(net.norm() < 1e-10, "net internal force {net:?}");
    }
}
