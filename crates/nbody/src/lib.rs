//! N-body workloads for the AFMM reproduction.
//!
//! Provides the test problems of the paper's evaluation: gravitational
//! Plummer spheres (§VIII.B–C, IX.A), uniform distributions (§IX.B), the
//! "Plummer in 1/64th of the domain" collapsing workload (§IX.A), a
//! leapfrog integrator for the gravitational time stepping, direct-sum
//! energy diagnostics for validation, and an immersed elastic ring supplying
//! time-dependent Stokeslet strengths for the fluid-dynamics problem
//! (§IX.B / Fig 10).

mod bodies;
mod diagnostics;
mod distributions;
mod integrator;
mod stokes;

pub use bodies::Bodies;
pub use diagnostics::{direct_gravity, total_energy, total_momentum, EnergyReport};
pub use distributions::{
    collapsing_plummer, expanding_plummer, plummer, random_unit_forces, two_clusters, uniform_cube,
    CollapsingSetup,
};
pub use integrator::Leapfrog;
pub use stokes::ElasticRing;
