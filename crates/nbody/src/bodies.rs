use geom::Vec3;

/// Structure-of-arrays body storage: positions, velocities, masses.
///
/// SoA keeps the FMM's hot loops (Morton coding, P2P, expansion evaluation)
/// streaming over contiguous `Vec3`/`f64` slices, per the workspace's
/// HPC-layout convention.
#[derive(Clone, Debug, Default)]
pub struct Bodies {
    pub pos: Vec<Vec3>,
    pub vel: Vec<Vec3>,
    pub mass: Vec<f64>,
}

impl Bodies {
    pub fn with_capacity(n: usize) -> Self {
        Bodies {
            pos: Vec::with_capacity(n),
            vel: Vec::with_capacity(n),
            mass: Vec::with_capacity(n),
        }
    }

    pub fn push(&mut self, pos: Vec3, vel: Vec3, mass: f64) {
        self.pos.push(pos);
        self.vel.push(vel);
        self.mass.push(mass);
    }

    pub fn len(&self) -> usize {
        self.pos.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Structural heap footprint of the three SoA arrays at *capacity*
    /// granularity — reserved headroom is real memory. Feeds the
    /// `mem.footprint` snapshot part's bytes-per-body figure.
    pub fn heap_bytes(&self) -> usize {
        self.pos.capacity() * std::mem::size_of::<Vec3>()
            + self.vel.capacity() * std::mem::size_of::<Vec3>()
            + self.mass.capacity() * std::mem::size_of::<f64>()
    }

    /// Total mass.
    pub fn total_mass(&self) -> f64 {
        self.mass.iter().sum()
    }

    /// Mass-weighted center of mass; origin for an empty set.
    pub fn center_of_mass(&self) -> Vec3 {
        let m = self.total_mass();
        if m <= 0.0 {
            return Vec3::ZERO;
        }
        self.pos
            .iter()
            .zip(&self.mass)
            .map(|(&p, &mi)| p * mi)
            .sum::<Vec3>()
            / m
    }

    /// Sanity check used by tests and the simulation driver: equal lengths,
    /// finite values, positive masses.
    pub fn validate(&self) -> Result<(), String> {
        if self.pos.len() != self.vel.len() || self.pos.len() != self.mass.len() {
            return Err("pos/vel/mass length mismatch".into());
        }
        for (i, p) in self.pos.iter().enumerate() {
            if !p.is_finite() {
                return Err(format!("non-finite position at body {i}"));
            }
        }
        for (i, v) in self.vel.iter().enumerate() {
            if !v.is_finite() {
                return Err(format!("non-finite velocity at body {i}"));
            }
        }
        for (i, &m) in self.mass.iter().enumerate() {
            if !(m > 0.0 && m.is_finite()) {
                return Err(format!("non-positive mass at body {i}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_aggregate() {
        let mut b = Bodies::with_capacity(2);
        b.push(Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO, 1.0);
        b.push(Vec3::new(-1.0, 0.0, 0.0), Vec3::ZERO, 3.0);
        assert_eq!(b.len(), 2);
        assert_eq!(b.total_mass(), 4.0);
        // com = (1*1 + 3*(-1)) / 4 = -0.5 on x.
        assert!((b.center_of_mass().x + 0.5).abs() < 1e-15);
        b.validate().unwrap();
    }

    #[test]
    fn validate_catches_bad_data() {
        let mut b = Bodies::default();
        b.push(Vec3::ZERO, Vec3::ZERO, 0.0);
        assert!(b.validate().is_err());
        let mut b2 = Bodies::default();
        b2.push(Vec3::new(f64::NAN, 0.0, 0.0), Vec3::ZERO, 1.0);
        assert!(b2.validate().is_err());
        let mut b3 = Bodies::default();
        b3.push(Vec3::ZERO, Vec3::ZERO, 1.0);
        b3.mass.push(1.0);
        assert!(b3.validate().is_err());
    }

    #[test]
    fn empty_center_of_mass_is_origin() {
        assert_eq!(Bodies::default().center_of_mass(), Vec3::ZERO);
    }
}
