use crate::bodies::Bodies;
use geom::Vec3;

/// Kick–drift–kick leapfrog, the symplectic integrator of choice for
/// collisionless gravity.
///
/// The acceleration comes from outside (the AFMM solve), so a step splits
/// into the two halves the solver interleaves with force evaluation:
///
/// ```text
/// kick(dt/2) ; drift(dt) ; <recompute acc> ; kick(dt/2)
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Leapfrog {
    pub dt: f64,
}

impl Leapfrog {
    pub fn new(dt: f64) -> Self {
        assert!(dt > 0.0 && dt.is_finite());
        Leapfrog { dt }
    }

    /// Half-kick: `v += a · dt/2`.
    pub fn kick(&self, bodies: &mut Bodies, acc: &[Vec3]) {
        debug_assert_eq!(acc.len(), bodies.len());
        let h = 0.5 * self.dt;
        for (v, &a) in bodies.vel.iter_mut().zip(acc) {
            *v += a * h;
        }
    }

    /// Drift: `x += v · dt`.
    pub fn drift(&self, bodies: &mut Bodies) {
        for (p, &v) in bodies.pos.iter_mut().zip(&bodies.vel) {
            *p += v * self.dt;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::{direct_gravity, total_energy};
    use crate::distributions::plummer;

    /// One full KDK step with direct-sum forces (test driver).
    fn step(bodies: &mut Bodies, lf: &Leapfrog, g: f64, eps: f64, acc: &mut Vec<Vec3>) {
        lf.kick(bodies, acc);
        lf.drift(bodies);
        *acc = direct_gravity(bodies, g, eps);
        lf.kick(bodies, acc);
    }

    #[test]
    fn circular_two_body_orbit_stays_circular() {
        // Equal masses m=1, separation 2, G=1: circular speed v²=GM_other·r/(d²·?) —
        // for two bodies at ±1 on x, each feels a = 1/4 toward the other, so
        // circular |v| = sqrt(a·r) = 1/2 around the barycenter.
        let mut b = Bodies::default();
        b.push(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 0.5, 0.0), 1.0);
        b.push(Vec3::new(-1.0, 0.0, 0.0), Vec3::new(0.0, -0.5, 0.0), 1.0);
        let lf = Leapfrog::new(0.01);
        let mut acc = direct_gravity(&b, 1.0, 0.0);
        for _ in 0..5000 {
            step(&mut b, &lf, 1.0, 0.0, &mut acc);
            let r = b.pos[0].dist(b.pos[1]);
            assert!((r - 2.0).abs() < 0.02, "orbit radius drifted to {r}");
        }
    }

    #[test]
    fn energy_bounded_over_many_steps() {
        let g = 1.0;
        let eps = 0.05;
        let mut b = plummer(150, 1.0, g, 21);
        let lf = Leapfrog::new(0.005);
        let e0 = total_energy(&b, g, eps).total();
        let mut acc = direct_gravity(&b, g, eps);
        for _ in 0..400 {
            step(&mut b, &lf, g, eps, &mut acc);
        }
        let e1 = total_energy(&b, g, eps).total();
        let rel = ((e1 - e0) / e0).abs();
        assert!(rel < 0.05, "energy drift {rel}");
    }

    #[test]
    fn drift_moves_by_velocity() {
        let mut b = Bodies::default();
        b.push(Vec3::ZERO, Vec3::new(1.0, 2.0, 3.0), 1.0);
        Leapfrog::new(0.5).drift(&mut b);
        assert_eq!(b.pos[0], Vec3::new(0.5, 1.0, 1.5));
    }
}
