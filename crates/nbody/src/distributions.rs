use crate::bodies::Bodies;
use geom::Vec3;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Sample an isotropic unit vector.
fn unit_vector(rng: &mut StdRng) -> Vec3 {
    loop {
        let v = Vec3::new(
            rng.random_range(-1.0..1.0),
            rng.random_range(-1.0..1.0),
            rng.random_range(-1.0..1.0),
        );
        let n2 = v.norm_sq();
        if n2 > 1e-12 && n2 <= 1.0 {
            return v / n2.sqrt();
        }
    }
}

/// A Plummer sphere of `n` unit-mass bodies with scale radius `a` and
/// gravitational constant `g`, in virial equilibrium (Aarseth–Hénon–Wielen
/// sampling). This is the paper's main test distribution: strongly peaked at
/// the center with density falling as r⁻⁵, producing the deep, highly
/// non-uniform octrees of §VIII.C.
///
/// The radius is capped at `10 a` (standard practice) so the cloud has a
/// finite extent. Velocities are sampled from the isotropic distribution
/// function via von Neumann rejection.
pub fn plummer(n: usize, a: f64, g: f64, seed: u64) -> Bodies {
    assert!(n > 0 && a > 0.0 && g > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Bodies::with_capacity(n);
    let total_mass = n as f64;
    for _ in 0..n {
        // Radius from the cumulative mass profile M(r) ∝ r³/(r²+a²)^{3/2}.
        let r = loop {
            let m: f64 = rng.random_range(0.0..1.0);
            let r = a / (m.powf(-2.0 / 3.0) - 1.0).sqrt();
            if r <= 10.0 * a {
                break r;
            }
        };
        let pos = unit_vector(&mut rng) * r;
        // Escape velocity at r; speed fraction q sampled from
        // f(q) ∝ q²(1−q²)^{7/2} by rejection.
        let v_esc = (2.0 * g * total_mass).sqrt() * (r * r + a * a).powf(-0.25);
        let q = loop {
            let q: f64 = rng.random_range(0.0..1.0);
            let y: f64 = rng.random_range(0.0..0.1);
            if y < q * q * (1.0 - q * q).powf(3.5) {
                break q;
            }
        };
        let vel = unit_vector(&mut rng) * (q * v_esc);
        b.push(pos, vel, 1.0);
    }
    // Center the cloud: zero net momentum and center of mass at the origin,
    // so the sphere neither drifts nor wanders under its own sampling noise.
    let com = b.center_of_mass();
    let vmean: Vec3 = b.vel.iter().copied().sum::<Vec3>() / n as f64;
    for p in &mut b.pos {
        *p -= com;
    }
    for v in &mut b.vel {
        *v -= vmean;
    }
    b
}

/// `n` unit-mass bodies uniformly random in the cube of the given
/// `half_width` centered at the origin, at rest. The paper's §IX.B
/// static/uniform workload.
pub fn uniform_cube(n: usize, half_width: f64, seed: u64) -> Bodies {
    assert!(n > 0 && half_width > 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = Bodies::with_capacity(n);
    for _ in 0..n {
        let p = Vec3::new(
            rng.random_range(-half_width..half_width),
            rng.random_range(-half_width..half_width),
            rng.random_range(-half_width..half_width),
        );
        b.push(p, Vec3::ZERO, 1.0);
    }
    b
}

/// Two Plummer spheres on a collision course — a "colliding galaxies"
/// workload whose density field merges and separates over time.
pub fn two_clusters(
    n: usize,
    a: f64,
    g: f64,
    separation: f64,
    approach_speed: f64,
    seed: u64,
) -> Bodies {
    let half = n / 2;
    let c1 = plummer(half.max(1), a, g, seed);
    let c2 = plummer((n - half).max(1), a, g, seed.wrapping_add(1));
    let offset = Vec3::new(separation * 0.5, 0.0, 0.0);
    let kick = Vec3::new(approach_speed * 0.5, 0.0, 0.0);
    let mut b = Bodies::with_capacity(n);
    for i in 0..c1.len() {
        b.push(c1.pos[i] - offset, c1.vel[i] + kick, c1.mass[i]);
    }
    for i in 0..c2.len() {
        b.push(c2.pos[i] + offset, c2.vel[i] - kick, c2.mass[i]);
    }
    b
}

/// The paper's §IX.A dynamic workload plus the fixed simulation cube it
/// lives in.
#[derive(Clone, Debug)]
pub struct CollapsingSetup {
    pub bodies: Bodies,
    /// Center of the fixed simulation cube.
    pub domain_center: Vec3,
    /// Half-width of the fixed simulation cube.
    pub domain_half_width: f64,
}

/// The paper's dynamic-workload setup: a Plummer distribution initially
/// contained within **1/64th of the simulation space** (¼ of the extent per
/// axis), so bodies that fly outward have room to turn around and fall back
/// toward the center of mass. Velocities are scaled *cold* (a fraction of
/// virial) so the cloud collapses, re-expands, and keeps changing its
/// density profile over hundreds of steps — the regime that exercises
/// dynamic load balancing.
pub fn collapsing_plummer(n: usize, g: f64, seed: u64) -> CollapsingSetup {
    let a = 1.0;
    let mut bodies = plummer(n, a, g, seed);
    // The 10a-capped Plummer cloud spans ~20a; the domain is 4x that extent.
    let cloud_half = 10.0 * a;
    let domain_half = 4.0 * cloud_half;
    // Cool the velocities: sub-virial ⇒ collapse then violent relaxation.
    for v in &mut bodies.vel {
        *v *= 0.3;
    }
    CollapsingSetup {
        bodies,
        domain_center: Vec3::ZERO,
        domain_half_width: domain_half,
    }
}

/// The paper's §IX.A reading with an *expanding* cloud: the Plummer sphere
/// starts warm (velocities 1.3× virial — bound, but with enough energy to
/// blow out to several times its radius before falling back toward the
/// center of mass). Confined to 1/64th of the simulation space initially,
/// it expands across the domain and recollapses — the density evolution
/// that makes a frozen decomposition catastrophically stale ("allow
/// particles that would otherwise have exited the system enough room to
/// return back towards the center of mass").
pub fn expanding_plummer(n: usize, g: f64, seed: u64) -> CollapsingSetup {
    let a = 1.0;
    let mut bodies = plummer(n, a, g, seed);
    let cloud_half = 10.0 * a;
    let domain_half = 4.0 * cloud_half;
    for v in &mut bodies.vel {
        *v *= 1.3;
    }
    CollapsingSetup {
        bodies,
        domain_center: Vec3::ZERO,
        domain_half_width: domain_half,
    }
}

/// `n` random unit force vectors, flat `[f_x, f_y, f_z, ...]` — strengths
/// for the uniform Stokeslet workload of Fig 10.
pub fn random_unit_forces(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(3 * n);
    for _ in 0..n {
        let f = unit_vector(&mut rng);
        out.extend_from_slice(&[f.x, f.y, f.z]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plummer_statistics() {
        let g = 1.0;
        let b = plummer(4000, 1.0, g, 42);
        b.validate().unwrap();
        assert_eq!(b.len(), 4000);
        // Center of mass near the origin.
        assert!(
            b.center_of_mass().norm() < 0.3,
            "com {:?}",
            b.center_of_mass()
        );
        // Half-mass radius of a Plummer sphere is ~1.3 a.
        let mut radii: Vec<f64> = b.pos.iter().map(|p| p.norm()).collect();
        radii.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let half_mass = radii[radii.len() / 2];
        assert!(
            (0.9..1.8).contains(&half_mass),
            "half-mass radius {half_mass}"
        );
        // Strong central concentration: inner 10% of the extent holds far
        // more than 10% of the mass.
        let rmax = radii[radii.len() - 1];
        let inner = radii.iter().filter(|&&r| r < 0.1 * rmax).count();
        assert!(inner > b.len() / 5, "inner count {inner}");
        assert!(rmax <= 10.0 + 1e-9);
    }

    #[test]
    fn plummer_roughly_virialized() {
        let g = 1.0;
        let b = plummer(2000, 1.0, g, 7);
        let e = crate::diagnostics::total_energy(&b, g, 0.0);
        // Virial: 2K + U ≈ 0 within sampling noise.
        let virial = 2.0 * e.kinetic + e.potential;
        assert!(
            virial.abs() < 0.25 * e.potential.abs(),
            "virial residual {virial} vs |U| {}",
            e.potential.abs()
        );
    }

    #[test]
    fn uniform_cube_fills_cube() {
        let b = uniform_cube(2000, 2.0, 9);
        b.validate().unwrap();
        for p in &b.pos {
            assert!(p.x.abs() <= 2.0 && p.y.abs() <= 2.0 && p.z.abs() <= 2.0);
        }
        // Roughly even octant occupancy.
        let mut oct = [0usize; 8];
        for p in &b.pos {
            oct[geom::octant_of(Vec3::ZERO, *p)] += 1;
        }
        for &c in &oct {
            assert!((150..350).contains(&c), "octant counts {oct:?}");
        }
    }

    #[test]
    fn two_clusters_are_separated_and_approaching() {
        let b = two_clusters(1000, 0.5, 1.0, 20.0, 2.0, 3);
        assert_eq!(b.len(), 1000);
        let left = b.pos.iter().filter(|p| p.x < 0.0).count();
        assert!((300..700).contains(&left));
        // Net x-momentum cancels.
        let px: f64 = b.vel.iter().zip(&b.mass).map(|(v, m)| v.x * m).sum();
        assert!(px.abs() < 1e-9 * b.len() as f64);
    }

    #[test]
    fn collapsing_setup_fits_in_its_64th() {
        let s = collapsing_plummer(3000, 1.0, 11);
        s.bodies.validate().unwrap();
        let quarter = s.domain_half_width / 4.0;
        for p in &s.bodies.pos {
            let d = *p - s.domain_center;
            assert!(
                d.x.abs() <= quarter && d.y.abs() <= quarter && d.z.abs() <= quarter,
                "body outside the initial 1/64th region"
            );
        }
    }

    #[test]
    fn collapsing_setup_is_subvirial() {
        let s = collapsing_plummer(2000, 1.0, 13);
        let e = total_energy_for(&s.bodies);
        assert!(
            2.0 * e.0 < 0.5 * e.1.abs(),
            "2K = {} should be well below |U| = {}",
            2.0 * e.0,
            e.1.abs()
        );
    }

    fn total_energy_for(b: &Bodies) -> (f64, f64) {
        let e = crate::diagnostics::total_energy(b, 1.0, 0.0);
        (e.kinetic, e.potential)
    }

    #[test]
    fn expanding_setup_is_supervirial_but_bound() {
        let s = expanding_plummer(2000, 1.0, 19);
        s.bodies.validate().unwrap();
        let e = crate::diagnostics::total_energy(&s.bodies, 1.0, 0.0);
        // Super-virial: 2K > |U|, so the cloud expands...
        assert!(2.0 * e.kinetic > e.potential.abs());
        // ...but bound: E < 0, so it turns around and comes back.
        assert!(e.total() < 0.0, "cloud must stay bound (E = {})", e.total());
    }

    #[test]
    fn forces_are_unit_vectors() {
        let f = random_unit_forces(100, 5);
        assert_eq!(f.len(), 300);
        for i in 0..100 {
            let v = Vec3::new(f[3 * i], f[3 * i + 1], f[3 * i + 2]);
            assert!((v.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let a = plummer(100, 1.0, 1.0, 77);
        let b = plummer(100, 1.0, 1.0, 77);
        let c = plummer(100, 1.0, 1.0, 78);
        assert_eq!(a.pos, b.pos);
        assert_eq!(a.vel, b.vel);
        assert_ne!(a.pos, c.pos);
    }
}
