//! Property tests of the workload generators and integrator.

use geom::Vec3;
use nbody::{plummer, two_clusters, uniform_cube, ElasticRing, Leapfrog};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Plummer clouds are centered, momentum-free, bounded, and valid for
    /// any seed and scale.
    #[test]
    fn plummer_invariants(seed in any::<u64>(), a in 0.2f64..5.0, n in 100usize..800) {
        let b = plummer(n, a, 1.0, seed);
        prop_assert!(b.validate().is_ok());
        prop_assert_eq!(b.len(), n);
        prop_assert!(b.center_of_mass().norm() < 1e-9 * n as f64);
        let p = nbody::total_momentum(&b);
        prop_assert!(p.norm() < 1e-9 * n as f64, "net momentum {p:?}");
        // All radii below the 10a cap (plus the tiny re-centering shift).
        for pos in &b.pos {
            prop_assert!(pos.norm() <= 11.0 * a);
        }
    }

    #[test]
    fn uniform_cube_bounds(seed in any::<u64>(), hw in 0.1f64..10.0, n in 10usize..500) {
        let b = uniform_cube(n, hw, seed);
        prop_assert!(b.validate().is_ok());
        for p in &b.pos {
            prop_assert!(p.x.abs() <= hw && p.y.abs() <= hw && p.z.abs() <= hw);
        }
    }

    #[test]
    fn two_clusters_split_and_cancel(seed in any::<u64>(), sep in 4.0f64..20.0) {
        let b = two_clusters(400, 0.5, 1.0, sep, 2.0, seed);
        prop_assert_eq!(b.len(), 400);
        let p = nbody::total_momentum(&b);
        prop_assert!(p.norm() < 1e-9 * b.len() as f64);
        // Clusters stay on their own sides of the yz-plane (0.5-scale
        // clouds capped at radius 5, offset at ±sep/2 ≥ ±2): most bodies on
        // the matching side.
        let left = b.pos.iter().filter(|p| p.x < 0.0).count();
        prop_assert!((100..300).contains(&left));
    }

    /// Leapfrog drift+kick are exactly linear in dt and additive.
    #[test]
    fn leapfrog_linearity(
        dt in 1e-4f64..0.1,
        v in (-5.0f64..5.0, -5.0f64..5.0, -5.0f64..5.0),
        a in (-5.0f64..5.0, -5.0f64..5.0, -5.0f64..5.0),
    ) {
        let mut b = nbody::Bodies::default();
        b.push(Vec3::ZERO, Vec3::new(v.0, v.1, v.2), 1.0);
        let acc = [Vec3::new(a.0, a.1, a.2)];
        let lf = Leapfrog::new(dt);
        lf.kick(&mut b, &acc);
        let expect_v = Vec3::new(v.0, v.1, v.2) + Vec3::new(a.0, a.1, a.2) * (0.5 * dt);
        prop_assert!((b.vel[0] - expect_v).norm() < 1e-12);
        lf.drift(&mut b);
        prop_assert!((b.pos[0] - expect_v * dt).norm() < 1e-12);
    }

    /// Ring forces always sum to zero and energy is non-negative,
    /// whatever the deformation.
    #[test]
    fn ring_force_balance(
        n in 3usize..64,
        k in 0.1f64..100.0,
        factor in 0.5f64..2.0,
        r in 0.2f64..3.0,
    ) {
        let mut ring = ElasticRing::new(Vec3::ZERO, r, n, k);
        ring.perturb_ellipse(factor);
        prop_assert!(ring.energy() >= 0.0);
        let f = ring.forces();
        let net: Vec3 = (0..n).map(|i| Vec3::new(f[3 * i], f[3 * i + 1], f[3 * i + 2])).sum();
        prop_assert!(net.norm() < 1e-10 * (1.0 + k * r), "net {net:?}");
    }
}
