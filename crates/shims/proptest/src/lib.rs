//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the property-testing surface its test suites use: the [`proptest!`]
//! macro, the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_filter` / `prop_filter_map`, range and tuple strategies,
//! [`collection::vec`], [`arbitrary::any`], [`prop_oneof!`], and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from upstream, deliberately accepted for a hermetic build:
//!
//! * **No shrinking.** A failing case reports the case number and panics
//!   with the assertion message; inputs are deterministic per test name, so
//!   failures reproduce exactly on re-run.
//! * **Deterministic inputs.** The RNG is seeded from the test's module
//!   path + name (no `proptest-regressions` files, no persistence).
//! * `prop_assert*` are hard asserts (upstream's early-return machinery is
//!   shrinking support, which does not exist here).

pub mod test_runner {
    /// Run configuration — only the knobs the workspace uses.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream default is 256; kept for comparable coverage.
            ProptestConfig { cases: 256 }
        }
    }

    /// SplitMix64 generator seeded from the test's qualified name, so every
    /// property sees the same input stream on every run and platform.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values of one type.
    ///
    /// Object-safe: `Box<dyn Strategy<Value = V>>` is itself a strategy,
    /// which is what [`prop_oneof!`](crate::prop_oneof) builds on.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                f,
            }
        }

        fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap {
                inner: self,
                reason,
                f,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Rejection cap for filter strategies: a predicate that rejects this
    /// many consecutive samples is treated as a test bug.
    const MAX_REJECTS: usize = 10_000;

    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..MAX_REJECTS {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter({:?}) rejected {MAX_REJECTS} consecutive samples",
                self.reason
            );
        }
    }

    pub struct FilterMap<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            for _ in 0..MAX_REJECTS {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!(
                "prop_filter_map({:?}) rejected {MAX_REJECTS} consecutive samples",
                self.reason
            );
        }
    }

    /// Uniform choice between boxed alternatives ([`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    // ---- ranges ----

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 strategy range");
            self.start + (self.end - self.start) * rng.next_f64()
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty f32 strategy range");
            self.start + (self.end - self.start) * rng.next_f64() as f32
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    // ---- tuples ----

    macro_rules! tuple_strategy {
        ($($S:ident/$idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A / 0);
    tuple_strategy!(A / 0, B / 1);
    tuple_strategy!(A / 0, B / 1, C / 2);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec-length range");
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    /// An index into a collection whose length is unknown at generation
    /// time (`any::<prop::sample::Index>()`).
    #[derive(Clone, Copy, Debug)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// Resolve against a concrete length. `len` must be nonzero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, a few decades of magnitude — the
            // useful slice of the domain for numeric properties.
            (rng.next_f64() - 0.5) * 2e6
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
            crate::sample::Index(rng.next_u64())
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The property-test entry point. Same surface as upstream:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn prop(x in 0u64..100, v in prop::collection::vec(-1.0f64..1.0, 1..20)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for __case in 0..__config.cases {
                    $(let $parm = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)+
                    // No shrinking: annotate failures with the case number
                    // (inputs are deterministic, so the case reproduces).
                    let __hold = $crate::__CaseReporter(__case);
                    // The closure gives the body upstream's environment: it
                    // may `return Ok(())` to discard a case early.
                    #[allow(unreachable_code, clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err(__msg) = __outcome {
                        panic!("proptest(shim): case #{__case} failed: {__msg}");
                    }
                    std::mem::forget(__hold);
                }
            }
        )*
    };
}

/// Prints the failing case number if the test body panics (poor man's
/// counterexample report; dropped via `mem::forget` on success).
#[doc(hidden)]
pub struct __CaseReporter(pub u32);

impl Drop for __CaseReporter {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!("proptest(shim): property failed at case #{}", self.0);
        }
    }
}

/// Hard-asserting stand-ins for upstream's `prop_assert*` family.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

pub mod prelude {
    //! `use proptest::prelude::*;`
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn map_and_vec_compose(v in prop::collection::vec((0usize..10).prop_map(|i| i * 2), 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x % 2 == 0 && x < 20));
        }

        #[test]
        fn oneof_and_index(pick in prop_oneof![0usize..3, 10usize..13], ix in any::<prop::sample::Index>()) {
            prop_assert!(pick < 3 || (10..13).contains(&pick));
            prop_assert!(ix.index(7) < 7);
        }

        #[test]
        fn filter_map_retries(v in (0u64..100).prop_filter_map("even", |x| (x % 2 == 0).then_some(x))) {
            prop_assert_eq!(v % 2, 0);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("x::y");
        let mut b = crate::test_runner::TestRng::from_name("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::from_name("x::z");
        let _ = c.next_u64(); // different name, (almost surely) different stream
    }
}
