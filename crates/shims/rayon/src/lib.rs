//! Offline stand-in for `rayon`, exposing the API slice this workspace uses
//! with **sequential** execution.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the surface it needs: `par_iter()` pipelines (`filter`, `map`,
//! `map_init`, `collect`) and `par_sort_unstable()`. Everything the AFMM
//! reproduction *measures* comes from the virtual-node models (`sched-sim`,
//! `gpu-sim`), never from host wall-clock parallelism, so sequential
//! execution changes no observable result — solves are bit-identical
//! (sequential reduction order is a fixed, valid schedule of the same
//! disjoint-write loops).

pub mod iter {
    /// A "parallel" iterator: a plain iterator with rayon's method names.
    pub struct ParIter<I>(pub(crate) I);

    impl<I: Iterator> ParIter<I> {
        pub fn filter<P>(self, predicate: P) -> ParIter<std::iter::Filter<I, P>>
        where
            P: FnMut(&I::Item) -> bool,
        {
            ParIter(self.0.filter(predicate))
        }

        pub fn map<R, F>(self, f: F) -> ParIter<std::iter::Map<I, F>>
        where
            F: FnMut(I::Item) -> R,
        {
            ParIter(self.0.map(f))
        }

        /// rayon's `map_init`: per-worker scratch state. Sequentially there
        /// is exactly one worker, so `init` runs once and the scratch is
        /// threaded through every element — the same reuse rayon guarantees
        /// per split.
        pub fn map_init<T, R, INIT, F>(
            self,
            mut init: INIT,
            mut f: F,
        ) -> ParIter<std::vec::IntoIter<R>>
        where
            INIT: FnMut() -> T,
            F: FnMut(&mut T, I::Item) -> R,
        {
            let mut scratch = init();
            let out: Vec<R> = self.0.map(|x| f(&mut scratch, x)).collect();
            ParIter(out.into_iter())
        }

        pub fn for_each<F>(self, f: F)
        where
            F: FnMut(I::Item),
        {
            self.0.for_each(f)
        }

        pub fn collect<C>(self) -> C
        where
            C: FromIterator<I::Item>,
        {
            self.0.collect()
        }
    }

    /// `.par_iter()` on slices (and anything that derefs to one, e.g. `Vec`).
    pub trait IntoParallelRefIterator<'data> {
        type Item: 'data;
        fn par_iter(&'data self) -> ParIter<std::slice::Iter<'data, Self::Item>>;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<std::slice::Iter<'data, T>> {
            ParIter(self.iter())
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<std::slice::Iter<'data, T>> {
            ParIter(self.as_slice().iter())
        }
    }

    /// `.par_iter_mut()` on slices.
    pub trait IntoParallelRefMutIterator<'data> {
        type Item: 'data;
        fn par_iter_mut(&'data mut self) -> ParIter<std::slice::IterMut<'data, Self::Item>>;
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Item = T;
        fn par_iter_mut(&'data mut self) -> ParIter<std::slice::IterMut<'data, T>> {
            ParIter(self.iter_mut())
        }
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter_mut(&'data mut self) -> ParIter<std::slice::IterMut<'data, T>> {
            ParIter(self.as_mut_slice().iter_mut())
        }
    }

    /// `.into_par_iter()` on owned collections and ranges.
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> ParIter<Self::Iter>;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> ParIter<Self::Iter> {
            ParIter(self.into_iter())
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = std::ops::Range<usize>;
        fn into_par_iter(self) -> ParIter<Self::Iter> {
            ParIter(self)
        }
    }
}

pub mod slice {
    /// rayon's parallel in-place slice sorts, sequentially.
    pub trait ParallelSliceMut<T> {
        fn as_mut_slice_for_sort(&mut self) -> &mut [T];

        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            self.as_mut_slice_for_sort().sort_unstable()
        }

        fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F)
        where
            T: Ord,
        {
            self.as_mut_slice_for_sort().sort_unstable_by_key(key)
        }

        fn par_sort_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, cmp: F) {
            self.as_mut_slice_for_sort().sort_by(cmp)
        }
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn as_mut_slice_for_sort(&mut self) -> &mut [T] {
            self
        }
    }

    impl<T> ParallelSliceMut<T> for Vec<T> {
        fn as_mut_slice_for_sort(&mut self) -> &mut [T] {
            self.as_mut_slice()
        }
    }
}

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
    pub use crate::slice::ParallelSliceMut;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pipeline_matches_sequential() {
        let v: Vec<usize> = (0..100).collect();
        let out: Vec<usize> = v
            .par_iter()
            .filter(|&&x| x % 2 == 0)
            .map(|&x| x * 3)
            .collect();
        let expect: Vec<usize> = (0..100).filter(|x| x % 2 == 0).map(|x| x * 3).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn map_init_reuses_scratch() {
        let v = vec![1usize, 2, 3, 4];
        let mut inits = 0;
        let out: Vec<usize> = v
            .par_iter()
            .map_init(
                || {
                    inits += 1;
                    Vec::<usize>::new()
                },
                |scratch, &x| {
                    scratch.push(x);
                    scratch.len()
                },
            )
            .collect();
        // One worker: scratch grows across elements, init ran once.
        assert_eq!(out, vec![1, 2, 3, 4]);
        assert_eq!(inits, 1);
    }

    #[test]
    fn par_sort_sorts() {
        let mut v = vec![5u64, 1, 4, 2, 3];
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
    }
}
