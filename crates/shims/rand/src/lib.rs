//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the thin slice of `rand` it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]) and uniform range sampling
//! ([`Rng::random_range`]). The generator is SplitMix64 — statistically
//! solid for test workloads and simulation seeding, not cryptographic.
//!
//! Determinism contract: the same seed always yields the same stream, on
//! every platform. (Streams differ from upstream `rand`'s `StdRng`, which
//! is fine — nothing in the workspace depends on upstream's exact bits.)

use std::ops::Range;

/// Core trait: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range, like `rand`'s `random_range`.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn random_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        // 53 uniform mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform bool with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// A half-open range that knows how to sample itself uniformly.
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in random_range");
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + (self.end - self.start) * u
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < 2^-64 per sample for the spans test code
                // uses; acceptable for a test-only generator.
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// SplitMix64: tiny, fast, passes BigCrush when used as a stream.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

pub mod rngs {
    //! Named generators, mirroring `rand::rngs`.
    pub use super::SplitMix64;

    /// The workspace's standard test generator.
    pub type StdRng = SplitMix64;
    /// Alias kept for API compatibility with `rand::rngs::SmallRng`.
    pub type SmallRng = SplitMix64;
}

pub mod prelude {
    //! `use rand::prelude::*;` — the imports `rand` 0.9 code expects.
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SampleRange, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_hit_their_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n = r.random_range(5usize..9);
            assert!((5..9).contains(&n));
            let s = r.random_range(-4i32..-1);
            assert!((-4..-1).contains(&s));
        }
    }

    #[test]
    fn f64_mean_is_centered() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.random_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
