//! Offline stand-in for `criterion`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the harness surface its benches use: `Criterion`, `benchmark_group`,
//! `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of statistical sampling, each benchmark body runs **once** and
//! its wall time is printed. That keeps `cargo bench` compiling and
//! exercising every bench path as a smoke test; the numbers are not
//! statistically meaningful (all *meaningful* timing in this workspace
//! comes from the virtual-node models, printed by the bench binaries in
//! `crates/bench`, not from host wall clock).

use std::time::Instant;

pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            group: name.to_string(),
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, &mut f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IdLike, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.group, id.render());
        run_one(&full, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IdLike,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.group, id.render());
        let mut wrapped = |b: &mut Bencher| f(b, input);
        run_one(&full, &mut wrapped);
        self
    }

    pub fn finish(self) {}
}

/// Accepts both `&str` names and `BenchmarkId`s.
pub trait IdLike {
    fn render(&self) -> String;
}

impl IdLike for &str {
    fn render(&self) -> String {
        (*self).to_string()
    }
}

impl IdLike for String {
    fn render(&self) -> String {
        self.clone()
    }
}

impl IdLike for BenchmarkId {
    fn render(&self) -> String {
        self.full.clone()
    }
}

/// `BenchmarkId::new("name", param)`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: param.to_string(),
        }
    }
}

/// How batched inputs are sized; irrelevant when running once.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Runs the measured closure. In this shim every `iter*` call executes its
/// routine exactly once.
pub struct Bencher {
    elapsed_s: f64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t0 = Instant::now();
        black_box(routine());
        self.elapsed_s = t0.elapsed().as_secs_f64();
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        self.elapsed_s = t0.elapsed().as_secs_f64();
    }

    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut input = setup();
        let t0 = Instant::now();
        black_box(routine(&mut input));
        self.elapsed_s = t0.elapsed().as_secs_f64();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, f: &mut F) {
    let mut b = Bencher { elapsed_s: 0.0 };
    f(&mut b);
    println!(
        "bench {id}: {:.6} s (single run, criterion shim)",
        b.elapsed_s
    );
}

/// Upstream-compatible group/main macros (simple list form).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_each_bench_once() {
        let mut c = Criterion::default();
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10)
                .bench_with_input(BenchmarkId::new("inner", 3), &3usize, |b, &n| {
                    b.iter(|| {
                        runs += 1;
                        n * 2
                    })
                });
            g.bench_function("plain", |b| {
                b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::LargeInput)
            });
            g.finish();
        }
        assert_eq!(runs, 1);
    }
}
