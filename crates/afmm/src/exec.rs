use crate::config::HeteroNode;
use crate::dag::{lower_plan, measure_spans, PhaseSpans, PhaseTag, SchedXray};
use crate::error::Error;
use fmm_math::OpFlops;
use gpu_sim::{KernelTiming, P2pJob};
use octree::{InteractionLists, NodeId, Octree, NONE};
use sched_sim::{schedule, simulate, DagConfig, TaskGraph, TaskId};

/// Virtual-node timing of one FMM solve on a heterogeneous node.
#[derive(Clone, Debug)]
pub struct TimingReport {
    /// The paper's **CPU Time**: makespan of the far-field task DAG (plus
    /// near-field tasks when the node has no GPUs) on the virtual cores —
    /// "wall clock time between the first call to the upward sweep and the
    /// completion of the last task spawned during the downward sweep".
    pub t_cpu: f64,
    /// The paper's **GPU Time**: the maximum simulated kernel time over all
    /// GPUs; 0 when the node has none.
    pub t_gpu: f64,
    /// Aggregate core-seconds of CPU work (Σ per-core busy time) — the
    /// numerator of the observed effective parallelism.
    pub cpu_work_seconds: f64,
    /// Per-device kernel details, when GPUs are present.
    pub gpu: Option<KernelTiming>,
    /// Measured per-phase spans of the schedule — `Some` only under
    /// [`SchedMode::Dag`], where per-task completion times exist.
    pub phases: Option<PhaseSpans>,
    /// Scheduler X-ray (per-task traces + critical-path attribution) —
    /// `Some` only under [`SchedMode::Dag`] with [`ExecPolicy::trace`]
    /// set. Boxed: it is an opt-in diagnostic, and the common untraced
    /// report should stay small.
    pub sched: Option<Box<SchedXray>>,
}

impl TimingReport {
    /// The paper's **Compute Time**: `max(CPU Time, GPU Time)`.
    pub fn compute(&self) -> f64 {
        self.t_cpu.max(self.t_gpu)
    }

    /// Observed effective parallelism (core-equivalents actually engaged).
    /// Non-finite inputs (a NaN/∞ makespan or work sum from a corrupted
    /// report) read as serial rather than poisoning downstream cost-model
    /// observations.
    pub fn parallel_rate(&self) -> f64 {
        if self.t_cpu > 0.0 && self.t_cpu.is_finite() && self.cpu_work_seconds.is_finite() {
            (self.cpu_work_seconds / self.t_cpu).max(1.0)
        } else {
            1.0
        }
    }

    /// Whole-system SIMT efficiency of the step's near-field launch, with
    /// "no measurement" (no GPU timing, or an empty launch) read as fully
    /// efficient — the uniform `None` handling shared by every consumer.
    pub fn gpu_efficiency(&self) -> f64 {
        self.gpu
            .as_ref()
            .and_then(KernelTiming::efficiency)
            .unwrap_or(1.0)
    }
}

/// Emit one telemetry span per FMM phase (P2M, M2M, M2L, L2L, L2P, P2P) for
/// a realized step, and mirror each duration into a `phase.*` histogram.
///
/// Under [`SchedMode::Dag`] the timing carries *measured* per-phase spans
/// (aggregated from per-task completion times), so each far-field phase
/// reports its measured busy time scaled to wall time by the step's
/// parallel rate — the far-field durations then sum to exactly `t_cpu`.
/// Under [`SchedMode::Barrier`] the executor reports only the DAG
/// makespan, so per-phase durations are *attributed*: each phase gets its
/// share of CPU work (`counts × flops / effective core rate`) scaled the
/// same way — the same realized-execution arithmetic
/// [`crate::CostModel::observe`] uses. P2P takes the measured GPU makespan
/// when devices are online and its CPU share otherwise.
pub fn record_phase_spans(
    rec: &telemetry::Recorder,
    counts: &octree::OpCounts,
    flops: &OpFlops,
    node: &HeteroNode,
    timing: &TimingReport,
) {
    if !rec.is_enabled() {
        return;
    }
    let eff = node.cpu.rate_flops * node.cpu.memory.rate_factor(node.cpu.cores);
    let wall = |core_seconds: f64| core_seconds / timing.parallel_rate();
    let far = |tag: PhaseTag, attributed: f64| match &timing.phases {
        Some(ph) => wall(ph.get(tag).busy),
        None => wall(attributed),
    };
    let phases: [(&'static str, f64, u64); 5] = [
        (
            "phase.p2m",
            far(
                PhaseTag::P2m,
                flops.p2m_per_body * counts.p2m_bodies as f64 / eff,
            ),
            counts.p2m_bodies,
        ),
        (
            "phase.m2m",
            far(PhaseTag::M2m, flops.m2m * counts.m2m_ops as f64 / eff),
            counts.m2m_ops,
        ),
        (
            "phase.m2l",
            far(PhaseTag::M2l, flops.m2l * counts.m2l_ops as f64 / eff),
            counts.m2l_ops,
        ),
        (
            "phase.l2l",
            far(PhaseTag::L2l, flops.l2l * counts.l2l_ops as f64 / eff),
            counts.l2l_ops,
        ),
        (
            "phase.l2p",
            far(
                PhaseTag::L2p,
                flops.l2p_per_body * counts.l2p_bodies as f64 / eff,
            ),
            counts.l2p_bodies,
        ),
    ];
    for (name, dur, ops) in phases {
        rec.span(name, dur, vec![("ops", telemetry::Value::U64(ops))]);
        rec.hist_record(name, dur);
    }
    let p2p_dur = if node.num_online_gpus() > 0 {
        timing.t_gpu
    } else {
        far(
            PhaseTag::P2p,
            flops.p2p_per_pair * counts.p2p_interactions as f64 / eff,
        )
    };
    rec.span(
        "phase.p2p",
        p2p_dur,
        vec![
            ("ops", telemetry::Value::U64(counts.p2p_interactions)),
            ("on_gpu", telemetry::Value::Bool(node.num_online_gpus() > 0)),
        ],
    );
    rec.hist_record("phase.p2p", p2p_dur);
}

/// Per-phase critical-path-fraction field names, aligned with
/// [`PhaseTag::ALL`] (telemetry field keys must be `&'static str`).
const CRIT_FRAC_FIELDS: [&str; 6] = [
    "frac_p2m", "frac_m2m", "frac_m2l", "frac_l2l", "frac_l2p", "frac_p2p",
];

/// Emit one step's scheduler X-ray into the trace:
///
/// * `sched.task` — one span per task (duration = realized execution),
///   with its phase, lane label, slot, dispatch priority, ready/start
///   offsets within the step, and `crit` (position on the realized
///   critical path, −1 if off-path).
/// * `sched.lane` — one event per execution slot (CPU core or GPU lane):
///   busy seconds, utilization over the makespan, task count, idle-gap
///   census.
/// * `sched.critpath` — one summary event: path length, duration sum vs
///   makespan (the reconciliation pair `afmm-sched explain` checks),
///   winning anomaly-guard pass, `lane_idle_frac`, `pipeline_overlap`,
///   and the bottleneck attribution fractions (per phase, CPU vs GPU,
///   dependency vs starvation vs serialization).
pub fn record_sched_xray(rec: &telemetry::Recorder, x: &SchedXray) {
    if !rec.is_enabled() {
        return;
    }
    use telemetry::Value;
    let mut crit_idx = vec![-1i64; x.tasks.len()];
    for (i, c) in x.analysis.crit_path.iter().enumerate() {
        crit_idx[c.task as usize] = i as i64;
    }
    for t in &x.tasks {
        rec.span(
            "sched.task",
            t.duration(),
            vec![
                ("task", Value::U64(t.task as u64)),
                ("phase", Value::Str(t.phase.label().into())),
                ("lane", Value::Str(sched_sim::slot_label(t.slot, x.cores))),
                ("slot", Value::U64(t.slot as u64)),
                ("prio", Value::F64(t.prio)),
                ("ready", Value::F64(t.ready)),
                ("start", Value::F64(t.start)),
                ("crit", Value::I64(crit_idx[t.task as usize])),
            ],
        );
    }
    for ls in &x.analysis.lanes {
        rec.event(
            "sched.lane",
            vec![
                ("lane", Value::Str(sched_sim::slot_label(ls.slot, x.cores))),
                ("slot", Value::U64(ls.slot as u64)),
                ("gpu", Value::Bool(ls.is_gpu)),
                ("busy", Value::F64(ls.busy)),
                ("util", Value::F64(ls.utilization)),
                ("tasks", Value::U64(ls.tasks as u64)),
                ("idle_gaps", Value::U64(ls.idle_gaps as u64)),
                ("idle_total", Value::F64(ls.idle_total)),
                ("idle_max", Value::F64(ls.idle_max)),
            ],
        );
    }
    let a = &x.analysis;
    let mut fields = vec![
        ("len", Value::U64(a.crit_path.len() as u64)),
        ("sum", Value::F64(a.crit_sum)),
        ("makespan", Value::F64(a.makespan)),
        ("pass", Value::Str(x.pass.label().into())),
        ("cores", Value::U64(x.cores as u64)),
        ("gpu_lanes", Value::U64(x.gpu_lanes as u64)),
        ("lane_idle_frac", Value::F64(a.lane_idle_frac)),
        ("pipeline_overlap", Value::F64(a.pipeline_overlap)),
        ("cpu_frac", Value::F64(a.crit_cpu_frac)),
        ("gpu_frac", Value::F64(a.crit_gpu_frac)),
        ("dep_frac", Value::F64(a.dependency_frac)),
        ("starve_frac", Value::F64(a.resource_cpu_frac)),
        ("serial_frac", Value::F64(a.resource_gpu_frac)),
    ];
    for (i, name) in CRIT_FRAC_FIELDS.iter().enumerate() {
        fields.push((name, Value::F64(x.crit_phase_frac[i])));
    }
    rec.event("sched.critpath", fields);
}

/// Build the GPU work list: one [`P2pJob`] per active leaf with a non-empty
/// P2P interaction list, in traversal order (the order the paper's partition
/// walk consumes).
pub fn build_gpu_jobs(tree: &Octree, lists: &InteractionLists) -> Vec<P2pJob> {
    tree.active_leaves()
        .into_iter()
        .filter(|&id| !lists.p2p[id as usize].is_empty())
        .map(|id| {
            let sources = lists.p2p[id as usize]
                .iter()
                .map(|&b| tree.node(b).count())
                .collect();
            P2pJob::new(tree.node(id).count(), sources)
        })
        .collect()
}

/// How the far-field task graph is scheduled on the virtual node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedMode {
    /// The paper's phase-barriered model: merged per-node sweep tasks, the
    /// whole downward sweep gated on the upward sweep's root (`taskwait`),
    /// GPU kernels timed separately. The oracle the Dag path is checked
    /// against.
    #[default]
    Barrier,
    /// Dependency-driven list scheduling over the fine-grained lowering in
    /// [`crate::dag`]: M2L gated only on its sources' M2M, bottom-level
    /// priorities, GPU kernels as device-lane tasks pipelined with CPU work.
    Dag,
}

/// What runs where and how it is scheduled — [`ExecPolicy::default`] is the
/// paper's split (all expansion work on the CPU, barrier scheduling);
/// `offload_pl` implements the paper's §VIII.E proposal: "move additional
/// work to the GPU that can be performed more efficiently... the P2M
/// expansion formation and L2P expansion evaluation", which helps
/// CPU-starved configurations like 4C4G.
#[derive(Clone, Copy, Debug)]
pub struct ExecPolicy {
    /// Move P2M and L2P to the GPUs (no effect on CPU-only nodes).
    pub offload_pl: bool,
    /// Barrier (oracle) vs dependency-driven scheduling.
    pub mode: SchedMode,
    /// Capture the scheduler X-ray ([`TimingReport::sched`]) on Dag-mode
    /// steps. Off by default: the X-ray walks the whole schedule per step,
    /// and the untraced path must stay within the perf-lab's overhead
    /// budget.
    pub trace: bool,
    /// Relative tolerance for the replay validator's `phase_reconciliation`
    /// invariant (per-phase span sums vs the recorded schedule time).
    /// Recorded into the trace's `run.config` header so the validator can
    /// apply the tolerance the run was executed under.
    pub phase_tolerance: f64,
}

/// The validator's historical default phase-reconciliation tolerance.
pub const DEFAULT_PHASE_TOLERANCE: f64 = 0.2;

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy {
            offload_pl: false,
            mode: SchedMode::default(),
            trace: false,
            phase_tolerance: DEFAULT_PHASE_TOLERANCE,
        }
    }
}

/// Build the far-field task DAG exactly as the paper's recursive OpenMP
/// version spawns it:
///
/// * **UpSweep** is head-recursive: one task per non-empty visible node,
///   costing P2M (leaf) or one M2M per non-empty child (internal), that can
///   only run once all child tasks finished.
/// * **DownSweep** is tail-recursive: one task per node, costing L2L (from
///   the parent) plus its M2L list plus L2P (leaf), runnable once the
///   *parent's* task finished. The root's task additionally waits for the
///   entire upsweep (the paper's `taskwait` between phases).
///
/// When `include_p2p` is set (CPU-only nodes, e.g. the paper's serial
/// baseline where "both the expansion and direct work were run on this
/// single core"), each leaf task also carries its direct interactions.
pub fn build_task_graph(
    tree: &Octree,
    lists: &InteractionLists,
    flops: &OpFlops,
    include_p2p: bool,
) -> TaskGraph {
    build_task_graph_with(tree, lists, flops, include_p2p, true)
}

/// As [`build_task_graph`], with control over whether the per-body P2M/L2P
/// work stays in the CPU DAG (`include_pl = false` models the §VIII.E
/// offload).
pub fn build_task_graph_with(
    tree: &Octree,
    lists: &InteractionLists,
    flops: &OpFlops,
    include_p2p: bool,
    include_pl: bool,
) -> TaskGraph {
    let mut graph = TaskGraph::with_capacity(2 * tree.num_nodes());
    if tree.node(Octree::ROOT).count() == 0 {
        return graph;
    }
    let up_root = add_upsweep(&mut graph, tree, flops, include_pl, Octree::ROOT);
    add_downsweep(
        &mut graph,
        tree,
        lists,
        flops,
        include_p2p,
        include_pl,
        Octree::ROOT,
        up_root,
    );
    graph
}

/// Post-order: children first, then the node's own task. Returns the task id.
fn add_upsweep(
    graph: &mut TaskGraph,
    tree: &Octree,
    flops: &OpFlops,
    include_pl: bool,
    id: NodeId,
) -> TaskId {
    let node = tree.node(id);
    if node.is_leaf() {
        let cost = if include_pl {
            flops.p2m_per_body * node.count() as f64
        } else {
            0.0
        };
        return graph.add(cost, Vec::new());
    }
    let mut deps = Vec::with_capacity(8);
    let mut m2m = 0usize;
    for c in tree.visible_children(id) {
        if tree.node(c).count() == 0 {
            continue;
        }
        deps.push(add_upsweep(graph, tree, flops, include_pl, c));
        m2m += 1;
    }
    graph.add(flops.m2m * m2m as f64, deps)
}

/// Pre-order: the node's own task first (dep on parent), then children.
#[allow(clippy::too_many_arguments)]
fn add_downsweep(
    graph: &mut TaskGraph,
    tree: &Octree,
    lists: &InteractionLists,
    flops: &OpFlops,
    include_p2p: bool,
    include_pl: bool,
    id: NodeId,
    parent_task: TaskId,
) {
    let node = tree.node(id);
    if node.count() == 0 {
        return;
    }
    let mut cost = flops.m2l * lists.m2l[id as usize].len() as f64;
    if node.parent != NONE {
        cost += flops.l2l;
    }
    if node.is_leaf() {
        if include_pl {
            cost += flops.l2p_per_body * node.count() as f64;
        }
        if include_p2p {
            cost += flops.p2p_per_pair * lists.leaf_pairs(tree, id) as f64;
        }
    }
    let task = graph.add(cost, vec![parent_task]);
    for c in tree.visible_children(id) {
        add_downsweep(graph, tree, lists, flops, include_p2p, include_pl, c, task);
    }
}

/// Time one FMM solve of the given tree + interaction lists on `node`:
/// far-field DAG makespan on the virtual cores, near-field kernels on the
/// simulated GPUs (or folded into the CPU DAG when there are none).
///
/// A node whose GPUs have all dropped offline (see [`gpu_sim::FaultEvent`])
/// is timed like a CPU-only node: the near field folds back into the CPU
/// DAG instead of erroring — the resilience fallback. `Err` means the GPU
/// system itself rejected a valid-looking launch (a device dropped between
/// the check and the launch, or an internal contract broke).
pub fn time_step(
    tree: &Octree,
    lists: &InteractionLists,
    flops: &OpFlops,
    node: &HeteroNode,
) -> Result<TimingReport, Error> {
    time_step_policy(tree, lists, flops, node, ExecPolicy::default())
}

/// As [`time_step`], under an explicit execution policy. With
/// `policy.offload_pl` and online GPUs present, P2M/L2P leave the CPU DAG
/// and run as an additional per-leaf expansion kernel on the devices
/// (modeled at the GPU's expansion efficiency); expansion kernels are
/// assumed to overlap the CPU's translation phase, as the paper's proposal
/// implies.
pub fn time_step_policy(
    tree: &Octree,
    lists: &InteractionLists,
    flops: &OpFlops,
    node: &HeteroNode,
    policy: ExecPolicy,
) -> Result<TimingReport, Error> {
    time_step_impl(tree, lists, None, flops, node, policy)
}

/// As [`time_step`], but consuming a pre-built (plan-cached) GPU job list
/// instead of re-deriving it from the lists. The jobs must correspond to the
/// given tree + lists (the `ExecutionPlan` maintains that invariant).
pub fn time_step_with_jobs(
    tree: &Octree,
    lists: &InteractionLists,
    jobs: &[P2pJob],
    flops: &OpFlops,
    node: &HeteroNode,
) -> Result<TimingReport, Error> {
    time_step_impl(tree, lists, Some(jobs), flops, node, ExecPolicy::default())
}

/// As [`time_step_with_jobs`], under an explicit execution policy — the
/// entry point [`crate::FmmEngine::time_step`] routes through.
pub fn time_step_with_jobs_policy(
    tree: &Octree,
    lists: &InteractionLists,
    jobs: &[P2pJob],
    flops: &OpFlops,
    node: &HeteroNode,
    policy: ExecPolicy,
) -> Result<TimingReport, Error> {
    time_step_impl(tree, lists, Some(jobs), flops, node, policy)
}

fn time_step_impl(
    tree: &Octree,
    lists: &InteractionLists,
    jobs: Option<&[P2pJob]>,
    flops: &OpFlops,
    node: &HeteroNode,
    policy: ExecPolicy,
) -> Result<TimingReport, Error> {
    let gpu_active = node.num_online_gpus() > 0;
    let offload = policy.offload_pl && gpu_active;
    // Simulate the near-field (and optional expansion) kernels first: the
    // barrier path needs only their makespans, the Dag path additionally
    // feeds the per-device durations into the unified schedule as lane
    // tasks.
    let (t_gpu_serial, gpu_secs, gpu) = match &node.gpus {
        Some(gpus) if gpu_active => {
            let built;
            let jobs = match jobs {
                Some(j) => j,
                None => {
                    built = build_gpu_jobs(tree, lists);
                    &built
                }
            };
            let timing = gpus.execute(jobs)?;
            let mut t = timing.gpu_time().ok_or(Error::MissingGpuTiming)?;
            let mut secs: Vec<f64> = timing.per_gpu.iter().map(|r| r.elapsed_s).collect();
            if offload {
                let cyc = gpus.spec(0).expansion_cycles_per_flop
                    * (flops.p2m_per_body + flops.l2p_per_body);
                let ex_jobs: Vec<gpu_sim::ExpansionJob> = tree
                    .active_leaves()
                    .into_iter()
                    .map(|id| gpu_sim::ExpansionJob {
                        bodies: tree.node(id).count(),
                        cycles_per_body: cyc,
                    })
                    .collect();
                let ex = gpus.execute_expansions(&ex_jobs)?;
                t += ex.gpu_time().ok_or(Error::MissingGpuTiming)?;
                for (s, r) in secs.iter_mut().zip(&ex.per_gpu) {
                    *s += r.elapsed_s;
                }
            }
            (t, secs, Some(timing))
        }
        _ => (0.0, Vec::new(), None),
    };
    match policy.mode {
        SchedMode::Barrier => {
            let graph = build_task_graph_with(tree, lists, flops, !gpu_active, !offload);
            let sim = simulate(&graph, &node.cpu.to_sim_config());
            Ok(TimingReport {
                t_cpu: sim.makespan,
                t_gpu: t_gpu_serial,
                cpu_work_seconds: sim.busy.iter().sum(),
                gpu,
                phases: None,
                sched: None,
            })
        }
        SchedMode::Dag => {
            let mut low = lower_plan(tree, lists, flops, !gpu_active, !offload);
            for (d, &s) in gpu_secs.iter().enumerate() {
                if s > 0.0 {
                    low.add_gpu_task(d as u16, s);
                }
            }
            let cfg = DagConfig {
                cpu: node.cpu.to_sim_config(),
                gpu_lanes: gpu_secs.len(),
            };
            let res = schedule(&low.graph, &cfg);
            let phases = measure_spans(&low, &res);
            // The X-ray is observational only: it reads the finished
            // schedule and never alters the reported timing.
            let sched = policy
                .trace
                .then(|| Box::new(SchedXray::build(&low, &cfg, &res)));
            Ok(TimingReport {
                t_cpu: res.cpu_makespan,
                t_gpu: res.gpu_makespan,
                cpu_work_seconds: res.busy.iter().sum(),
                gpu,
                phases: Some(phases),
                sched,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FmmParams, HeteroNode};
    use crate::engine::FmmEngine;
    use fmm_math::{GravityKernel, Kernel};
    use nbody::plummer;

    fn engine_with_lists(n: usize, s: usize) -> FmmEngine<GravityKernel> {
        let b = plummer(n, 1.0, 1.0, 201);
        let mut e = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &b.pos, s);
        e.refresh_lists();
        e
    }

    fn flops_of(e: &FmmEngine<GravityKernel>) -> OpFlops {
        e.kernel.op_flops(e.expansion_ops())
    }

    #[test]
    fn more_cores_reduce_cpu_time() {
        let e = engine_with_lists(4000, 32);
        let f = flops_of(&e);
        let t1 = time_step(e.tree(), e.lists(), &f, &HeteroNode::system_a(1, 1))
            .unwrap()
            .t_cpu;
        let t4 = time_step(e.tree(), e.lists(), &f, &HeteroNode::system_a(4, 1))
            .unwrap()
            .t_cpu;
        let t10 = time_step(e.tree(), e.lists(), &f, &HeteroNode::system_a(10, 1))
            .unwrap()
            .t_cpu;
        assert!(t4 < t1 && t10 < t4, "t1={t1} t4={t4} t10={t10}");
        let sp10 = t1 / t10;
        assert!(sp10 > 5.0 && sp10 <= 10.5, "10-core speedup {sp10}");
    }

    #[test]
    fn serial_makespan_is_total_work() {
        let e = engine_with_lists(1000, 16);
        let f = flops_of(&e);
        let node = HeteroNode::serial();
        let graph = build_task_graph(e.tree(), e.lists(), &f, true);
        let r = time_step(e.tree(), e.lists(), &f, &node).unwrap();
        let expect = graph.total_work() / node.cpu.rate_flops
            + graph.len() as f64 * node.cpu.task_overhead_s;
        assert!(
            (r.t_cpu - expect).abs() < 1e-12 * expect,
            "{} vs {}",
            r.t_cpu,
            expect
        );
        assert_eq!(r.t_gpu, 0.0);
    }

    #[test]
    fn gpu_offload_removes_p2p_from_cpu() {
        let e = engine_with_lists(3000, 48);
        let f = flops_of(&e);
        let cpu_only = time_step(e.tree(), e.lists(), &f, &HeteroNode::system_a(4, 0)).unwrap();
        let hetero = time_step(e.tree(), e.lists(), &f, &HeteroNode::system_a(4, 1)).unwrap();
        assert!(hetero.t_cpu < cpu_only.t_cpu, "P2P must leave the CPU DAG");
        assert!(hetero.t_gpu > 0.0);
        assert!(cpu_only.t_gpu == 0.0);
        // GPUs crush all-pairs work: the near field must run much faster on
        // the accelerator than folded into the CPU cores.
        assert!(hetero.compute() < cpu_only.compute());
    }

    #[test]
    fn gpu_jobs_cover_all_interactions() {
        let e = engine_with_lists(2000, 32);
        let jobs = build_gpu_jobs(e.tree(), e.lists());
        let job_pairs: u64 = jobs.iter().map(P2pJob::interactions).sum();
        // Jobs count the diagonal (p_t × p_t includes self pairs), counts
        // exclude it.
        let diag: u64 = e
            .tree()
            .active_leaves()
            .iter()
            .filter(|&&id| !e.lists().p2p[id as usize].is_empty())
            .map(|&id| e.tree().node(id).count() as u64)
            .sum();
        assert_eq!(job_pairs, e.counts().p2p_interactions + diag);
    }

    #[test]
    fn task_graph_mirrors_op_counts() {
        let e = engine_with_lists(1500, 24);
        let f = flops_of(&e);
        let graph = build_task_graph(e.tree(), e.lists(), &f, false);
        let c = e.counts();
        let expect_work = f.p2m_per_body * c.p2m_bodies as f64
            + f.m2m * c.m2m_ops as f64
            + f.m2l * c.m2l_ops as f64
            + f.l2l * c.l2l_ops as f64
            + f.l2p_per_body * c.l2p_bodies as f64;
        assert!(
            (graph.total_work() - expect_work).abs() < 1e-9 * expect_work,
            "graph work {} vs counted {}",
            graph.total_work(),
            expect_work
        );
    }

    #[test]
    fn deeper_trees_have_longer_critical_paths() {
        use sched_sim::critical_path;
        let shallow = engine_with_lists(3000, 512);
        let deep = engine_with_lists(3000, 8);
        let f = flops_of(&shallow);
        let g_shallow = build_task_graph(shallow.tree(), shallow.lists(), &f, false);
        let g_deep = build_task_graph(deep.tree(), deep.lists(), &f, false);
        assert!(g_deep.len() > g_shallow.len());
        assert!(critical_path(&g_deep) > 0.0 && critical_path(&g_shallow) > 0.0);
    }

    #[test]
    fn parallel_rate_bounded_by_cores() {
        let e = engine_with_lists(4000, 32);
        let f = flops_of(&e);
        for cores in [1usize, 4, 10] {
            let r = time_step(e.tree(), e.lists(), &f, &HeteroNode::system_a(cores, 1)).unwrap();
            let pr = r.parallel_rate();
            assert!(
                pr >= 1.0 && pr <= cores as f64 + 1e-9,
                "cores={cores}: rate {pr}"
            );
        }
    }

    #[test]
    fn timing_deterministic() {
        let e = engine_with_lists(2500, 40);
        let f = flops_of(&e);
        let node = HeteroNode::system_a(10, 4);
        let a = time_step(e.tree(), e.lists(), &f, &node).unwrap();
        let b = time_step(e.tree(), e.lists(), &f, &node).unwrap();
        assert_eq!(a.t_cpu, b.t_cpu);
        assert_eq!(a.t_gpu, b.t_gpu);
    }

    #[test]
    fn empty_tree_times_to_zero() {
        let mut e = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &[], 8);
        e.refresh_lists();
        let f = flops_of(&e);
        let r = time_step(e.tree(), e.lists(), &f, &HeteroNode::system_a(4, 2)).unwrap();
        assert_eq!(r.t_cpu, 0.0);
        assert_eq!(r.t_gpu, 0.0);
        assert_eq!(r.compute(), 0.0);
    }
}

#[cfg(test)]
mod offload_tests {
    use super::*;
    use crate::config::{FmmParams, HeteroNode};
    use crate::engine::FmmEngine;
    use fmm_math::{GravityKernel, Kernel};
    use nbody::plummer;

    #[test]
    fn offload_moves_pl_work_between_devices() {
        let b = plummer(20_000, 1.0, 1.0, 211);
        let mut e = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &b.pos, 128);
        e.refresh_lists();
        let flops = e.kernel.op_flops(e.expansion_ops());
        let node = HeteroNode::system_a(4, 4);
        let base = time_step(e.tree(), e.lists(), &flops, &node).unwrap();
        let off = time_step_policy(
            e.tree(),
            e.lists(),
            &flops,
            &node,
            ExecPolicy {
                offload_pl: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(off.t_cpu < base.t_cpu, "P2M/L2P must leave the CPU DAG");
        assert!(off.t_gpu > base.t_gpu, "...and land on the GPUs");
    }

    #[test]
    fn offload_helps_cpu_starved_configs() {
        // The paper's §VIII.E scenario, at its sharpest: a badly CPU-starved
        // node (2 cores, 8 GPUs) is pinned by the per-body P2M/L2P floor at
        // its optimum; moving that work to the GPUs must lower the best
        // achievable compute time.
        let b = plummer(50_000, 1.0, 1.0, 212);
        let mut e = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &b.pos, 128);
        let flops = e.kernel.op_flops(e.expansion_ops());
        let node = HeteroNode::system_a(2, 8);
        let mut best_base = f64::INFINITY;
        let mut best_off = f64::INFINITY;
        let mut s = 64usize;
        while s <= 4096 {
            e.rebuild(&b.pos, s);
            e.refresh_lists();
            let base = time_step(e.tree(), e.lists(), &flops, &node)
                .unwrap()
                .compute();
            let off = time_step_policy(
                e.tree(),
                e.lists(),
                &flops,
                &node,
                ExecPolicy {
                    offload_pl: true,
                    ..Default::default()
                },
            )
            .unwrap()
            .compute();
            best_base = best_base.min(base);
            best_off = best_off.min(off);
            s *= 2;
        }
        assert!(
            best_off < 0.97 * best_base,
            "offload should help the unbalanced node: {best_off} !< 0.97 * {best_base}"
        );
    }

    #[test]
    fn offload_noop_without_gpus() {
        let b = plummer(2000, 1.0, 1.0, 213);
        let mut e = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &b.pos, 32);
        e.refresh_lists();
        let flops = e.kernel.op_flops(e.expansion_ops());
        let node = HeteroNode::serial();
        let base = time_step(e.tree(), e.lists(), &flops, &node).unwrap();
        let off = time_step_policy(
            e.tree(),
            e.lists(),
            &flops,
            &node,
            ExecPolicy {
                offload_pl: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(base.t_cpu, off.t_cpu);
        assert_eq!(base.t_gpu, off.t_gpu);
    }
}

/// Makespans of the two far-field phases in isolation — the analysis view
/// behind the paper's Fig 3 discussion of where CPU time goes as S moves.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// P2M + M2M (upward sweep) alone on the virtual cores.
    pub upsweep: f64,
    /// L2L + M2L + L2P (downward sweep) alone on the virtual cores.
    pub downsweep: f64,
}

/// Time the upward and downward sweeps separately (each as its own task
/// DAG with the paper's dependency structure). The full CPU time of
/// [`time_step`] is bracketed by `max(upsweep, downsweep)` and their sum.
pub fn phase_times(
    tree: &Octree,
    lists: &InteractionLists,
    flops: &OpFlops,
    node: &HeteroNode,
) -> PhaseTimes {
    if tree.node(Octree::ROOT).count() == 0 {
        return PhaseTimes::default();
    }
    let cfg = node.cpu.to_sim_config();

    let mut up = TaskGraph::with_capacity(tree.num_nodes());
    add_upsweep(&mut up, tree, flops, true, Octree::ROOT);
    let upsweep = simulate(&up, &cfg).makespan;

    let mut down = TaskGraph::with_capacity(tree.num_nodes());
    let start = down.add(0.0, Vec::new());
    add_downsweep(
        &mut down,
        tree,
        lists,
        flops,
        false,
        true,
        Octree::ROOT,
        start,
    );
    let downsweep = simulate(&down, &cfg).makespan;

    PhaseTimes { upsweep, downsweep }
}

#[cfg(test)]
mod phase_tests {
    use super::*;
    use crate::config::{FmmParams, HeteroNode};
    use crate::engine::FmmEngine;
    use fmm_math::{GravityKernel, Kernel};

    #[test]
    fn phases_bracket_full_cpu_time() {
        let b = nbody::plummer(8000, 1.0, 1.0, 221);
        let mut e = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &b.pos, 64);
        e.refresh_lists();
        let flops = e.kernel.op_flops(e.expansion_ops());
        let node = HeteroNode::system_a(10, 2);
        let full = time_step(e.tree(), e.lists(), &flops, &node).unwrap().t_cpu;
        let p = phase_times(e.tree(), e.lists(), &flops, &node);
        assert!(p.upsweep > 0.0 && p.downsweep > 0.0);
        assert!(
            full >= p.upsweep.max(p.downsweep) * 0.999,
            "{full} vs {p:?}"
        );
        assert!(full <= (p.upsweep + p.downsweep) * 1.001, "{full} vs {p:?}");
        // The downsweep carries the M2L bulk; it must dominate at small S.
        assert!(p.downsweep > p.upsweep);
    }

    #[test]
    fn empty_tree_has_zero_phases() {
        let mut e = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &[], 8);
        e.refresh_lists();
        let flops = e.kernel.op_flops(e.expansion_ops());
        let p = phase_times(e.tree(), e.lists(), &flops, &HeteroNode::serial());
        assert_eq!(p.upsweep, 0.0);
        assert_eq!(p.downsweep, 0.0);
    }
}

#[cfg(test)]
mod xray_tests {
    use super::*;
    use crate::config::{FmmParams, HeteroNode};
    use crate::engine::FmmEngine;
    use fmm_math::{GravityKernel, Kernel};

    fn engine(n: usize) -> FmmEngine<GravityKernel> {
        let b = nbody::plummer(n, 1.0, 1.0, 231);
        let mut e = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &b.pos, 48);
        e.refresh_lists();
        e
    }

    fn xray(e: &FmmEngine<GravityKernel>, node: &HeteroNode) -> Box<SchedXray> {
        let f = e.kernel.op_flops(e.expansion_ops());
        let policy = ExecPolicy {
            mode: SchedMode::Dag,
            trace: true,
            ..Default::default()
        };
        time_step_policy(e.tree(), e.lists(), &f, node, policy)
            .unwrap()
            .sched
            .expect("trace + Dag must yield an x-ray")
    }

    #[test]
    fn xray_present_only_under_dag_trace() {
        let e = engine(2000);
        let f = e.kernel.op_flops(e.expansion_ops());
        let node = HeteroNode::system_a(10, 4);
        for (mode, trace) in [
            (SchedMode::Barrier, false),
            (SchedMode::Barrier, true),
            (SchedMode::Dag, false),
        ] {
            let policy = ExecPolicy {
                mode,
                trace,
                ..Default::default()
            };
            let r = time_step_policy(e.tree(), e.lists(), &f, &node, policy).unwrap();
            assert!(r.sched.is_none(), "{mode:?} trace={trace} must not trace");
        }
        assert!(!xray(&e, &node).tasks.is_empty());
    }

    #[test]
    fn xray_is_observational() {
        // Same schedule with and without the x-ray: identical timing.
        let e = engine(2500);
        let f = e.kernel.op_flops(e.expansion_ops());
        let node = HeteroNode::system_a(10, 4);
        let dag = ExecPolicy {
            mode: SchedMode::Dag,
            ..Default::default()
        };
        let plain = time_step_policy(e.tree(), e.lists(), &f, &node, dag).unwrap();
        let traced = time_step_policy(
            e.tree(),
            e.lists(),
            &f,
            &node,
            ExecPolicy { trace: true, ..dag },
        )
        .unwrap();
        assert_eq!(plain.t_cpu, traced.t_cpu);
        assert_eq!(plain.t_gpu, traced.t_gpu);
        assert_eq!(plain.cpu_work_seconds, traced.cpu_work_seconds);
    }

    #[test]
    fn xray_reconciles_and_fractions_sum_to_one() {
        let e = engine(3000);
        for (cores, gpus) in [(10usize, 4usize), (10, 1), (4, 0)] {
            let x = xray(&e, &HeteroNode::system_a(cores, gpus));
            let a = &x.analysis;
            let makespan = a.makespan;
            assert!(!a.crit_truncated);
            assert!(
                (a.crit_sum - makespan).abs() <= 1e-9 * makespan.max(1e-12),
                "{cores}C{gpus}G: crit sum {} vs makespan {makespan}",
                a.crit_sum
            );
            let families = [
                a.crit_cpu_frac + a.crit_gpu_frac,
                a.dependency_frac + a.resource_cpu_frac + a.resource_gpu_frac,
                x.crit_phase_frac.iter().sum::<f64>(),
            ];
            for (i, sum) in families.iter().enumerate() {
                assert!(
                    (sum - 1.0).abs() < 1e-9,
                    "{cores}C{gpus}G family {i}: {sum}"
                );
            }
            assert_eq!(x.cores, cores);
            assert_eq!(x.gpu_lanes, gpus);
            assert_eq!(x.gpu_lane_util.len(), gpus);
            assert!(x.gpu_lane_util.iter().all(|&u| (0.0..=1.0).contains(&u)));
        }
    }

    #[test]
    fn xray_telemetry_events_match_payload() {
        let e = engine(2000);
        let x = xray(&e, &HeteroNode::system_a(10, 4));
        let rec = telemetry::Recorder::enabled();
        record_sched_xray(&rec, &x);
        let tasks = rec.events_named("sched.task");
        let lanes = rec.events_named("sched.lane");
        let crit = rec.events_named("sched.critpath");
        assert_eq!(tasks.len(), x.tasks.len());
        assert_eq!(lanes.len(), x.cores + x.gpu_lanes);
        assert_eq!(crit.len(), 1);
        // On-path slices carry contiguous `crit` indices 0..len.
        let mut on_path: Vec<i64> = tasks
            .iter()
            .filter_map(|r| r.field_i64("crit"))
            .filter(|&c| c >= 0)
            .collect();
        on_path.sort_unstable();
        let len = crit[0].field_u64("len").unwrap() as usize;
        assert_eq!(on_path.len(), len);
        assert!(on_path.iter().enumerate().all(|(i, &c)| c == i as i64));
        // The summary's reconciliation pair survives the round-trip.
        let sum = crit[0].field_f64("sum").unwrap();
        let makespan = crit[0].field_f64("makespan").unwrap();
        assert!((sum - makespan).abs() <= 1e-9 * makespan.max(1e-12));
        let util: Vec<f64> = lanes
            .iter()
            .filter(|r| r.field_bool("gpu") == Some(true))
            .filter_map(|r| r.field_f64("util"))
            .collect();
        assert_eq!(util.len(), x.gpu_lane_util.len());
        for (a, b) in util.iter().zip(&x.gpu_lane_util) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
