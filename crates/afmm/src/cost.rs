use crate::config::HeteroNode;
use crate::exec::TimingReport;
use fmm_math::OpFlops;
use octree::OpCounts;

/// Predicted step times for a (possibly hypothetical) tree, from the
/// observational cost model: `T = Σ_op M(op) · C(op)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Prediction {
    pub t_cpu: f64,
    pub t_gpu: f64,
}

impl Prediction {
    /// Predicted compute time, `max(CPU, GPU)`.
    pub fn compute(&self) -> f64 {
        self.t_cpu.max(self.t_gpu)
    }

    /// Does the CPU dominate the predicted cost?
    pub fn cpu_dominant(&self) -> bool {
        self.t_cpu >= self.t_gpu
    }

    /// Pair this prediction with the realized step timing into an audit
    /// record — the honesty check on the observational model.
    pub fn audit(
        &self,
        step: u64,
        observed: &TimingReport,
        acted: bool,
    ) -> telemetry::PredictionAudit {
        telemetry::PredictionAudit {
            step,
            pred_cpu: self.t_cpu,
            pred_gpu: self.t_gpu,
            actual_cpu: observed.t_cpu,
            actual_gpu: observed.t_gpu,
            acted,
        }
    }
}

/// The paper's observational cost model (§IV.D).
///
/// Coefficients are *derived from realized times*, not predicted: after each
/// solve, [`CostModel::observe`] divides per-operation time by the operation
/// count. CPU coefficients are expressed in **core-seconds per application**
/// ("a single value that encompasses the collective effects of CPU speed,
/// the number of cores, memory speed and the number of retained terms");
/// the observed effective parallelism converts work back to wall time. The
/// GPU coefficient divides the **maximum kernel time** by the **total P2P
/// interactions over all GPUs** — a whole-system efficiency number that
/// shifts with warp occupancy as the tree changes, exactly as in the paper.
#[derive(Clone, Copy, Debug, Default)]
pub struct CostModel {
    /// CPU core-seconds per body expanded (P2M).
    pub c_p2m: f64,
    /// CPU core-seconds per multipole translation (M2M).
    pub c_m2m: f64,
    /// CPU core-seconds per multipole-to-local translation (M2L).
    pub c_m2l: f64,
    /// CPU core-seconds per local translation (L2L).
    pub c_l2l: f64,
    /// CPU core-seconds per body evaluated (L2P).
    pub c_l2p: f64,
    /// CPU core-seconds per direct interaction (used when the node has no
    /// GPUs and P2P runs on the cores).
    pub c_cpu_pair: f64,
    /// CPU core-seconds of task-runtime overhead per non-empty node (one
    /// upsweep + one downsweep task each).
    pub c_node: f64,
    /// Observed effective parallelism of the far-field phase
    /// (core-equivalents, ≥ 1).
    pub parallel_rate: f64,
    /// GPU-system seconds per direct interaction: max kernel time divided by
    /// total interactions over all GPUs.
    pub c_gpu_pair: f64,
    observed: bool,
}

impl CostModel {
    pub fn new() -> Self {
        CostModel {
            parallel_rate: 1.0,
            ..Default::default()
        }
    }

    /// Have coefficients been observed yet (at least one solve)?
    pub fn is_observed(&self) -> bool {
        self.observed
    }

    /// Restore the observation flag on a model rebuilt from a checkpoint
    /// (the coefficients themselves are public fields).
    pub fn set_observed(&mut self, observed: bool) {
        self.observed = observed;
    }

    /// Derive coefficients from a realized solve: its operation counts and
    /// its virtual-node timing.
    pub fn observe(
        &mut self,
        counts: &OpCounts,
        timing: &TimingReport,
        flops: &OpFlops,
        node: &HeteroNode,
    ) {
        // Per-op core time: total time spent on the op over all workers
        // divided by its count. On the virtual node every worker runs at the
        // same effective rate, so this reduces to flops/rate — but it is
        // still an *observation* of the realized execution (the rate already
        // folds in the memory model at the current core count).
        let eff = node.cpu.rate_flops * node.cpu.memory.rate_factor(node.cpu.cores);
        self.c_p2m = flops.p2m_per_body / eff;
        self.c_m2m = flops.m2m / eff;
        self.c_m2l = flops.m2l / eff;
        self.c_l2l = flops.l2l / eff;
        self.c_l2p = flops.l2p_per_body / eff;
        self.c_cpu_pair = flops.p2p_per_pair / eff;
        self.c_node = 2.0 * node.cpu.task_overhead_s;
        self.parallel_rate = timing.parallel_rate();
        if timing.gpu.is_some() && counts.p2p_interactions > 0 {
            self.c_gpu_pair = timing.t_gpu / counts.p2p_interactions as f64;
        }
        self.observed = true;
    }

    /// Far-field CPU work in core-seconds for the given counts.
    fn far_field_core_seconds(&self, counts: &OpCounts) -> f64 {
        self.c_p2m * counts.p2m_bodies as f64
            + self.c_m2m * counts.m2m_ops as f64
            + self.c_m2l * counts.m2l_ops as f64
            + self.c_l2l * counts.l2l_ops as f64
            + self.c_l2p * counts.l2p_bodies as f64
            + self.c_node * counts.active_nodes as f64
    }

    /// Predict the CPU/GPU times of a tree with the given operation counts
    /// — the paper's "decisions on whether a tree modification would be
    /// desirable can be made without having to perform a full FMM solve".
    pub fn predict(&self, counts: &OpCounts, node: &HeteroNode) -> Prediction {
        let mut cpu_work = self.far_field_core_seconds(counts);
        let t_gpu;
        if node.gpus.is_some() {
            t_gpu = self.c_gpu_pair * counts.p2p_interactions as f64;
        } else {
            t_gpu = 0.0;
            cpu_work += self.c_cpu_pair * counts.p2p_interactions as f64;
        }
        Prediction {
            t_cpu: cpu_work / self.parallel_rate.max(1.0),
            t_gpu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FmmParams, HeteroNode};
    use crate::engine::FmmEngine;
    use crate::exec::time_step;
    use fmm_math::{GravityKernel, Kernel};
    use nbody::plummer;

    fn observed_model(
        n: usize,
        s: usize,
        node: &HeteroNode,
    ) -> (CostModel, OpCounts, TimingReport, FmmEngine<GravityKernel>) {
        let b = plummer(n, 1.0, 1.0, 301);
        let mut e = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &b.pos, s);
        let counts = e.refresh_lists();
        let flops = e.kernel.op_flops(e.expansion_ops());
        let timing = time_step(e.tree(), e.lists(), &flops, node).unwrap();
        let mut model = CostModel::new();
        model.observe(&counts, &timing, &flops, node);
        (model, counts, timing, e)
    }

    #[test]
    fn prediction_matches_realized_times_on_same_tree() {
        // The model is self-consistent: predicting the very tree it was
        // observed on reproduces the realized GPU time exactly and the CPU
        // time up to task-overhead effects it does not track.
        let node = HeteroNode::system_a(10, 2);
        let (model, counts, timing, _e) = observed_model(4000, 48, &node);
        let pred = model.predict(&counts, &node);
        assert!((pred.t_gpu - timing.t_gpu).abs() < 1e-12 * timing.t_gpu.max(1e-30));
        let rel = (pred.t_cpu - timing.t_cpu).abs() / timing.t_cpu;
        assert!(rel < 0.05, "CPU prediction off by {rel}");
    }

    #[test]
    fn prediction_tracks_local_tree_modification() {
        // Observe on one tree, apply a batch of local PushDowns (the change
        // FineGrainedOptimize makes), predict, then check against the
        // realized times of the modified tree. The GPU coefficient is held
        // across the change (the paper's approximation), so it carries the
        // pre-modification warp efficiency — good for local changes.
        let node = HeteroNode::system_a(10, 2);
        let (model, _c, _t, mut e) = observed_model(4000, 48, &node);
        let mut heavy: Vec<_> = e.tree().active_leaves();
        heavy.sort_by_key(|&id| std::cmp::Reverse(e.tree().node(id).count()));
        for id in heavy.into_iter().take(10) {
            e.tree_mut().push_down(id);
        }
        let counts = e.refresh_lists();
        let flops = e.kernel.op_flops(e.expansion_ops());
        let real = time_step(e.tree(), e.lists(), &flops, &node).unwrap();
        let pred = model.predict(&counts, &node);
        let cpu_rel = (pred.t_cpu - real.t_cpu).abs() / real.t_cpu;
        let gpu_rel = (pred.t_gpu - real.t_gpu).abs() / real.t_gpu;
        assert!(cpu_rel < 0.25, "CPU prediction error {cpu_rel}");
        assert!(gpu_rel < 0.5, "GPU prediction error {gpu_rel}");
    }

    #[test]
    fn cpu_only_prediction_includes_p2p() {
        let node = HeteroNode::serial();
        let (model, counts, timing, _e) = observed_model(1500, 32, &node);
        let pred = model.predict(&counts, &node);
        assert_eq!(pred.t_gpu, 0.0);
        let rel = (pred.t_cpu - timing.t_cpu).abs() / timing.t_cpu;
        assert!(rel < 0.05, "serial prediction off by {rel}");
    }

    #[test]
    fn bigger_s_predicts_more_gpu_less_cpu() {
        let node = HeteroNode::system_a(10, 2);
        let (model, _c, _t, mut e) = observed_model(4000, 32, &node);
        let b = plummer(4000, 1.0, 1.0, 301);
        e.rebuild(&b.pos, 24);
        let fine = e.refresh_lists();
        e.rebuild(&b.pos, 256);
        let coarse = e.refresh_lists();
        let p_fine = model.predict(&fine, &node);
        let p_coarse = model.predict(&coarse, &node);
        assert!(p_coarse.t_gpu > p_fine.t_gpu);
        assert!(p_coarse.t_cpu < p_fine.t_cpu);
    }

    #[test]
    fn unobserved_model_predicts_zero() {
        let model = CostModel::new();
        assert!(!model.is_observed());
        let pred = model.predict(&OpCounts::default(), &HeteroNode::serial());
        assert_eq!(pred.compute(), 0.0);
    }
}
