use crate::config::{FmmParams, HeteroNode};
use crate::exec::{time_step_with_jobs_policy, ExecPolicy, TimingReport};
use crate::plan::ExecutionPlan;
use fmm_math::{DerivScratch, ExpansionOps, Kernel, OpFlops};
use geom::Vec3;
use octree::{
    build_adaptive, build_adaptive_in_cube, BuildParams, EnforceOutcome, InteractionLists, NodeId,
    Octree, OpCounts, PlanRefresh, NONE,
};
use rayon::prelude::*;

/// What [`FmmEngine::lists`] hands out before any plan exists.
static EMPTY_LISTS: InteractionLists = InteractionLists {
    m2l: Vec::new(),
    p2p: Vec::new(),
};

/// Result of one FMM solve, in **original body order**: a potential-like
/// scalar and a vector field per body (acceleration for gravity, velocity
/// for Stokes flow; G / 1/(8πμ) prefactors are the kernel's business).
#[derive(Clone, Debug)]
pub struct FmmSolution {
    pub pot: Vec<f64>,
    pub field: Vec<Vec3>,
}

/// The adaptive-FMM engine: owns the spatial decomposition and all expansion
/// storage, and runs the paper's six operations (P2M, M2M, M2L, L2L, L2P,
/// P2P) over it.
///
/// The engine separates *physics* from *clock*: [`FmmEngine::solve`]
/// computes exact (to expansion order) interactions on the host with rayon
/// data parallelism, while the `exec` module derives the virtual
/// heterogeneous-node times for the same tree + interaction lists. The
/// numbers the load balancer reacts to come from the latter.
///
/// Far-field execution is level-synchronous: each level's nodes are
/// processed in parallel (disjoint writes), levels deep→shallow for the
/// upsweep and shallow→deep for the downsweep. This is numerically identical
/// to the paper's recursive task version; the *task-DAG shape* of the
/// recursive version (which determines parallel makespan) is what the
/// virtual executor models.
pub struct FmmEngine<K: Kernel> {
    pub kernel: K,
    params: FmmParams,
    ops: ExpansionOps,
    tree: Octree,
    /// Fixed simulation cube, if the workload pins one.
    domain: Option<(Vec3, f64)>,
    // Tree-ordered buffers (index i = tree-order position i).
    pos_t: Vec<Vec3>,
    str_t: Vec<f64>,
    pot_t: Vec<f64>,
    out_t: Vec<Vec3>,
    // Expansion storage, node-major: node id × channel × coefficient.
    multipoles: Vec<f64>,
    locals: Vec<f64>,
    /// The persistent execution plan: interaction lists, op counts and GPU
    /// jobs, built lazily and *patched* across tree edits that go through
    /// the plan-aware APIs ([`FmmEngine::apply_collapse`],
    /// [`FmmEngine::enforce_s`], ...).
    plan: Option<ExecutionPlan>,
    /// Set whenever the tree may have changed behind the plan's back
    /// ([`FmmEngine::tree_mut`], [`FmmEngine::rebuild`]); the next refresh
    /// then rebuilds the plan instead of trusting its incremental state.
    plan_stale: bool,
    /// Telemetry handle, shared with the plan; disabled by default.
    rec: telemetry::Recorder,
    /// How [`FmmEngine::time_step`] schedules the virtual solve (Barrier
    /// oracle by default; Dag for dependency-driven pipelining). Physics
    /// ([`FmmEngine::solve`]) never consults this — forces are identical
    /// under every policy.
    exec_policy: ExecPolicy,
}

impl<K: Kernel> FmmEngine<K> {
    /// Build an engine whose root cube is fitted to the initial positions.
    pub fn new(kernel: K, params: FmmParams, pos: &[Vec3], s: usize) -> Self {
        let tree = build_adaptive(pos, Self::build_params(&params, s));
        Self::from_tree(kernel, params, tree, None)
    }

    /// Build an engine with a **fixed** simulation cube (the paper's
    /// time-dependent setups): rebuilds keep the same root cube.
    pub fn with_domain(
        kernel: K,
        params: FmmParams,
        pos: &[Vec3],
        s: usize,
        center: Vec3,
        half_width: f64,
    ) -> Self {
        let tree = build_adaptive_in_cube(pos, Self::build_params(&params, s), center, half_width);
        Self::from_tree(kernel, params, tree, Some((center, half_width)))
    }

    /// Build an engine over the classic **uniform** fixed-depth
    /// decomposition (the original FMM the paper contrasts against). All
    /// solver machinery is decomposition-agnostic, so this engine computes
    /// identical physics — it just cannot adapt its leaves.
    pub fn new_uniform(kernel: K, params: FmmParams, pos: &[Vec3], depth: u16) -> Self {
        let tree = octree::build_uniform(pos, depth, 1e-6);
        Self::from_tree(kernel, params, tree, None)
    }

    fn build_params(params: &FmmParams, s: usize) -> BuildParams {
        BuildParams {
            s,
            max_level: params.max_level,
            pad: 1e-6,
        }
    }

    fn from_tree(kernel: K, params: FmmParams, tree: Octree, domain: Option<(Vec3, f64)>) -> Self {
        let ops = ExpansionOps::new(params.order);
        FmmEngine {
            kernel,
            params,
            ops,
            tree,
            domain,
            pos_t: Vec::new(),
            str_t: Vec::new(),
            pot_t: Vec::new(),
            out_t: Vec::new(),
            multipoles: Vec::new(),
            locals: Vec::new(),
            plan: None,
            plan_stale: true,
            rec: telemetry::Recorder::disabled(),
            exec_policy: ExecPolicy::default(),
        }
    }

    /// Set the execution policy [`FmmEngine::time_step`] schedules under.
    pub fn set_exec_policy(&mut self, policy: ExecPolicy) {
        self.exec_policy = policy;
    }

    /// The engine's current execution policy.
    pub fn exec_policy(&self) -> ExecPolicy {
        self.exec_policy
    }

    /// Attach a telemetry recorder. Solve-phase wall spans are emitted
    /// through it, and the execution plan (current and future) reports its
    /// patch/rebuild activity to the same handle.
    pub fn set_recorder(&mut self, rec: telemetry::Recorder) {
        if let Some(plan) = self.plan.as_mut() {
            plan.set_recorder(rec.clone());
        }
        self.rec = rec;
    }

    /// The engine's telemetry handle (disabled unless
    /// [`FmmEngine::set_recorder`] installed one).
    pub fn recorder(&self) -> &telemetry::Recorder {
        &self.rec
    }

    pub fn params(&self) -> &FmmParams {
        &self.params
    }

    pub fn expansion_ops(&self) -> &ExpansionOps {
        &self.ops
    }

    pub fn tree(&self) -> &Octree {
        &self.tree
    }

    /// Raw mutable tree access. Any edit made through this handle happens
    /// behind the plan's back, so it marks the plan stale (next refresh is a
    /// full rebuild). Prefer [`FmmEngine::apply_collapse`] /
    /// [`FmmEngine::apply_push_down`] / [`FmmEngine::enforce_s`], which keep
    /// the plan alive by patching it.
    pub fn tree_mut(&mut self) -> &mut Octree {
        self.plan_stale = true;
        &mut self.tree
    }

    /// Interaction lists of the current plan (most recent
    /// [`FmmEngine::solve`] / [`FmmEngine::refresh_lists`]).
    pub fn lists(&self) -> &InteractionLists {
        match &self.plan {
            Some(p) => p.lists(),
            None => &EMPTY_LISTS,
        }
    }

    /// Operation counts of the current plan.
    pub fn counts(&self) -> OpCounts {
        self.plan
            .as_ref()
            .map(ExecutionPlan::counts)
            .unwrap_or_default()
    }

    /// Is there a plan whose incremental state is trusted (no untracked
    /// tree edits since it was built)? The balancer uses this to decide
    /// whether a probe can take the cheap patch path.
    pub fn has_live_plan(&self) -> bool {
        self.plan.is_some() && !self.plan_stale
    }

    /// Rebuild the decomposition from scratch at leaf capacity `s` (the
    /// paper's Search state does this every step).
    pub fn rebuild(&mut self, pos: &[Vec3], s: usize) {
        let bp = Self::build_params(&self.params, s);
        self.tree = match self.domain {
            Some((c, hw)) => build_adaptive_in_cube(pos, bp, c, hw),
            None => build_adaptive(pos, bp),
        };
        self.plan_stale = true;
    }

    /// Re-sort moved bodies into the unchanged tree structure. The plan
    /// stays alive: leaf populations moved but the traversal structure did
    /// not, so the next refresh patches counts instead of re-traversing.
    pub fn rebin(&mut self, pos: &[Vec3]) {
        self.tree.rebin(pos);
    }

    /// Change the leaf capacity the *current* tree enforces, without
    /// rebuilding ([`FmmEngine::enforce_s`] then restores the invariant by
    /// local edits).
    pub fn set_s(&mut self, s: usize) {
        self.tree.set_s_value(s);
    }

    /// Collapse node `id`, patching the plan through the edit when one is
    /// live. Returns false when the collapse is a no-op.
    pub fn apply_collapse(&mut self, id: NodeId) -> bool {
        if self.has_live_plan() {
            let mut plan = self.plan.take().expect("checked live");
            let did = plan.apply_collapse(&mut self.tree, id);
            self.plan = Some(plan);
            did
        } else {
            self.plan_stale = true;
            self.tree.collapse(id)
        }
    }

    /// Push down node `id`, patching the plan through the edit when one is
    /// live. Returns false when the push-down is refused.
    pub fn apply_push_down(&mut self, id: NodeId) -> bool {
        if self.has_live_plan() {
            let mut plan = self.plan.take().expect("checked live");
            let did = plan.apply_push_down(&mut self.tree, id);
            self.plan = Some(plan);
            did
        } else {
            self.plan_stale = true;
            self.tree.push_down(id)
        }
    }

    /// The paper's Enforce_S through the plan: identical walk and decisions
    /// as [`Octree::enforce_s`], but each collapse/push-down patches the
    /// live plan instead of invalidating it. The boolean reports whether
    /// the patch path was taken (false = no live plan; the tree-level
    /// enforce ran and the plan went stale).
    pub fn enforce_s(&mut self) -> (EnforceOutcome, bool) {
        if !self.has_live_plan() {
            self.plan_stale = true;
            return (self.tree.enforce_s(), false);
        }
        let mut plan = self.plan.take().expect("checked live");
        let s = self.tree.s_value();
        let mut out = EnforceOutcome::default();
        let mut stack = vec![Octree::ROOT];
        while let Some(id) = stack.pop() {
            let n = *self.tree.node(id);
            if !n.is_leaf() {
                if n.count() < s {
                    plan.apply_collapse(&mut self.tree, id);
                    out.collapses += 1;
                } else {
                    for o in 0..8 {
                        stack.push(n.first_child + o);
                    }
                }
            } else if n.count() > s && plan.apply_push_down(&mut self.tree, id) {
                out.pushdowns += 1;
                let first = self.tree.node(id).first_child;
                for o in 0..8 {
                    stack.push(first + o);
                }
            }
        }
        self.plan = Some(plan);
        (out, true)
    }

    /// Bring the plan in sync with the current tree: full (re)build when no
    /// trusted plan exists, otherwise a cheap count reconciliation
    /// ([`ExecutionPlan::refresh_counts`]).
    pub fn refresh_plan(&mut self) -> PlanRefresh {
        match self.plan.as_mut() {
            Some(plan) if !self.plan_stale => plan.refresh_counts(&self.tree),
            Some(plan) => {
                plan.rebuild(&self.tree);
                self.plan_stale = false;
                PlanRefresh::Rebuilt
            }
            None => {
                let mut plan = ExecutionPlan::build(&self.tree, self.params.mac);
                plan.set_recorder(self.rec.clone());
                self.plan = Some(plan);
                self.plan_stale = false;
                PlanRefresh::Rebuilt
            }
        }
    }

    /// Refresh the plan and return its operation counts — the
    /// tree-dependent half of the paper's time prediction ("a count for the
    /// number of times each operation will be performed for the given tree
    /// is accumulated").
    pub fn refresh_lists(&mut self) -> OpCounts {
        self.refresh_plan();
        self.counts()
    }

    /// Time one virtual solve of the current tree on `node`, reusing the
    /// plan's cached interaction lists and GPU job list (regenerated only
    /// if a tree edit invalidated them), scheduled under the engine's
    /// [`ExecPolicy`] (see [`FmmEngine::set_exec_policy`]).
    pub fn time_step(
        &mut self,
        flops: &OpFlops,
        node: &HeteroNode,
    ) -> Result<TimingReport, crate::Error> {
        self.refresh_plan();
        let plan = self.plan.as_mut().expect("plan refreshed above");
        plan.ensure_jobs(&self.tree);
        time_step_with_jobs_policy(
            &self.tree,
            plan.lists(),
            plan.jobs(),
            flops,
            node,
            self.exec_policy,
        )
    }

    // ---- resilience: audits, checkpointing, chaos hooks ----

    /// Verify the octree's structural invariants (root coverage, order
    /// permutation, child tiling/levels/geometry).
    pub fn audit_tree(&self) -> Result<(), crate::Error> {
        self.tree
            .check_invariants()
            .map_err(|detail| crate::Error::AuditFailed {
                what: "tree",
                detail,
            })
    }

    /// Verify the live plan's invariants (inverse-list symmetry, per-node
    /// `OpCounts` consistency, stamp/epoch monotonicity, population
    /// snapshot). A missing or stale plan passes vacuously — nothing cached
    /// is being trusted.
    pub fn audit_plan(&self) -> Result<(), crate::Error> {
        match &self.plan {
            Some(plan) if !self.plan_stale => {
                plan.audit(&self.tree)
                    .map_err(|detail| crate::Error::AuditFailed {
                        what: "plan",
                        detail,
                    })
            }
            _ => Ok(()),
        }
    }

    /// Verify every body coordinate is finite — NaN positions silently
    /// poison Morton codes, rebins and every downstream float sum.
    pub fn audit_bodies(pos: &[Vec3]) -> Result<(), crate::Error> {
        for (i, p) in pos.iter().enumerate() {
            if !(p.x.is_finite() && p.y.is_finite() && p.z.is_finite()) {
                return Err(crate::Error::AuditFailed {
                    what: "bodies",
                    detail: format!("body {i} has non-finite coordinates {p:?}"),
                });
            }
        }
        Ok(())
    }

    /// Structural heap footprint of everything the engine owns: the tree,
    /// the live plan (when one exists), and the solve scratch buffers
    /// (tree-ordered gathers plus expansion storage), all at capacity
    /// granularity. The `mem.footprint` snapshot part reads this.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.tree.heap_bytes()
            + self.plan.as_ref().map_or(0, ExecutionPlan::heap_bytes)
            + self.pos_t.capacity() * size_of::<Vec3>()
            + self.str_t.capacity() * size_of::<f64>()
            + self.pot_t.capacity() * size_of::<f64>()
            + self.out_t.capacity() * size_of::<Vec3>()
            + self.multipoles.capacity() * size_of::<f64>()
            + self.locals.capacity() * size_of::<f64>()
    }

    /// Patch/refresh epoch of the live plan (`None` without one). The
    /// supervisor tracks this across steps to verify the plan clock never
    /// runs backwards.
    pub fn plan_epoch(&self) -> Option<u32> {
        match &self.plan {
            Some(plan) if !self.plan_stale => Some(plan.epoch()),
            _ => None,
        }
    }

    /// Capture the complete engine state for checkpointing. Scratch buffers
    /// (tree-ordered gathers, expansion storage) are excluded: every solve
    /// resizes and overwrites them in full, so they carry no state across
    /// steps. The plan's lists are captured *verbatim* — list order drives
    /// float-summation order, so a restored engine must not re-traverse.
    pub fn checkpoint_state(&self) -> crate::checkpoint::EngineSnapshot {
        crate::checkpoint::EngineSnapshot {
            params: self.params,
            domain: self.domain,
            tree: self.tree.snapshot(),
            plan: self
                .plan
                .as_ref()
                .filter(|_| !self.plan_stale)
                .map(ExecutionPlan::snapshot),
            plan_stale: self.plan_stale,
        }
    }

    /// Reconstruct an engine from a snapshot. The kernel is configuration
    /// (stateless), so the caller supplies it; everything stateful comes
    /// from the snapshot, validated on the way in.
    pub fn restore_state(
        kernel: K,
        snap: crate::checkpoint::EngineSnapshot,
    ) -> Result<Self, crate::Error> {
        let tree = Octree::from_snapshot(snap.tree).map_err(crate::Error::Checkpoint)?;
        let plan = match snap.plan {
            Some(ps) => {
                let plan = ExecutionPlan::from_snapshot(ps).map_err(crate::Error::Checkpoint)?;
                plan.audit(&tree).map_err(|detail| {
                    crate::Error::Checkpoint(format!("restored plan: {detail}"))
                })?;
                Some(plan)
            }
            None => None,
        };
        let plan_stale = snap.plan_stale || plan.is_none();
        let mut engine = Self::from_tree(kernel, snap.params, tree, snap.domain);
        engine.plan = plan;
        engine.plan_stale = plan_stale;
        Ok(engine)
    }

    /// Chaos-harness access to the live plan for corruption injection. This
    /// deliberately does *not* mark the plan stale — the whole point is to
    /// rot cached state behind the engine's back and prove the audits catch
    /// it. Returns `None` when there is no live plan to corrupt.
    pub fn plan_mut_for_chaos(&mut self) -> Option<&mut ExecutionPlan> {
        if self.plan_stale {
            return None;
        }
        self.plan.as_mut()
    }

    /// Run one full FMM solve: gather bodies into tree order, traverse,
    /// upsweep, downsweep, near field, scatter back.
    ///
    /// `strength` is flat with [`Kernel::strength_dim`] values per body, in
    /// original body order.
    pub fn solve(&mut self, pos: &[Vec3], strength: &[f64]) -> FmmSolution {
        self.try_solve(pos, strength)
            .expect("inconsistent solve inputs")
    }

    /// As [`FmmEngine::solve`], but reporting caller mistakes (body count
    /// or strength length out of sync with the tree) as [`crate::Error`]
    /// instead of panicking.
    pub fn try_solve(
        &mut self,
        pos: &[Vec3],
        strength: &[f64],
    ) -> Result<FmmSolution, crate::Error> {
        let n = pos.len();
        let sd = self.kernel.strength_dim();
        let ch = self.kernel.channels();
        let nt = self.ops.nterms();
        let stride = ch * nt;
        if n != self.tree.num_bodies() {
            return Err(crate::Error::BodyCountChanged {
                expected: self.tree.num_bodies(),
                got: n,
            });
        }
        if strength.len() != sd * n {
            return Err(crate::Error::StrengthLengthMismatch {
                expected: sd * n,
                got: strength.len(),
            });
        }

        self.refresh_lists();

        // Gather into tree order.
        let order = self.tree.order();
        self.pos_t.clear();
        self.pos_t.extend(order.iter().map(|&b| pos[b as usize]));
        self.str_t.clear();
        self.str_t.reserve(sd * n);
        for &b in order {
            let b = b as usize;
            self.str_t
                .extend_from_slice(&strength[sd * b..sd * (b + 1)]);
        }
        self.pot_t.clear();
        self.pot_t.resize(n, 0.0);
        self.out_t.clear();
        self.out_t.resize(n, Vec3::ZERO);

        let n_nodes = self.tree.num_nodes();
        self.multipoles.clear();
        self.multipoles.resize(n_nodes * stride, 0.0);
        self.locals.clear();
        self.locals.resize(n_nodes * stride, 0.0);

        if n > 0 {
            // One allocation scope over the three numeric phases: their
            // per-level update collects are inherent to collect-then-write,
            // so "phase" is measured (not zero-gated) by the memory
            // observatory, unlike "rebin"/"plan.refresh".
            let _mem = telemetry::AllocScope::enter("phase");
            {
                let mut span = self.rec.start_span("solve.upsweep");
                span.field("bodies", n);
                self.upsweep(stride);
            }
            {
                let _span = self.rec.start_span("solve.downsweep");
                self.downsweep(stride);
            }
            {
                let _span = self.rec.start_span("solve.near_field");
                self.near_field();
            }
        }

        // Scatter results back to original order.
        let mut pot = vec![0.0; n];
        let mut field = vec![Vec3::ZERO; n];
        for (i, &b) in self.tree.order().iter().enumerate() {
            pot[b as usize] = self.pot_t[i];
            field[b as usize] = self.out_t[i];
        }
        Ok(FmmSolution { pot, field })
    }

    /// P2M at the leaves, M2M up the levels (deep → shallow).
    fn upsweep(&mut self, stride: usize) {
        let levels = self.tree.levels();
        let kernel = &self.kernel;
        let ops = &self.ops;
        let tree = &self.tree;
        let pos_t = &self.pos_t;
        let str_t = &self.str_t;
        let sd = kernel.strength_dim();
        let ch = kernel.channels();
        for lv in levels.iter().rev() {
            // Each node at this level computes its expansion from bodies
            // (leaf) or already-finished children (deeper level): reads are
            // disjoint from this level's writes, so collect-then-write.
            let multipoles = &self.multipoles;
            let updates: Vec<(NodeId, Vec<f64>)> = lv
                .par_iter()
                .filter(|&&id| tree.node(id).count() > 0)
                .map_init(Vec::new, |pow, &id| {
                    let node = tree.node(id);
                    let mut m = vec![0.0; stride];
                    if node.is_leaf() {
                        let r = node.range();
                        kernel.p2m(
                            ops,
                            node.center,
                            &pos_t[r.clone()],
                            &str_t[sd * r.start..sd * r.end],
                            &mut m,
                            pow,
                        );
                    } else {
                        for c in tree.visible_children(id) {
                            let cn = tree.node(c);
                            if cn.count() == 0 {
                                continue;
                            }
                            let src = &multipoles[c as usize * stride..(c as usize + 1) * stride];
                            ops.m2m(src, cn.center - node.center, &mut m, ch, pow);
                        }
                    }
                    (id, m)
                })
                .collect();
            for (id, m) in updates {
                let base = id as usize * stride;
                self.multipoles[base..base + stride].copy_from_slice(&m);
            }
        }
    }

    /// L2L from parents + M2L from interaction lists, shallow → deep, then
    /// L2P at the leaves (folded into [`FmmEngine::near_field`]'s leaf pass).
    fn downsweep(&mut self, stride: usize) {
        let levels = self.tree.levels();
        let ops = &self.ops;
        let tree = &self.tree;
        let lists = self
            .plan
            .as_ref()
            .expect("plan refreshed in try_solve")
            .lists();
        let ch = self.kernel.channels();
        let multipoles = &self.multipoles;
        for lv in levels.iter() {
            let locals = &self.locals;
            let updates: Vec<(NodeId, Vec<f64>)> = lv
                .par_iter()
                .filter(|&&id| tree.node(id).count() > 0)
                .map_init(
                    || (Vec::new(), DerivScratch::default(), Vec::new()),
                    |(pow, ds, tens), &id| {
                        let node = tree.node(id);
                        let mut l = vec![0.0; stride];
                        if node.parent != NONE {
                            let p = node.parent as usize;
                            let src = &locals[p * stride..(p + 1) * stride];
                            ops.l2l(
                                src,
                                node.center - tree.node(node.parent).center,
                                &mut l,
                                ch,
                                pow,
                            );
                        }
                        for &b in &lists.m2l[id as usize] {
                            let src = &multipoles[b as usize * stride..(b as usize + 1) * stride];
                            ops.m2l(src, node.center - tree.node(b).center, &mut l, ch, ds, tens);
                        }
                        (id, l)
                    },
                )
                .collect();
            for (id, l) in updates {
                let base = id as usize * stride;
                self.locals[base..base + stride].copy_from_slice(&l);
            }
        }
    }

    /// Per-leaf L2P (far field applied to bodies) and P2P (direct
    /// interactions with non-separated leaves). Each leaf writes a disjoint
    /// body range; results are collected per leaf and written back.
    fn near_field(&mut self) {
        let tree = &self.tree;
        let ops = &self.ops;
        let kernel = &self.kernel;
        let lists = self
            .plan
            .as_ref()
            .expect("plan refreshed in try_solve")
            .lists();
        let pos_t = &self.pos_t;
        let str_t = &self.str_t;
        let locals = &self.locals;
        let sd = kernel.strength_dim();
        let stride = kernel.channels() * ops.nterms();

        let leaves = tree.active_leaves();
        let updates: Vec<(std::ops::Range<usize>, Vec<f64>, Vec<Vec3>)> = leaves
            .par_iter()
            .map_init(Vec::new, |pow, &id| {
                let node = tree.node(id);
                let r = node.range();
                let len = r.len();
                let mut pot = vec![0.0; len];
                let mut out = vec![Vec3::ZERO; len];
                let tpos = &pos_t[r.clone()];
                // Far field: evaluate the leaf's local expansion.
                let l = &locals[id as usize * stride..(id as usize + 1) * stride];
                kernel.l2p(ops, node.center, l, tpos, &mut pot, &mut out, pow);
                // Near field: direct interaction with every source leaf.
                for &b in &lists.p2p[id as usize] {
                    let rb = tree.node(b).range();
                    kernel.p2p(
                        tpos,
                        &mut pot,
                        &mut out,
                        &pos_t[rb.clone()],
                        &str_t[sd * rb.start..sd * rb.end],
                        b == id,
                    );
                }
                (r, pot, out)
            })
            .collect();
        for (r, pot, out) in updates {
            self.pot_t[r.clone()].copy_from_slice(&pot);
            self.out_t[r].copy_from_slice(&out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmm_math::{GravityKernel, StokesletKernel};
    use nbody::{plummer, random_unit_forces, uniform_cube};
    use octree::Mac;

    fn rel_field_err(fmm: &[Vec3], direct: &[Vec3]) -> f64 {
        let num: f64 = fmm
            .iter()
            .zip(direct)
            .map(|(a, b)| (*a - *b).norm_sq())
            .sum();
        let den: f64 = direct.iter().map(|v| v.norm_sq()).sum();
        (num / den).sqrt()
    }

    #[test]
    fn gravity_matches_direct_sum() {
        let b = plummer(400, 1.0, 1.0, 101);
        let kernel = GravityKernel::default();
        let direct = nbody::direct_gravity(&b, 1.0, 0.0);
        for (order, tol) in [(3usize, 3e-3), (6, 2e-5)] {
            let params = FmmParams {
                order,
                mac: Mac::new(0.5),
                max_level: 21,
            };
            let mut engine = FmmEngine::new(kernel, params, &b.pos, 24);
            let sol = engine.solve(&b.pos, &b.mass);
            let err = rel_field_err(&sol.field, &direct);
            assert!(err < tol, "p={order}: field error {err}");
        }
    }

    #[test]
    fn gravity_error_shrinks_with_order() {
        let b = plummer(300, 1.0, 1.0, 102);
        let direct = nbody::direct_gravity(&b, 1.0, 0.0);
        let mut last = f64::INFINITY;
        for order in [2usize, 4, 6] {
            let params = FmmParams {
                order,
                mac: Mac::new(0.5),
                max_level: 21,
            };
            let mut engine = FmmEngine::new(GravityKernel::default(), params, &b.pos, 16);
            let sol = engine.solve(&b.pos, &b.mass);
            let err = rel_field_err(&sol.field, &direct);
            assert!(err < last, "p={order}: {err} !< {last}");
            last = err;
        }
    }

    #[test]
    fn stokeslet_matches_direct_sum() {
        let b = uniform_cube(300, 1.0, 103);
        let f = random_unit_forces(300, 104);
        let kernel = StokesletKernel::new(1e-3, 1.0);
        // Direct velocities.
        let mut dpot = vec![0.0; b.len()];
        let mut du = vec![Vec3::ZERO; b.len()];
        kernel.p2p(&b.pos, &mut dpot, &mut du, &b.pos, &f, true);

        let params = FmmParams {
            order: 6,
            mac: Mac::new(0.5),
            max_level: 21,
        };
        let mut engine = FmmEngine::new(kernel, params, &b.pos, 20);
        let sol = engine.solve(&b.pos, &f);
        let err = rel_field_err(&sol.field, &du);
        assert!(err < 1e-3, "stokeslet field error {err}");
    }

    #[test]
    fn solve_is_deterministic() {
        let b = plummer(500, 1.0, 1.0, 105);
        let params = FmmParams::default();
        let mut e1 = FmmEngine::new(GravityKernel::default(), params, &b.pos, 32);
        let mut e2 = FmmEngine::new(GravityKernel::default(), params, &b.pos, 32);
        let s1 = e1.solve(&b.pos, &b.mass);
        let s2 = e2.solve(&b.pos, &b.mass);
        assert_eq!(s1.field, s2.field);
        assert_eq!(s1.pot, s2.pot);
    }

    #[test]
    fn result_independent_of_s() {
        // Different decompositions shift work between far and near field but
        // must agree on the answer to expansion accuracy.
        let b = plummer(400, 1.0, 1.0, 106);
        let params = FmmParams {
            order: 6,
            mac: Mac::new(0.5),
            max_level: 21,
        };
        let mut coarse = FmmEngine::new(GravityKernel::default(), params, &b.pos, 200);
        let mut fine = FmmEngine::new(GravityKernel::default(), params, &b.pos, 10);
        let sc = coarse.solve(&b.pos, &b.mass);
        let sf = fine.solve(&b.pos, &b.mass);
        let diff = rel_field_err(&sc.field, &sf.field);
        assert!(diff < 1e-4, "S-dependence {diff}");
    }

    #[test]
    fn result_stable_under_collapse_and_pushdown() {
        let b = plummer(400, 1.0, 1.0, 107);
        let params = FmmParams {
            order: 6,
            mac: Mac::new(0.5),
            max_level: 21,
        };
        let mut engine = FmmEngine::new(GravityKernel::default(), params, &b.pos, 16);
        let base = engine.solve(&b.pos, &b.mass);
        // Collapse a few internal nodes and push down a few leaves.
        let internals: Vec<NodeId> = engine
            .tree()
            .visible_nodes()
            .into_iter()
            .filter(|&id| !engine.tree().node(id).is_leaf() && id != Octree::ROOT)
            .take(4)
            .collect();
        for id in internals {
            engine.tree_mut().collapse(id);
        }
        let leaves: Vec<NodeId> = engine
            .tree()
            .active_leaves()
            .into_iter()
            .filter(|&id| engine.tree().node(id).count() > 4)
            .take(4)
            .collect();
        for id in leaves {
            engine.tree_mut().push_down(id);
        }
        let modified = engine.solve(&b.pos, &b.mass);
        let diff = rel_field_err(&modified.field, &base.field);
        assert!(diff < 1e-4, "tree-modification dependence {diff}");
    }

    #[test]
    fn momentum_conserved_by_fmm_forces() {
        let b = plummer(600, 1.0, 1.0, 108);
        let params = FmmParams {
            order: 4,
            mac: Mac::new(0.6),
            max_level: 21,
        };
        let mut engine = FmmEngine::new(GravityKernel::default(), params, &b.pos, 32);
        let sol = engine.solve(&b.pos, &b.mass);
        let net: Vec3 = sol.field.iter().zip(&b.mass).map(|(&a, &m)| a * m).sum();
        let scale: f64 = sol.field.iter().map(|a| a.norm()).sum::<f64>();
        // FMM forces are not exactly antisymmetric (truncation), but the net
        // must be far below the force magnitudes.
        assert!(net.norm() < 1e-3 * scale, "net {net:?} vs scale {scale}");
    }

    #[test]
    fn rebin_then_solve_tracks_motion() {
        let mut b = plummer(400, 1.0, 1.0, 109);
        let params = FmmParams {
            order: 5,
            mac: Mac::new(0.5),
            max_level: 21,
        };
        let mut engine = FmmEngine::with_domain(
            GravityKernel::default(),
            params,
            &b.pos,
            24,
            Vec3::ZERO,
            40.0,
        );
        engine.solve(&b.pos, &b.mass);
        // Move bodies, rebin (structure unchanged), re-solve, compare direct.
        for p in &mut b.pos {
            *p = *p * 1.1 + Vec3::new(0.3, -0.2, 0.1);
        }
        engine.rebin(&b.pos);
        let sol = engine.solve(&b.pos, &b.mass);
        let direct = nbody::direct_gravity(&b, 1.0, 0.0);
        let err = rel_field_err(&sol.field, &direct);
        assert!(err < 1e-3, "post-rebin error {err}");
    }

    #[test]
    fn counts_available_after_solve() {
        let b = plummer(300, 1.0, 1.0, 110);
        let mut engine = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &b.pos, 16);
        engine.solve(&b.pos, &b.mass);
        let c = engine.counts();
        assert_eq!(c.p2m_bodies, 300);
        assert_eq!(c.l2p_bodies, 300);
        assert!(c.p2p_interactions > 0);
        assert!(c.m2l_ops > 0);
    }

    #[test]
    fn uniform_engine_matches_adaptive_physics() {
        let b = uniform_cube(500, 1.0, 111);
        let params = FmmParams {
            order: 6,
            mac: Mac::new(0.5),
            max_level: 21,
        };
        let mut adaptive = FmmEngine::new(GravityKernel::default(), params, &b.pos, 16);
        let mut uniform = FmmEngine::new_uniform(GravityKernel::default(), params, &b.pos, 3);
        let sa = adaptive.solve(&b.pos, &b.mass);
        let su = uniform.solve(&b.pos, &b.mass);
        let diff = rel_field_err(&su.field, &sa.field);
        assert!(diff < 1e-4, "uniform vs adaptive field difference {diff}");
        // The uniform tree really is fixed-depth.
        assert!(uniform
            .tree()
            .visible_leaves()
            .iter()
            .all(|&l| uniform.tree().node(l).level == 3));
    }

    #[test]
    fn single_body_is_forceless() {
        let pos = vec![Vec3::new(0.3, 0.2, 0.1)];
        let mut engine = FmmEngine::new(GravityKernel::default(), FmmParams::default(), &pos, 8);
        let sol = engine.solve(&pos, &[1.0]);
        assert_eq!(sol.field[0], Vec3::ZERO);
        assert_eq!(sol.pot[0], 0.0);
    }
}
